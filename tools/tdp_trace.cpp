// tdp_trace — offline analyzer for traces exported by tdp::obs.
//
//   TDP_OBS=1 TDP_OBS_TRACE=run.json ./some_tdp_program
//   tdp_trace run.json
//
// Prints per-VP utilization with a blocking breakdown (compute vs time
// blocked in receive vs selective-receive misses) and, for each distributed
// call in the trace, the critical path: the longest chain of causally-linked
// spans recovered from the flow ids the runtime stamps into every message.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/analyze.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <trace.json>\n"
            << "  analyzes a Chrome trace exported by tdp::obs\n"
            << "  (capture one with TDP_OBS=1 TDP_OBS_TRACE=<path>)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(argv[0]);
    if (!path.empty()) return usage(argv[0]);
    path = arg;
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::cerr << "tdp_trace: cannot open " << path << "\n";
    return 1;
  }
  std::vector<tdp::obs::LoadedEvent> events;
  std::string error;
  tdp::obs::TraceMeta meta;
  if (!tdp::obs::load_chrome_trace(in, events, &error, &meta)) {
    std::cerr << "tdp_trace: failed to parse " << path << ": " << error
              << "\n";
    return 1;
  }
  if (meta.present && meta.truncated()) {
    // Loudly, before the report: every number below describes a partial
    // run, and "partial" means different things per retention mode.
    if (meta.overwritten != 0) {
      std::cerr << "tdp_trace: WARNING: flight-recorder trace — the oldest "
                << meta.overwritten << " of " << meta.recorded
                << " events were overwritten; the report covers only the "
                   "most recent window\n";
    }
    if (meta.dropped != 0) {
      std::cerr << "tdp_trace: WARNING: " << meta.dropped
                << " events were dropped past capacity — the trace ends "
                   "early (raise TDP_OBS_CAPACITY or use TDP_OBS_MODE=ring)"
                   "\n";
    }
  }
  const tdp::obs::TraceReport report = tdp::obs::analyze_trace(events);
  tdp::obs::write_report(std::cout, report);
  return 0;
}
