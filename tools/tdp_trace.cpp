// tdp_trace — offline analyzer for traces exported by tdp::obs.
//
//   TDP_OBS=1 TDP_OBS_TRACE=run.json ./some_tdp_program
//   tdp_trace run.json
//
// Prints per-VP utilization with a blocking breakdown (compute vs time
// blocked in receive vs selective-receive misses) and, for each distributed
// call in the trace, the critical path: the longest chain of causally-linked
// spans recovered from the flow ids the runtime stamps into every message.
//
// The `why` subcommand explains one slow call from an exemplar document
// (the exposition server's `slow` verb, or a flight dump's
// <prefix>.slow.json):
//
//   tdp_trace why <call-id> slow.json    # a specific retained call
//   tdp_trace why slowest slow.json      # the slowest retained call
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/analyze.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <trace.json> [more-traces.json...]\n"
      << "       " << argv0 << " why <call-id|slowest> <slow.json>\n"
      << "  analyzes a Chrome trace exported by tdp::obs\n"
      << "  (capture one with TDP_OBS=1 TDP_OBS_TRACE=<path>)\n"
      << "  several traces merge before analysis: pass every rank's file\n"
      << "  from a multi-process run (tdp_trace tdp_trace.rank*.json) and\n"
      << "  cross-process sends pair with their remote receives by flow id\n"
      << "  `why` explains one slow call from an exemplar document\n"
      << "  (TDP_OBS_SLOW_MS + the `slow` socket verb, or <dump>.slow.json)\n";
  return 2;
}

int run_why(const std::string& which, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "tdp_trace: cannot open " << path << "\n";
    return 1;
  }
  std::vector<tdp::obs::CallExemplar> exemplars;
  std::string error;
  std::uint64_t slow_ms = 0;
  if (!tdp::obs::load_exemplars(in, exemplars, &error, &slow_ms)) {
    std::cerr << "tdp_trace: failed to parse " << path << ": " << error
              << "\n";
    return 1;
  }
  if (exemplars.empty()) {
    std::cerr << "tdp_trace: no exemplars in " << path
              << (slow_ms == 0
                      ? " (TDP_OBS_SLOW_MS was not set in the producer)"
                      : "")
              << "\n";
    return 1;
  }
  const tdp::obs::CallExemplar* chosen = nullptr;
  if (which == "slowest") {
    chosen = &exemplars.front();  // document order is slowest-first
    for (const tdp::obs::CallExemplar& ex : exemplars) {
      if (ex.latency_ns > chosen->latency_ns) chosen = &ex;
    }
  } else {
    const std::uint64_t id =
        static_cast<std::uint64_t>(std::strtoull(which.c_str(), nullptr, 10));
    for (const tdp::obs::CallExemplar& ex : exemplars) {
      if (ex.call_id == id) {
        chosen = &ex;
        break;
      }
    }
    if (chosen == nullptr) {
      std::cerr << "tdp_trace: call " << which << " not among the "
                << exemplars.size() << " retained exemplars (ids:";
      for (const tdp::obs::CallExemplar& ex : exemplars) {
        std::cerr << " " << ex.call_id;
      }
      std::cerr << ")\n";
      return 1;
    }
  }
  tdp::obs::write_why_report(std::cout, *chosen);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(argv[0]);
    args.push_back(arg);
  }
  if (!args.empty() && args[0] == "why") {
    if (args.size() != 3) return usage(argv[0]);
    return run_why(args[1], args[2]);
  }
  if (args.empty()) return usage(argv[0]);

  // One file is the single-process case; several merge into one event set
  // before analysis — the per-rank traces of a TDP_TRANSPORT=uds run.
  // Flow pairing matches "s"/"f" endpoints by id, and ids are unique
  // across a launch (obs::next_flow_id folds the rank in), so a send in
  // rank 0's file pairs with its receive in rank 3's.  Per-rank clocks
  // have independent epochs: pairing and per-VP utilization are exact,
  // cross-rank latencies are not comparable.
  std::vector<tdp::obs::LoadedEvent> events;
  for (const std::string& path : args) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "tdp_trace: cannot open " << path << "\n";
      return 1;
    }
    std::vector<tdp::obs::LoadedEvent> file_events;
    std::string error;
    tdp::obs::TraceMeta meta;
    if (!tdp::obs::load_chrome_trace(in, file_events, &error, &meta)) {
      std::cerr << "tdp_trace: failed to parse " << path << ": " << error
                << "\n";
      return 1;
    }
    if (meta.present && meta.truncated()) {
      // Loudly, before the report: every number below describes a partial
      // run, and "partial" means different things per retention mode.
      if (meta.overwritten != 0) {
        std::cerr << "tdp_trace: WARNING: " << path
                  << ": flight-recorder trace — the oldest "
                  << meta.overwritten << " of " << meta.recorded
                  << " events were overwritten; the report covers only the "
                     "most recent window\n";
      }
      if (meta.dropped != 0) {
        std::cerr << "tdp_trace: WARNING: " << path << ": " << meta.dropped
                  << " events were dropped past capacity — the trace ends "
                     "early (raise TDP_OBS_CAPACITY or use "
                     "TDP_OBS_MODE=ring)\n";
      }
    }
    events.insert(events.end(),
                  std::make_move_iterator(file_events.begin()),
                  std::make_move_iterator(file_events.end()));
  }
  const tdp::obs::TraceReport report = tdp::obs::analyze_trace(events);
  tdp::obs::write_report(std::cout, report);
  return 0;
}
