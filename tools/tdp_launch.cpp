// tdp_launch — rendezvous launcher for the multi-process UDS transport.
//
//   tdp_launch -n 4 ./examples/spmd_ring         # fork 4 ranks, wait, reap
//   tdp_launch -n 4 --dir /tmp/d --rank 2 prog   # attach ONE rank to a set
//
// The default form forks N copies of the program, giving rank r the
// environment the transport factory reads:
//
//   TDP_TRANSPORT=uds  TDP_RANK=r  TDP_SIZE=N  TDP_UDS_DIR=<dir>
//
// Rendezvous is the directory: every rank binds <dir>/rank-<r>.sock and
// connects to its peers' paths, retrying while they bind (the transport's
// connect window), so no ordering coordination is needed beyond a shared
// directory — created fresh under $TMPDIR by default and removed at exit.
//
// The --rank form launches a single rank attached to an externally managed
// set (e.g. one rank under a debugger while tdp_launch --rank runs the
// others from separate terminals): it execs the program in place with the
// environment set, and requires an explicit --dir the set agrees on.
//
// Signals: SIGINT/SIGTERM are forwarded to every child, so ^C tears the
// whole set down instead of orphaning N-1 ranks.  The exit status is the
// first non-zero child status, and every failing rank is named on stderr —
// a silent partial failure would read as success.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -n <ranks> [--dir <rendezvous-dir>] [--] <program> "
      "[args...]\n"
      "       %s -n <ranks> --dir <rendezvous-dir> --rank <r> [--] "
      "<program> [args...]\n"
      "  launches <program> as <ranks> OS processes over the Unix-socket\n"
      "  transport (TDP_TRANSPORT=uds); the second form attaches a single\n"
      "  rank to an externally launched set sharing <rendezvous-dir>\n",
      argv0, argv0);
  return 2;
}

volatile sig_atomic_t g_forward_signal = 0;

void on_signal(int sig) { g_forward_signal = sig; }

void set_rank_env(int rank, int size, const std::string& dir) {
  setenv("TDP_TRANSPORT", "uds", 1);
  setenv("TDP_RANK", std::to_string(rank).c_str(), 1);
  setenv("TDP_SIZE", std::to_string(size).c_str(), 1);
  setenv("TDP_UDS_DIR", dir.c_str(), 1);
}

bool parse_int_arg(const char* s, int& out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < 0 || v > (1 << 20)) {
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = -1;
  int attach_rank = -1;
  std::string dir;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(argv[0]);
    if (arg == "-n" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], nranks) || nranks < 1) {
        std::fprintf(stderr, "tdp_launch: bad -n value \"%s\"\n", argv[i]);
        return 2;
      }
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--rank" && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], attach_rank)) {
        std::fprintf(stderr, "tdp_launch: bad --rank value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--") {
      ++i;
      break;
    } else {
      break;  // first non-option: the program
    }
  }
  if (nranks < 1 || i >= argc) return usage(argv[0]);
  if (attach_rank >= 0 && attach_rank >= nranks) {
    std::fprintf(stderr, "tdp_launch: --rank %d is outside -n %d\n",
                 attach_rank, nranks);
    return 2;
  }
  char** program_argv = argv + i;

  // Attach mode: this process IS the rank; exec in place so the program
  // keeps our pid (debugger-friendly) and our exit status is its own.
  if (attach_rank >= 0) {
    if (dir.empty()) {
      std::fprintf(stderr,
                   "tdp_launch: --rank needs --dir (the directory the "
                   "already-running ranks rendezvous in)\n");
      return 2;
    }
    set_rank_env(attach_rank, nranks, dir);
    execvp(program_argv[0], program_argv);
    std::fprintf(stderr, "tdp_launch: cannot exec %s: %s\n", program_argv[0],
                 std::strerror(errno));
    return 127;
  }

  bool made_dir = false;
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string templ =
        std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
        "/tdp_uds.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "tdp_launch: mkdtemp(%s) failed: %s\n",
                   templ.c_str(), std::strerror(errno));
      return 1;
    }
    dir = buf.data();
    made_dir = true;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "tdp_launch: fork failed at rank %d: %s\n", r,
                   std::strerror(errno));
      for (int k = 0; k < r; ++k) kill(pids[static_cast<std::size_t>(k)],
                                       SIGTERM);
      return 1;
    }
    if (pid == 0) {
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      set_rank_env(r, nranks, dir);
      execvp(program_argv[0], program_argv);
      std::fprintf(stderr, "tdp_launch: rank %d: cannot exec %s: %s\n", r,
                   program_argv[0], std::strerror(errno));
      _exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  int exit_code = 0;
  int remaining = nranks;
  while (remaining > 0) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) {
        if (g_forward_signal != 0) {
          const int sig = g_forward_signal;
          g_forward_signal = 0;
          for (const pid_t p : pids) {
            if (p > 0) kill(p, sig);
          }
        }
        continue;
      }
      break;  // ECHILD: nothing left
    }
    --remaining;
    int rank = -1;
    for (int r = 0; r < nranks; ++r) {
      if (pids[static_cast<std::size_t>(r)] == pid) rank = r;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "tdp_launch: rank %d exited with status %d\n",
                   rank, WEXITSTATUS(status));
      if (exit_code == 0) exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      std::fprintf(stderr, "tdp_launch: rank %d killed by signal %d (%s)\n",
                   rank, WTERMSIG(status), strsignal(WTERMSIG(status)));
      if (exit_code == 0) exit_code = 128 + WTERMSIG(status);
    }
  }

  if (made_dir) {
    // Ranks unlink their own sockets at shutdown; sweep whatever a crashed
    // rank left behind, then the directory itself.
    for (int r = 0; r < nranks; ++r) {
      unlink((dir + "/rank-" + std::to_string(r) + ".sock").c_str());
    }
    rmdir(dir.c_str());
  }
  return exit_code;
}
