// tdp_top — live terminal view of a running tdp program.
//
//   TDP_OBS=1 TDP_OBS_MODE=ring TDP_OBS_SOCKET=/tmp/tdp.sock ./your_program &
//   tdp_top --socket /tmp/tdp.sock
//
// Polls the exposition endpoint's `json` command on an interval and renders
// per-VP utilization (run fraction over the last sample window), mailbox
// depth, message rate, and blocked state, plus headline counter rates,
// windowed histogram quantiles, trace-ring status, recent watchdog stalls,
// and the slowest retained calls with their phase attribution.  `--once`
// prints a single snapshot and exits (CI smoke-tests this); `--metrics`
// prints the raw Prometheus text, `--slow` the raw slow-call exemplar JSON.
// In live mode a disappearing peer (restart, crash) is reported as "peer
// lost" and polled for with exponential backoff, not treated as fatal.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::cerr
      << "usage: " << argv0 << " [--socket <path>] [options]\n"
      << "  --socket <path>   exposition socket (default: $TDP_OBS_SOCKET)\n"
      << "  --once            print one snapshot and exit\n"
      << "  --interval <ms>   polling period in live mode (default 1000)\n"
      << "  --metrics         print raw Prometheus exposition text\n"
      << "  --slow            print the raw slow-call exemplar JSON\n"
      << "  the target program must run with TDP_OBS=1 and TDP_OBS_SOCKET "
         "set\n";
  return code;
}

/// One request/response exchange: connect, send the command, read to EOF.
bool query(const std::string& socket_path, const std::string& command,
           std::string& out, std::string& error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long";
    ::close(fd);
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string line = command + "\n";
  if (::write(fd, line.data(), line.size()) < 0) {
    error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  out.clear();
  char buf[4096];
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 5000) <= 0) {
      error = "timed out waiting for reply";
      ::close(fd);
      return false;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

std::string fmt_rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM/s", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk/s", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f/s", v);
  }
  return buf;
}

std::string fmt_ns(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

/// A 10-cell utilization bar: ██████░░░░
std::string run_bar(double frac) {
  if (frac < 0.0) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  const int filled = static_cast<int>(frac * 10.0 + 0.5);
  std::string bar;
  for (int i = 0; i < 10; ++i) bar += i < filled ? "█" : "░";
  return bar;
}

const tdp::obs::json::Value* latest_point(const tdp::obs::json::Value& series,
                                          const char* key) {
  const tdp::obs::json::Value* points = series.find(key);
  if (points == nullptr ||
      points->type != tdp::obs::json::Value::Type::Array ||
      points->array.empty()) {
    return nullptr;
  }
  return &points->array.back();
}

/// Counters whose rates headline the view; everything else stays in the
/// raw `--metrics` output.
constexpr const char* kHeadlineCounters[] = {
    "vp.messages",  "comm.bytes_delivered", "am.bytes_moved",
    "call.count",   "mailbox.recv_miss",    "sched.steals",
    "sched.parks",  "sched.wakeups",        "sched.completed",
};

void render(std::ostream& os, const tdp::obs::json::Value& doc) {
  using tdp::obs::json::Value;

  const std::uint64_t samples =
      static_cast<std::uint64_t>(doc.num_or("samples", 0.0));
  os << "tdp_top — " << samples << " samples @ "
     << static_cast<std::uint64_t>(doc.num_or("period_ms", 0.0)) << " ms\n";

  if (const Value* trace = doc.find("trace");
      trace != nullptr && trace->type == Value::Type::Object) {
    os << "trace: mode=" << trace->str_or("mode") << " recorded="
       << static_cast<std::uint64_t>(trace->num_or("recorded", 0.0));
    const auto dropped =
        static_cast<std::uint64_t>(trace->num_or("dropped", 0.0));
    const auto overwritten =
        static_cast<std::uint64_t>(trace->num_or("overwritten", 0.0));
    if (dropped != 0) os << " dropped=" << dropped;
    if (overwritten != 0) os << " overwritten=" << overwritten;
    os << "\n";
  }
  if (const Value* stalls = doc.find("stalls");
      stalls != nullptr && stalls->type == Value::Type::Object) {
    const auto count = static_cast<std::uint64_t>(stalls->num_or("count", 0.0));
    if (count != 0) {
      os << "stalls: " << count << " episode" << (count == 1 ? "" : "s")
         << "; last: " << stalls->str_or("last") << "\n";
    }
  }
  // Work-stealing scheduler state: present only when the peer runs under
  // TDP_SCHED=steal (the telemetry probe is registered by the scheduler).
  if (const Value* sched = doc.find("sched");
      sched != nullptr && sched->type == Value::Type::Object) {
    os << "sched: " << static_cast<std::uint64_t>(sched->num_or("workers", 0.0))
       << " workers  runnable="
       << static_cast<std::uint64_t>(sched->num_or("runnable", 0.0))
       << "  suspended="
       << static_cast<std::uint64_t>(sched->num_or("suspended", 0.0));
    if (const Value* fracs = sched->find("run_frac");
        fracs != nullptr && fracs->type == Value::Type::Array &&
        !fracs->array.empty()) {
      os << "  run%=[";
      for (std::size_t i = 0; i < fracs->array.size(); ++i) {
        const double f = fracs->array[i].type == Value::Type::Number
                             ? fracs->array[i].number
                             : 0.0;
        os << (i != 0 ? " " : "")
           << static_cast<int>(f * 100.0 + 0.5) << "%";
      }
      os << "]";
    }
    os << "\n";
  }
  // Distributed-array shard state: present only while the peer has a live
  // ArrayManager (that is what registers the telemetry dist probe).
  if (const Value* dist = doc.find("dist");
      dist != nullptr && dist->type == Value::Type::Object) {
    os << "shards: migrations="
       << static_cast<std::uint64_t>(dist->num_or("migrations", 0.0))
       << "  rebalances="
       << static_cast<std::uint64_t>(dist->num_or("rebalances", 0.0))
       << "  forwards="
       << static_cast<std::uint64_t>(dist->num_or("forwards", 0.0));
    if (const Value* hot = dist->find("hot");
        hot != nullptr && hot->type == Value::Type::Array &&
        !hot->array.empty()) {
      os << "  hot=[";
      for (std::size_t i = 0; i < hot->array.size(); ++i) {
        const Value& row = hot->array[i];
        if (row.type != Value::Type::Object) continue;
        os << (i != 0 ? " " : "") << row.str_or("array") << "#"
           << static_cast<long long>(row.num_or("shard", 0.0)) << "@p"
           << static_cast<long long>(row.num_or("owner", -1.0)) << ":"
           << static_cast<std::uint64_t>(row.num_or("bytes", 0.0)) << "B";
      }
      os << "]";
    }
    os << "\n";
  }
  os << "\n";

  // --- per-VP table -------------------------------------------------------
  os << std::left << std::setw(6) << "vp" << std::setw(12) << "run"
     << std::right << std::setw(7) << "run%" << std::setw(8) << "depth"
     << std::setw(12) << "msgs" << std::setw(12) << "recv/s" << "  state"
     << "\n";
  if (const Value* vps = doc.find("vps");
      vps != nullptr && vps->type == Value::Type::Array) {
    for (const Value& row : vps->array) {
      const Value* p = latest_point(row, "points");
      if (p == nullptr) continue;
      const double run = p->num_or("run", 1.0);
      const bool blocked = p->num_or("blocked", 0.0) != 0.0;
      std::ostringstream state;
      if (blocked) {
        state << "blocked";
        const auto ms =
            static_cast<std::uint64_t>(p->num_or("blocked_ms", 0.0));
        if (ms != 0) state << " " << ms << "ms";
      } else {
        state << "run";
      }
      os << std::left << std::setw(6)
         << ("vp" + std::to_string(
                        static_cast<std::int64_t>(row.num_or("vp", -1.0))))
         << std::setw(12) << run_bar(run) << std::right << std::setw(6)
         << static_cast<int>(run * 100.0 + 0.5) << "%" << std::setw(8)
         << static_cast<std::uint64_t>(p->num_or("depth", 0.0))
         << std::setw(12) << fmt_rate(p->num_or("rate", 0.0)) << std::setw(12)
         << fmt_rate(p->num_or("prog", 0.0)) << "  " << state.str() << "\n";
    }
  }
  os << "\n";

  // --- headline counter rates --------------------------------------------
  if (const Value* counters = doc.find("counters");
      counters != nullptr && counters->type == Value::Type::Array) {
    for (const Value& series : counters->array) {
      const std::string name = series.str_or("name");
      bool headline = false;
      for (const char* h : kHeadlineCounters) headline |= name == h;
      if (!headline) continue;
      const Value* p = latest_point(series, "points");
      if (p == nullptr) continue;
      os << std::left << std::setw(24) << name << std::right << std::setw(16)
         << static_cast<std::uint64_t>(p->num_or("v", 0.0)) << std::setw(12)
         << fmt_rate(p->num_or("rate", 0.0)) << "\n";
    }
  }

  // --- windowed histogram quantiles --------------------------------------
  if (const Value* hists = doc.find("histograms");
      hists != nullptr && hists->type == Value::Type::Array) {
    bool header = false;
    for (const Value& series : hists->array) {
      const Value* p = latest_point(series, "points");
      if (p == nullptr || p->num_or("n", 0.0) == 0.0) continue;
      if (!header) {
        os << "\n" << std::left << std::setw(24) << "histogram (window)"
           << std::right << std::setw(12) << "n" << std::setw(12) << "p50"
           << std::setw(12) << "p99" << "\n";
        header = true;
      }
      os << std::left << std::setw(24) << series.str_or("name") << std::right
         << std::setw(12) << static_cast<std::uint64_t>(p->num_or("n", 0.0))
         << std::setw(12) << fmt_ns(p->num_or("p50", 0.0)) << std::setw(12)
         << fmt_ns(p->num_or("p99", 0.0)) << "\n";
    }
  }

  // --- slowest retained calls --------------------------------------------
  if (const Value* slow = doc.find("slow");
      slow != nullptr && slow->type == Value::Type::Object) {
    const Value* calls = slow->find("calls");
    if (calls != nullptr && calls->type == Value::Type::Array &&
        !calls->array.empty()) {
      os << "\nslowest calls (TDP_OBS_SLOW_MS="
         << static_cast<std::uint64_t>(slow->num_or("threshold_ms", 0.0))
         << ", " << static_cast<std::uint64_t>(slow->num_or("captured", 0.0))
         << " captured; `tdp_trace why <id>` explains one):\n";
      os << std::left << std::setw(12) << "call" << std::setw(8) << "kind"
         << std::right << std::setw(7) << "copies" << std::setw(12)
         << "latency" << std::setw(9) << "queue%" << std::setw(9) << "block%"
         << std::setw(9) << "comp%" << std::setw(6) << "over" << "\n";
      for (const Value& row : calls->array) {
        const double queue = row.num_or("queue_ns", 0.0);
        const double blocked = row.num_or("blocked_ns", 0.0);
        const double compute = row.num_or("compute_ns", 0.0);
        const double total =
            row.num_or("marshal_ns", 0.0) + queue + blocked + compute;
        const auto pct = [&](double v) {
          char buf[16];
          std::snprintf(buf, sizeof(buf), "%.1f%%",
                        total > 0.0 ? v / total * 100.0 : 0.0);
          return std::string(buf);
        };
        os << std::left << std::setw(12)
           << static_cast<std::uint64_t>(row.num_or("call_id", 0.0))
           << std::setw(8) << row.str_or("kind") << std::right << std::setw(7)
           << static_cast<int>(row.num_or("copies", 0.0)) << std::setw(12)
           << fmt_ns(row.num_or("latency_ns", 0.0)) << std::setw(9)
           << pct(queue) << std::setw(9) << pct(blocked) << std::setw(9)
           << pct(compute) << std::setw(6)
           << (row.num_or("over_threshold", 0.0) != 0.0 ? "yes" : "-")
           << "\n";
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  if (const char* env = std::getenv("TDP_OBS_SOCKET");
      env != nullptr && env[0] != '\0') {
    socket_path = env;
  }
  bool once = false;
  bool raw_metrics = false;
  bool raw_slow = false;
  long interval_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(argv[0], 0);
    if (arg == "--once") {
      once = true;
    } else if (arg == "--metrics") {
      raw_metrics = true;
    } else if (arg == "--slow") {
      raw_slow = true;
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::atol(argv[++i]);
      if (interval_ms <= 0) interval_ms = 1000;
    } else {
      return usage(argv[0], 2);
    }
  }
  if (socket_path.empty()) {
    std::cerr << "tdp_top: no socket (pass --socket or set TDP_OBS_SOCKET)\n";
    return usage(argv[0], 2);
  }

  const bool one_shot = once || raw_metrics || raw_slow;
  const char* verb = raw_metrics ? "metrics" : raw_slow ? "slow" : "json";
  // Live-mode reconnect backoff: interval → ×2 per failure → 5 s cap,
  // reset on the first successful exchange.
  constexpr long kBackoffCapMs = 5000;
  long backoff_ms = interval_ms;
  for (;;) {
    std::string reply;
    std::string error;
    bool ok = query(socket_path, verb, reply, error);
    std::ostringstream frame;
    if (ok && raw_metrics) {
      frame << reply;
    } else if (ok && raw_slow) {
      frame << reply;
    } else if (ok) {
      tdp::obs::json::Value doc;
      if (!tdp::obs::json::parse(reply, doc, &error)) {
        // A half-written reply from a peer dying mid-response is a lost
        // peer, not a fatal protocol error.
        error = "bad reply: " + error;
        ok = false;
      } else {
        render(frame, doc);
      }
    }
    if (!ok) {
      if (one_shot) {
        std::cerr << "tdp_top: " << socket_path << ": " << error << "\n";
        return 1;
      }
      // Live mode survives the peer disappearing (restart, crash, socket
      // unlinked): say so, back off, keep polling until it returns.
      frame << "tdp_top — peer lost (" << socket_path << ": " << error
            << "); retrying every " << backoff_ms << " ms\n";
      std::cout << "\033[H\033[2J" << frame.str() << std::flush;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
      continue;
    }
    backoff_ms = interval_ms;
    if (one_shot) {
      std::cout << frame.str();
      return 0;
    }
    // Live mode: home the cursor and clear to end of screen per frame.
    std::cout << "\033[H\033[2J" << frame.str() << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
