// Tests for the distributed FFT (§6.2.3 specifications) against the naive
// DFT reference, across processor counts and transform sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/runtime.hpp"
#include "fft/fft.hpp"
#include "fft/reference.hpp"
#include "pcn/process.hpp"
#include "util/bits.hpp"
#include "util/node_array.hpp"

namespace tdp::fft {
namespace {

using Cx = std::complex<double>;

void run_group(vp::Machine& machine, int p,
               const std::function<void(spmd::SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, i, [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

std::vector<Cx> random_signal(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Cx> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {dist(rng), dist(rng)};
  return x;
}

void expect_near(const std::vector<Cx>& a, const std::vector<Cx>& b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "at " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "at " << i;
  }
}

TEST(Roots, ComputeRootsMatchesUnitCircle) {
  const int n = 8;
  std::vector<double> eps(static_cast<std::size_t>(2 * n));
  compute_roots(n, eps.data());
  for (int j = 0; j < n; ++j) {
    const double angle = 2.0 * M_PI * j / n;
    EXPECT_NEAR(eps[static_cast<std::size_t>(2 * j)], std::cos(angle), 1e-12);
    EXPECT_NEAR(eps[static_cast<std::size_t>(2 * j + 1)], std::sin(angle),
                1e-12);
  }
}

TEST(Reference, NaiveDftInverseOfItself) {
  const int n = 16;
  std::vector<Cx> x = random_signal(n, 7);
  std::vector<Cx> fwd = naive_dft(x, -1);  // unscaled forward
  std::vector<Cx> back = naive_dft(fwd, +1);
  for (auto& v : back) v /= static_cast<double>(n);
  expect_near(back, x, 1e-9);
}

TEST(Reference, PolyMulNaive) {
  EXPECT_EQ(poly_mul_naive({1.0, 1.0}, {1.0, -1.0}),
            (std::vector<double>{1.0, 0.0, -1.0}));
  EXPECT_EQ(poly_mul_naive({2.0}, {3.0}), (std::vector<double>{6.0}));
}

struct FftCase {
  int p;  ///< processors
  int n;  ///< transform size
};

class DistributedFft : public ::testing::TestWithParam<FftCase> {
 protected:
  /// Runs a distributed transform: scatters `input` (already in the storage
  /// order the transform expects), runs `which` on every copy, gathers the
  /// storage back.
  std::vector<Cx> run_transform(int p, int n, const std::vector<Cx>& input,
                                int flag, bool reverse_order) {
    vp::Machine machine(p);
    const int b = n / p;
    std::vector<double> packed = to_interleaved(input);
    std::vector<double> out(static_cast<std::size_t>(2 * n));
    std::vector<double> eps(static_cast<std::size_t>(2 * n));
    compute_roots(n, eps.data());
    run_group(machine, p, [&](spmd::SpmdContext& ctx) {
      std::vector<double> bb(
          packed.begin() + static_cast<std::size_t>(ctx.index()) * 2 * b,
          packed.begin() + static_cast<std::size_t>(ctx.index() + 1) * 2 * b);
      if (reverse_order) {
        fft_reverse(ctx, n, flag, eps.data(), bb.data());
      } else {
        fft_natural(ctx, n, flag, eps.data(), bb.data());
      }
      std::copy(bb.begin(), bb.end(),
                out.begin() + static_cast<std::size_t>(ctx.index()) * 2 * b);
    });
    return from_interleaved(out);
  }
};

TEST_P(DistributedFft, ReverseInputInverseMatchesNaiveDft) {
  const auto [p, n] = GetParam();
  std::vector<Cx> x = random_signal(n, 11);
  // fft_reverse expects storage s to hold x[rho(s)].
  std::vector<Cx> scattered = bit_reverse_permute(x);
  std::vector<Cx> got = run_transform(p, n, scattered, kInverse, true);
  std::vector<Cx> want = naive_dft(x, +1);
  expect_near(got, want, 1e-8 * n);
}

TEST_P(DistributedFft, ReverseInputForwardIncludesDivisionByN) {
  const auto [p, n] = GetParam();
  std::vector<Cx> x = random_signal(n, 13);
  std::vector<Cx> scattered = bit_reverse_permute(x);
  std::vector<Cx> got = run_transform(p, n, scattered, kForward, true);
  std::vector<Cx> want = naive_dft(x, -1);
  for (auto& v : want) v /= static_cast<double>(n);
  expect_near(got, want, 1e-8 * n);
}

TEST_P(DistributedFft, NaturalInputProducesBitReversedOutput) {
  const auto [p, n] = GetParam();
  std::vector<Cx> x = random_signal(n, 17);
  std::vector<Cx> got = run_transform(p, n, x, kInverse, false);
  // Output storage s holds result[rho(s)]: un-permute before comparing.
  std::vector<Cx> natural = bit_reverse_permute(got);
  std::vector<Cx> want = naive_dft(x, +1);
  expect_near(natural, want, 1e-8 * n);
}

TEST_P(DistributedFft, PipelineRoundTripIsIdentity) {
  // §6.2: inverse (bit-reversed in, natural out) followed by forward
  // (natural in, bit-reversed out) recovers the input exactly where the
  // polynomial pipeline relies on it.
  const auto [p, n] = GetParam();
  std::vector<Cx> x = random_signal(n, 19);
  std::vector<Cx> scattered = bit_reverse_permute(x);
  std::vector<Cx> mid = run_transform(p, n, scattered, kInverse, true);
  std::vector<Cx> back = run_transform(p, n, mid, kForward, false);
  // back is in bit-reversed storage: back[s] = x_hat[rho(s)] where x_hat
  // should equal x in bit-reversed positions of the original scattering.
  expect_near(back, scattered, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndGroups, DistributedFft,
    ::testing::Values(FftCase{1, 8}, FftCase{2, 8}, FftCase{4, 8},
                      FftCase{8, 8}, FftCase{2, 32}, FftCase{4, 64},
                      FftCase{8, 128}, FftCase{4, 256}));

TEST(DistributedFftPrograms, RegisteredProgramsMatchDirectCalls) {
  // Drive "compute_roots" and "fft_reverse" through distributed calls with
  // the thesis's parameter layout.
  core::Runtime rt(4);
  register_programs(rt.programs());
  const int n = 16;
  const int p = 4;
  dist::ArrayId eps;
  dist::ArrayId data;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {2 * n, p}, rt.all_procs(),
                {dist::DimSpec::star(), dist::DimSpec::block()},
                dist::BorderSpec::none(), dist::Indexing::ColumnMajor, eps),
            Status::Ok);
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {2 * n}, rt.all_procs(),
                {dist::DimSpec::block()}, dist::BorderSpec::none(),
                dist::Indexing::RowMajor, data),
            Status::Ok);
  ASSERT_EQ(rt.call(rt.all_procs(), "compute_roots")
                .constant(n)
                .local(eps)
                .run(),
            kStatusOk);

  // Load x[rho(s)] into storage position s via global element writes — the
  // task-parallel program's get_input (§6.2.2).
  std::vector<Cx> x = random_signal(n, 23);
  const int bits = util::floor_log2(n);
  for (int s = 0; s < n; ++s) {
    const auto src = static_cast<std::size_t>(
        util::bit_reverse(bits, static_cast<std::uint64_t>(s)));
    ASSERT_EQ(rt.arrays().write_element(0, data, std::vector<int>{2 * s},
                                        dist::Scalar{x[src].real()}),
              Status::Ok);
    ASSERT_EQ(rt.arrays().write_element(0, data, std::vector<int>{2 * s + 1},
                                        dist::Scalar{x[src].imag()}),
              Status::Ok);
  }
  ASSERT_EQ(rt.call(rt.all_procs(), "fft_reverse")
                .constant(rt.all_procs())
                .constant(p)
                .index()
                .constant(n)
                .constant(kInverse)
                .local(eps)
                .local(data)
                .run(),
            kStatusOk);

  std::vector<Cx> want = naive_dft(x, +1);
  for (int j = 0; j < n; ++j) {
    dist::Scalar re;
    dist::Scalar im;
    ASSERT_EQ(rt.arrays().read_element(0, data, std::vector<int>{2 * j}, re),
              Status::Ok);
    ASSERT_EQ(
        rt.arrays().read_element(0, data, std::vector<int>{2 * j + 1}, im),
        Status::Ok);
    EXPECT_NEAR(std::get<double>(re), want[static_cast<std::size_t>(j)].real(),
                1e-8 * n);
    EXPECT_NEAR(std::get<double>(im), want[static_cast<std::size_t>(j)].imag(),
                1e-8 * n);
  }
}

TEST(PolynomialMultiplication, FftConvolutionMatchesNaive) {
  // The full §6.2 algorithm sequentially: pad to 2n, inverse DFT both,
  // multiply pointwise, forward DFT (with 1/2n) => product coefficients.
  const int n = 8;
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> f(n);
  std::vector<double> g(n);
  for (auto& v : f) v = dist(rng);
  for (auto& v : g) v = dist(rng);

  const int nn = 2 * n;
  auto lift = [&](const std::vector<double>& poly) {
    std::vector<Cx> out(static_cast<std::size_t>(nn), Cx{0.0, 0.0});
    for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = poly[static_cast<std::size_t>(i)];
    return naive_dft(out, +1);
  };
  std::vector<Cx> fh = lift(f);
  std::vector<Cx> gh = lift(g);
  std::vector<Cx> hh(static_cast<std::size_t>(nn));
  for (int i = 0; i < nn; ++i) {
    hh[static_cast<std::size_t>(i)] =
        fh[static_cast<std::size_t>(i)] * gh[static_cast<std::size_t>(i)];
  }
  std::vector<Cx> h = naive_dft(hh, -1);
  for (auto& v : h) v /= static_cast<double>(nn);

  std::vector<double> want = poly_mul_naive(f, g);
  for (int i = 0; i < 2 * n - 1; ++i) {
    EXPECT_NEAR(h[static_cast<std::size_t>(i)].real(),
                want[static_cast<std::size_t>(i)], 1e-9);
    EXPECT_NEAR(h[static_cast<std::size_t>(i)].imag(), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace tdp::fft
