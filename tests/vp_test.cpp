// Unit tests for the virtual-processor substrate: typed mailboxes with
// selective receive (§3.4.1) and the machine / placement model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "vp/machine.hpp"
#include "vp/mailbox.hpp"

namespace tdp::vp {
namespace {

Message make(MessageClass cls, std::uint64_t comm, int tag, int src,
             std::vector<std::byte> payload = {}) {
  Message m;
  m.cls = cls;
  m.comm = comm;
  m.tag = tag;
  m.src = src;
  m.payload = Payload::take(std::move(payload));
  return m;
}

TEST(Mailbox, DeliversInFifoOrderForMatchingMessages) {
  Mailbox mb;
  mb.post(make(MessageClass::DataParallel, 1, 7, 0, {std::byte{1}}));
  mb.post(make(MessageClass::DataParallel, 1, 7, 0, {std::byte{2}}));
  Message a = mb.receive(MessageClass::DataParallel, 1, 7, 0);
  Message b = mb.receive(MessageClass::DataParallel, 1, 7, 0);
  EXPECT_EQ(a.payload.bytes()[0], std::byte{1});
  EXPECT_EQ(b.payload.bytes()[0], std::byte{2});
}

TEST(Mailbox, SelectiveReceiveSkipsNonMatching) {
  Mailbox mb;
  mb.post(make(MessageClass::TaskParallel, 0, 1, 0));
  mb.post(make(MessageClass::DataParallel, 5, 2, 3));
  // A receive for the data-parallel message must not consume the
  // task-parallel one (disjoint type sets, §3.4.1).
  Message m = mb.receive(MessageClass::DataParallel, 5, 2, 3);
  EXPECT_EQ(m.tag, 2);
  EXPECT_EQ(mb.pending(), 1u);
  Message t = mb.receive(MessageClass::TaskParallel, 0, 1, -1);
  EXPECT_EQ(t.tag, 1);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, CommScopingSeparatesConcurrentCalls) {
  Mailbox mb;
  mb.post(make(MessageClass::DataParallel, 10, 0, 0, {std::byte{10}}));
  mb.post(make(MessageClass::DataParallel, 11, 0, 0, {std::byte{11}}));
  // Receiving on comm 11 first must not steal comm 10's message.
  Message m11 = mb.receive(MessageClass::DataParallel, 11, 0, 0);
  EXPECT_EQ(m11.payload.bytes()[0], std::byte{11});
  Message m10 = mb.receive(MessageClass::DataParallel, 10, 0, 0);
  EXPECT_EQ(m10.payload.bytes()[0], std::byte{10});
}

TEST(Mailbox, DescribePendingReportsPayloadSizeAndFlow) {
  Mailbox mb;
  Message m = make(MessageClass::DataParallel, 3, 8, 2,
                   std::vector<std::byte>(5, std::byte{1}));
  m.flow = 77;
  mb.post(std::move(m));
  const std::string desc = mb.describe_pending();
  EXPECT_NE(desc.find("1 pending"), std::string::npos) << desc;
  EXPECT_NE(desc.find("cls=data"), std::string::npos) << desc;
  EXPECT_NE(desc.find("comm=3"), std::string::npos) << desc;
  EXPECT_NE(desc.find("tag=8"), std::string::npos) << desc;
  EXPECT_NE(desc.find("src=2"), std::string::npos) << desc;
  EXPECT_NE(desc.find("flow=77"), std::string::npos) << desc;
  EXPECT_NE(desc.find("5B"), std::string::npos) << desc;
}

TEST(Mailbox, WildcardSourceMatchesAnySender) {
  Mailbox mb;
  mb.post(make(MessageClass::DataParallel, 1, 0, 4));
  Message m = mb.receive(MessageClass::DataParallel, 1, 0, -1);
  EXPECT_EQ(m.src, 4);
}

TEST(Mailbox, ReceiveBlocksUntilPost) {
  Mailbox mb;
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    Message m = mb.receive(MessageClass::DataParallel, 1, 0, 0);
    EXPECT_EQ(m.tag, 0);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  mb.post(make(MessageClass::DataParallel, 1, 0, 0));
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(Mailbox, CloseWakesBlockedReceivers) {
  Mailbox mb;
  std::thread receiver([&] {
    EXPECT_THROW(mb.receive(MessageClass::DataParallel, 1, 0, 0),
                 MailboxClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mb.close();
  receiver.join();
}

TEST(Machine, HasOneMailboxPerProcessor) {
  Machine m(4);
  EXPECT_EQ(m.nprocs(), 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(m.valid_proc(p));
    EXPECT_EQ(m.mailbox(p).pending(), 0u);
  }
  EXPECT_FALSE(m.valid_proc(-1));
  EXPECT_FALSE(m.valid_proc(4));
}

TEST(Machine, SendRoutesToDestinationMailbox) {
  Machine m(3);
  m.send(2, make(MessageClass::TaskParallel, 0, 9, 0));
  EXPECT_EQ(m.mailbox(0).pending(), 0u);
  EXPECT_EQ(m.mailbox(1).pending(), 0u);
  EXPECT_EQ(m.mailbox(2).pending(), 1u);
  EXPECT_EQ(m.messages_sent(), 1u);
}

TEST(Machine, SendToBadProcessorThrows) {
  Machine m(2);
  EXPECT_THROW(m.send(5, Message{}), std::out_of_range);
}

TEST(Machine, CommIdsAreUniqueAndNonZero) {
  Machine m(1);
  auto a = m.next_comm();
  auto b = m.next_comm();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Machine, RejectsNonPositiveSize) {
  EXPECT_THROW(Machine m(0), std::invalid_argument);
  EXPECT_THROW(Machine m(-2), std::invalid_argument);
}

TEST(Placement, CurrentProcFollowsProcScope) {
  EXPECT_EQ(current_proc(), -1);
  {
    ProcScope outer(3);
    EXPECT_EQ(current_proc(), 3);
    {
      ProcScope inner(5);
      EXPECT_EQ(current_proc(), 5);
    }
    EXPECT_EQ(current_proc(), 3);
  }
  EXPECT_EQ(current_proc(), -1);
}

TEST(Placement, IsPerThread) {
  ProcScope scope(7);
  std::thread t([] { EXPECT_EQ(current_proc(), -1); });
  t.join();
  EXPECT_EQ(current_proc(), 7);
}

}  // namespace
}  // namespace tdp::vp
