// Unit tests for the util module: status codes (§4.1.2), integer helpers
// (find_log2, rho_proc), and node_array (§C.2).
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/bits.hpp"
#include "util/env.hpp"
#include "util/node_array.hpp"
#include "util/status.hpp"

namespace tdp {
namespace {

// --- checked integer env parsing (util/env.hpp) -----------------------------
//
// The contract every TDP_* integer variable now shares: unset/empty reads
// the fallback silently; a clean in-range integer is taken; garbage, a
// trailing suffix, or an out-of-range value warns and falls back — a typo
// must never silently parse as its numeric prefix (the old bare-atoi bug).

TEST(Env, UnsetAndEmptyReadFallbackSilently) {
  ::unsetenv("TDP_TEST_ENV_INT");
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 42), 42);
  ::setenv("TDP_TEST_ENV_INT", "", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 42), 42);
  ::unsetenv("TDP_TEST_ENV_INT");
}

TEST(Env, CleanIntegersParseIncludingNegative) {
  ::setenv("TDP_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 0), 17);
  ::setenv("TDP_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 0), -3);
  ::setenv("TDP_TEST_ENV_INT", "0", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 5, 0, 100), 0);
  ::unsetenv("TDP_TEST_ENV_INT");
}

TEST(Env, GarbageAndPartialParsesFallBack) {
  ::setenv("TDP_TEST_ENV_INT", "soon", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 7), 7);
  // The atoi trap: "8 shards" parsed as 8 before; now the whole string
  // must be the integer.
  ::setenv("TDP_TEST_ENV_INT", "8 shards", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 7), 7);
  ::setenv("TDP_TEST_ENV_INT", "12.5", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 7), 7);
  ::unsetenv("TDP_TEST_ENV_INT");
}

TEST(Env, OutOfRangeFallsBack) {
  ::setenv("TDP_TEST_ENV_INT", "-1", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 4, 0, 100), 4);
  ::setenv("TDP_TEST_ENV_INT", "101", 1);
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 4, 0, 100), 4);
  ::setenv("TDP_TEST_ENV_INT", "999999999999999999999999", 1);  // > 2^63
  EXPECT_EQ(util::env_int("TDP_TEST_ENV_INT", 4, 0, 100), 4);
  ::unsetenv("TDP_TEST_ENV_INT");
}

TEST(Env, Int32VariantClampsToIntRange) {
  ::setenv("TDP_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(util::env_int32("TDP_TEST_ENV_INT", 0), 123);
  ::setenv("TDP_TEST_ENV_INT", "9999999999", 1);  // fits i64, not i32
  EXPECT_EQ(util::env_int32("TDP_TEST_ENV_INT", 6), 6);
  ::unsetenv("TDP_TEST_ENV_INT");
}

TEST(Env, ParseIntIsStrict) {
  long long v = 0;
  EXPECT_TRUE(util::parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(util::parse_int("-9", v));
  EXPECT_EQ(v, -9);
  EXPECT_FALSE(util::parse_int("", v));
  EXPECT_FALSE(util::parse_int("12x", v));
  EXPECT_FALSE(util::parse_int("x12", v));
}

TEST(Status, CodesMatchThesisTable) {
  EXPECT_EQ(to_int(Status::Ok), 0);
  EXPECT_EQ(to_int(Status::Invalid), 1);
  EXPECT_EQ(to_int(Status::NotFound), 2);
  EXPECT_EQ(to_int(Status::Error), 99);
}

TEST(Status, Names) {
  EXPECT_EQ(to_string(Status::Ok), "STATUS_OK");
  EXPECT_EQ(to_string(Status::Invalid), "STATUS_INVALID");
  EXPECT_EQ(to_string(Status::NotFound), "STATUS_NOT_FOUND");
  EXPECT_EQ(to_string(Status::Error), "STATUS_ERROR");
}

TEST(Status, RoundTripThroughInt) {
  for (Status s : {Status::Ok, Status::Invalid, Status::NotFound,
                   Status::Error}) {
    EXPECT_EQ(status_from_int(to_int(s)), s);
  }
  EXPECT_EQ(status_from_int(42), Status::Error);
}

TEST(Status, OkPredicate) {
  EXPECT_TRUE(ok(Status::Ok));
  EXPECT_FALSE(ok(Status::Invalid));
  EXPECT_FALSE(ok(Status::NotFound));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(util::floor_log2(1), 0);
  EXPECT_EQ(util::floor_log2(2), 1);
  EXPECT_EQ(util::floor_log2(3), 1);
  EXPECT_EQ(util::floor_log2(4), 2);
  EXPECT_EQ(util::floor_log2(1024), 10);
  EXPECT_EQ(util::floor_log2(1023), 9);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(util::is_pow2(1));
  EXPECT_TRUE(util::is_pow2(2));
  EXPECT_TRUE(util::is_pow2(64));
  EXPECT_FALSE(util::is_pow2(0));
  EXPECT_FALSE(util::is_pow2(3));
  EXPECT_FALSE(util::is_pow2(-4));
}

TEST(Bits, BitReverseSmall) {
  // rho_proc postcondition: rightmost `bits` bits reversed, right-justified.
  EXPECT_EQ(util::bit_reverse(3, 0b000), 0b000u);
  EXPECT_EQ(util::bit_reverse(3, 0b001), 0b100u);
  EXPECT_EQ(util::bit_reverse(3, 0b011), 0b110u);
  EXPECT_EQ(util::bit_reverse(3, 0b101), 0b101u);
  EXPECT_EQ(util::bit_reverse(4, 0b0001), 0b1000u);
}

TEST(Bits, BitReverseDiscardsHighBits) {
  EXPECT_EQ(util::bit_reverse(2, 0b111), 0b11u);
  EXPECT_EQ(util::bit_reverse(1, 0b10), 0u);
}

class BitReverseInvolution : public ::testing::TestWithParam<int> {};

TEST_P(BitReverseInvolution, ReverseTwiceIsIdentity) {
  const int bits = GetParam();
  const std::uint64_t n = 1ull << bits;
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_EQ(util::bit_reverse(bits, util::bit_reverse(bits, v)), v);
  }
}

TEST_P(BitReverseInvolution, ReverseIsPermutation) {
  const int bits = GetParam();
  const std::uint64_t n = 1ull << bits;
  std::vector<bool> seen(n, false);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t r = util::bit_reverse(bits, v);
    ASSERT_LT(r, n);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitReverseInvolution,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(Bits, IntegerRoots) {
  std::int64_t r = 0;
  EXPECT_TRUE(util::exact_iroot(16, 2, &r));
  EXPECT_EQ(r, 4);
  EXPECT_TRUE(util::exact_iroot(32, 5, &r));
  EXPECT_EQ(r, 2);
  EXPECT_FALSE(util::exact_iroot(15, 2, &r));
  EXPECT_EQ(r, 3);  // floor root still reported
  EXPECT_TRUE(util::exact_iroot(1, 3, &r));
  EXPECT_EQ(r, 1);
}

TEST(Bits, IPow) {
  EXPECT_EQ(util::ipow(2, 10), 1024);
  EXPECT_EQ(util::ipow(5, 0), 1);
  EXPECT_EQ(util::ipow(1, 7), 1);
}

TEST(NodeArray, Pattern) {
  // §C.2: {first, first+stride, first+2*stride, ...}
  EXPECT_EQ(util::node_array(0, 1, 4), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(util::node_array(0, 2, 4), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(util::node_array(5, 3, 3), (std::vector<int>{5, 8, 11}));
}

TEST(NodeArray, EmptyAndIota) {
  EXPECT_TRUE(util::node_array(0, 1, 0).empty());
  EXPECT_EQ(util::iota_nodes(3), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace tdp
