// Causal flow tracing, the trace analyzer, and the stall watchdog.
//
// The flow contract: every message send stamps a process-unique flow id
// into the envelope, the matching receive recovers it, and the exporter
// emits the pair as Chrome flow events — every "s" has exactly one "f",
// even when selective receive delivers messages out of arrival order under
// contention.  The analyzer contract: the critical path it reports for a
// distributed call is a causally-connected chain (each link follows a
// recorded spawn/message/join edge, not a timestamp guess).  The watchdog
// contract: a deadlocked selective receive produces a diagnosis naming the
// blocked VP, what it waits for, and what its mailbox holds instead.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "obs/analyze.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "spmd/context.hpp"
#include "vp/machine.hpp"

namespace {

using namespace tdp;

class ObsCausalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kCompiledIn) GTEST_SKIP() << "built with TDP_OBS_DISABLED";
    obs::set_enabled(true);
    obs::Tracer::instance().reset(1 << 14);
    obs::Registry::instance().reset_values();
  }
  void TearDown() override {
    if (!obs::kCompiledIn) return;
    obs::Watchdog::instance().set_report_sink(nullptr);
    obs::set_enabled(false);
    obs::Tracer::instance().reset();
    obs::Registry::instance().reset_values();
  }
};

// --- Flow pairing. ----------------------------------------------------------

TEST_F(ObsCausalTest, EveryFlowStartHasExactlyOneFinishAcrossARealRun) {
  // Runtime teardown flushes the trace when obs is on; keep it off disk.
  ::setenv("TDP_OBS_TRACE", "/dev/null", 1);
  {
    core::Runtime rt(4);
    rt.programs().add("ring", [](spmd::SpmdContext& ctx, core::CallArgs&) {
      // One full circulation: every copy both sends and selectively
      // receives, so the trace holds message flows from every VP.
      const int n = ctx.nprocs();
      const int next = (ctx.index() + 1) % n;
      const int prev = (ctx.index() + n - 1) % n;
      ctx.send_value<int>(next, 1, ctx.index());
      const int got = ctx.recv_value<int>(prev, 1);
      EXPECT_EQ(got, prev);
      ctx.barrier();
    });
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(rt.call(rt.all_procs(), "ring").run(), 0);
    }
  }
  ::unsetenv("TDP_OBS_TRACE");

  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::istringstream in(out.str());
  std::vector<obs::LoadedEvent> events;
  std::string error;
  ASSERT_TRUE(obs::load_chrome_trace(in, events, &error)) << error;

  std::map<std::uint64_t, int> starts, finishes;
  for (const obs::LoadedEvent& e : events) {
    if (e.ph == "s") ++starts[e.id];
    if (e.ph == "f") ++finishes[e.id];
  }
  // Ring traffic plus call-phase chains: plenty of arrows.
  ASSERT_GE(starts.size(), 12u);
  for (const auto& [id, count] : starts) {
    EXPECT_EQ(count, 1) << "duplicate flow start id=" << id;
    EXPECT_EQ(finishes.count(id), 1u) << "dangling flow start id=" << id;
  }
  for (const auto& [id, count] : finishes) {
    EXPECT_EQ(count, 1) << "duplicate flow finish id=" << id;
    EXPECT_EQ(starts.count(id), 1u) << "dangling flow finish id=" << id;
  }
  const obs::TraceReport report = obs::analyze_trace(events);
  EXPECT_EQ(report.unmatched_flows, 0u);
  EXPECT_EQ(report.flow_pairs, starts.size());
}

TEST_F(ObsCausalTest, PairingSurvivesSelectiveReceiveReorderingUnderContention) {
  constexpr int kTags = 4;
  constexpr int kPerTag = 32;
  vp::Machine machine(2);

  // Contending senders, one per tag, all racing into mailbox 1.
  std::vector<std::thread> senders;
  for (int tag = 0; tag < kTags; ++tag) {
    senders.emplace_back([&machine, tag] {
      obs::set_current_vp(0);
      for (int k = 0; k < kPerTag; ++k) {
        vp::Message m;
        m.cls = vp::MessageClass::DataParallel;
        m.comm = 9;
        m.tag = tag;
        m.src = 0;
        m.payload = vp::Payload::zeros(static_cast<std::size_t>(tag) + 1);
        machine.send(1, std::move(m));
      }
      obs::set_current_vp(-1);
    });
  }

  // The receiver drains tags in DESCENDING order, so early-arriving low
  // tags sit queued while later-arriving high tags overtake them — the
  // §3.4.1 selective-receive reordering.
  std::map<std::uint64_t, int> tag_by_flow;
  for (int tag = kTags - 1; tag >= 0; --tag) {
    for (int k = 0; k < kPerTag; ++k) {
      const vp::Message m =
          machine.mailbox(1).receive(vp::MessageClass::DataParallel, 9, tag, 0);
      ASSERT_NE(m.flow, 0u);
      ASSERT_EQ(tag_by_flow.count(m.flow), 0u) << "flow id reused";
      tag_by_flow[m.flow] = m.tag;
    }
  }
  for (auto& t : senders) t.join();

  // Every delivered envelope pairs with exactly the send that produced it:
  // the send instant carrying the same flow id also carries the same tag.
  std::map<std::uint64_t, std::uint64_t> sent_tag_by_flow;
  for (const obs::EventRecord& e : obs::Tracer::instance().snapshot()) {
    if (e.op == obs::Op::MsgSend && e.kind == obs::EventKind::Instant) {
      EXPECT_EQ(sent_tag_by_flow.count(e.flow), 0u);
      sent_tag_by_flow[e.flow] = e.arg1;
    }
  }
  ASSERT_EQ(tag_by_flow.size(), static_cast<std::size_t>(kTags * kPerTag));
  ASSERT_EQ(sent_tag_by_flow.size(), tag_by_flow.size());
  for (const auto& [flow, tag] : tag_by_flow) {
    ASSERT_EQ(sent_tag_by_flow.count(flow), 1u);
    EXPECT_EQ(sent_tag_by_flow[flow], static_cast<std::uint64_t>(tag))
        << "flow " << flow << " paired a tag-" << tag
        << " receive with a different send";
  }
}

// --- Watchdog. --------------------------------------------------------------

TEST_F(ObsCausalTest, WatchdogFlagsDeadlockedSelectiveReceivePair) {
  std::mutex mu;
  std::vector<std::string> reports;
  obs::Watchdog::instance().set_report_sink([&](const std::string& r) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(r);
  });

  {
    vp::Machine machine(2);  // registers both mailboxes with the watchdog
    obs::Watchdog::instance().start(25);
    ASSERT_TRUE(obs::Watchdog::instance().running());

    // The classic crossed wait: vp0 wants tag 1 from vp1, vp1 wants tag 2
    // from vp0, and neither send ever happens.  vp0's mailbox additionally
    // holds a non-matching message — present, but not what it waits for.
    {
      vp::Message noise;
      noise.cls = vp::MessageClass::DataParallel;
      noise.comm = 7;
      noise.tag = 9;
      noise.src = 1;
      noise.payload = vp::Payload::zeros(4);
      machine.send(0, std::move(noise));
    }
    std::thread blocked0([&machine] {
      const vp::Message m =
          machine.mailbox(0).receive(vp::MessageClass::DataParallel, 7, 1, 1);
      EXPECT_EQ(m.tag, 1);
    });
    std::thread blocked1([&machine] {
      const vp::Message m =
          machine.mailbox(1).receive(vp::MessageClass::DataParallel, 7, 2, 0);
      EXPECT_EQ(m.tag, 2);
    });

    std::string report;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!reports.empty()) {
          report = reports.front();
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_FALSE(report.empty()) << "watchdog never reported the deadlock";
    EXPECT_NE(report.find("no progress"), std::string::npos) << report;
    EXPECT_NE(report.find("2 of 2 VPs blocked"), std::string::npos) << report;
    EXPECT_NE(report.find("vp0"), std::string::npos) << report;
    EXPECT_NE(report.find("vp1"), std::string::npos) << report;
    // What vp0 waits for...
    EXPECT_NE(report.find("comm=7, tag=1, src=1"), std::string::npos)
        << report;
    // ...and what its mailbox holds instead.
    EXPECT_NE(report.find("tag=9"), std::string::npos) << report;

    // Resolve the deadlock so teardown is clean.
    vp::Message m0;
    m0.cls = vp::MessageClass::DataParallel;
    m0.comm = 7;
    m0.tag = 1;
    m0.src = 1;
    machine.send(0, std::move(m0));
    vp::Message m1;
    m1.cls = vp::MessageClass::DataParallel;
    m1.comm = 7;
    m1.tag = 2;
    m1.src = 0;
    machine.send(1, std::move(m1));
    blocked0.join();
    blocked1.join();
  }
  // The machine's destructor removed the last sources, which stops the
  // sampling thread — no dangling VpWaitState pointers.
  EXPECT_FALSE(obs::Watchdog::instance().running());
}

// --- Analyzer. --------------------------------------------------------------

TEST_F(ObsCausalTest, SyntheticTraceYieldsCausallyConnectedCriticalPath) {
  // A hand-built two-VP call with a known causal structure:
  //   marshal(ext) -spawn-> execute(vp0) -msg flow 77-> execute(vp1)
  //   -join-> combine(ext)
  // vp1 finishes last, so the causal chain must route through the message
  // vp0 sent at ts=60, NOT simply pick spans by timestamp.
  const std::string json = R"({"traceEvents":[
{"name":"call.marshal","cat":"call","ph":"X","pid":1,"tid":1000000,"ts":0,"dur":10,"args":{"comm":5,"arg0":0,"arg1":0}},
{"name":"call.execute","cat":"call","ph":"X","pid":1,"tid":0,"ts":20,"dur":100,"args":{"comm":5,"arg0":0,"arg1":0}},
{"name":"vp.send","cat":"vp","ph":"i","s":"t","pid":1,"tid":0,"ts":60,"args":{"comm":5,"arg0":1,"arg1":3,"flow":77}},
{"name":"call.execute","cat":"call","ph":"X","pid":1,"tid":1,"ts":30,"dur":150,"args":{"comm":5,"arg0":1,"arg1":0}},
{"name":"vp.recv","cat":"vp","ph":"X","pid":1,"tid":1,"ts":40,"dur":60,"args":{"comm":5,"arg0":1,"arg1":4,"flow":77}},
{"name":"vp.msg","cat":"flow","ph":"s","id":77,"pid":1,"tid":0,"ts":60,"args":{"comm":5}},
{"name":"vp.msg","cat":"flow","ph":"f","bp":"e","id":77,"pid":1,"tid":1,"ts":100,"args":{"comm":5}},
{"name":"call.combine","cat":"call","ph":"X","pid":1,"tid":1000000,"ts":200,"dur":20,"args":{"comm":5,"arg0":0,"arg1":0}}
],"displayTimeUnit":"ms"})";

  std::istringstream in(json);
  std::vector<obs::LoadedEvent> events;
  std::string error;
  ASSERT_TRUE(obs::load_chrome_trace(in, events, &error)) << error;
  ASSERT_EQ(events.size(), 8u);  // thread_name metadata would be skipped

  const obs::TraceReport report = obs::analyze_trace(events);
  EXPECT_EQ(report.flow_pairs, 1u);
  EXPECT_EQ(report.unmatched_flows, 0u);

  ASSERT_EQ(report.calls.size(), 1u);
  const obs::CallStats& call = report.calls[0];
  EXPECT_EQ(call.comm, 5u);
  EXPECT_EQ(call.copies, 2);
  EXPECT_DOUBLE_EQ(call.makespan_us, 220.0);

  ASSERT_EQ(call.critical_path.size(), 4u);
  EXPECT_EQ(call.critical_path[0].name, "call.marshal");
  EXPECT_EQ(call.critical_path[0].via, "spawn");
  EXPECT_EQ(call.critical_path[1].name, "call.execute");
  EXPECT_EQ(call.critical_path[1].tid, 0);
  EXPECT_EQ(call.critical_path[1].via, "msg tag=3 vp0->vp1");
  EXPECT_EQ(call.critical_path[2].name, "call.execute");
  EXPECT_EQ(call.critical_path[2].tid, 1);
  EXPECT_EQ(call.critical_path[2].via, "join");
  EXPECT_EQ(call.critical_path[3].name, "call.combine");
  EXPECT_TRUE(call.critical_path[3].via.empty());
  // Union of [0,10] [20,120]∪[30,180]=[20,180] [200,220] = 10+160+20.
  EXPECT_DOUBLE_EQ(call.path_us, 190.0);
  EXPECT_LE(call.path_us, call.makespan_us);

  // Blocking breakdown from known intervals: vp1 was active 150us of
  // which 60us blocked in receive.
  const obs::VpStats* vp1 = nullptr;
  for (const obs::VpStats& v : report.vps) {
    if (v.tid == 1) vp1 = &v;
  }
  ASSERT_NE(vp1, nullptr);
  EXPECT_DOUBLE_EQ(vp1->active_us, 150.0);
  EXPECT_DOUBLE_EQ(vp1->recv_wait_us, 60.0);
  EXPECT_DOUBLE_EQ(vp1->compute_us, 90.0);
  EXPECT_EQ(vp1->recv_count, 1u);

  // The report renders without surprises.
  std::ostringstream rendered;
  obs::write_report(rendered, report);
  EXPECT_NE(rendered.str().find("msg tag=3 vp0->vp1"), std::string::npos)
      << rendered.str();
  EXPECT_NE(rendered.str().find("call comm=5"), std::string::npos);
}

TEST_F(ObsCausalTest, LoaderRejectsMalformedInput) {
  std::vector<obs::LoadedEvent> events;
  std::string error;
  std::istringstream truncated(R"({"traceEvents":[{"name":"x")");
  EXPECT_FALSE(obs::load_chrome_trace(truncated, events, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream wrong_shape(R"({"otherKey":1})");
  error.clear();
  EXPECT_FALSE(obs::load_chrome_trace(wrong_shape, events, &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos);
}

}  // namespace
