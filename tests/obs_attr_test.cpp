// Tests for per-call latency attribution (obs/attr): the sharded call
// ledger, the slow-call exemplar reservoir and its ring-subtree snapshots,
// the exemplar JSON round trip consumed by `tdp_trace why`, and the
// end-to-end feed from core::DistributedCall / core::do_all.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/call_args.hpp"
#include "core/do_all.hpp"
#include "core/runtime.hpp"
#include "obs/analyze.hpp"
#include "obs/attr.hpp"
#include "obs/expose.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/node_array.hpp"

namespace tdp::obs {
namespace {

class ObsAttrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "obs compiled out (TDP_OBS_ENABLE=OFF)";
    set_enabled(true);
    set_trace_mode(TraceMode::KeepFirst);
    Tracer::instance().reset(1 << 12);
    Registry::instance().reset_values();
    CallTable::instance().reset_for_test();
  }
  void TearDown() override {
    if (!kCompiledIn) return;
    CallTable::instance().reset_for_test();
    set_trace_mode(TraceMode::KeepFirst);
    Tracer::instance().reset();
    Registry::instance().reset_values();
    set_enabled(false);
  }
};

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST_F(ObsAttrTest, LedgerAccumulatesPhasesAndCapturesExemplar) {
  CallTable& t = CallTable::instance();
  // Threshold far above the call's latency: the capture below is a
  // reservoir-fill admission, not an over-threshold one.
  t.set_slow_threshold_ms(60000);

  t.call_begin(42, CallKind::Call, 3);
  t.add_marshal(42, 1000);
  t.add_exec(42, 5000);
  t.add_exec(42, 7000);
  t.on_delivery(42, /*queue_ns=*/200, /*bytes=*/64, /*blocked_ns=*/3000);
  t.on_delivery(42, /*queue_ns=*/300, /*bytes=*/32, /*blocked_ns=*/0);
  t.add_statement(42);
  t.call_end(42);

  EXPECT_EQ(t.started(), 1u);
  EXPECT_EQ(t.completed(), 1u);
  EXPECT_EQ(t.captured(), 1u);

  const std::vector<ExemplarSummary> ex = t.exemplar_summaries();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].call.id, 42u);
  EXPECT_EQ(ex[0].call.kind, CallKind::Call);
  EXPECT_EQ(ex[0].call.copies, 3);
  EXPECT_FALSE(ex[0].over_threshold);
  const CallPhases& p = ex[0].call.phases;
  EXPECT_EQ(p.marshal_ns, 1000u);
  EXPECT_EQ(p.queue_ns, 500u);
  EXPECT_EQ(p.blocked_ns, 3000u);
  EXPECT_EQ(p.exec_ns, 12000u);
  EXPECT_EQ(p.compute_ns(), 9000u);  // exec minus blocked
  EXPECT_EQ(p.copy_bytes, 96u);
  EXPECT_EQ(p.messages, 2u);
  EXPECT_EQ(p.dp_statements, 1u);
  EXPECT_GT(ex[0].call.latency_ns(), 0u);

  // call_end folded the latency into the histogram.
  EXPECT_EQ(Registry::instance().histogram("call.latency_ns").count(), 1u);
}

TEST_F(ObsAttrTest, NoCaptureWhenThresholdUnarmed) {
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(0);  // capture off; ledger + histogram still run

  t.call_begin(7, CallKind::Call, 2);
  t.add_exec(7, 4000);
  t.call_end(7);

  EXPECT_EQ(t.completed(), 1u);
  EXPECT_EQ(t.captured(), 0u);
  EXPECT_TRUE(t.exemplar_summaries().empty());
  EXPECT_EQ(Registry::instance().histogram("call.latency_ns").count(), 1u);
}

TEST_F(ObsAttrTest, UnknownIdsAreNoOps) {
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(1);
  // No call_begin: every feed is a hash miss and nothing else.
  t.add_marshal(999, 1000);
  t.add_exec(999, 1000);
  t.on_delivery(999, 1, 1, 1);
  t.add_statement(999);
  t.call_end(999);
  t.call_end(0);  // the "obs disabled at mint time" sentinel

  EXPECT_EQ(t.started(), 0u);
  EXPECT_EQ(t.completed(), 0u);
  EXPECT_EQ(t.captured(), 0u);
  EXPECT_EQ(Registry::instance().histogram("call.latency_ns").count(), 0u);
}

TEST_F(ObsAttrTest, ReservoirCooldownAndOverThresholdCapture) {
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(60000);

  // Two fast under-threshold calls back to back: both are reservoir-fill
  // admissions, but the second lands inside the 1 s capture cooldown.
  t.call_begin(1, CallKind::Call, 1);
  t.call_end(1);
  t.call_begin(2, CallKind::Call, 1);
  t.call_end(2);
  EXPECT_EQ(t.completed(), 2u);
  EXPECT_EQ(t.captured(), 1u);
  EXPECT_EQ(t.exemplar_summaries().size(), 1u);

  // Over-threshold calls are never rate-limited.
  t.set_slow_threshold_ms(1);
  for (std::uint64_t id = 3; id <= 4; ++id) {
    t.call_begin(id, CallKind::Call, 1);
    sleep_ms(2);
    t.call_end(id);
  }
  EXPECT_EQ(t.captured(), 3u);
  const std::vector<ExemplarSummary> ex = t.exemplar_summaries();
  ASSERT_EQ(ex.size(), 3u);
  // Slowest first: the 2 ms calls outrank the microsecond one.
  EXPECT_TRUE(ex[0].over_threshold);
  EXPECT_GE(ex[0].call.latency_ns(), ex[1].call.latency_ns());
  EXPECT_GE(ex[1].call.latency_ns(), ex[2].call.latency_ns());
  EXPECT_FALSE(ex[2].over_threshold);
}

TEST_F(ObsAttrTest, ExemplarSnapshotsOnlyTheCallsSubtree) {
  set_trace_mode(TraceMode::Ring);
  Tracer::instance().reset(256);
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(1);

  t.call_begin(5, CallKind::Call, 1);
  // Interleave ring traffic for the tracked call with a neighbour's.
  for (int i = 0; i < 10; ++i) {
    instant(Op::MsgSend, /*comm=*/(i % 2 == 0) ? 5u : 6u, /*arg0=*/8);
  }
  sleep_ms(2);
  t.call_end(5);

  ASSERT_EQ(t.captured(), 1u);
  const std::vector<Exemplar> ex = t.exemplars();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].subtree_events, 5u);
  EXPECT_EQ(ex[0].captured_events, 5u);
  ASSERT_EQ(ex[0].events.size(), 5u);
  for (const EventRecord& e : ex[0].events) {
    EXPECT_EQ(e.comm, 5u);
  }
}

TEST_F(ObsAttrTest, ExemplarJsonRoundTripsAndWhyReportRenders) {
  set_trace_mode(TraceMode::Ring);
  Tracer::instance().reset(256);
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(1);

  t.call_begin(11, CallKind::DoAll, 2);
  instant(Op::DoAllCopy, /*comm=*/11);
  t.add_exec(11, 4000000);
  t.on_delivery(11, /*queue_ns=*/1000000, /*bytes=*/256,
                /*blocked_ns=*/500000);
  sleep_ms(2);
  t.call_end(11);
  ASSERT_EQ(t.captured(), 1u);

  std::istringstream doc(t.render_exemplars_json());
  std::vector<CallExemplar> loaded;
  std::string error;
  std::uint64_t slow_ms = 0;
  ASSERT_TRUE(load_exemplars(doc, loaded, &error, &slow_ms)) << error;
  EXPECT_EQ(slow_ms, 1u);
  ASSERT_EQ(loaded.size(), 1u);
  const CallExemplar& ex = loaded[0];
  EXPECT_EQ(ex.call_id, 11u);
  EXPECT_EQ(ex.kind, "do_all");
  EXPECT_EQ(ex.copies, 2);
  EXPECT_TRUE(ex.over_threshold);
  EXPECT_EQ(ex.exec_ns, 4000000u);
  EXPECT_EQ(ex.queue_ns, 1000000u);
  EXPECT_EQ(ex.blocked_ns, 500000u);
  EXPECT_EQ(ex.compute_ns, 3500000u);
  EXPECT_EQ(ex.copy_bytes, 256u);
  EXPECT_EQ(ex.messages, 1u);
  EXPECT_GE(ex.latency_ns, 2000000u);
  EXPECT_EQ(ex.captured_events, 1u);
  ASSERT_EQ(ex.events.size(), 1u);

  std::ostringstream report;
  write_why_report(report, ex);
  const std::string text = report.str();
  EXPECT_NE(text.find("tdp_trace why: do_all 11"), std::string::npos) << text;
  EXPECT_NE(text.find("over TDP_OBS_SLOW_MS"), std::string::npos);
  EXPECT_NE(text.find("queue wait"), std::string::npos);
  EXPECT_NE(text.find("blocked recv"), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
}

TEST_F(ObsAttrTest, TelemetrySurfacesExposeSlowCalls) {
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(1);
  t.call_begin(21, CallKind::Call, 1);
  sleep_ms(2);
  t.call_end(21);
  ASSERT_EQ(t.captured(), 1u);

  Telemetry& tel = Telemetry::instance();
  tel.sample_now();
  tel.sample_now();

  // Prometheus: the p99 latency line carries an OpenMetrics exemplar
  // annotation pointing at the slowest retained call.
  const std::string prom = tel.render_prometheus();
  EXPECT_NE(prom.find("tdp_call_latency_ns{quantile=\"0.99\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# {call_id=\"21\"}"), std::string::npos) << prom;
  EXPECT_NE(prom.find("tdp_call_exemplars_captured 1"), std::string::npos);

  // JSON: the `slow` section summarises the retained exemplars.
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(tel.render_json(), doc, &error)) << error;
  const json::Value* slow = doc.find("slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->num_or("threshold_ms", -1), 1.0);
  EXPECT_EQ(slow->num_or("captured", -1), 1.0);
  const json::Value* calls = slow->find("calls");
  ASSERT_NE(calls, nullptr);
  ASSERT_EQ(calls->array.size(), 1u);
  EXPECT_EQ(calls->array[0].num_or("call_id", -1), 21.0);

  // The exposition verb returns the full document tdp_trace can read back.
  std::istringstream reply(ExpositionServer::respond("slow"));
  std::vector<CallExemplar> loaded;
  ASSERT_TRUE(load_exemplars(reply, loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].call_id, 21u);

  EXPECT_NE(ExpositionServer::respond("bogus").find(
                "metrics, json, slow, or dump"),
            std::string::npos);
}

TEST_F(ObsAttrTest, DistributedCallFeedsTheLedgerEndToEnd) {
  set_trace_mode(TraceMode::Ring);
  Tracer::instance().reset(1 << 10);
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(60000);
  {
    core::Runtime rt(4);
    // The barrier makes the copies exchange real messages stamped with the
    // call's comm — the mailbox path the delivery attribution hangs off.
    rt.programs().add("sync",
                      [](spmd::SpmdContext& ctx, core::CallArgs&) {
                        ctx.barrier();
                      });
    EXPECT_EQ(rt.call(rt.all_procs(), "sync").run(), 0);
    // Quiet the Runtime destructor's shutdown trace flush.
    set_enabled(false);
  }
  set_enabled(true);

  EXPECT_EQ(t.started(), 1u);
  EXPECT_EQ(t.completed(), 1u);
  ASSERT_EQ(t.captured(), 1u);
  const std::vector<ExemplarSummary> ex = t.exemplar_summaries();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].call.kind, CallKind::Call);
  EXPECT_EQ(ex[0].call.copies, 4);
  EXPECT_GT(ex[0].call.phases.exec_ns, 0u);
  EXPECT_GT(ex[0].call.phases.messages, 0u);
  EXPECT_GT(ex[0].call.latency_ns(), 0u);
  // The snapshot found the call's spans in the ring.
  EXPECT_GT(ex[0].captured_events, 0u);
}

TEST_F(ObsAttrTest, DoAllMintsACallRootAndCompletesIt) {
  CallTable& t = CallTable::instance();
  t.set_slow_threshold_ms(60000);
  vp::Machine machine(3);
  const int status = core::do_all(
      machine, util::iota_nodes(3),
      [](int index) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return index;
      },
      core::status_combine_max);
  EXPECT_EQ(status, 2);

  EXPECT_EQ(t.started(), 1u);
  EXPECT_EQ(t.completed(), 1u);
  const std::vector<ExemplarSummary> ex = t.exemplar_summaries();
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].call.kind, CallKind::DoAll);
  EXPECT_EQ(ex[0].call.copies, 3);
  EXPECT_GT(ex[0].call.phases.exec_ns, 0u);
}

}  // namespace
}  // namespace tdp::obs
