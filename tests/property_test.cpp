// Property-based suites over the invariants DESIGN.md calls out: border
// reallocation chains, decomposition sweeps through distributed calls, FFT
// algebraic identities, and channel ordering.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "core/runtime.hpp"
#include "fft/fft.hpp"
#include "fft/reference.hpp"
#include "pcn/process.hpp"
#include "spmd/context.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

// --- verify_array chains -----------------------------------------------

class BorderChain : public ::testing::TestWithParam<unsigned> {};

TEST_P(BorderChain, RandomBorderSequencesPreserveInterior) {
  // Apply a random chain of verify_array border changes to a 2-D array and
  // check the interior after every step (§4.2.7: "unchanged interior data").
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> border_dist(0, 3);

  core::Runtime rt(4);
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {8, 12}, rt.all_procs(),
                {dist::DimSpec::block_n(2), dist::DimSpec::block_n(2)},
                dist::BorderSpec::exact({border_dist(rng), border_dist(rng),
                                         border_dist(rng), border_dist(rng)}),
                dist::Indexing::RowMajor, id),
            Status::Ok);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 12; ++j) {
      ASSERT_EQ(rt.arrays().write_element(0, id, std::vector<int>{i, j},
                                          dist::Scalar{i * 100.0 + j}),
                Status::Ok);
    }
  }
  for (int step = 0; step < 6; ++step) {
    const std::vector<int> want{border_dist(rng), border_dist(rng),
                                border_dist(rng), border_dist(rng)};
    ASSERT_EQ(rt.arrays().verify_array(0, id, 2, dist::BorderSpec::exact(want),
                                       dist::Indexing::RowMajor),
              Status::Ok);
    dist::InfoValue v;
    ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::Borders, v),
              Status::Ok);
    EXPECT_EQ(std::get<std::vector<int>>(v), want);
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 12; ++j) {
        dist::Scalar s;
        ASSERT_EQ(rt.arrays().read_element(0, id, std::vector<int>{i, j}, s),
                  Status::Ok);
        ASSERT_DOUBLE_EQ(std::get<double>(s), i * 100.0 + j)
            << "step " << step << " at " << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BorderChain,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- distributed calls across decompositions ----------------------------

struct CallSweepCase {
  std::vector<int> dims;
  std::vector<dist::DimSpec> distrib;
  dist::Indexing indexing;
};

class CallDecompositionSweep
    : public ::testing::TestWithParam<CallSweepCase> {};

TEST_P(CallDecompositionSweep, CopiesCoverTheArrayExactlyOnce) {
  // Every copy stamps its interior with its index; globally, every element
  // must be stamped exactly once and with the owner the layout predicts.
  const CallSweepCase& c = GetParam();
  core::Runtime rt(8);
  rt.programs().add("stamp", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const dist::LocalSectionView& v = args.local(0);
    const long long count = v.interior_count();
    for (long long lin = 0; lin < count; ++lin) {
      std::vector<int> idx =
          dist::delinearize(lin, v.interior_dims, v.indexing);
      v.f64()[v.offset(idx)] = 1000.0 + ctx.index();
    }
  });

  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(0, dist::ElemType::Float64, c.dims,
                                     rt.all_procs(), c.distrib,
                                     dist::BorderSpec::exact(
                                         std::vector<int>(2 * c.dims.size(), 1)),
                                     c.indexing, id),
            Status::Ok);
  dist::InfoValue info;
  ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::Processors, info),
            Status::Ok);
  const std::vector<int> owners = std::get<std::vector<int>>(info);
  ASSERT_EQ(rt.call(owners, "stamp").local(id).run(), kStatusOk);

  ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::GridDimensions,
                                  info),
            Status::Ok);
  const std::vector<int> grid = std::get<std::vector<int>>(info);
  ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::LocalDimensions,
                                  info),
            Status::Ok);
  const std::vector<int> local = std::get<std::vector<int>>(info);

  const long long n = dist::element_count(c.dims);
  for (long long lin = 0; lin < n; ++lin) {
    std::vector<int> gidx = dist::delinearize(lin, c.dims, c.indexing);
    dist::GlobalMap m = dist::map_global(gidx, local);
    const long long rank = dist::grid_rank(m.grid_pos, grid, c.indexing);
    dist::Scalar s;
    ASSERT_EQ(rt.arrays().read_element(0, id, gidx, s), Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(s), 1000.0 + static_cast<double>(rank))
        << "lin " << lin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, CallDecompositionSweep,
    ::testing::Values(
        CallSweepCase{{16}, {dist::DimSpec::block()}, dist::Indexing::RowMajor},
        CallSweepCase{{8, 8},
                      {dist::DimSpec::block_n(4), dist::DimSpec::block_n(2)},
                      dist::Indexing::RowMajor},
        CallSweepCase{{8, 8},
                      {dist::DimSpec::block_n(4), dist::DimSpec::block_n(2)},
                      dist::Indexing::ColumnMajor},
        CallSweepCase{{8, 6}, {dist::DimSpec::block(), dist::DimSpec::star()},
                      dist::Indexing::RowMajor},
        CallSweepCase{{4, 4, 4},
                      {dist::DimSpec::block_n(2), dist::DimSpec::block_n(2),
                       dist::DimSpec::block_n(2)},
                      dist::Indexing::ColumnMajor}));

// --- FFT algebraic identities --------------------------------------------

using Cx = std::complex<double>;

std::vector<Cx> distributed_inverse(int p, int n, const std::vector<Cx>& x) {
  vp::Machine machine(p);
  const int b = n / p;
  std::vector<double> packed =
      fft::to_interleaved(fft::bit_reverse_permute(x));
  std::vector<double> out(static_cast<std::size_t>(2 * n));
  std::vector<double> eps(static_cast<std::size_t>(2 * n));
  fft::compute_roots(n, eps.data());
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, i, [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      std::vector<double> bb(
          packed.begin() + static_cast<std::size_t>(i) * 2 * b,
          packed.begin() + static_cast<std::size_t>(i + 1) * 2 * b);
      fft::fft_reverse(ctx, n, fft::kInverse, eps.data(), bb.data());
      std::copy(bb.begin(), bb.end(),
                out.begin() + static_cast<std::size_t>(i) * 2 * b);
    });
  }
  group.join();
  return fft::from_interleaved(out);
}

class FftAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(FftAlgebra, TransformIsLinear) {
  const int n = GetParam();
  std::mt19937 rng(42u + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<Cx> x(static_cast<std::size_t>(n));
  std::vector<Cx> y(static_cast<std::size_t>(n));
  std::vector<Cx> combo(static_cast<std::size_t>(n));
  const Cx a{d(rng), d(rng)};
  const Cx b{d(rng), d(rng)};
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = {d(rng), d(rng)};
    y[static_cast<std::size_t>(i)] = {d(rng), d(rng)};
    combo[static_cast<std::size_t>(i)] = a * x[static_cast<std::size_t>(i)] +
                                         b * y[static_cast<std::size_t>(i)];
  }
  const std::vector<Cx> fx = distributed_inverse(4, n, x);
  const std::vector<Cx> fy = distributed_inverse(4, n, y);
  const std::vector<Cx> fc = distributed_inverse(4, n, combo);
  for (int i = 0; i < n; ++i) {
    const Cx want = a * fx[static_cast<std::size_t>(i)] +
                    b * fy[static_cast<std::size_t>(i)];
    EXPECT_NEAR(std::abs(fc[static_cast<std::size_t>(i)] - want), 0.0,
                1e-9 * n);
  }
}

TEST_P(FftAlgebra, ParsevalHolds) {
  // For the unscaled inverse transform, sum |X|^2 = N * sum |x|^2.
  const int n = GetParam();
  std::mt19937 rng(77u + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<Cx> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {d(rng), d(rng)};
  const std::vector<Cx> fx = distributed_inverse(4, n, x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (int i = 0; i < n; ++i) {
    time_energy += std::norm(x[static_cast<std::size_t>(i)]);
    freq_energy += std::norm(fx[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(freq_energy, n * time_energy, 1e-8 * n * time_energy);
}

TEST_P(FftAlgebra, DeltaTransformsToConstant) {
  const int n = GetParam();
  std::vector<Cx> delta(static_cast<std::size_t>(n), Cx{0.0, 0.0});
  delta[0] = {1.0, 0.0};
  const std::vector<Cx> f = distributed_inverse(4, n, delta);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(f[static_cast<std::size_t>(i)].real(), 1.0, 1e-10);
    EXPECT_NEAR(f[static_cast<std::size_t>(i)].imag(), 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAlgebra,
                         ::testing::Values(8, 16, 64, 256));

// --- channels -------------------------------------------------------------

TEST(ChannelsProperty, FifoOrderUnderLoad) {
  auto [a, b] = core::make_channels(1);
  core::Port pa = a.port(0);
  core::Port pb = b.port(0);
  pcn::par(
      [&] {
        for (int i = 0; i < 1000; ++i) {
          const double v = i;
          pa.send<double>(std::span<const double>(&v, 1));
        }
      },
      [&] {
        for (int i = 0; i < 1000; ++i) {
          EXPECT_DOUBLE_EQ(pb.recv<double>().at(0), i);
        }
      });
}

TEST(ChannelsProperty, DirectionsAreIndependent) {
  auto [a, b] = core::make_channels(1);
  core::Port pa = a.port(0);
  core::Port pb = b.port(0);
  const double va = 1.0;
  const double vb = 2.0;
  pa.send<double>(std::span<const double>(&va, 1));
  pb.send<double>(std::span<const double>(&vb, 1));
  EXPECT_DOUBLE_EQ(pa.recv<double>().at(0), 2.0);
  EXPECT_DOUBLE_EQ(pb.recv<double>().at(0), 1.0);
  EXPECT_EQ(pa.pending(), 0u);
}

TEST(ChannelsProperty, ReversedPairsCrossConnect) {
  auto [a, b] = core::make_channels(3);
  core::ChannelGroup br = b.reversed();
  for (int i = 0; i < 3; ++i) {
    core::Port sender = a.port(i);
    const double v = 10.0 * i;
    sender.send<double>(std::span<const double>(&v, 1));
  }
  for (int i = 0; i < 3; ++i) {
    core::Port receiver = br.port(i);
    EXPECT_DOUBLE_EQ(receiver.recv<double>().at(0), 10.0 * (2 - i));
  }
}

}  // namespace
}  // namespace tdp
