// Tests for spmd::coll — the tree collective algorithms against the linear
// baselines: every collective, every group size 1..9, both algorithm
// families, plus the zero-copy payload accounting and the logarithmic
// round-count guarantees the tree variants exist for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pcn/process.hpp"
#include "spmd/coll.hpp"
#include "spmd/context.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"
#include "vp/payload.hpp"

namespace tdp::spmd {
namespace {

constexpr int kMaxP = 9;
const coll::Algo kAlgos[] = {coll::Algo::Linear, coll::Algo::Tree};

const char* algo_name(coll::Algo a) {
  return a == coll::Algo::Tree ? "tree" : "linear";
}

/// Forces one algorithm family for the enclosing scope.
class ScopedAlgo {
 public:
  explicit ScopedAlgo(coll::Algo a) { coll::force(a); }
  ~ScopedAlgo() { coll::unforce(); }
};

/// Runs `body` as one SPMD program over the first `p` processors.
void run_group(vp::Machine& machine, int p,
               const std::function<void(SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, procs[static_cast<std::size_t>(i)], [&, i] {
      SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

TEST(CollAlgo, ForceOverridesAndDefaultsToTree) {
  // The un-forced selection follows TDP_COLL (Tree when unset), so this
  // test holds under an ambient TDP_COLL=linear A/B run too.
  bool known = false;
  const char* env = std::getenv("TDP_COLL");
  const coll::Algo ambient =
      env != nullptr && env[0] != '\0' ? coll::algo_from_name(env, known)
                                       : coll::Algo::Tree;
  EXPECT_EQ(coll::algorithm(), ambient);
  coll::force(coll::Algo::Linear);
  EXPECT_EQ(coll::algorithm(), coll::Algo::Linear);
  coll::force(coll::Algo::Tree);
  EXPECT_EQ(coll::algorithm(), coll::Algo::Tree);
  coll::unforce();
  EXPECT_EQ(coll::algorithm(), ambient);
}

TEST(CollSweep, BarrierSeparatesArrivalsFromDepartures) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      vp::Machine machine(p);
      std::atomic<int> arrived{0};
      run_group(machine, p, [&](SpmdContext& ctx) {
        arrived.fetch_add(1);
        ctx.barrier();
        EXPECT_EQ(arrived.load(), p)
            << algo_name(algo) << " barrier released a copy early at P=" << p;
      });
    }
  }
}

TEST(CollSweep, BroadcastDeliversRootBufferEverywhere) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      for (int root : {0, p - 1}) {
        vp::Machine machine(p);
        run_group(machine, p, [&](SpmdContext& ctx) {
          std::vector<int> data(5, 0);
          if (ctx.index() == root) {
            for (int k = 0; k < 5; ++k) data[static_cast<std::size_t>(k)] =
                root * 1000 + k;
          }
          ctx.broadcast(std::span<int>(data), root);
          for (int k = 0; k < 5; ++k) {
            EXPECT_EQ(data[static_cast<std::size_t>(k)], root * 1000 + k)
                << algo_name(algo) << " P=" << p << " root=" << root;
          }
        });
      }
    }
  }
}

TEST(CollSweep, ReduceSumsToRootAndLeavesOthersUnchanged) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      for (int root : {0, p - 1}) {
        vp::Machine machine(p);
        run_group(machine, p, [&](SpmdContext& ctx) {
          std::vector<int> data{ctx.index() + 1, 10 * (ctx.index() + 1)};
          const std::vector<int> mine = data;
          ctx.reduce<int>(std::span<int>(data), root,
                          [](const int& a, const int& b) { return a + b; });
          const int total = p * (p + 1) / 2;
          if (ctx.index() == root) {
            EXPECT_EQ(data[0], total) << algo_name(algo) << " P=" << p;
            EXPECT_EQ(data[1], 10 * total) << algo_name(algo) << " P=" << p;
          } else {
            EXPECT_EQ(data, mine)
                << algo_name(algo) << " P=" << p
                << ": reduce must not disturb non-root buffers";
          }
        });
      }
    }
  }
}

// 2x2 integer matrices under multiplication: associative, exact, and
// genuinely non-commutative — the probe for the operand-ordering discipline.
struct M2 {
  long long a, b, c, d;  // row-major
  bool operator==(const M2&) const = default;
};

M2 matmul(const M2& x, const M2& y) {
  return M2{x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d,
            x.c * y.a + x.d * y.c, x.c * y.b + x.d * y.d};
}

M2 rank_matrix(int i) {
  return M2{i + 1, i, 1, i + 2};
}

TEST(CollSweep, ReduceKeepsNonCommutativeOperandsInIndexOrder) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      M2 expected = rank_matrix(0);
      for (int i = 1; i < p; ++i) expected = matmul(expected, rank_matrix(i));
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        M2 m = rank_matrix(ctx.index());
        ctx.reduce<M2>(std::span<M2>(&m, 1), 0,
                       [](const M2& x, const M2& y) { return matmul(x, y); });
        if (ctx.index() == 0) {
          EXPECT_EQ(m, expected) << algo_name(algo) << " P=" << p;
        }
      });
    }
  }
}

TEST(CollSweep, AllreduceAgreesEverywhere) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        const int total = p * (p + 1) / 2;
        const int sum = ctx.allreduce_value<int>(
            ctx.index() + 1, [](const int& a, const int& b) { return a + b; });
        EXPECT_EQ(sum, total) << algo_name(algo) << " P=" << p;
        // Doubles with exactly-representable values: association-proof.
        EXPECT_EQ(ctx.allreduce_max(static_cast<double>(ctx.index())),
                  static_cast<double>(p - 1));
        EXPECT_EQ(ctx.allreduce_sum(static_cast<double>(ctx.index() + 1)),
                  static_cast<double>(total));
        EXPECT_EQ(ctx.allreduce_max_int(-ctx.index()), 0);
      });
    }
  }
}

// Recursive doubling with the ordering discipline is index-ordered when P
// is a power of two (no remainder fold), so even a non-commutative operator
// must give the exact in-order product on every copy.
TEST(CollSweep, AllreduceNonCommutativePowerOfTwo) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p : {1, 2, 4, 8}) {
      M2 expected = rank_matrix(0);
      for (int i = 1; i < p; ++i) expected = matmul(expected, rank_matrix(i));
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        M2 m = rank_matrix(ctx.index());
        ctx.allreduce<M2>(std::span<M2>(&m, 1), [](const M2& x, const M2& y) {
          return matmul(x, y);
        });
        EXPECT_EQ(m, expected) << algo_name(algo) << " P=" << p;
      });
    }
  }
}

// Above kAllreduceRdMaxBytes the tree allreduce switches to binomial
// reduce + tree broadcast, which is index-ordered for *any* group size —
// sweep the non-commutative product over every P, each slot independently.
TEST(CollSweep, AllreduceLongPayloadOrderedForAnyGroupSize) {
  const std::size_t elems = coll::kAllreduceRdMaxBytes / sizeof(M2) + 1;
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      M2 expected = rank_matrix(0);
      for (int i = 1; i < p; ++i) expected = matmul(expected, rank_matrix(i));
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        std::vector<M2> data(elems, rank_matrix(ctx.index()));
        ASSERT_GT(data.size() * sizeof(M2), coll::kAllreduceRdMaxBytes);
        ctx.allreduce<M2>(std::span<M2>(data), [](const M2& x, const M2& y) {
          return matmul(x, y);
        });
        for (const M2& m : data) {
          ASSERT_EQ(m, expected) << algo_name(algo) << " P=" << p;
        }
      });
    }
  }
}

TEST(CollSweep, GatherConcatenatesInIndexOrder) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      for (int root : {0, p - 1}) {
        vp::Machine machine(p);
        run_group(machine, p, [&](SpmdContext& ctx) {
          const std::vector<int> mine{ctx.index() * 10, ctx.index() * 10 + 1};
          const std::vector<int> all =
              ctx.gather<int>(std::span<const int>(mine), root);
          if (ctx.index() == root) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * p));
            for (int i = 0; i < p; ++i) {
              EXPECT_EQ(all[static_cast<std::size_t>(2 * i)], i * 10);
              EXPECT_EQ(all[static_cast<std::size_t>(2 * i + 1)], i * 10 + 1);
            }
          } else {
            EXPECT_TRUE(all.empty());
          }
        });
      }
    }
  }
}

TEST(CollSweep, AllgatherConcatenatesOnEveryCopy) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        const std::vector<int> mine{ctx.index() * 100, ctx.index() * 100 + 1,
                                    ctx.index() * 100 + 2};
        const std::vector<int> all =
            ctx.allgather<int>(std::span<const int>(mine));
        ASSERT_EQ(all.size(), static_cast<std::size_t>(3 * p))
            << algo_name(algo) << " P=" << p;
        for (int i = 0; i < p; ++i) {
          for (int k = 0; k < 3; ++k) {
            EXPECT_EQ(all[static_cast<std::size_t>(3 * i + k)], i * 100 + k)
                << algo_name(algo) << " P=" << p << " block " << i;
          }
        }
      });
    }
  }
}

TEST(CollSweep, ScanComputesInclusivePrefix) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        std::vector<int> data{ctx.index() + 1};
        ctx.scan<int>(std::span<int>(data),
                      [](const int& a, const int& b) { return a + b; });
        const int me = ctx.index() + 1;
        EXPECT_EQ(data[0], me * (me + 1) / 2) << algo_name(algo) << " P=" << p;
      });
    }
  }
}

TEST(CollSweep, AlltoallRoutesEveryBlock) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        std::vector<int> mine(static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
          mine[static_cast<std::size_t>(j)] = ctx.index() * 1000 + j;
        }
        const std::vector<int> got =
            ctx.alltoall<int>(std::span<const int>(mine), 1);
        ASSERT_EQ(got.size(), static_cast<std::size_t>(p));
        for (int j = 0; j < p; ++j) {
          EXPECT_EQ(got[static_cast<std::size_t>(j)], j * 1000 + ctx.index())
              << algo_name(algo) << " P=" << p;
        }
      });
    }
  }
}

TEST(CollSweep, ExchangeSwapsPairBuffers) {
  for (coll::Algo algo : kAlgos) {
    ScopedAlgo forced(algo);
    for (int p = 1; p <= kMaxP; ++p) {
      vp::Machine machine(p);
      run_group(machine, p, [&](SpmdContext& ctx) {
        const int partner = ctx.index() ^ 1;
        if (partner >= p) return;  // odd copy out at odd group sizes
        const std::vector<int> mine{ctx.index() * 7, ctx.index() * 7 + 1};
        std::vector<int> theirs(2, -1);
        ctx.exchange<int>(partner, 2, std::span<const int>(mine),
                          std::span<int>(theirs));
        EXPECT_EQ(theirs[0], partner * 7) << algo_name(algo) << " P=" << p;
        EXPECT_EQ(theirs[1], partner * 7 + 1);
      });
    }
  }
}

// The tree broadcast at P=8 is depth ceil(log2 8) = 3: the root sends one
// message per round (3 total, vs 7 linear) and the whole group moves P-1
// messages either way.
TEST(CollRounds, TreeBroadcastAtP8IsThreeRoundsDeep) {
  constexpr int kP = 8;
  std::vector<std::uint64_t> sent(kP, 0);
  {
    ScopedAlgo forced(coll::Algo::Tree);
    vp::Machine machine(kP);
    run_group(machine, kP, [&](SpmdContext& ctx) {
      std::vector<int> data(16, ctx.index() == 0 ? 42 : 0);
      ctx.broadcast(std::span<int>(data), 0);
      sent[static_cast<std::size_t>(ctx.index())] = ctx.sent_count();
    });
  }
  EXPECT_EQ(sent[0], 3u) << "binomial root sends ceil(log2 P) messages";
  std::uint64_t total = 0;
  for (std::uint64_t s : sent) {
    EXPECT_LE(s, 3u) << "no copy may exceed the tree depth";
    total += s;
  }
  EXPECT_EQ(total, 7u) << "a broadcast still moves exactly P-1 messages";

  std::vector<std::uint64_t> linear_sent(kP, 0);
  {
    ScopedAlgo forced(coll::Algo::Linear);
    vp::Machine machine(kP);
    run_group(machine, kP, [&](SpmdContext& ctx) {
      std::vector<int> data(16, ctx.index() == 0 ? 42 : 0);
      ctx.broadcast(std::span<int>(data), 0);
      linear_sent[static_cast<std::size_t>(ctx.index())] = ctx.sent_count();
    });
  }
  EXPECT_EQ(linear_sent[0], 7u) << "linear root sends P-1 sequential messages";
}

// The zero-copy contract: a payload broadcast fans one refcounted buffer to
// P-1 peers without the substrate copying a single payload byte.
TEST(CollZeroCopy, PayloadBroadcastCopiesNothing) {
  constexpr int kP = 8;
  constexpr std::size_t kBytes = 4096;
  auto& copied = obs::Registry::instance().counter("comm.bytes_copied");
  ScopedAlgo forced(coll::Algo::Tree);
  vp::Machine machine(kP);
  const std::uint64_t before = copied.value();
  run_group(machine, kP, [&](SpmdContext& ctx) {
    vp::Payload mine;
    if (ctx.index() == 0) {
      std::vector<std::byte> bytes(kBytes, std::byte{0x5a});
      mine = vp::Payload::take(std::move(bytes));  // adopt, don't copy
    }
    const vp::Payload out = ctx.broadcast_payload(std::move(mine), 0);
    ASSERT_EQ(out.size(), kBytes);
    EXPECT_EQ(out.bytes()[0], std::byte{0x5a});
    EXPECT_EQ(out.bytes()[kBytes - 1], std::byte{0x5a});
  });
  EXPECT_EQ(copied.value() - before, 0u)
      << "broadcast fan-out must not copy payload bytes";
}

// The typed (span) broadcast costs exactly one substrate copy at the root —
// the wrap that decouples the shared buffer from the caller's mutable span —
// under the tree, versus P-1 copies under the linear baseline.
TEST(CollZeroCopy, TypedBroadcastCopiesOnceAtRoot) {
  constexpr int kP = 8;
  constexpr std::size_t kBytes = 1024;
  auto& copied = obs::Registry::instance().counter("comm.bytes_copied");
  auto& delivered = obs::Registry::instance().counter("comm.bytes_delivered");
  const auto run_once = [&](coll::Algo algo) {
    ScopedAlgo forced(algo);
    vp::Machine machine(kP);
    run_group(machine, kP, [&](SpmdContext& ctx) {
      std::vector<std::byte> data(kBytes, std::byte{static_cast<unsigned char>(
                                              ctx.index() == 0 ? 7 : 0)});
      coll::broadcast(ctx, std::span<std::byte>(data), 0);
      EXPECT_EQ(data[0], std::byte{7});
    });
  };

  std::uint64_t before = copied.value();
  std::uint64_t before_delivered = delivered.value();
  run_once(coll::Algo::Tree);
  EXPECT_EQ(copied.value() - before, kBytes)
      << "tree: one wrap at the root, shared by all 7 receivers";
  EXPECT_EQ(delivered.value() - before_delivered, (kP - 1) * kBytes)
      << "each receiver copies out into its own span exactly once";

  before = copied.value();
  run_once(coll::Algo::Linear);
  EXPECT_EQ(copied.value() - before, (kP - 1) * kBytes)
      << "linear baseline: one payload copy per destination";
}

// Satellite: a typed receive into a buffer of the wrong size must throw,
// naming the tag, the source and both sizes — never silently truncate.
TEST(CollRecv, SizeMismatchThrowsWithTagSourceAndSizes) {
  vp::Machine machine(2);
  run_group(machine, 2, [&](SpmdContext& ctx) {
    if (ctx.index() == 0) {
      ctx.send_value<std::int32_t>(1, 5, 42);
    } else {
      try {
        (void)ctx.recv_value<std::int64_t>(0, 5);
        ADD_FAILURE() << "recv of 4 bytes into 8 must throw";
      } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("tag 5"), std::string::npos) << msg;
        EXPECT_NE(msg.find("src 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4 bytes"), std::string::npos) << msg;
        EXPECT_NE(msg.find("8-byte"), std::string::npos) << msg;
      }
    }
  });
}

TEST(CollRecv, PayloadReceiveSharesSenderBuffer) {
  vp::Machine machine(2);
  run_group(machine, 2, [&](SpmdContext& ctx) {
    if (ctx.index() == 0) {
      std::vector<std::byte> bytes(64, std::byte{9});
      vp::Payload pay = vp::Payload::take(std::move(bytes));
      ctx.send_payload(1, 3, pay);
      // The sender still holds its handle; the receiver holds another.
      EXPECT_GE(pay.use_count(), 1);
    } else {
      const vp::Payload got = ctx.recv_payload(0, 3);
      EXPECT_EQ(got.size(), 64u);
      EXPECT_EQ(got.bytes()[63], std::byte{9});
    }
  });
}

}  // namespace
}  // namespace tdp::spmd
