// Tests for the PCN server mechanism (§5.1.1) and the array-manager
// capabilities installed on it.
#include <gtest/gtest.h>

#include <atomic>

#include "dist/array_server.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"
#include "vp/server.hpp"

namespace tdp::vp {
namespace {

TEST(Server, RequestRoutesToCapabilityHandler) {
  Machine machine(2);
  ServerSystem servers(machine);
  servers.add_capability(1, "double_it", [](ServerRequest& req) {
    const int v = std::any_cast<int>(req.parameters);
    req.reply.define(std::any{2 * v});
  });
  EXPECT_TRUE(servers.has_capability(1, "double_it"));
  EXPECT_FALSE(servers.has_capability(0, "double_it"));

  std::any reply = servers.request_wait(1, "double_it", 21);
  EXPECT_EQ(std::any_cast<int>(reply), 42);
  EXPECT_EQ(servers.serviced(1), 1u);
  EXPECT_EQ(servers.serviced(0), 0u);
}

TEST(Server, UnknownCapabilityRepliesEmpty) {
  Machine machine(1);
  ServerSystem servers(machine);
  std::any reply = servers.request_wait(0, "no_such_thing", 0);
  EXPECT_FALSE(reply.has_value());
}

TEST(Server, RequestCompletesImmediatelyReplyIsDefinitional) {
  // §5.1.2: "considered as a program statement, a server request completes
  // immediately"; the caller synchronises on the reply variable.
  Machine machine(1);
  ServerSystem servers(machine);
  pcn::Def<int> release;
  servers.add_capability(0, "slow", [release](ServerRequest& req) {
    req.reply.define(std::any{release.read()});
  });
  pcn::Def<std::any> reply = servers.request(0, "slow", 0);
  EXPECT_EQ(reply.read_for(std::chrono::milliseconds(20)), nullptr);
  release.define(5);
  EXPECT_EQ(std::any_cast<int>(reply.read()), 5);
}

TEST(Server, HandlerRunsOnItsProcessor) {
  Machine machine(4);
  ServerSystem servers(machine);
  servers.add_capability_all("whoami", [](ServerRequest& req) {
    req.reply.define(std::any{current_proc()});
  });
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(std::any_cast<int>(servers.request_wait(p, "whoami", 0)), p);
  }
}

TEST(Server, OriginIsTheRequestingProcessor) {
  Machine machine(3);
  ServerSystem servers(machine);
  servers.add_capability_all("origin", [](ServerRequest& req) {
    req.reply.define(std::any{req.origin});
  });
  pcn::ProcessGroup group;
  group.spawn_on(machine, 2, [&] {
    EXPECT_EQ(std::any_cast<int>(servers.request_wait(0, "origin", 0)), 2);
  });
  group.join();
}

TEST(Server, NestedRequestsDoNotDeadlock) {
  // A handler may itself issue a server request — even to its own server —
  // because each request is serviced by its own process (PCN semantics).
  Machine machine(2);
  ServerSystem servers(machine);
  servers.add_capability_all("leaf", [](ServerRequest& req) {
    req.reply.define(std::any{std::any_cast<int>(req.parameters) + 1});
  });
  servers.add_capability_all("nested", [&servers](ServerRequest& req) {
    const int v = std::any_cast<int>(req.parameters);
    // Nested request to the *same* processor's server.
    const int leaf =
        std::any_cast<int>(servers.request_wait(current_proc(), "leaf", v));
    req.reply.define(std::any{leaf * 10});
  });
  EXPECT_EQ(std::any_cast<int>(servers.request_wait(0, "nested", 3)), 40);
  EXPECT_EQ(std::any_cast<int>(servers.request_wait(1, "nested", 6)), 70);
}

TEST(Server, ConcurrentRequestsAllServiced) {
  Machine machine(2);
  ServerSystem servers(machine);
  std::atomic<int> sum{0};
  servers.add_capability_all("add", [&sum](ServerRequest& req) {
    sum += std::any_cast<int>(req.parameters);
    req.reply.define(std::any{0});
  });
  std::vector<pcn::Def<std::any>> replies;
  for (int i = 1; i <= 50; ++i) {
    replies.push_back(servers.request(i % 2, "add", i));
  }
  for (auto& r : replies) r.read();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST(Server, SilentHandlerStillDefinesReply) {
  // A buggy handler that never defines the reply must not hang requesters.
  Machine machine(1);
  ServerSystem servers(machine);
  servers.add_capability(0, "silent", [](ServerRequest&) {});
  std::any reply = servers.request_wait(0, "silent", 0);
  EXPECT_FALSE(reply.has_value());
}

}  // namespace
}  // namespace tdp::vp

namespace tdp::dist {
namespace {

class ArrayServerTest : public ::testing::Test {
 protected:
  ArrayServerTest() : machine_(4), am_(machine_), servers_(machine_) {
    install_array_manager(servers_, am_);
  }

  vp::Machine machine_;
  ArrayManager am_;
  vp::ServerSystem servers_;
};

TEST_F(ArrayServerTest, CreateWriteReadFreeThroughServerRequests) {
  CreateArrayRequest create;
  create.type = ElemType::Float64;
  create.dims = {8};
  create.processors = util::iota_nodes(4);
  create.distrib = {DimSpec::block()};
  create.borders = BorderSpec::none();
  create.indexing = Indexing::RowMajor;
  auto created = std::any_cast<CreateArrayReply>(
      servers_.request_wait(0, "create_array", create));
  ASSERT_EQ(created.status, Status::Ok);

  WriteElementRequest write;
  write.id = created.id;
  write.indices = {5};
  write.value = Scalar{6.5};
  auto wrote = std::any_cast<StatusReply>(
      servers_.request_wait(0, "write_element", write));
  EXPECT_EQ(wrote.status, Status::Ok);

  // Read on another participating processor's server (the `@Processor`
  // annotation): identical result.
  ReadElementRequest read;
  read.id = created.id;
  read.indices = {5};
  for (int p = 0; p < 4; ++p) {
    auto got = std::any_cast<ReadElementReply>(
        servers_.request_wait(p, "read_element", read));
    ASSERT_EQ(got.status, Status::Ok) << p;
    EXPECT_DOUBLE_EQ(std::get<double>(got.value), 6.5);
  }

  FindInfoRequest info;
  info.id = created.id;
  info.which = InfoKind::GridDimensions;
  auto inf = std::any_cast<FindInfoReply>(
      servers_.request_wait(2, "find_info", info));
  ASSERT_EQ(inf.status, Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(inf.value), (std::vector<int>{4}));

  FreeArrayRequest free_req;
  free_req.id = created.id;
  auto freed = std::any_cast<StatusReply>(
      servers_.request_wait(3, "free_array", free_req));
  EXPECT_EQ(freed.status, Status::Ok);
  auto gone = std::any_cast<ReadElementReply>(
      servers_.request_wait(0, "read_element", read));
  EXPECT_EQ(gone.status, Status::NotFound);
}

TEST_F(ArrayServerTest, VerifyThroughServer) {
  CreateArrayRequest create;
  create.dims = {8};
  create.processors = util::iota_nodes(4);
  create.distrib = {DimSpec::block()};
  create.borders = BorderSpec::exact({1, 1});
  auto created = std::any_cast<CreateArrayReply>(
      servers_.request_wait(0, "create_array", create));
  ASSERT_EQ(created.status, Status::Ok);

  VerifyArrayRequest verify;
  verify.id = created.id;
  verify.n_dims = 1;
  verify.expected = BorderSpec::exact({2, 2});
  verify.indexing = Indexing::RowMajor;
  auto verified = std::any_cast<StatusReply>(
      servers_.request_wait(1, "verify_array", verify));
  EXPECT_EQ(verified.status, Status::Ok);

  FindInfoRequest info;
  info.id = created.id;
  info.which = InfoKind::Borders;
  auto inf = std::any_cast<FindInfoReply>(
      servers_.request_wait(0, "find_info", info));
  ASSERT_EQ(inf.status, Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(inf.value), (std::vector<int>{2, 2}));
}

TEST_F(ArrayServerTest, MalformedPayloadIsInvalid) {
  auto reply = std::any_cast<StatusReply>(
      servers_.request_wait(0, "free_array", std::string("nonsense")));
  EXPECT_EQ(reply.status, Status::Invalid);
}

}  // namespace
}  // namespace tdp::dist
