// Tests for the §2.3.2 signal-processing operations and the §2.2
// alternative integration model.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <random>

#include "core/apply.hpp"
#include "core/runtime.hpp"
#include "fft/reference.hpp"
#include "fft/signal.hpp"
#include "pcn/def.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

std::vector<double> random_seq(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto& v : out) v = d(rng);
  return out;
}

class Convolve : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Convolve, MatchesNaiveConvolution) {
  const auto [na, nb] = GetParam();
  core::Runtime rt(4);
  const std::vector<double> a = random_seq(na, 11u + na);
  const std::vector<double> b = random_seq(nb, 13u + nb);
  const std::vector<double> got = fft::convolve(rt, rt.all_procs(), a, b);
  const std::vector<double> want = fft::poly_mul_naive(a, b);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Convolve,
                         ::testing::Values(std::pair{4, 4}, std::pair{16, 16},
                                           std::pair{13, 7},
                                           std::pair{1, 32},
                                           std::pair{33, 31}));

TEST(Correlate, MatchesNaiveCrossCorrelation) {
  core::Runtime rt(4);
  const std::vector<double> a = random_seq(12, 5);
  const std::vector<double> b = random_seq(8, 6);
  const std::vector<double> got = fft::correlate(rt, rt.all_procs(), a, b);
  // Naive: correlate == convolve(a, reverse(b)).
  std::vector<double> rb(b.rbegin(), b.rend());
  const std::vector<double> want = fft::poly_mul_naive(a, rb);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9) << i;
  }
}

TEST(Correlate, PeaksAtTheEmbeddedDelay) {
  // A pattern embedded in a longer signal at offset 9: the correlation
  // with the pattern must peak exactly there.
  core::Runtime rt(2);
  const std::vector<double> pattern = random_seq(6, 21);
  std::vector<double> signal(32, 0.0);
  const int offset = 9;
  for (int i = 0; i < 6; ++i) {
    signal[static_cast<std::size_t>(offset + i)] =
        pattern[static_cast<std::size_t>(i)];
  }
  const std::vector<double> corr =
      fft::correlate(rt, rt.all_procs(), signal, pattern);
  // corr[k] = sum_i signal[i] pattern[i - k + len(pattern) - 1]; the match
  // lands at k = offset + len(pattern) - 1.
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < corr.size(); ++k) {
    if (corr[k] > corr[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, static_cast<std::size_t>(offset + 6 - 1));
}

TEST(LowpassFilter, RemovesHighToneKeepsLowTone) {
  core::Runtime rt(4);
  const int n = 64;
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = 2.0 * std::numbers::pi * i / n;
    x[static_cast<std::size_t>(i)] =
        std::sin(2.0 * t) + 0.5 * std::sin(19.0 * t);
  }
  const std::vector<double> y =
      fft::lowpass_filter(rt, rt.all_procs(), x, /*keep_bins=*/4);
  for (int i = 0; i < n; ++i) {
    const double t = 2.0 * std::numbers::pi * i / n;
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], std::sin(2.0 * t), 1e-9)
        << i;
  }
}

TEST(LowpassFilter, KeepAllBinsIsIdentity) {
  core::Runtime rt(2);
  const std::vector<double> x = random_seq(16, 33);
  const std::vector<double> y =
      fft::lowpass_filter(rt, rt.all_procs(), x, /*keep_bins=*/8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-10);
  }
}

TEST(LowpassFilter, RejectsBadLengths) {
  core::Runtime rt(4);
  EXPECT_THROW(fft::lowpass_filter(rt, rt.all_procs(),
                                   std::vector<double>(12, 0.0), 2),
               std::invalid_argument);
  EXPECT_THROW(fft::lowpass_filter(rt, {0, 1, 2},
                                   std::vector<double>(16, 0.0), 2),
               std::invalid_argument);
}

TEST(ApplyTaskParallel, RunsOncePerElementWithGlobalIndices) {
  core::Runtime rt(4);
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {4, 4}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::block()},
                dist::BorderSpec::none(), dist::Indexing::RowMajor, id),
            Status::Ok);
  std::atomic<int> invocations{0};
  const int status = core::apply_task_parallel(
      rt, id, [&](const std::vector<int>& gidx, double value) {
        ++invocations;
        EXPECT_DOUBLE_EQ(value, 0.0);
        return gidx[0] * 10.0 + gidx[1];
      });
  EXPECT_EQ(status, kStatusOk);
  EXPECT_EQ(invocations.load(), 16);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      dist::Scalar v;
      ASSERT_EQ(rt.arrays().read_element(0, id, std::vector<int>{i, j}, v),
                Status::Ok);
      EXPECT_DOUBLE_EQ(std::get<double>(v), i * 10.0 + j);
    }
  }
}

TEST(ApplyTaskParallel, ElementTasksRunConcurrently) {
  // §2.2: the copies of the task-parallel program run concurrently — two
  // element tasks exchange values through definitional variables, which
  // only terminates if they truly overlap.
  core::Runtime rt(2);
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(0, dist::ElemType::Float64, {2},
                                     {0}, {dist::DimSpec::star()},
                                     dist::BorderSpec::none(),
                                     dist::Indexing::RowMajor, id),
            Status::Ok);
  pcn::Def<double> from0;
  pcn::Def<double> from1;
  const int status = core::apply_task_parallel(
      rt, id, [&](const std::vector<int>& gidx, double) {
        if (gidx[0] == 0) {
          from0.define(1.5);
          return from1.read();  // suspends until element 1's task runs
        }
        from1.define(2.5);
        return from0.read();
      });
  EXPECT_EQ(status, kStatusOk);
  dist::Scalar v;
  ASSERT_EQ(rt.arrays().read_element(0, id, std::vector<int>{0}, v),
            Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 2.5);
  ASSERT_EQ(rt.arrays().read_element(0, id, std::vector<int>{1}, v),
            Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 1.5);
}

TEST(ApplyTaskParallel, TasksMaySpawnSubProcesses) {
  core::Runtime rt(2);
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(0, dist::ElemType::Float64, {4},
                                     rt.all_procs(),
                                     {dist::DimSpec::block()},
                                     dist::BorderSpec::none(),
                                     dist::Indexing::RowMajor, id),
            Status::Ok);
  const int status = core::apply_task_parallel(
      rt, id, [](const std::vector<int>& gidx, double) {
        // Each element task is itself a parallel composition.
        pcn::Def<double> partial;
        double other = 0.0;
        pcn::par([&] { partial.define(gidx[0] * 2.0); },
                 [&] { other = 1.0; });
        return partial.read() + other;
      });
  EXPECT_EQ(status, kStatusOk);
  for (int i = 0; i < 4; ++i) {
    dist::Scalar v;
    ASSERT_EQ(rt.arrays().read_element(0, id, std::vector<int>{i}, v),
              Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(v), i * 2.0 + 1.0);
  }
}

TEST(ApplyTaskParallel, UnknownArrayReportsNotFound) {
  core::Runtime rt(2);
  dist::ArrayId bogus{0, 999};
  EXPECT_EQ(core::apply_task_parallel(
                rt, bogus, [](const std::vector<int>&, double) { return 0.0; }),
            kStatusNotFound);
}

}  // namespace
}  // namespace tdp
