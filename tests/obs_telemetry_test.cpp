// tdp::obs flight recorder + telemetry plane.
//
// Contracts under test: ring mode keeps exactly the most recent events and
// counts displaced ones; the shared JSON module round-trips everything the
// exporters emit (escape → parse is identity, the Chrome trace and the
// telemetry dump both parse cleanly); the sampler derives windowed rates
// and bucket-delta percentiles from the registry; the exposition server
// answers the metrics/json/dump protocol over a real socket; and a
// watchdog stall with the ring armed auto-dumps a readable trace file.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/attr.hpp"
#include "obs/export.hpp"
#include "obs/expose.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "vp/machine.hpp"

namespace {

using namespace tdp;

class ObsTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kCompiledIn) GTEST_SKIP() << "built with TDP_OBS_DISABLED";
    obs::set_enabled(true);
    obs::set_trace_mode(obs::TraceMode::KeepFirst);
    obs::Tracer::instance().reset(1 << 10);
    obs::Registry::instance().reset_values();
    obs::Telemetry::instance().stop();
    obs::Telemetry::instance().reset_for_test();
    obs::CallTable::instance().reset_for_test();
    // A stall auto-dump in an earlier test must not put this one's stall
    // inside the cooldown window.
    obs::Watchdog::instance().reset_auto_dump_cooldown();
  }
  void TearDown() override {
    if (!obs::kCompiledIn) return;
    obs::ExpositionServer::instance().stop();
    obs::Telemetry::instance().stop();
    obs::Telemetry::instance().reset_for_test();
    obs::CallTable::instance().reset_for_test();
    obs::Watchdog::instance().set_report_sink(nullptr);
    obs::Watchdog::instance().reset_auto_dump_cooldown();
    obs::set_trace_mode(obs::TraceMode::KeepFirst);
    obs::Tracer::instance().reset();
    obs::Registry::instance().reset_values();
    obs::set_enabled(false);
    ::unsetenv("TDP_OBS_DUMP");
    ::unsetenv("TDP_OBS_DUMP_COOLDOWN_MS");
    // Swallow any dump request a test armed but never serviced.
    obs::service_flight_dump_request();
  }

  static obs::EventRecord make_event(std::uint64_t ts, std::uint64_t arg0) {
    obs::EventRecord rec;
    rec.ts_ns = ts;
    rec.op = obs::Op::MsgSend;
    rec.kind = obs::EventKind::Instant;
    rec.arg0 = arg0;
    rec.vp = 3;
    return rec;
  }
};

// --- flight-recorder ring --------------------------------------------------

TEST_F(ObsTelemetryTest, RingKeepsMostRecentAndCountsOverwritten) {
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset(16);  // single emitting shard (vp 3): 16 live slots
  ASSERT_EQ(tracer.mode(), obs::TraceMode::Ring);

  for (std::uint64_t i = 0; i < 40; ++i) {
    tracer.emit(make_event(i + 1, i));
  }
  EXPECT_EQ(tracer.recorded(), 40u);
  EXPECT_EQ(tracer.overwritten(), 24u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::vector<obs::EventRecord> snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  // Oldest-first, and exactly the last 16 emitted (arg0 24..39).
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].arg0, 24u + i);
  }
}

TEST_F(ObsTelemetryTest, KeepFirstStillDropsPastCapacity) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset(16);
  ASSERT_EQ(tracer.mode(), obs::TraceMode::KeepFirst);
  for (std::uint64_t i = 0; i < 40; ++i) {
    tracer.emit(make_event(i + 1, i));
  }
  EXPECT_EQ(tracer.recorded(), 16u);
  EXPECT_EQ(tracer.dropped(), 24u);
  EXPECT_EQ(tracer.overwritten(), 0u);
  const std::vector<obs::EventRecord> snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].arg0, i);  // the FIRST 16, not the last
  }
}

TEST_F(ObsTelemetryTest, RingSnapshotIsSafeAgainstLiveEmitters) {
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset(64);

  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++i;
      tracer.emit(make_event(i, i));
    }
  });
  for (int round = 0; round < 50; ++round) {
    const std::vector<obs::EventRecord> snap = tracer.snapshot();
    // Within one shard the snapshot must be a contiguous run of the
    // sequence: strictly increasing arg0 with no gaps.
    for (std::size_t i = 1; i < snap.size(); ++i) {
      ASSERT_EQ(snap[i].arg0, snap[i - 1].arg0 + 1);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  emitter.join();
}

// --- shared JSON module ----------------------------------------------------

TEST_F(ObsTelemetryTest, JsonEscapeParseRoundTrip) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t ctrl\x01 utf8 \xc3\xa9 end";
  const std::string doc = "{\"s\":\"" + obs::json::escape(nasty) + "\"}";
  obs::json::Value v;
  std::string error;
  ASSERT_TRUE(obs::json::parse(doc, v, &error)) << error;
  EXPECT_EQ(v.str_or("s"), nasty);
}

TEST_F(ObsTelemetryTest, JsonParseRejectsMalformedAndTrailingGarbage) {
  obs::json::Value v;
  std::string error;
  EXPECT_FALSE(obs::json::parse("{\"a\":", v, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(obs::json::parse("{} trailing", v, &error));
  EXPECT_FALSE(obs::json::parse("[1, 2", v, &error));
  EXPECT_TRUE(obs::json::parse("{\"n\":-12.5e2,\"b\":true,\"x\":null}", v,
                               &error))
      << error;
  EXPECT_DOUBLE_EQ(v.num_or("n", 0.0), -1250.0);
}

TEST_F(ObsTelemetryTest, ChromeTraceParsesCleanlyWithMeta) {
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.reset(8);
  for (std::uint64_t i = 0; i < 20; ++i) tracer.emit(make_event(i + 1, i));

  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string text = out.str();

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(text, doc, &error)) << error;
  ASSERT_NE(doc.find("traceEvents"), nullptr);

  // And the analyzer reads back the truncation sidecar.
  std::istringstream in(text);
  std::vector<obs::LoadedEvent> events;
  obs::TraceMeta meta;
  ASSERT_TRUE(obs::load_chrome_trace(in, events, &error, &meta)) << error;
  EXPECT_TRUE(meta.present);
  EXPECT_EQ(meta.mode, "ring");
  EXPECT_EQ(meta.recorded, 20u);
  EXPECT_EQ(meta.overwritten, 12u);
  EXPECT_TRUE(meta.truncated());
}

// --- telemetry sampler -----------------------------------------------------

TEST_F(ObsTelemetryTest, SamplerDerivesCounterRatesAndWindowedPercentiles) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  obs::Registry& reg = obs::Registry::instance();

  obs::Histogram& h = reg.histogram("test.lat_ns");  // exists pre-prime
  reg.counter("test.ticks").add(5);
  tel.sample_now();  // primes every track; rates are 0 on the first point

  reg.counter("test.ticks").add(1000);
  for (int i = 0; i < 100; ++i) h.record(10);  // bucket [8,15]
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tel.sample_now();

  const obs::Telemetry::Snapshot snap = tel.snapshot();
  EXPECT_EQ(snap.samples, 2u);

  bool found_counter = false;
  for (const auto& [name, point] : snap.counters) {
    if (name != "test.ticks") continue;
    found_counter = true;
    EXPECT_DOUBLE_EQ(point.value, 1005.0);
    EXPECT_GT(point.rate, 0.0);  // 1000 over a ~2 ms window
  }
  EXPECT_TRUE(found_counter);

  bool found_hist = false;
  for (const auto& row : snap.histograms) {
    if (row.name != "test.lat_ns") continue;
    found_hist = true;
    EXPECT_EQ(row.latest.count, 100u);
    EXPECT_GT(row.latest.rate, 0.0);
    // Window is 100 samples of value 10, all in bucket [8,15]:
    // p50 rank 50 → 8 + floor(0.5 * 7) = 11; p99 rank 99 → 8 + floor(6.93).
    EXPECT_EQ(row.latest.p50, 11u);
    EXPECT_EQ(row.latest.p99, 14u);
    EXPECT_EQ(row.lifetime_count, 100u);
  }
  EXPECT_TRUE(found_hist);
}

TEST_F(ObsTelemetryTest, SamplerWindowWithNoNewSamplesReadsZero) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  obs::Histogram& h = obs::Registry::instance().histogram("test.idle_ns");
  for (int i = 0; i < 50; ++i) h.record(1000);
  tel.sample_now();  // primes the track (the recorded samples land here)
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tel.sample_now();  // an all-zero bucket-delta window

  const obs::Telemetry::Snapshot snap = tel.snapshot();
  bool found = false;
  for (const auto& row : snap.histograms) {
    if (row.name != "test.idle_ns") continue;
    found = true;
    EXPECT_EQ(row.latest.count, 0u);
    EXPECT_DOUBLE_EQ(row.latest.rate, 0.0);
    // An idle window's quantiles read 0, not stale lifetime values.
    EXPECT_EQ(row.latest.p50, 0u);
    EXPECT_EQ(row.latest.p99, 0u);
    EXPECT_EQ(row.lifetime_count, 50u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTelemetryTest, SamplerTracksPerVpRunFractionAndQueueDepth) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  obs::VpWaitState state;
  const int token = tel.add_vp_source(5, &state);

  // Blocked since long before the window opens: the whole window is
  // blocked time, so run_frac collapses to ~0.
  state.blocked_since_ns.store(1, std::memory_order_relaxed);
  state.queue_depth.store(7, std::memory_order_relaxed);
  tel.sample_now();
  obs::Registry::instance().counter("vp.messages").add_at(5, 42);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tel.sample_now();

  const obs::Telemetry::Snapshot snap = tel.snapshot();
  bool found = false;
  for (const auto& row : snap.vps) {
    if (row.vp != 5) continue;
    found = true;
    EXPECT_EQ(row.latest.depth, 7u);
    EXPECT_TRUE(row.latest.blocked);
    EXPECT_GT(row.latest.blocked_ms, 0u);
    EXPECT_LT(row.latest.run_frac, 0.1);
    EXPECT_GT(row.latest.msg_rate, 0.0);
  }
  EXPECT_TRUE(found);

  // Close the block; a fully-runnable window reads ~1.
  const std::uint64_t now = obs::now_ns();
  state.blocked_ns_total.fetch_add(now - 1, std::memory_order_relaxed);
  state.blocked_since_ns.store(0, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tel.sample_now();
  const obs::Telemetry::Snapshot snap2 = tel.snapshot();
  for (const auto& row : snap2.vps) {
    if (row.vp != 5) continue;
    EXPECT_FALSE(row.latest.blocked);
    EXPECT_GT(row.latest.run_frac, 0.9);
  }

  tel.remove_vp_source(token);
}

TEST_F(ObsTelemetryTest, MailboxAccumulatesBlockedTimeAcrossReceive) {
  vp::Machine machine(2);
  vp::Mailbox& box = machine.mailbox(1);
  const obs::VpWaitState& state = box.wait_state();
  ASSERT_EQ(state.blocked_ns_total.load(std::memory_order_relaxed), 0u);

  std::thread receiver([&] {
    vp::ProcScope scope(1);
    (void)box.receive(vp::MessageClass::TaskParallel, 9, 1, -1);
  });
  // Wait until the receiver is actually blocked, then let it block a bit.
  while (state.blocked_since_ns.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    vp::ProcScope scope(0);
    vp::Message m;
    m.cls = vp::MessageClass::TaskParallel;
    m.comm = 9;
    m.tag = 1;
    m.src = 0;
    machine.send(1, std::move(m));
  }
  receiver.join();
  // Delivery closed the block interval into the cumulative total.
  EXPECT_EQ(state.blocked_since_ns.load(std::memory_order_relaxed), 0u);
  EXPECT_GE(state.blocked_ns_total.load(std::memory_order_relaxed),
            std::uint64_t{4} * 1000 * 1000);
}

TEST_F(ObsTelemetryTest, RenderJsonRoundTripsThroughParser) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  obs::VpWaitState state;
  const int token = tel.add_vp_source(2, &state);
  obs::Registry::instance().counter("test.rt").add(3);
  obs::Registry::instance().histogram("test.rt_ns").record(100);
  tel.sample_now();
  tel.note_stall("== stall with \"quotes\" ==\nsecond line ignored");
  tel.sample_now();

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(tel.render_json(), doc, &error)) << error;

  EXPECT_EQ(static_cast<std::uint64_t>(doc.num_or("samples", 0.0)), 2u);
  const obs::json::Value* stalls = doc.find("stalls");
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(stalls->num_or("count", 0.0)), 1u);
  EXPECT_EQ(stalls->str_or("last"), "== stall with \"quotes\" ==");

  const obs::json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  bool found = false;
  for (const obs::json::Value& series : counters->array) {
    if (series.str_or("name") != "test.rt") continue;
    found = true;
    const obs::json::Value* points = series.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->array.size(), 2u);
    EXPECT_DOUBLE_EQ(points->array.back().num_or("v", 0.0), 3.0);
  }
  EXPECT_TRUE(found);

  const obs::json::Value* vps = doc.find("vps");
  ASSERT_NE(vps, nullptr);
  ASSERT_EQ(vps->array.size(), 1u);
  EXPECT_EQ(static_cast<int>(vps->array[0].num_or("vp", -1.0)), 2);

  tel.remove_vp_source(token);
}

TEST_F(ObsTelemetryTest, PrometheusRenderingNamesAndLabels) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  obs::VpWaitState state;
  const int token = tel.add_vp_source(4, &state);
  obs::Registry::instance().counter("test.promQ!").add(7);
  tel.sample_now();

  const std::string text = tel.render_prometheus();
  EXPECT_NE(text.find("tdp_up 1\n"), std::string::npos);
  // Metric names sanitize to [A-Za-z0-9_].
  EXPECT_NE(text.find("tdp_test_promQ__total 7\n"), std::string::npos);
  EXPECT_NE(text.find("tdp_vp_run_fraction{vp=\"4\"}"), std::string::npos);
  EXPECT_NE(text.find("tdp_vp_queue_depth{vp=\"4\"}"), std::string::npos);
  EXPECT_NE(text.find("tdp_trace_recorded"), std::string::npos);
  tel.remove_vp_source(token);
}

TEST_F(ObsTelemetryTest, PrometheusFoldsHighVpsIntoOneRow) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  obs::VpWaitState low, high_a, high_b;
  const int t1 = tel.add_vp_source(3, &low);
  const int t2 = tel.add_vp_source(64, &high_a);
  const int t3 = tel.add_vp_source(200, &high_b);
  high_a.queue_depth.store(2, std::memory_order_relaxed);
  high_b.queue_depth.store(5, std::memory_order_relaxed);
  high_b.blocked_since_ns.store(1, std::memory_order_relaxed);
  tel.sample_now();

  const std::string text = tel.render_prometheus();
  EXPECT_NE(text.find("tdp_vp_run_fraction{vp=\"3\"}"), std::string::npos);
  // VPs past the cardinality bound get no individual rows...
  EXPECT_EQ(text.find("{vp=\"64\"}"), std::string::npos);
  EXPECT_EQ(text.find("{vp=\"200\"}"), std::string::npos);
  // ...they fold into one aggregate row: summed depth, blocked count.
  EXPECT_NE(text.find("tdp_vp_folded 2\n"), std::string::npos);
  EXPECT_NE(text.find("tdp_vp_queue_depth{vp=\"64+\"} 7"), std::string::npos);
  EXPECT_NE(text.find("tdp_vp_blocked{vp=\"64+\"} 1"), std::string::npos);
  // No folded message rate: vp.messages shards alias at vp mod 64, so the
  // folded delta would double-count low VPs.
  EXPECT_EQ(text.find("tdp_vp_message_rate{vp=\"64+\"}"), std::string::npos);
  tel.remove_vp_source(t1);
  tel.remove_vp_source(t2);
  tel.remove_vp_source(t3);
}

// --- flight dump -----------------------------------------------------------

TEST_F(ObsTelemetryTest, FlightDumpWritesParsableTraceAndTelemetry) {
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer::instance().reset(32);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::Tracer::instance().emit(make_event(i + 1, i));
  }
  obs::Telemetry::instance().sample_now();

  const std::string prefix = ::testing::TempDir() + "tdp_flight_ut";
  ::setenv("TDP_OBS_DUMP", prefix.c_str(), 1);
  obs::request_flight_dump();
  EXPECT_TRUE(obs::service_flight_dump_request());
  EXPECT_FALSE(obs::service_flight_dump_request());  // one-shot flag

  std::ifstream trace(prefix + ".trace.json");
  ASSERT_TRUE(trace.good());
  std::vector<obs::LoadedEvent> events;
  std::string error;
  obs::TraceMeta meta;
  ASSERT_TRUE(obs::load_chrome_trace(trace, events, &error, &meta)) << error;
  EXPECT_EQ(events.size(), 10u);
  EXPECT_EQ(meta.mode, "ring");

  std::ifstream telemetry(prefix + ".telemetry.json");
  ASSERT_TRUE(telemetry.good());
  std::stringstream buf;
  buf << telemetry.rdbuf();
  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(buf.str(), doc, &error)) << error;

  // The dump also writes the slow-call sidecar, parsable by the `why`
  // loader even when no exemplars were retained.
  std::ifstream slow(prefix + ".slow.json");
  ASSERT_TRUE(slow.good());
  std::vector<obs::CallExemplar> exemplars;
  ASSERT_TRUE(obs::load_exemplars(slow, exemplars, &error)) << error;
  EXPECT_TRUE(exemplars.empty());

  std::remove((prefix + ".trace.json").c_str());
  std::remove((prefix + ".telemetry.json").c_str());
  std::remove((prefix + ".slow.json").c_str());
}

TEST_F(ObsTelemetryTest, WatchdogStallAutoDumpsRing) {
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer::instance().reset(32);
  for (std::uint64_t i = 0; i < 8; ++i) {
    obs::Tracer::instance().emit(make_event(i + 1, i));
  }
  const std::string prefix = ::testing::TempDir() + "tdp_flight_stall";
  ::setenv("TDP_OBS_DUMP", prefix.c_str(), 1);

  obs::Watchdog& wd = obs::Watchdog::instance();
  std::atomic<int> reports{0};
  wd.set_report_sink([&](const std::string&) { ++reports; });

  // A permanently-blocked source with frozen progress: a stall by the
  // second sample.
  obs::VpWaitState state;
  state.blocked_since_ns.store(1, std::memory_order_relaxed);
  const int token = wd.add_source(7, &state, nullptr);
  wd.start(10);
  for (int i = 0; i < 200 && reports.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The watchdog services the dump request it armed one period after it
  // reported; the telemetry half is written strictly after the trace file
  // is complete, so its existence means the trace is safe to parse.
  bool dumped = false;
  for (int i = 0; i < 200 && !dumped; ++i) {
    dumped = std::ifstream(prefix + ".telemetry.json").good();
    if (!dumped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  wd.remove_source(token);  // stops the thread (last source out)

  EXPECT_GT(reports.load(), 0);
  ASSERT_TRUE(dumped);
  std::ifstream trace(prefix + ".trace.json");
  ASSERT_TRUE(trace.good());
  std::vector<obs::LoadedEvent> events;
  std::string error;
  ASSERT_TRUE(obs::load_chrome_trace(trace, events, &error)) << error;
  // Our 8 events plus the watchdog's own WdQueued/WdBlocked counter
  // samples, all retained by the ring.
  EXPECT_GE(events.size(), 8u);

  // The stall also reached the telemetry plane.
  EXPECT_GE(obs::Telemetry::instance().snapshot().stalls, 1u);
  std::remove((prefix + ".trace.json").c_str());
  std::remove((prefix + ".telemetry.json").c_str());
  std::remove((prefix + ".slow.json").c_str());
}

TEST_F(ObsTelemetryTest, WatchdogCooldownSuppressesRepeatAutoDumps) {
  obs::set_trace_mode(obs::TraceMode::Ring);
  obs::Tracer::instance().reset(32);
  const std::string prefix = ::testing::TempDir() + "tdp_flight_cooldown";
  ::setenv("TDP_OBS_DUMP", prefix.c_str(), 1);
  ::unsetenv("TDP_OBS_DUMP_COOLDOWN_MS");  // the default 30 s window

  obs::Watchdog& wd = obs::Watchdog::instance();
  std::atomic<int> reports{0};
  wd.set_report_sink([&](const std::string&) { ++reports; });
  obs::VpWaitState state;
  state.blocked_since_ns.store(1, std::memory_order_relaxed);
  const int token = wd.add_source(7, &state, nullptr);
  obs::ShardedCounter& suppressed =
      obs::Registry::instance().counter("watchdog.dumps_suppressed");
  const std::uint64_t suppressed0 = suppressed.value();

  wd.start(5);
  for (int i = 0; i < 400 && reports.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(reports.load(), 0);
  // The first episode's dump goes through; wait for it, then clear the
  // files so a second dump would be visible.
  bool dumped = false;
  for (int i = 0; i < 400 && !dumped; ++i) {
    dumped = std::ifstream(prefix + ".telemetry.json").good();
    if (!dumped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(dumped);
  std::remove((prefix + ".trace.json").c_str());
  std::remove((prefix + ".telemetry.json").c_str());
  std::remove((prefix + ".slow.json").c_str());

  // End the stall (one unit of progress), then freeze again: a second
  // episode well inside the cooldown window.
  const int before = reports.load();
  state.progress.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < 400 && reports.load() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(reports.load(), before);
  // Give the watchdog a few more periods: it must NOT write a new dump.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  wd.remove_source(token);  // stops the thread (last source out)

  EXPECT_GT(suppressed.value(), suppressed0);
  EXPECT_FALSE(std::ifstream(prefix + ".trace.json").good());
}

// --- exposition server -----------------------------------------------------

std::string uds_query(const std::string& path, const std::string& command) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "<connect failed>";
  }
  const std::string line = command + "\n";
  EXPECT_EQ(::write(fd, line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST_F(ObsTelemetryTest, ExpositionServerAnswersProtocol) {
  obs::Registry::instance().counter("test.expo").add(11);
  obs::Telemetry::instance().sample_now();

  const std::string path = ::testing::TempDir() + "tdp_obs_test.sock";
  obs::ExpositionServer& server = obs::ExpositionServer::instance();
  ASSERT_TRUE(server.start(path));
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.path(), path);

  const std::string metrics = uds_query(path, "metrics");
  EXPECT_NE(metrics.find("tdp_up 1"), std::string::npos);
  EXPECT_NE(metrics.find("tdp_test_expo_total 11"), std::string::npos);

  const std::string json_reply = uds_query(path, "json");
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json_reply, doc, &error)) << error;
  ASSERT_NE(doc.find("counters"), nullptr);

  const std::string bad = uds_query(path, "bogus");
  EXPECT_NE(bad.find("unknown command"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  // The socket path is gone: a fresh client cannot connect.
  EXPECT_EQ(uds_query(path, "metrics"), "<connect failed>");
}

TEST_F(ObsTelemetryTest, ExpositionRespondMatchesSocketAnswers) {
  obs::Registry::instance().counter("test.direct").add(2);
  obs::Telemetry::instance().sample_now();
  const std::string direct = obs::ExpositionServer::respond("metrics");
  EXPECT_NE(direct.find("tdp_test_direct_total 2"), std::string::npos);
  // Whitespace-trimmed and defaulted commands reach the same renderer.
  EXPECT_EQ(obs::ExpositionServer::respond("  metrics \r\n"), direct);
  EXPECT_EQ(obs::ExpositionServer::respond(""), direct);
}

// --- interpolation edge cases ---------------------------------------------

TEST_F(ObsTelemetryTest, PercentileFromBucketsEdgeCases) {
  std::array<std::uint64_t, obs::Histogram::kBuckets> buckets{};
  EXPECT_EQ(obs::Histogram::percentile_from_buckets(buckets, 0.5), 0u);

  buckets[0] = 10;  // all zeros
  EXPECT_EQ(obs::Histogram::percentile_from_buckets(buckets, 0.99), 0u);

  buckets = {};
  buckets[4] = 1;  // single sample in [8,15]: every quantile interpolates
  EXPECT_EQ(obs::Histogram::percentile_from_buckets(buckets, 0.01), 15u);
  EXPECT_EQ(obs::Histogram::percentile_from_buckets(buckets, 1.0), 15u);

  buckets = {};
  buckets[1] = 50;  // [1,1]
  buckets[10] = 50;  // [512,1023]
  // Rank 50 lands exactly at the end of bucket 1.
  EXPECT_EQ(obs::Histogram::percentile_from_buckets(buckets, 0.5), 1u);
  // Rank 100 is the top of bucket 10.
  EXPECT_EQ(obs::Histogram::percentile_from_buckets(buckets, 1.0), 1023u);
}

// --- SIGUSR1 dump-handler hygiene -----------------------------------------
//
// The library must never clobber a handler its embedder registered, and
// must put back what it found when it leaves.  (These manipulate the
// process signal table, so they restore the original disposition on every
// path.)

namespace {
std::atomic<int> g_app_handler_hits{0};
extern "C" void app_sigusr1_handler(int) {
  g_app_handler_hits.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TEST_F(ObsTelemetryTest, DumpHandlerInstallsOverDefaultAndRestores) {
  struct sigaction original {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &original), 0);
  // Force a known-default starting point.
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &dfl, nullptr), 0);

  obs::install_dump_signal_handler();
  EXPECT_TRUE(obs::dump_signal_handler_installed());
  // Idempotent: a second install is a no-op, not a re-save of our own
  // handler as "previous".
  obs::install_dump_signal_handler();
  EXPECT_TRUE(obs::dump_signal_handler_installed());

  obs::uninstall_dump_signal_handler();
  EXPECT_FALSE(obs::dump_signal_handler_installed());
  struct sigaction after {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &after), 0);
  EXPECT_EQ(after.sa_handler, SIG_DFL) << "previous disposition not restored";

  ASSERT_EQ(sigaction(SIGUSR1, &original, nullptr), 0);
}

TEST_F(ObsTelemetryTest, DumpHandlerNeverClobbersAnApplicationHandler) {
  struct sigaction original {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &original), 0);
  struct sigaction app {};
  app.sa_handler = &app_sigusr1_handler;
  sigemptyset(&app.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &app, nullptr), 0);

  // The old bug: std::signal unconditionally, silently disconnecting the
  // application's handler.  Now installation must be refused.
  obs::install_dump_signal_handler();
  EXPECT_FALSE(obs::dump_signal_handler_installed());

  const int before = g_app_handler_hits.load(std::memory_order_relaxed);
  ASSERT_EQ(raise(SIGUSR1), 0);
  EXPECT_EQ(g_app_handler_hits.load(std::memory_order_relaxed), before + 1)
      << "application handler no longer receives SIGUSR1";

  // Uninstall with nothing of ours installed is a no-op and leaves the
  // application handler alone.
  obs::uninstall_dump_signal_handler();
  struct sigaction after {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &after), 0);
  EXPECT_EQ(after.sa_handler, &app_sigusr1_handler);

  ASSERT_EQ(sigaction(SIGUSR1, &original, nullptr), 0);
}

TEST_F(ObsTelemetryTest, UninstallLeavesALaterApplicationHandlerAlone) {
  struct sigaction original {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &original), 0);
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &dfl, nullptr), 0);

  obs::install_dump_signal_handler();
  ASSERT_TRUE(obs::dump_signal_handler_installed());
  // The application replaces our handler after us; uninstall must not
  // stomp it with the stale saved disposition.
  struct sigaction app {};
  app.sa_handler = &app_sigusr1_handler;
  sigemptyset(&app.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &app, nullptr), 0);

  obs::uninstall_dump_signal_handler();
  struct sigaction after {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &after), 0);
  EXPECT_EQ(after.sa_handler, &app_sigusr1_handler);

  ASSERT_EQ(sigaction(SIGUSR1, &original, nullptr), 0);
}

TEST_F(ObsTelemetryTest, InstalledHandlerArmsTheDumpFlag) {
  struct sigaction original {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &original), 0);
  struct sigaction dfl {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &dfl, nullptr), 0);

  obs::install_dump_signal_handler();
  ASSERT_TRUE(obs::dump_signal_handler_installed());
  const std::string prefix = ::testing::TempDir() + "tdp_sig_dump";
  ::setenv("TDP_OBS_DUMP", prefix.c_str(), 1);
  ASSERT_EQ(raise(SIGUSR1), 0);
  EXPECT_TRUE(obs::service_flight_dump_request());
  std::ifstream trace(prefix + ".trace.json");
  EXPECT_TRUE(trace.good());
  ::unsetenv("TDP_OBS_DUMP");

  obs::uninstall_dump_signal_handler();
  ASSERT_EQ(sigaction(SIGUSR1, &original, nullptr), 0);
}

}  // namespace
