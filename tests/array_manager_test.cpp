// Tests for the array manager: the distributed-array library procedures of
// §4.2 and the runtime behaviour of §5.1.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>

#include "dist/array_manager.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"

namespace tdp::dist {
namespace {

class ArrayManagerTest : public ::testing::Test {
 protected:
  ArrayManagerTest() : machine_(8), am_(machine_) {}

  ArrayId make_vector(int n, const std::vector<int>& procs,
                      ElemType type = ElemType::Float64) {
    ArrayId id;
    EXPECT_EQ(am_.create_array(0, type, {n}, procs,
                               {DimSpec::block()}, BorderSpec::none(),
                               Indexing::RowMajor, id),
              Status::Ok);
    return id;
  }

  vp::Machine machine_;
  ArrayManager am_;
};

TEST_F(ArrayManagerTest, CreateAssignsUniqueGlobalIds) {
  // §4.1.3: the ID is {creating processor, per-processor counter}.
  ArrayId a = make_vector(8, util::iota_nodes(4));
  ArrayId b = make_vector(8, util::iota_nodes(4));
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
  EXPECT_EQ(a.creator, 0);
  EXPECT_EQ(b.creator, 0);

  ArrayId c;
  ASSERT_EQ(am_.create_array(3, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()}, BorderSpec::none(),
                             Indexing::RowMajor, c),
            Status::Ok);
  EXPECT_EQ(c.creator, 3);
}

TEST_F(ArrayManagerTest, WriteThenReadRoundTrips) {
  ArrayId id = make_vector(16, util::iota_nodes(4));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(am_.write_element(0, id, std::vector<int>{i},
                                Scalar{static_cast<double>(i) * 1.5}),
              Status::Ok);
  }
  for (int i = 0; i < 16; ++i) {
    Scalar v;
    ASSERT_EQ(am_.read_element(0, id, std::vector<int>{i}, v), Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(v), i * 1.5);
  }
}

TEST_F(ArrayManagerTest, ReadsAreIdenticalOnEveryEligibleProcessor) {
  // §3.2.1.5: a request to read the first element returns the same value no
  // matter where it is executed (owner processors or the creator).
  ArrayId id = make_vector(8, util::node_array(2, 1, 4));  // owners 2..5
  ASSERT_EQ(am_.write_element(2, id, std::vector<int>{0}, Scalar{3.25}),
            Status::Ok);
  for (int on : {0 /* creator */, 2, 3, 4, 5}) {
    Scalar v;
    ASSERT_EQ(am_.read_element(on, id, std::vector<int>{0}, v), Status::Ok)
        << "on processor " << on;
    EXPECT_DOUBLE_EQ(std::get<double>(v), 3.25);
  }
}

TEST_F(ArrayManagerTest, NonParticipantProcessorGetsNotFound) {
  ArrayId id = make_vector(8, util::node_array(2, 1, 4));
  Scalar v;
  EXPECT_EQ(am_.read_element(7, id, std::vector<int>{0}, v),
            Status::NotFound);
}

TEST_F(ArrayManagerTest, IntArraysCoerceValues) {
  ArrayId id = make_vector(8, util::iota_nodes(4), ElemType::Int32);
  ASSERT_EQ(am_.write_element(0, id, std::vector<int>{3}, Scalar{7.9}),
            Status::Ok);
  Scalar v;
  ASSERT_EQ(am_.read_element(0, id, std::vector<int>{3}, v), Status::Ok);
  EXPECT_EQ(std::get<int>(v), 7);
}

TEST_F(ArrayManagerTest, OutOfRangeIndicesAreInvalid) {
  ArrayId id = make_vector(8, util::iota_nodes(4));
  Scalar v;
  EXPECT_EQ(am_.read_element(0, id, std::vector<int>{8}, v), Status::Invalid);
  EXPECT_EQ(am_.read_element(0, id, std::vector<int>{-1}, v),
            Status::Invalid);
  EXPECT_EQ(am_.read_element(0, id, std::vector<int>{0, 0}, v),
            Status::Invalid);
}

TEST_F(ArrayManagerTest, FreeInvalidatesEverywhere) {
  ArrayId id = make_vector(8, util::iota_nodes(4));
  ASSERT_EQ(am_.free_array(0, id), Status::Ok);
  Scalar v;
  EXPECT_EQ(am_.read_element(0, id, std::vector<int>{0}, v),
            Status::NotFound);
  EXPECT_EQ(am_.write_element(1, id, std::vector<int>{0}, Scalar{1.0}),
            Status::NotFound);
  EXPECT_EQ(am_.free_array(0, id), Status::NotFound);
  LocalSectionView view;
  EXPECT_EQ(am_.find_local(1, id, view), Status::NotFound);
}

TEST_F(ArrayManagerTest, FreeReleasesStorage) {
  const std::size_t before = am_.local_bytes_on(1);
  ArrayId id = make_vector(1024, util::iota_nodes(4));
  EXPECT_GT(am_.local_bytes_on(1), before);
  ASSERT_EQ(am_.free_array(0, id), Status::Ok);
  EXPECT_EQ(am_.local_bytes_on(1), before);
}

TEST_F(ArrayManagerTest, FindLocalOnlyOnOwners) {
  ArrayId id = make_vector(8, util::node_array(4, 1, 4));  // owners 4..7
  LocalSectionView view;
  EXPECT_EQ(am_.find_local(4, id, view), Status::Ok);
  EXPECT_TRUE(view.valid());
  EXPECT_EQ(view.interior_dims, (std::vector<int>{2}));
  // The creator holds metadata but no section (§5.1.4).
  EXPECT_EQ(am_.find_local(0, id, view), Status::NotFound);
}

TEST_F(ArrayManagerTest, LocalSectionsSeeElementWrites) {
  // The local section handed to a data-parallel program is the same storage
  // the global write_element path updates (fig 3.9).
  ArrayId id = make_vector(8, util::iota_nodes(4));
  ASSERT_EQ(am_.write_element(0, id, std::vector<int>{5}, Scalar{42.0}),
            Status::Ok);
  // Element 5 lives on owner rank 2 (local sections of 2), local index 1.
  LocalSectionView view;
  ASSERT_EQ(am_.find_local(2, id, view), Status::Ok);
  EXPECT_DOUBLE_EQ(view.f64()[1], 42.0);
  view.f64()[1] = 43.0;
  Scalar v;
  ASSERT_EQ(am_.read_element(0, id, std::vector<int>{5}, v), Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 43.0);
}

TEST_F(ArrayManagerTest, FindInfoReportsAllFields) {
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {8, 4},
                             util::iota_nodes(8),
                             {DimSpec::block_n(4), DimSpec::block_n(2)},
                             BorderSpec::exact({1, 1, 0, 0}),
                             Indexing::RowMajor, id),
            Status::Ok);
  InfoValue v;
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Type, v), Status::Ok);
  EXPECT_EQ(std::get<ElemType>(v), ElemType::Float64);
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Dimensions, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{8, 4}));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Processors, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), util::iota_nodes(8));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::GridDimensions, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{4, 2}));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::LocalDimensions, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{2, 2}));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Borders, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{1, 1, 0, 0}));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::LocalDimensionsPlus, v),
            Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{4, 2}));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::IndexingType, v), Status::Ok);
  EXPECT_EQ(std::get<Indexing>(v), Indexing::RowMajor);
  ASSERT_EQ(am_.find_info(0, id, InfoKind::GridIndexingType, v), Status::Ok);
  EXPECT_EQ(std::get<Indexing>(v), Indexing::RowMajor);
}

TEST_F(ArrayManagerTest, Figure38RowMajorDistribution) {
  // Figure 3.8: 4x4 array over processors (0,2,4,6).  Row-major: global
  // (0,2) goes to processor 2; column-major: to processor 4.
  for (auto [indexing, expected_owner] :
       {std::pair{Indexing::RowMajor, 2}, std::pair{Indexing::ColumnMajor, 4}}) {
    ArrayId id;
    ASSERT_EQ(am_.create_array(0, ElemType::Float64, {4, 4},
                               util::node_array(0, 2, 4),
                               {DimSpec::block(), DimSpec::block()},
                               BorderSpec::none(), indexing, id),
              Status::Ok);
    ASSERT_EQ(
        am_.write_element(0, id, std::vector<int>{0, 2}, Scalar{6.5}),
        Status::Ok);
    // Exactly one owner's local section holds the value.
    int found_on = -1;
    for (int p : {0, 2, 4, 6}) {
      LocalSectionView view;
      ASSERT_EQ(am_.find_local(p, id, view), Status::Ok);
      for (long long i = 0; i < view.interior_count(); ++i) {
        if (view.f64()[i] == 6.5) {
          EXPECT_EQ(found_on, -1);
          found_on = p;
        }
      }
    }
    EXPECT_EQ(found_on, expected_owner)
        << "indexing " << to_string(indexing);
    am_.free_array(0, id);
  }
}

TEST_F(ArrayManagerTest, EveryGlobalElementLandsInExactlyOneSection) {
  ArrayId id;
  ASSERT_EQ(am_.create_array(1, ElemType::Float64, {8, 6},
                             util::iota_nodes(8),
                             {DimSpec::block_n(4), DimSpec::block_n(2)},
                             BorderSpec::none(), Indexing::ColumnMajor, id),
            Status::Ok);
  int counter = 0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 6; ++j) {
      ASSERT_EQ(am_.write_element(1, id, std::vector<int>{i, j},
                                  Scalar{static_cast<double>(++counter)}),
                Status::Ok);
    }
  }
  std::multiset<double> values;
  for (int p = 0; p < 8; ++p) {
    LocalSectionView view;
    ASSERT_EQ(am_.find_local(p, id, view), Status::Ok);
    for (long long i = 0; i < view.interior_count(); ++i) {
      values.insert(view.f64()[i]);
    }
  }
  EXPECT_EQ(values.size(), 48u);
  for (int v = 1; v <= 48; ++v) {
    EXPECT_EQ(values.count(static_cast<double>(v)), 1u) << v;
  }
}

TEST_F(ArrayManagerTest, BordersAreInvisibleToElementAccess) {
  // §3.2.1.3: task-parallel programs access only the interior; borders are
  // for the data-parallel notation.
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()}, BorderSpec::exact({2, 2}),
                             Indexing::RowMajor, id),
            Status::Ok);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(am_.write_element(0, id, std::vector<int>{i},
                                Scalar{static_cast<double>(i)}),
              Status::Ok);
  }
  LocalSectionView view;
  ASSERT_EQ(am_.find_local(1, id, view), Status::Ok);
  EXPECT_EQ(view.dims_plus, (std::vector<int>{6}));
  // Interior of owner 1 holds globals 2,3 at storage offsets 2,3.
  EXPECT_DOUBLE_EQ(view.f64()[2], 2.0);
  EXPECT_DOUBLE_EQ(view.f64()[3], 3.0);
  // Border cells stay zero-initialised.
  EXPECT_DOUBLE_EQ(view.f64()[0], 0.0);
  EXPECT_DOUBLE_EQ(view.f64()[5], 0.0);
}

TEST_F(ArrayManagerTest, VerifyMatchingBordersIsANoOp) {
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()}, BorderSpec::exact({2, 2}),
                             Indexing::RowMajor, id),
            Status::Ok);
  EXPECT_EQ(am_.verify_array(0, id, 1, BorderSpec::exact({2, 2}),
                             Indexing::RowMajor),
            Status::Ok);
  InfoValue v;
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Borders, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{2, 2}));
}

TEST_F(ArrayManagerTest, VerifyReallocatesAndPreservesInterior) {
  // §4.2.7: mismatching borders cause reallocation + interior copy.
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()}, BorderSpec::exact({2, 2}),
                             Indexing::RowMajor, id),
            Status::Ok);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(am_.write_element(0, id, std::vector<int>{i},
                                Scalar{i + 0.5}),
              Status::Ok);
  }
  ASSERT_EQ(am_.verify_array(0, id, 1, BorderSpec::exact({1, 1}),
                             Indexing::RowMajor),
            Status::Ok);
  InfoValue v;
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Borders, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{1, 1}));
  ASSERT_EQ(am_.find_info(0, id, InfoKind::LocalDimensionsPlus, v),
            Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{4}));
  for (int i = 0; i < 8; ++i) {
    Scalar s;
    ASSERT_EQ(am_.read_element(0, id, std::vector<int>{i}, s), Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(s), i + 0.5) << i;
  }
}

TEST_F(ArrayManagerTest, VerifyRejectsIndexingMismatch) {
  // §4.2.7 example: a verify with the wrong indexing type is
  // STATUS_INVALID.
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {8, 8},
                             util::iota_nodes(4),
                             {DimSpec::block(), DimSpec::block()},
                             BorderSpec::exact({2, 2, 2, 2}),
                             Indexing::RowMajor, id),
            Status::Ok);
  EXPECT_EQ(am_.verify_array(0, id, 2, BorderSpec::exact({2, 2, 2, 2}),
                             Indexing::ColumnMajor),
            Status::Invalid);
  EXPECT_EQ(am_.verify_array(0, id, 1, BorderSpec::exact({2, 2}),
                             Indexing::RowMajor),
            Status::Invalid);
}

TEST_F(ArrayManagerTest, ForeignBordersConsultTheProvider) {
  // §3.2.1.3 / §4.2.1: border sizes supplied at runtime by the program the
  // array will be passed to.
  int asked_parm = -1;
  am_.set_border_lookup([&](const std::string& program, int parm_num,
                            int ndims, std::vector<int>& out) {
    EXPECT_EQ(program, "fpgm");
    asked_parm = parm_num;
    out.assign(static_cast<std::size_t>(2 * ndims), parm_num);
    return Status::Ok;
  });
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()},
                             BorderSpec::foreign("fpgm", 2),
                             Indexing::RowMajor, id),
            Status::Ok);
  EXPECT_EQ(asked_parm, 2);
  InfoValue v;
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Borders, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{2, 2}));
}

TEST_F(ArrayManagerTest, ForeignBordersWithoutProviderIsInvalid) {
  ArrayId id;
  EXPECT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()},
                             BorderSpec::foreign("nobody", 1),
                             Indexing::RowMajor, id),
            Status::Invalid);
}

TEST_F(ArrayManagerTest, ReadSectionSnapshotsInteriorAsPayload) {
  // 16 elements blocked over 4 owners: each local section holds 4 doubles.
  ArrayId id = make_vector(16, util::iota_nodes(4));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(am_.write_element(0, id, std::vector<int>{i},
                                Scalar{static_cast<double>(i)}),
              Status::Ok);
  }
  for (int owner = 0; owner < 4; ++owner) {
    vp::Payload snap;
    ASSERT_EQ(am_.read_section(owner, id, snap), Status::Ok);
    ASSERT_EQ(snap.size(), 4 * sizeof(double));
    const double* vals = reinterpret_cast<const double*>(snap.data());
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(vals[k], static_cast<double>(owner * 4 + k));
    }
    // The snapshot is a refcounted handle: shipping it to more consumers
    // bumps the count, never copies the buffer.
    const vp::Payload shared = snap;
    EXPECT_EQ(shared.use_count(), 2);
    EXPECT_EQ(shared.data(), snap.data());
  }
}

TEST_F(ArrayManagerTest, WriteSectionOverwritesInteriorAndValidatesSize) {
  ArrayId id = make_vector(16, util::iota_nodes(4));
  std::vector<std::byte> bytes(4 * sizeof(double));
  double vals[4] = {1.5, 2.5, 3.5, 4.5};
  std::memcpy(bytes.data(), vals, sizeof(vals));
  ASSERT_EQ(am_.write_section(2, id, vp::Payload::take(std::move(bytes))),
            Status::Ok);
  for (int k = 0; k < 4; ++k) {
    Scalar out;
    ASSERT_EQ(am_.read_element(0, id, std::vector<int>{8 + k}, out),
              Status::Ok);
    EXPECT_EQ(scalar_to_double(out), vals[k]);
  }
  // Wrong size: rejected, nothing written.
  EXPECT_EQ(am_.write_section(2, id, vp::Payload::zeros(7)), Status::Invalid);
  // Non-owner (creator without a section) and unknown arrays: NotFound.
  vp::Payload snap;
  EXPECT_EQ(am_.read_section(5, id, snap), Status::NotFound);
  EXPECT_EQ(am_.write_section(5, id, vp::Payload::zeros(4 * sizeof(double))),
            Status::NotFound);
}

TEST_F(ArrayManagerTest, SectionRoundTripStripsBorders) {
  // Borders of one element on each side: the section's storage is larger
  // than its interior, so read/write_section must walk the interior only.
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Int32, {8}, util::iota_nodes(2),
                             {DimSpec::block()}, BorderSpec::exact({1, 1}),
                             Indexing::RowMajor, id),
            Status::Ok);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(am_.write_element(0, id, std::vector<int>{i}, Scalar{i * 11}),
              Status::Ok);
  }
  vp::Payload snap;
  ASSERT_EQ(am_.read_section(1, id, snap), Status::Ok);
  ASSERT_EQ(snap.size(), 4 * sizeof(int));
  const int* vals = reinterpret_cast<const int*>(snap.data());
  for (int k = 0; k < 4; ++k) EXPECT_EQ(vals[k], (4 + k) * 11);

  // Round-trip: write proc 1's snapshot into proc 0's section.
  ASSERT_EQ(am_.write_section(0, id, snap), Status::Ok);
  for (int k = 0; k < 4; ++k) {
    Scalar out;
    ASSERT_EQ(am_.read_element(0, id, std::vector<int>{k}, out), Status::Ok);
    EXPECT_EQ(scalar_to_int(out), (4 + k) * 11);
  }
}

TEST_F(ArrayManagerTest, CreateValidatesItsParameters) {
  ArrayId id;
  // Bad processor number.
  EXPECT_EQ(am_.create_array(0, ElemType::Float64, {8}, {0, 99},
                             {DimSpec::block()}, BorderSpec::none(),
                             Indexing::RowMajor, id),
            Status::Invalid);
  // Duplicate owners.
  EXPECT_EQ(am_.create_array(0, ElemType::Float64, {8}, {1, 1},
                             {DimSpec::block()}, BorderSpec::none(),
                             Indexing::RowMajor, id),
            Status::Invalid);
  // Distribution arity mismatch.
  EXPECT_EQ(am_.create_array(0, ElemType::Float64, {8, 8},
                             util::iota_nodes(4), {DimSpec::block()},
                             BorderSpec::none(), Indexing::RowMajor, id),
            Status::Invalid);
  // Bad border vector length.
  EXPECT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()}, BorderSpec::exact({1}),
                             Indexing::RowMajor, id),
            Status::Invalid);
  // Negative border.
  EXPECT_EQ(am_.create_array(0, ElemType::Float64, {8}, util::iota_nodes(4),
                             {DimSpec::block()}, BorderSpec::exact({-1, 0}),
                             Indexing::RowMajor, id),
            Status::Invalid);
}

TEST_F(ArrayManagerTest, GridSmallerThanProcessorListUsesPrefix) {
  // §3.2.1.1: grid product may be less than the processor count; sections
  // go to the first grid-product processors of the list.
  ArrayId id;
  ASSERT_EQ(am_.create_array(0, ElemType::Float64, {4},
                             util::node_array(5, -1, 4),  // 5,4,3,2
                             {DimSpec::block_n(2)}, BorderSpec::none(),
                             Indexing::RowMajor, id),
            Status::Ok);
  InfoValue v;
  ASSERT_EQ(am_.find_info(0, id, InfoKind::Processors, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{5, 4}));
  LocalSectionView view;
  EXPECT_EQ(am_.find_local(5, id, view), Status::Ok);
  EXPECT_EQ(am_.find_local(3, id, view), Status::NotFound);
}

TEST_F(ArrayManagerTest, TraceHookReportsEveryOperation) {
  // §B.3: the am_debug version produces a trace message per operation.
  std::vector<std::string> ops;
  std::vector<Status> stats;
  am_.set_trace([&](std::string_view op, int on_proc, ArrayId id, Status st) {
    (void)on_proc;
    (void)id;
    ops.emplace_back(op);
    stats.push_back(st);
  });
  ArrayId id = make_vector(8, util::iota_nodes(4));
  Scalar v;
  am_.write_element(0, id, std::vector<int>{0}, Scalar{1.0});
  am_.read_element(0, id, std::vector<int>{0}, v);
  LocalSectionView view;
  am_.find_local(1, id, view);
  InfoValue info;
  am_.find_info(0, id, InfoKind::Type, info);
  am_.verify_array(0, id, 1, BorderSpec::none(), Indexing::RowMajor);
  am_.free_array(0, id);
  am_.free_array(0, id);  // NotFound, still traced

  EXPECT_EQ(ops, (std::vector<std::string>{
                     "create_array", "write_element", "read_element",
                     "find_local", "find_info", "verify_array", "free_array",
                     "free_array"}));
  EXPECT_EQ(stats.back(), Status::NotFound);
  for (std::size_t i = 0; i + 1 < stats.size(); ++i) {
    EXPECT_EQ(stats[i], Status::Ok) << ops[i];
  }
  // Returning to the silent version stops tracing.
  am_.set_trace(nullptr);
  ArrayId id2 = make_vector(8, util::iota_nodes(4));
  (void)id2;
  EXPECT_EQ(ops.size(), 8u);
}

TEST_F(ArrayManagerTest, ConcurrentCreateFreeFromManyProcessors) {
  // Thread-safety of the manager under concurrent global requests issued
  // from different processors (each array-manager process serves its own
  // node, §5.1.1).
  pcn::ProcessGroup group;
  std::atomic<int> failures{0};
  for (int p = 0; p < 8; ++p) {
    group.spawn_on(machine_, p, [&, p] {
      for (int round = 0; round < 20; ++round) {
        ArrayId id;
        if (!ok(am_.create_array(p, ElemType::Float64, {16},
                                 util::iota_nodes(4), {DimSpec::block()},
                                 BorderSpec::none(), Indexing::RowMajor,
                                 id))) {
          ++failures;
          continue;
        }
        Scalar v;
        if (!ok(am_.write_element(p, id, std::vector<int>{round % 16},
                                  Scalar{1.0 * round}))) {
          ++failures;
        }
        if (!ok(am_.read_element(p, id, std::vector<int>{round % 16}, v)) ||
            std::get<double>(v) != 1.0 * round) {
          ++failures;
        }
        if (!ok(am_.free_array(p, id))) ++failures;
      }
    });
  }
  group.join();
  EXPECT_EQ(failures.load(), 0);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(am_.records_on(p), 0u) << p;
  }
}

struct SweepCase {
  std::vector<int> dims;
  std::vector<DimSpec> distrib;
  Indexing indexing;
  int nprocs;
};

class ElementSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ElementSweep, WriteReadRoundTripsEverywhere) {
  const SweepCase& c = GetParam();
  vp::Machine machine(c.nprocs);
  ArrayManager am(machine);
  ArrayId id;
  ASSERT_EQ(am.create_array(0, ElemType::Float64, c.dims,
                            util::iota_nodes(c.nprocs), c.distrib,
                            BorderSpec::none(), c.indexing, id),
            Status::Ok);
  const long long n = element_count(c.dims);
  for (long long lin = 0; lin < n; ++lin) {
    std::vector<int> idx = delinearize(lin, c.dims, c.indexing);
    ASSERT_EQ(am.write_element(0, id, idx,
                               Scalar{static_cast<double>(lin) + 0.25}),
              Status::Ok);
  }
  for (long long lin = 0; lin < n; ++lin) {
    std::vector<int> idx = delinearize(lin, c.dims, c.indexing);
    Scalar v;
    ASSERT_EQ(am.read_element(0, id, idx, v), Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(v), static_cast<double>(lin) + 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, ElementSweep,
    ::testing::Values(
        SweepCase{{16}, {DimSpec::block()}, Indexing::RowMajor, 4},
        SweepCase{{12, 8},
                  {DimSpec::block_n(3), DimSpec::block_n(2)},
                  Indexing::RowMajor,
                  6},
        SweepCase{{12, 8},
                  {DimSpec::block_n(3), DimSpec::block_n(2)},
                  Indexing::ColumnMajor,
                  6},
        SweepCase{{8, 6}, {DimSpec::block(), DimSpec::star()},
                  Indexing::RowMajor, 4},
        SweepCase{{4, 4, 4},
                  {DimSpec::block(), DimSpec::block(), DimSpec::block()},
                  Indexing::ColumnMajor,
                  8}));

}  // namespace
}  // namespace tdp::dist
