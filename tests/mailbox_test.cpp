// Regression tests for the indexed selective-receive mailbox: post-after-close
// semantics, the deadline-vs-delivery race, targeted wakeups, and FIFO within
// a (cls, comm, tag, src) stream.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "vp/mailbox.hpp"

namespace tdp::vp {
namespace {

Message make(MessageClass cls, std::uint64_t comm, int tag, int src,
             std::vector<std::byte> payload = {}) {
  Message m;
  m.cls = cls;
  m.comm = comm;
  m.tag = tag;
  m.src = src;
  m.payload = Payload::take(std::move(payload));
  return m;
}

// Restores the TDP_MAILBOX selection even when an assertion fails mid-test.
struct ModeGuard {
  explicit ModeGuard(MailboxMode m) { force_mailbox_mode(m); }
  ~ModeGuard() { unforce_mailbox_mode(); }
};

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

// Polls describe_wait() until `needle` appears, so tests can wait for
// receiver threads to actually block without sleeping blind.
bool wait_for_waiters(const Mailbox& mb, const std::string& needle) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (mb.describe_wait().find(needle) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(MailboxClose, PostAfterCloseDropsMessageAndCounts) {
  Mailbox mb;
  mb.close();
  const std::uint64_t before = counter_value("mailbox.post_after_close");
  mb.post(make(MessageClass::DataParallel, 1, 7, 0, {std::byte{1}}));
  // The message must be dropped, not queued: a sender racing teardown must
  // never leave a payload alive in a mailbox nobody will ever drain.
  EXPECT_EQ(mb.pending(), 0u);
  EXPECT_EQ(counter_value("mailbox.post_after_close"), before + 1);
  EXPECT_THROW(mb.receive(MessageClass::DataParallel, 1, 7, 0),
               MailboxClosed);
}

TEST(MailboxDeadline, QueuedMessageBeatsExpiredDeadline) {
  Mailbox mb;
  mb.post(make(MessageClass::DataParallel, 1, 3, 0, {std::byte{9}}));
  // Even with an effectively already-expired deadline, a matching message
  // sitting in the queue must be delivered — delivery wins the race.
  Message m = mb.receive_for(MessageClass::DataParallel, 1, 3, 0, 1);
  EXPECT_EQ(m.payload.bytes()[0], std::byte{9});
}

TEST(MailboxDeadline, PostRacingTimeoutNeverLosesTheMessage) {
  // Aim the post squarely at the deadline.  Whatever side of the race the
  // post lands on, the message must be accounted for: either the receiver
  // delivered it, or it threw ReceiveTimeout and the message is still
  // pending (the post landed after the final scan).  A lost message —
  // timeout thrown, mailbox empty — is the regression this test pins.
  for (int i = 0; i < 25; ++i) {
    Mailbox mb;
    std::thread poster([&mb] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      mb.post(make(MessageClass::DataParallel, 2, 4, 1, {std::byte{7}}));
    });
    bool delivered = true;
    try {
      Message m = mb.receive_for(MessageClass::DataParallel, 2, 4, 1, 10);
      EXPECT_EQ(m.payload.bytes()[0], std::byte{7});
    } catch (const ReceiveTimeout&) {
      delivered = false;
    }
    poster.join();
    if (delivered) {
      EXPECT_EQ(mb.pending(), 0u);
    } else {
      ASSERT_EQ(mb.pending(), 1u) << "message lost in the deadline race";
      Message m = mb.receive(MessageClass::DataParallel, 2, 4, 1);
      EXPECT_EQ(m.payload.bytes()[0], std::byte{7});
    }
  }
}

TEST(MailboxWakeup, PostWakesOnlyTheMatchingWaiter) {
  ModeGuard guard(MailboxMode::Indexed);
  Mailbox mb;
  ASSERT_EQ(mb.mode(), MailboxMode::Indexed);
  std::atomic<bool> got_tag1{false};
  std::atomic<bool> got_tag2{false};
  std::thread a([&] {
    (void)mb.receive(MessageClass::DataParallel, 1, 1, -1);
    got_tag1.store(true);
  });
  std::thread b([&] {
    (void)mb.receive(MessageClass::DataParallel, 1, 2, -1);
    got_tag2.store(true);
  });
  ASSERT_TRUE(wait_for_waiters(mb, "2 waiting"));

  const std::uint64_t wakes_before = counter_value("mailbox.wakeups");
  mb.post(make(MessageClass::DataParallel, 1, 2, 0));
  b.join();
  EXPECT_TRUE(got_tag2.load());
  // The tag-1 waiter must not have been disturbed: no delivery, and — the
  // point of the indexed path — no wakeup either.  One post, one wake.
  EXPECT_FALSE(got_tag1.load());
  EXPECT_EQ(counter_value("mailbox.wakeups"), wakes_before + 1);

  mb.post(make(MessageClass::DataParallel, 1, 1, 0));
  a.join();
  EXPECT_TRUE(got_tag1.load());
}

TEST(MailboxFifo, IndexedPathPreservesFifoWithinStream) {
  ModeGuard guard(MailboxMode::Indexed);
  Mailbox mb;
  ASSERT_EQ(mb.mode(), MailboxMode::Indexed);
  // Interleave two streams that share a bucket key (cls, comm, tag) but
  // differ in src, plus a third stream on another tag, so the FIFO claim is
  // tested per-stream rather than on the whole queue.
  for (int i = 0; i < 16; ++i) {
    mb.post(make(MessageClass::DataParallel, 1, 5, 2,
                 {std::byte{static_cast<unsigned char>(i)}}));
    mb.post(make(MessageClass::DataParallel, 1, 5, 3,
                 {std::byte{static_cast<unsigned char>(100 + i)}}));
    mb.post(make(MessageClass::TaskParallel, 1, 9, 2,
                 {std::byte{static_cast<unsigned char>(200 + i)}}));
  }
  for (int i = 0; i < 16; ++i) {
    Message m = mb.receive(MessageClass::DataParallel, 1, 5, 3);
    EXPECT_EQ(m.payload.bytes()[0],
              std::byte{static_cast<unsigned char>(100 + i)});
  }
  for (int i = 0; i < 16; ++i) {
    Message m = mb.receive(MessageClass::DataParallel, 1, 5, 2);
    EXPECT_EQ(m.payload.bytes()[0],
              std::byte{static_cast<unsigned char>(i)});
  }
  // A wildcard-src receive still sees the remaining stream in arrival order.
  for (int i = 0; i < 16; ++i) {
    Message m = mb.receive(MessageClass::TaskParallel, 1, 9, -1);
    EXPECT_EQ(m.payload.bytes()[0],
              std::byte{static_cast<unsigned char>(200 + i)});
  }
  EXPECT_EQ(mb.pending(), 0u);
}

}  // namespace
}  // namespace tdp::vp
