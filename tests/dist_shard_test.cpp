// Tests for the sharded owner-table layer of the array manager: the
// power-of-two shard map, uneven (ceil-div) blocks, shard migration with
// epoch bumps, stale-owner forwarding through the server, the load-driven
// repartitioner, the pin barrier, and the executable retry-backoff
// contract of dist::RetryPolicy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "dist/array_manager.hpp"
#include "dist/array_server.hpp"
#include "dist/layout.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"

namespace tdp {
namespace {

// ------------------------------------------------------- Retry backoff ----

TEST(RetryBackoff, ExponentialFromBaseMatchesDocContract) {
  dist::RetryPolicy policy;
  policy.backoff_ms = 10;
  policy.max_backoff_ms = 100000;
  policy.jitter_seed = 0;
  // Retry k (1-based) sleeps backoff_ms << (k - 1): 10, 20, 40, 80...
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 1), 10u);
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 2), 20u);
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 3), 40u);
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 4), 80u);
}

TEST(RetryBackoff, CapsAtMaxBackoff) {
  dist::RetryPolicy policy;
  policy.backoff_ms = 10;
  policy.max_backoff_ms = 25;
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 1), 10u);
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 2), 20u);
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 3), 25u);   // 40 -> cap
  EXPECT_EQ(dist::retry_backoff_ms(policy, 0, 10), 25u);  // stays capped
}

TEST(RetryBackoff, DeepAttemptsCannotOverflowTheShift) {
  dist::RetryPolicy policy;
  policy.backoff_ms = 1000;
  policy.max_backoff_ms = 2000;
  // attempt numbers whose shift would overflow 64 bits must land on the
  // cap, never on a wrapped-around tiny (or huge) delay.
  for (int attempt : {60, 63, 64, 65, 100, 1000}) {
    EXPECT_EQ(dist::retry_backoff_ms(policy, 0, attempt), 2000u)
        << "attempt " << attempt;
  }
}

TEST(RetryBackoff, ShiftClampSaturatesWhenTheCapIsDisabled) {
  dist::RetryPolicy policy;
  policy.backoff_ms = 1000;
  policy.max_backoff_ms = 0;  // cap disabled
  // A clamped shift must saturate to a huge delay, not fall to 0: with the
  // cap disabled a zero delay would turn the deepest retries — the ones
  // backoff exists to pace — into a hot spin.
  for (int attempt : {63, 64, 100, 1000}) {
    const std::uint64_t d = dist::retry_backoff_ms(policy, 0, attempt);
    EXPECT_GT(d, dist::retry_backoff_ms(policy, 0, 10)) << "attempt "
                                                        << attempt;
  }
}

TEST(RetryBackoff, JitterStaysInUpperHalfAndIsDeterministic) {
  dist::RetryPolicy policy;
  policy.backoff_ms = 64;
  policy.max_backoff_ms = 100000;
  policy.jitter_seed = 7;
  bool saw_non_full = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    for (int proc = 0; proc < 8; ++proc) {
      const std::uint64_t full = std::uint64_t{64} << (attempt - 1);
      const std::uint64_t d = dist::retry_backoff_ms(policy, proc, attempt);
      EXPECT_GE(d, full / 2);
      EXPECT_LE(d, full);
      if (d != full) saw_non_full = true;
      // Deterministic: the same (seed, proc, attempt) gives the same delay
      // on every call — colliding requesters desynchronise identically on
      // every run.
      EXPECT_EQ(d, dist::retry_backoff_ms(policy, proc, attempt));
    }
  }
  EXPECT_TRUE(saw_non_full);  // jitter actually engaged somewhere
  // Different procs draw different delays somewhere in the sweep.
  bool differs = false;
  for (int attempt = 1; attempt <= 6 && !differs; ++attempt) {
    differs = dist::retry_backoff_ms(policy, 0, attempt) !=
              dist::retry_backoff_ms(policy, 1, attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryBackoff, ZeroSeedIsFullDeterministicDelay) {
  dist::RetryPolicy policy;
  policy.backoff_ms = 8;
  policy.jitter_seed = 0;
  EXPECT_EQ(dist::retry_backoff_ms(policy, 3, 4), 64u);
}

// ----------------------------------------------------------- Shard map ----

TEST(ShardMap, PrefixPlacementWhenCellsFitThePool) {
  const dist::ShardMap m = dist::ShardMap::initial(3, {4, 1, 7, 2});
  EXPECT_EQ(m.cells, 3);
  EXPECT_EQ(m.epoch, 0u);
  EXPECT_EQ(m.owners.size(), 4u);  // next power of two >= 3
  EXPECT_EQ(m.owner_of(0), 4);
  EXPECT_EQ(m.owner_of(1), 1);
  EXPECT_EQ(m.owner_of(2), 7);
}

TEST(ShardMap, RoundRobinWhenOversharded) {
  const dist::ShardMap m = dist::ShardMap::initial(6, {0, 1});
  EXPECT_EQ(m.owners.size(), 8u);  // next power of two >= 6
  for (long long s = 0; s < 6; ++s) {
    EXPECT_EQ(m.owner_of(s), static_cast<int>(s % 2)) << "shard " << s;
  }
}

// -------------------------------------------------------- Uneven blocks ----

// 10 elements over 3 processors: ceil(10/3) = 4 gives cells {4, 4, 2}.
// Every element must round-trip and match a dense reference.
TEST(UnevenBlocks, OneDimRoundTripMatchesDenseReference) {
  vp::Machine machine(3);
  dist::ArrayManager am(machine);
  dist::ArrayId id;
  ASSERT_EQ(am.create_array(0, dist::ElemType::Float64, {10},
                            util::iota_nodes(3), {dist::DimSpec::block()},
                            dist::BorderSpec::none(),
                            dist::Indexing::RowMajor, id),
            Status::Ok);

  std::vector<double> dense(10);
  for (int i = 0; i < 10; ++i) {
    dense[static_cast<std::size_t>(i)] = 3.0 * i - 7.5;
    ASSERT_EQ(am.write_element(i % 3, id, std::vector<int>{i},
                               dist::Scalar{3.0 * i - 7.5}),
              Status::Ok);
  }
  for (int i = 0; i < 10; ++i) {
    dist::Scalar v;
    ASSERT_EQ(am.read_element((i + 1) % 3, id, std::vector<int>{i}, v),
              Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(v), dense[static_cast<std::size_t>(i)]);
  }

  // Shard payload sizes equal each cell's actual interior: 4, 4, then the
  // clipped trailing cell of 2.
  const std::vector<int> grid{3};
  for (long long s = 0; s < 3; ++s) {
    const std::vector<int> pos = dist::delinearize(
        s, grid, dist::Indexing::RowMajor);
    const std::vector<int> cell =
        dist::cell_dims(std::vector<int>{10}, grid, pos);
    vp::Payload p;
    ASSERT_EQ(am.read_shard(0, id, s, p), Status::Ok);
    EXPECT_EQ(p.size(), static_cast<std::size_t>(
                            dist::element_count(cell) * sizeof(double)))
        << "shard " << s;
  }
  EXPECT_EQ(am.free_array(2, id), Status::Ok);
}

TEST(UnevenBlocks, TwoDimUnevenGridRoundTrips) {
  // {5, 7} over a 2x2 grid: blocks ceil(5/2)=3, ceil(7/2)=4; trailing cells
  // clip to 2 and 3.
  vp::Machine machine(4);
  dist::ArrayManager am(machine);
  dist::ArrayId id;
  ASSERT_EQ(am.create_array(0, dist::ElemType::Int32, {5, 7},
                            util::iota_nodes(4),
                            {dist::DimSpec::block_n(2),
                             dist::DimSpec::block_n(2)},
                            dist::BorderSpec::none(),
                            dist::Indexing::RowMajor, id),
            Status::Ok);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 7; ++c) {
      ASSERT_EQ(am.write_element(0, id, std::vector<int>{r, c},
                                 dist::Scalar{r * 100 + c}),
                Status::Ok);
    }
  }
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 7; ++c) {
      dist::Scalar v;
      ASSERT_EQ(am.read_element(3, id, std::vector<int>{r, c}, v),
                Status::Ok);
      EXPECT_EQ(std::get<int>(v), r * 100 + c) << r << "," << c;
    }
  }
  // The trailing-corner shard (grid pos {1,1}) holds a 2x3 interior.
  vp::Payload corner;
  ASSERT_EQ(am.read_shard(0, id, 3, corner), Status::Ok);
  EXPECT_EQ(corner.size(), 2u * 3u * sizeof(int));
  EXPECT_EQ(am.free_array(0, id), Status::Ok);
}

// ------------------------------------------------------------ Migration ----

class ShardMigrationTest : public ::testing::Test {
 protected:
  ShardMigrationTest() : machine_(4), am_(machine_), servers_(machine_) {
    dist::install_array_manager(servers_, am_);
    // 16 elements in 8 shards of 2 over 4 processors: oversharded, so every
    // processor starts with two shards.
    EXPECT_EQ(am_.create_array(0, dist::ElemType::Float64, {16},
                               util::iota_nodes(4),
                               {dist::DimSpec::block_n(8)},
                               dist::BorderSpec::none(),
                               dist::Indexing::RowMajor, id_),
              Status::Ok);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(am_.write_element(0, id_, std::vector<int>{i},
                                  dist::Scalar{i + 0.25}),
                Status::Ok);
    }
  }

  void expect_all_elements_readable(int on_proc) {
    for (int i = 0; i < 16; ++i) {
      dist::Scalar v;
      ASSERT_EQ(am_.read_element(on_proc, id_, std::vector<int>{i}, v),
                Status::Ok)
          << "element " << i;
      EXPECT_DOUBLE_EQ(std::get<double>(v), i + 0.25) << "element " << i;
    }
  }

  std::uint64_t owner_epoch(int on_proc) {
    dist::InfoValue v;
    EXPECT_EQ(am_.find_info(on_proc, id_, dist::InfoKind::OwnerEpoch, v),
              Status::Ok);
    return std::get<std::uint64_t>(v);
  }

  std::vector<int> shard_owners(int on_proc) {
    dist::InfoValue v;
    EXPECT_EQ(am_.find_info(on_proc, id_, dist::InfoKind::ShardOwners, v),
              Status::Ok);
    return std::get<std::vector<int>>(v);
  }

  vp::Machine machine_;
  dist::ArrayManager am_;
  vp::ServerSystem servers_;
  dist::ArrayId id_;
};

TEST_F(ShardMigrationTest, MigrationMovesDataAndBumpsEveryReplicaEpoch) {
  ASSERT_EQ(owner_epoch(0), 0u);
  // Shard 1 (elements 2..3) starts on processor 1; move it to processor 3.
  ASSERT_EQ(am_.migrate_shard(0, id_, 1, 3), Status::Ok);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(owner_epoch(p), 1u) << "replica on " << p;
    EXPECT_EQ(shard_owners(p)[1], 3) << "replica on " << p;
  }
  // Data survives the move and reads route to the new owner from anywhere.
  expect_all_elements_readable(1);
  dist::LocalSectionView view;
  EXPECT_EQ(am_.find_local_shard(3, id_, 1, view), Status::Ok);
  EXPECT_EQ(am_.find_local_shard(1, id_, 1, view), Status::NotFound);
  // Writes through the new owner stick.
  ASSERT_EQ(am_.write_element(2, id_, std::vector<int>{2},
                              dist::Scalar{99.5}),
            Status::Ok);
  dist::Scalar v;
  ASSERT_EQ(am_.read_element(0, id_, std::vector<int>{2}, v), Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 99.5);
}

TEST_F(ShardMigrationTest, MigrationToCurrentOwnerIsIdempotentNoop) {
  const std::uint64_t before = owner_epoch(0);
  ASSERT_EQ(am_.migrate_shard(0, id_, 2, 2), Status::Ok);  // 2 lives on 2
  EXPECT_EQ(owner_epoch(0), before);  // no epoch bump for a no-op
  expect_all_elements_readable(0);
}

TEST_F(ShardMigrationTest, MigrationValidatesItsParameters) {
  EXPECT_EQ(am_.migrate_shard(0, id_, 99, 1), Status::Invalid);
  EXPECT_EQ(am_.migrate_shard(0, id_, -1, 1), Status::Invalid);
  EXPECT_EQ(am_.migrate_shard(0, id_, 1, 99), Status::Invalid);
  dist::ArrayId bogus{2, 12345};
  EXPECT_EQ(am_.migrate_shard(0, bogus, 0, 1), Status::NotFound);
}

// Readers racing a shard that migrates back and forth: every read must
// return Status::Ok with the correct value — a reader that catches a
// quiesced shard or a stale owner table retries against the new owner.
TEST_F(ShardMigrationTest, ReadsRetryAcrossConcurrentMigrations) {
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([this, t, &stop, &failures] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        dist::Scalar v;
        if (am_.read_element(t, id_, std::vector<int>{i % 16}, v) !=
                Status::Ok ||
            std::get<double>(v) != (i % 16) + 0.25) {
          failures.fetch_add(1);
        }
        ++i;
      }
    });
  }
  // Bounce shard 5 between processors while the readers hammer the array.
  for (int round = 0; round < 40; ++round) {
    ASSERT_EQ(am_.migrate_shard(0, id_, 5, round % 2 == 0 ? 3 : 1),
              Status::Ok);
  }
  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(owner_epoch(2), 40u);
  expect_all_elements_readable(0);
}

TEST_F(ShardMigrationTest, ServerForwardsShardRequestsToTheCurrentOwner) {
  obs::set_enabled(true);
  obs::ShardedCounter& forwards =
      obs::Registry::instance().counter("am.shard_forwards");
  const std::uint64_t before = forwards.value();

  ASSERT_EQ(am_.migrate_shard(0, id_, 0, 2), Status::Ok);
  // Ask processor 1's server for shard 0, which lives on processor 2: the
  // reply names the owner and the requester re-issues there.
  vp::Payload p;
  ASSERT_EQ(dist::read_shard_request(servers_, 1, id_, 0, p), Status::Ok);
  ASSERT_EQ(p.size(), 2 * sizeof(double));
  const double* d = reinterpret_cast<const double*>(p.data());
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 1.25);
  if (obs::kCompiledIn) {
    EXPECT_GT(forwards.value(), before);
  }

  // write_shard follows the same forward pointer.
  std::vector<double> repl{-1.0, -2.0};
  ASSERT_EQ(dist::write_shard_request(
                servers_, 3, id_, 0,
                vp::Payload::copy_of(
                    std::as_bytes(std::span<const double>(repl)))),
            Status::Ok);
  dist::Scalar v;
  ASSERT_EQ(am_.read_element(0, id_, std::vector<int>{1}, v), Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), -2.0);
  obs::set_enabled(false);
}

TEST_F(ShardMigrationTest, MigrationUnderFullDropFailsBoundedNotStalled) {
  fault::Plan plan;
  plan.drop = 1.0;
  machine_.set_fault_plan(plan);
  dist::RetryPolicy policy;
  policy.timeout_ms = 20;
  policy.max_attempts = 3;
  policy.backoff_ms = 1;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(dist::migrate_shard_request(servers_, 0, id_, 1, 3, policy),
            Status::Error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // bounded, not a stall
  machine_.set_fault_plan(fault::Plan{});

  // Nothing moved; the shard map is intact and a clean retry completes.
  EXPECT_EQ(shard_owners(0)[1], 1);
  EXPECT_EQ(dist::migrate_shard_request(servers_, 0, id_, 1, 3), Status::Ok);
  EXPECT_EQ(shard_owners(0)[1], 3);
  expect_all_elements_readable(0);
}

TEST_F(ShardMigrationTest, MigrationUnderPartialDropEventuallyCompletes) {
  fault::Plan plan;
  plan.drop = 0.5;
  plan.seed = 11;
  machine_.set_fault_plan(plan);
  dist::RetryPolicy policy;
  policy.timeout_ms = 50;
  policy.max_attempts = 4;
  policy.backoff_ms = 1;
  policy.jitter_seed = 3;
  // Migration is idempotent, so re-issuing after a lost reply is safe;
  // under 50% drop a handful of rounds always lands one.
  Status status = Status::Error;
  for (int round = 0; round < 20 && status != Status::Ok; ++round) {
    status = dist::migrate_shard_request(servers_, 0, id_, 6, 0, policy);
  }
  machine_.set_fault_plan(fault::Plan{});
  ASSERT_EQ(status, Status::Ok);
  EXPECT_EQ(shard_owners(2)[6], 0);
  expect_all_elements_readable(1);
}

TEST_F(ShardMigrationTest, PinBlocksMigrationUntilUnpinned) {
  am_.pin_layout(id_);
  std::atomic<bool> migrated{false};
  std::thread mover([this, &migrated] {
    EXPECT_EQ(am_.migrate_shard(0, id_, 4, 1), Status::Ok);  // 4 lives on 0
    migrated.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(migrated.load());  // pinned layout holds the migration
  am_.unpin_layout(id_);
  mover.join();
  EXPECT_TRUE(migrated.load());
  EXPECT_EQ(shard_owners(0)[4], 1);
  expect_all_elements_readable(0);
}

// A migration requested while the caller itself holds a pin on the array
// can never be satisfied; it must fail once the pin-drain wait times out
// rather than self-deadlock (and must not wedge later migrations).
TEST_F(ShardMigrationTest, MigrationUnderALivePinFailsBoundedNotDeadlocked) {
  am_.pin_layout(id_);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(am_.migrate_shard(0, id_, 4, 1), Status::Error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(8));  // bounded, not a stall
  am_.unpin_layout(id_);
  // The failed attempt left no residue: pins work and a retry completes.
  am_.pin_layout(id_);
  am_.unpin_layout(id_);
  EXPECT_EQ(am_.migrate_shard(0, id_, 4, 1), Status::Ok);
  EXPECT_EQ(shard_owners(0)[4], 1);
  expect_all_elements_readable(0);
}

// The legacy (section-addressed) APIs refuse a processor that owns more
// than one shard: which shard "the" local section denotes could change
// across migrations, so a read/write round-trip could silently target
// different data.  With exactly one owned shard they work as ever.
TEST_F(ShardMigrationTest, LegacySectionApisRefuseAmbiguousMultiShardOwner) {
  // Every processor starts with two shards (8 shards over 4 processors).
  vp::Payload snap;
  EXPECT_EQ(am_.read_section(0, id_, snap), Status::Invalid);
  EXPECT_EQ(am_.write_section(0, id_, vp::Payload::zeros(2 * sizeof(double))),
            Status::Invalid);

  // Move shard 4 away: processor 0 now owns only shard 0 (elements 0..1),
  // and the legacy round-trip is unambiguous again.
  ASSERT_EQ(am_.migrate_shard(0, id_, 4, 1), Status::Ok);
  ASSERT_EQ(am_.read_section(0, id_, snap), Status::Ok);
  ASSERT_EQ(snap.size(), 2 * sizeof(double));
  const double* d = reinterpret_cast<const double*>(snap.data());
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 1.25);
  std::vector<double> repl{7.5, 8.5};
  ASSERT_EQ(am_.write_section(
                0, id_,
                vp::Payload::copy_of(
                    std::as_bytes(std::span<const double>(repl)))),
            Status::Ok);
  dist::Scalar v;
  ASSERT_EQ(am_.read_element(2, id_, std::vector<int>{1}, v), Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 8.5);
}

// Legacy section traffic racing a migration of the same shard: a write
// that lands must stick (never silently swallowed by the source teardown)
// and a read must never observe a torn payload — writers and readers wait
// out the quiesce instead of touching the borrowed storage.
TEST_F(ShardMigrationTest, LegacySectionTrafficWaitsOutMigration) {
  // Leave processor 0 with only shard 0 so the legacy APIs address it.
  ASSERT_EQ(am_.migrate_shard(0, id_, 4, 1), Status::Ok);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([this, &stop, &bad] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Both halves carry the same value, so any torn copy is visible.
      const double val = static_cast<double>(++i);
      std::vector<double> w{val, val};
      const Status st = am_.write_section(
          0, id_,
          vp::Payload::copy_of(std::as_bytes(std::span<const double>(w))));
      // Ok while processor 0 owns the shard, NotFound while it is away;
      // anything else (a timeout, a torn write) is a failure.
      if (st != Status::Ok && st != Status::NotFound) bad.fetch_add(1);
      vp::Payload snap;
      const Status rst = am_.read_section(0, id_, snap);
      if (rst == Status::Ok) {
        double halves[2];
        std::memcpy(halves, snap.data(), sizeof(halves));
        if (halves[0] != halves[1]) bad.fetch_add(1);
      } else if (rst != Status::NotFound) {
        bad.fetch_add(1);
      }
    }
  });
  for (int round = 0; round < 40; ++round) {
    ASSERT_EQ(am_.migrate_shard(0, id_, 0, round % 2 == 0 ? 2 : 0),
              Status::Ok);
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(bad.load(), 0);

  // Bring the shard home and prove a final write round-trips intact.
  ASSERT_EQ(am_.migrate_shard(0, id_, 0, 0), Status::Ok);
  std::vector<double> fin{41.5, 42.5};
  ASSERT_EQ(am_.write_section(
                0, id_,
                vp::Payload::copy_of(
                    std::as_bytes(std::span<const double>(fin)))),
            Status::Ok);
  dist::Scalar v;
  ASSERT_EQ(am_.read_element(3, id_, std::vector<int>{0}, v), Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 41.5);
  ASSERT_EQ(am_.read_element(3, id_, std::vector<int>{1}, v), Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(v), 42.5);
}

// ---------------------------------------------------------- Rebalancer ----

class RebalanceTest : public ::testing::Test {
 protected:
  RebalanceTest() : machine_(4), am_(machine_) {
    // 8 shards of 4 doubles over 2 of the 4 processors.
    EXPECT_EQ(am_.create_array(0, dist::ElemType::Float64, {32}, {0, 1},
                               {dist::DimSpec::block_n(8)},
                               dist::BorderSpec::none(),
                               dist::Indexing::RowMajor, id_),
              Status::Ok);
  }

  // Drives `n` shard reads at `shard`, accruing per-shard traffic.
  void touch(long long shard, int n) {
    for (int i = 0; i < n; ++i) {
      vp::Payload p;
      EXPECT_EQ(am_.read_shard(0, id_, shard, p), Status::Ok);
    }
  }

  vp::Machine machine_;
  dist::ArrayManager am_;
  dist::ArrayId id_;
};

TEST_F(RebalanceTest, ProposesMovesOffTheOverloadedProcessor) {
  // All traffic lands on processor 0's shards (even ranks).
  touch(0, 32);
  touch(2, 32);
  touch(4, 32);
  std::vector<dist::ShardMove> moves;
  ASSERT_EQ(am_.propose_rebalance(0, id_, 1.5, moves), Status::Ok);
  ASSERT_FALSE(moves.empty());
  for (const dist::ShardMove& m : moves) {
    EXPECT_EQ(m.from, 0);  // only the hot processor sheds shards
    EXPECT_EQ(m.to, 1);    // onto the idle pool member
    EXPECT_EQ(m.shard % 2, 0);
  }
}

TEST_F(RebalanceTest, BalancedTrafficProposesNothing) {
  for (long long s = 0; s < 8; ++s) touch(s, 8);
  std::vector<dist::ShardMove> moves;
  ASSERT_EQ(am_.propose_rebalance(0, id_, 1.5, moves), Status::Ok);
  EXPECT_TRUE(moves.empty());
}

TEST_F(RebalanceTest, RebalanceMovesShardsAndResetsTheWindow) {
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(am_.write_element(0, id_, std::vector<int>{i},
                                dist::Scalar{i * 1.0}),
              Status::Ok);
  }
  touch(0, 64);
  touch(2, 64);
  int moved = 0;
  ASSERT_EQ(am_.rebalance(0, id_, 1.5, &moved), Status::Ok);
  EXPECT_GT(moved, 0);
  // The traffic window was reset: an immediate second pass has nothing to
  // say about the old skew.
  std::vector<dist::ShardMove> moves;
  ASSERT_EQ(am_.propose_rebalance(0, id_, 1.5, moves), Status::Ok);
  EXPECT_TRUE(moves.empty());
  // Data is intact wherever the shards went.
  for (int i = 0; i < 32; ++i) {
    dist::Scalar v;
    ASSERT_EQ(am_.read_element(1, id_, std::vector<int>{i}, v), Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(v), i * 1.0);
  }
}

TEST_F(RebalanceTest, DisabledRatioIsANoop) {
  touch(0, 64);
  // max_ratio <= 0 defers to TDP_DIST_REBALANCE, which this test expects
  // unset: rebalancing stays opt-in.
  if (am_.env_rebalance_ratio() > 0.0) {
    GTEST_SKIP() << "TDP_DIST_REBALANCE set in the environment";
  }
  int moved = -1;
  ASSERT_EQ(am_.rebalance(0, id_, 0.0, &moved), Status::Ok);
  EXPECT_EQ(moved, 0);
}

// ------------------------------------------------------ Oversharding env ----

TEST(OvershardEnv, DefaultBlockSpecHonoursTdpDistShards) {
  ::setenv("TDP_DIST_SHARDS", "8", 1);
  vp::Machine machine(2);
  dist::ArrayManager am(machine);
  dist::ArrayId id;
  ASSERT_EQ(am.create_array(0, dist::ElemType::Float64, {32},
                            util::iota_nodes(2), {dist::DimSpec::block()},
                            dist::BorderSpec::none(),
                            dist::Indexing::RowMajor, id),
            Status::Ok);
  dist::InfoValue v;
  ASSERT_EQ(am.find_info(0, id, dist::InfoKind::ShardCount, v), Status::Ok);
  EXPECT_EQ(std::get<std::uint64_t>(v), 8u);
  ASSERT_EQ(am.find_info(0, id, dist::InfoKind::ShardOwners, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v),
            (std::vector<int>{0, 1, 0, 1, 0, 1, 0, 1}));
  // The §3.2.1.5 user-visible surface is unchanged: the processor list a
  // query reports is still the distinct owners.
  ASSERT_EQ(am.find_info(0, id, dist::InfoKind::Processors, v), Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{0, 1}));
  ::unsetenv("TDP_DIST_SHARDS");

  // An explicit spec is never rewritten.
  dist::ArrayId id2;
  ::setenv("TDP_DIST_SHARDS", "8", 1);
  ASSERT_EQ(am.create_array(0, dist::ElemType::Float64, {32},
                            util::iota_nodes(2),
                            {dist::DimSpec::block_n(2)},
                            dist::BorderSpec::none(),
                            dist::Indexing::RowMajor, id2),
            Status::Ok);
  ASSERT_EQ(am.find_info(0, id2, dist::InfoKind::ShardCount, v), Status::Ok);
  EXPECT_EQ(std::get<std::uint64_t>(v), 2u);
  ::unsetenv("TDP_DIST_SHARDS");
}

}  // namespace
}  // namespace tdp
