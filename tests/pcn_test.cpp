// Unit tests for the task-parallel (PCN-like) layer: definitional
// variables (§3.1.1.2), streams (§A.3) and composition (§A.1).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "pcn/def.hpp"
#include "pcn/process.hpp"
#include "pcn/pseudo_def.hpp"
#include "pcn/stream.hpp"
#include "vp/machine.hpp"

namespace tdp::pcn {
namespace {

TEST(Def, StartsUndefined) {
  Def<int> d;
  EXPECT_FALSE(d.is_defined());
}

TEST(Def, DefineThenRead) {
  Def<int> d;
  d.define(42);
  EXPECT_TRUE(d.is_defined());
  EXPECT_EQ(d.read(), 42);
  EXPECT_EQ(d.read(), 42);  // reads are repeatable
}

TEST(Def, SecondDefineThrows) {
  Def<int> d;
  d.define(1);
  EXPECT_THROW(d.define(2), DoubleDefinition);
  EXPECT_EQ(d.read(), 1);
}

TEST(Def, TryDefineReportsLoser) {
  Def<int> d;
  EXPECT_TRUE(d.try_define(1));
  EXPECT_FALSE(d.try_define(2));
  EXPECT_EQ(d.read(), 1);
}

TEST(Def, ReaderSuspendsUntilDefined) {
  Def<int> d;
  std::atomic<int> seen{-1};
  std::thread reader([&] { seen = d.read(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(seen.load(), -1);
  d.define(7);
  reader.join();
  EXPECT_EQ(seen.load(), 7);
}

TEST(Def, AllReadersObserveSameValue) {
  // §3.1.1.4: all programs that read the variable's value obtain the same
  // value — the foundation of conflict-free shared variables.
  Def<int> d;
  std::vector<std::thread> readers;
  std::vector<int> results(8, -1);
  for (int i = 0; i < 8; ++i) {
    readers.emplace_back([&, i] { results[static_cast<std::size_t>(i)] = d.read(); });
  }
  d.define(99);
  for (auto& t : readers) t.join();
  for (int v : results) EXPECT_EQ(v, 99);
}

TEST(Def, HandlesAreSharedState) {
  Def<int> a;
  Def<int> b = a;  // same variable
  EXPECT_TRUE(a.same_variable(b));
  b.define(5);
  EXPECT_EQ(a.read(), 5);
  Def<int> c;
  EXPECT_FALSE(a.same_variable(c));
}

TEST(Def, ReadForTimesOutWhenUndefined) {
  Def<int> d;
  EXPECT_EQ(d.read_for(std::chrono::milliseconds(10)), nullptr);
  d.define(3);
  const int* v = d.read_for(std::chrono::milliseconds(10));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 3);
}

TEST(Stream, ProduceConsume) {
  Stream<int> s;
  Stream<int> tail = s.put(1).put(2).put(3);
  tail.close();
  EXPECT_EQ(s.collect(), (std::vector<int>{1, 2, 3}));
}

TEST(Stream, NextAdvances) {
  Stream<int> s;
  s.put(10).put(20).close();
  Stream<int> cursor = s;
  EXPECT_EQ(cursor.next(), std::optional<int>(10));
  EXPECT_EQ(cursor.next(), std::optional<int>(20));
  EXPECT_EQ(cursor.next(), std::nullopt);
  EXPECT_EQ(cursor.next(), std::nullopt);  // stays closed
}

TEST(Stream, HeadPeeksWithoutAdvancing) {
  Stream<int> s;
  s.put(5).close();
  EXPECT_EQ(s.head(), std::optional<int>(5));
  EXPECT_EQ(s.head(), std::optional<int>(5));
}

TEST(Stream, DoubleProduceThrows) {
  Stream<int> s;
  s.put(1);
  EXPECT_THROW(s.put(2), DoubleDefinition);
  EXPECT_THROW(s.close(), DoubleDefinition);
}

TEST(Stream, ConsumerSuspendsOnUndefinedTail) {
  Stream<int> s;
  std::vector<int> got;
  // The consumer advances its own cursor copy; stream *handles* are plain
  // values and, like any C++ object, must not be mutated from two threads.
  std::thread consumer([cursor = s, &got]() mutable {
    got = cursor.collect();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stream<int> t = s.put(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.put(2).close();
  consumer.join();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Stream, PutAll) {
  Stream<double> s;
  s.put_all({1.5, 2.5}).close();
  EXPECT_EQ(s.collect(), (std::vector<double>{1.5, 2.5}));
}

TEST(Stream, MultipleConsumersSeeSameElements) {
  // A stream is a definitional list: any number of readers may traverse it.
  Stream<int> s;
  s.put(1).put(2).close();
  Stream<int> c1 = s;
  Stream<int> c2 = s;
  EXPECT_EQ(c1.collect(), (std::vector<int>{1, 2}));
  EXPECT_EQ(c2.collect(), (std::vector<int>{1, 2}));
}

TEST(Compose, ParRunsAllBlocksAndJoins) {
  std::atomic<int> count{0};
  par([&] { ++count; }, [&] { ++count; }, [&] { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(Compose, ParBlocksAreConcurrent) {
  // Two blocks that each need the other's value can only finish if they
  // genuinely run concurrently.
  Def<int> a;
  Def<int> b;
  par([&] { a.define(1); EXPECT_EQ(b.read(), 2); },
      [&] { b.define(2); EXPECT_EQ(a.read(), 1); });
}

TEST(Compose, SeqRunsInOrder) {
  std::vector<int> order;
  seq([&] { order.push_back(1); }, [&] { order.push_back(2); },
      [&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Compose, ChoiceRunsFirstTrueGuard) {
  int ran = 0;
  bool any = choose({{[] { return false; }, [&] { ran = 1; }},
                     {[] { return true; }, [&] { ran = 2; }},
                     {[] { return true; }, [&] { ran = 3; }}});
  EXPECT_TRUE(any);
  EXPECT_EQ(ran, 2);
}

TEST(Compose, ChoiceDefaultBranch) {
  int ran = 0;
  bool any = choose({{[] { return false; }, [&] { ran = 1; }}},
                    [&] { ran = 99; });
  EXPECT_TRUE(any);
  EXPECT_EQ(ran, 99);
  ran = 0;
  any = choose({{[] { return false; }, [&] { ran = 1; }}});
  EXPECT_FALSE(any);
  EXPECT_EQ(ran, 0);
}

TEST(ProcessGroup, SpawnOnSetsPlacement) {
  vp::Machine machine(4);
  std::vector<int> seen(4, -2);
  ProcessGroup group;
  for (int p = 0; p < 4; ++p) {
    group.spawn_on(machine, p,
                   [&seen, p] { seen[static_cast<std::size_t>(p)] = vp::current_proc(); });
  }
  group.join();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ProcessGroup, SpawnOnRejectsBadProcessor) {
  vp::Machine machine(2);
  ProcessGroup group;
  EXPECT_THROW(group.spawn_on(machine, 9, [] {}), std::out_of_range);
}

TEST(PseudoDef, BindingIsSingleAssignmentStorageIsMutable) {
  // §5.1.5: "definitional" binding (created without declaration, bound at
  // most once) but multiple-assignment contents.
  pcn::PseudoDefArray a;
  EXPECT_FALSE(a.guard());
  a.build(4);
  EXPECT_TRUE(a.guard());
  EXPECT_THROW(a.build(4), DoubleDefinition);
  a.data()[0] = 1.0;
  a.data()[0] = 2.0;  // mutable contents
  EXPECT_DOUBLE_EQ(a.data()[0], 2.0);
  EXPECT_EQ(a.size(), 4u);
}

TEST(PseudoDef, DataGuardSuspendsUntilBuilt) {
  // §5.1.5: concurrently-executing processes may share a pseudo-definitional
  // array only if at most one writes; the write below is ordered before the
  // read by a definitional handshake, as a correct PCN program would do.
  pcn::PseudoDefArray a;
  Def<int> written;
  std::atomic<double> seen{-1.0};
  std::thread reader([&] {
    written.read();       // happens-after the writer's definition
    seen = a.data()[1];   // data guard: also waits for build()
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(seen.load(), -1.0);
  a.build(2);
  a.data()[1] = 9.0;
  written.define(1);
  reader.join();
  EXPECT_DOUBLE_EQ(seen.load(), 9.0);
}

TEST(PseudoDef, SharedHandlesAliasStorage) {
  // Like local sections in the array manager's record tuples: many handles,
  // one storage.
  pcn::PseudoDefArray a;
  pcn::PseudoDefArray b = a;
  EXPECT_TRUE(a.same_variable(b));
  b.build(3);
  a.data()[2] = 7.0;
  EXPECT_DOUBLE_EQ(b.data()[2], 7.0);
}

TEST(PseudoDef, ExplicitFreeSemantics) {
  pcn::PseudoDefArray a;
  a.build(8);
  EXPECT_TRUE(a.wait_guard());
  a.free();
  EXPECT_FALSE(a.wait_guard());
  EXPECT_THROW(a.data(), std::logic_error);   // use after free
  EXPECT_THROW(a.free(), std::logic_error);   // double free
}

TEST(ProcessGroup, DestructorJoins) {
  std::atomic<bool> done{false};
  {
    ProcessGroup group;
    group.spawn([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done = true;
    });
  }
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace tdp::pcn
