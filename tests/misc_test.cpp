// Edge cases and cross-cutting behaviours not covered by the per-module
// suites: call reuse, degenerate group sizes, atomic printing, event-graph
// corner cases.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/do_all.hpp"
#include "core/runtime.hpp"
#include "linalg/lu.hpp"
#include "pcn/process.hpp"
#include "sim/event_sim.hpp"
#include "util/atomic_print.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

TEST(CallReuse, SameBuilderRunsRepeatedly) {
  // A DistributedCall is a value; running it twice performs two calls with
  // fresh communicators each time.
  core::Runtime rt(4);
  std::atomic<int> copies{0};
  rt.programs().add("bump", [&](spmd::SpmdContext&, core::CallArgs&) {
    ++copies;
  });
  core::DistributedCall call = rt.call(rt.all_procs(), "bump");
  EXPECT_EQ(call.run(), kStatusOk);
  EXPECT_EQ(call.run(), kStatusOk);
  EXPECT_EQ(copies.load(), 8);
}

TEST(CallReuse, ReduceOutputOverwrittenEachRun) {
  core::Runtime rt(2);
  std::atomic<int> round{0};
  rt.programs().add("round_val",
                    [&](spmd::SpmdContext&, core::CallArgs& args) {
                      args.reduce_f64(0)[0] = round.load();
                    });
  std::vector<double> out;
  core::DistributedCall call = rt.call(rt.all_procs(), "round_val")
                                   .reduce_f64(1, core::f64_max(), &out);
  round = 1;
  EXPECT_EQ(call.run(), kStatusOk);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  round = 2;
  EXPECT_EQ(call.run(), kStatusOk);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST(SingleProcessor, WholeStackWorksOnOneNode) {
  // Degenerate machine: every substrate must work with nprocs == 1.
  core::Runtime rt(1);
  rt.programs().add("solo", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    EXPECT_EQ(ctx.nprocs(), 1);
    ctx.barrier();
    EXPECT_DOUBLE_EQ(ctx.allreduce_sum(2.5), 2.5);
    args.status(0) = 5;
  });
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(0, dist::ElemType::Float64, {4},
                                     {0}, {dist::DimSpec::block()},
                                     dist::BorderSpec::none(),
                                     dist::Indexing::RowMajor, id),
            Status::Ok);
  EXPECT_EQ(rt.call({0}, "solo").status().run(), 5);
  dist::LocalSectionView view;
  EXPECT_EQ(rt.arrays().find_local(0, id, view), Status::Ok);
  EXPECT_EQ(view.interior_count(), 4);
}

TEST(DoAll, StridedAndReversedGroups) {
  vp::Machine machine(8);
  std::vector<int> where(4, -1);
  const int status = core::do_all(
      machine, util::node_array(6, -2, 4),  // 6, 4, 2, 0
      [&](int index) {
        where[static_cast<std::size_t>(index)] = vp::current_proc();
        return 0;
      },
      core::status_combine_max);
  EXPECT_EQ(status, 0);
  EXPECT_EQ(where, (std::vector<int>{6, 4, 2, 0}));
}

TEST(Lu, OneRowPerProcessor) {
  // nloc == 1: every pivot broadcast and row swap crosses processors.
  core::Runtime rt(4);
  linalg::register_lu_programs(rt.programs());
  const int n = 4;
  dist::ArrayId a;
  dist::ArrayId b;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::star()},
                dist::BorderSpec::none(), dist::Indexing::RowMajor, a),
            Status::Ok);
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n}, rt.all_procs(),
                {dist::DimSpec::block()}, dist::BorderSpec::none(),
                dist::Indexing::RowMajor, b),
            Status::Ok);
  // A matrix that *requires* pivoting: zero on the first diagonal entry.
  const double mat[4][4] = {{0, 2, 1, 0},
                            {1, 0, 0, 1},
                            {2, 1, 0, 0},
                            {0, 0, 1, 2}};
  const double x_true[4] = {1.0, -2.0, 3.0, -4.0};
  for (int i = 0; i < n; ++i) {
    double bi = 0.0;
    for (int j = 0; j < n; ++j) {
      rt.arrays().write_element(0, a, std::vector<int>{i, j},
                                dist::Scalar{mat[i][j]});
      bi += mat[i][j] * x_true[j];
    }
    rt.arrays().write_element(0, b, std::vector<int>{i}, dist::Scalar{bi});
  }
  ASSERT_EQ(rt.call(rt.all_procs(), "lu_solve_system")
                .constant(n)
                .local(a)
                .local(b)
                .status()
                .run(),
            0);
  for (int i = 0; i < n; ++i) {
    dist::Scalar v;
    ASSERT_EQ(rt.arrays().read_element(0, b, std::vector<int>{i}, v),
              Status::Ok);
    EXPECT_NEAR(std::get<double>(v), x_true[i], 1e-12);
  }
}

TEST(AtomicPrint, LinesAreNotInterleaved) {
  ::testing::internal::CaptureStdout();
  {
    pcn::ProcessGroup group;
    for (int t = 0; t < 4; ++t) {
      group.spawn([t] {
        for (int i = 0; i < 25; ++i) {
          util::atomic_print_items("thread-", t, "-line-", i, "-",
                                   std::string(40, 'x'));
        }
      });
    }
  }
  const std::string out = ::testing::internal::GetCapturedStdout();
  // Every line must match the full pattern; interleaving would corrupt it.
  std::size_t lines = 0;
  std::size_t begin = 0;
  while (begin < out.size()) {
    std::size_t end = out.find('\n', begin);
    if (end == std::string::npos) break;
    const std::string line = out.substr(begin, end - begin);
    EXPECT_EQ(line.rfind("thread-", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 40), std::string(40, 'x')) << line;
    ++lines;
    begin = end + 1;
  }
  EXPECT_EQ(lines, 100u);
}

TEST(EventSim, EventsToComponentWithoutSuccessorsAreDropped) {
  sim::EventSimulation des;
  des.add_component("sink_less", [](double, const std::vector<sim::Event>&) {
    sim::Event e;
    e.time = 1.0;
    return std::vector<sim::Event>{e};
  });
  const auto stats = des.run(5.0);
  EXPECT_EQ(stats.events_delivered, 0);
}

TEST(EventSim, MultipleSelfWakesCoalesceAtSameInstant) {
  sim::EventSimulation des;
  int wakes = 0;
  des.add_component("multi", [&](double now, const std::vector<sim::Event>& in) {
    ++wakes;
    std::vector<sim::Event> out;
    if (now == 0.0) {
      // Two self-wakes for the same future instant: delivered together.
      for (int k = 0; k < 2; ++k) {
        sim::Event e;
        e.time = 1.0;
        e.kind = sim::kSelfWake;
        out.push_back(e);
      }
    } else {
      EXPECT_EQ(in.size(), 2u);
    }
    return out;
  });
  des.run(2.0);
  EXPECT_EQ(wakes, 2);
}

TEST(Runtime, AllProcsAndProgramsAccessors) {
  core::Runtime rt(3);
  EXPECT_EQ(rt.nprocs(), 3);
  EXPECT_EQ(rt.all_procs(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rt.programs().size(), 0u);
  rt.programs().add("x", [](spmd::SpmdContext&, core::CallArgs&) {});
  EXPECT_EQ(rt.programs().size(), 1u);
  const core::Runtime& cref = rt;
  EXPECT_TRUE(cref.programs().contains("x"));
}

TEST(Machine, MessageCountsAccumulate) {
  core::Runtime rt(4);
  rt.programs().add("chatter", [](spmd::SpmdContext& ctx, core::CallArgs&) {
    ctx.barrier();
  });
  // Linear barrier over 4 copies: 3 up + 3 down messages.
  spmd::coll::force(spmd::coll::Algo::Linear);
  std::uint64_t before = rt.machine().messages_sent();
  ASSERT_EQ(rt.call(rt.all_procs(), "chatter").run(), kStatusOk);
  EXPECT_EQ(rt.machine().messages_sent() - before, 6u);
  // Dissemination barrier: ceil(log2 4) = 2 rounds of 4 signals each.
  spmd::coll::force(spmd::coll::Algo::Tree);
  before = rt.machine().messages_sent();
  ASSERT_EQ(rt.call(rt.all_procs(), "chatter").run(), kStatusOk);
  EXPECT_EQ(rt.machine().messages_sent() - before, 8u);
  spmd::coll::unforce();
}

}  // namespace
}  // namespace tdp
