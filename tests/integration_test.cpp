// Cross-module integration tests: the thesis's worked examples exercised
// end-to-end through the public API.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "core/runtime.hpp"
#include "fft/fft.hpp"
#include "fft/reference.hpp"
#include "linalg/stencil.hpp"
#include "linalg/vector_ops.hpp"
#include "pcn/process.hpp"
#include "pcn/stream.hpp"
#include "sim/event_sim.hpp"
#include "util/bits.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

TEST(Integration, Section427VerifyExample) {
  // §4.2.7's worked example: array A created with row-major indexing and
  // borders of size 2; pgmA expects borders of 2, pgmB borders of 1.
  core::Runtime rt(4);
  rt.programs().add("pgmA", [](spmd::SpmdContext&, core::CallArgs&) {},
                    [](int parm_num, int ndims) {
                      std::vector<int> b(static_cast<std::size_t>(2 * ndims),
                                         0);
                      if (parm_num == 1) {
                        b.assign(static_cast<std::size_t>(2 * ndims), 2);
                      }
                      return b;
                    });
  rt.programs().add("pgmB", [](spmd::SpmdContext&, core::CallArgs&) {},
                    [](int parm_num, int ndims) {
                      std::vector<int> b(static_cast<std::size_t>(2 * ndims),
                                         0);
                      if (parm_num == 1) {
                        b.assign(static_cast<std::size_t>(2 * ndims), 1);
                      }
                      return b;
                    });

  dist::ArrayId a;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {8, 8}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::block()},
                dist::BorderSpec::exact({2, 2, 2, 2}),
                dist::Indexing::RowMajor, a),
            Status::Ok);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      ASSERT_EQ(rt.arrays().write_element(0, a, std::vector<int>{i, j},
                                          dist::Scalar{i * 10.0 + j}),
                Status::Ok);
    }
  }

  // verify against pgmA (borders 2): Status OK, no change.
  EXPECT_EQ(rt.arrays().verify_array(0, a, 2,
                                     dist::BorderSpec::foreign("pgmA", 1),
                                     dist::Indexing::RowMajor),
            Status::Ok);
  dist::InfoValue v;
  ASSERT_EQ(rt.arrays().find_info(0, a, dist::InfoKind::Borders, v),
            Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{2, 2, 2, 2}));

  // verify against pgmB (borders 1): borders change, interior preserved.
  EXPECT_EQ(rt.arrays().verify_array(0, a, 2,
                                     dist::BorderSpec::foreign("pgmB", 1),
                                     dist::Indexing::RowMajor),
            Status::Ok);
  ASSERT_EQ(rt.arrays().find_info(0, a, dist::InfoKind::Borders, v),
            Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{1, 1, 1, 1}));
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      dist::Scalar s;
      ASSERT_EQ(rt.arrays().read_element(0, a, std::vector<int>{i, j}, s),
                Status::Ok);
      EXPECT_DOUBLE_EQ(std::get<double>(s), i * 10.0 + j);
    }
  }

  // verify against pgmA with column-major indexing: STATUS_INVALID.
  EXPECT_EQ(rt.arrays().verify_array(0, a, 2,
                                     dist::BorderSpec::foreign("pgmA", 1),
                                     dist::Indexing::ColumnMajor),
            Status::Invalid);
}

TEST(Integration, Section61InnerProductEndToEnd) {
  // The complete §6.1 program as a test.
  core::Runtime rt(8);
  linalg::register_programs(rt.programs());
  const int p = rt.nprocs();
  const int local_m = 4;
  const int m = p * local_m;
  const std::vector<int> procs = rt.all_procs();
  dist::ArrayId v1;
  dist::ArrayId v2;
  for (dist::ArrayId* id : {&v1, &v2}) {
    ASSERT_EQ(rt.arrays().create_array(
                  0, dist::ElemType::Float64, {m}, procs,
                  {dist::DimSpec::block()}, dist::BorderSpec::none(),
                  dist::Indexing::RowMajor, *id),
              Status::Ok);
  }
  std::vector<double> inprod;
  ASSERT_EQ(rt.call(procs, "test_iprdv")
                .constant(procs)
                .constant(p)
                .index()
                .constant(m)
                .constant(local_m)
                .local(v1)
                .local(v2)
                .reduce_f64(1, core::f64_max(), &inprod)
                .run(),
            kStatusOk);
  double expect = 0.0;
  for (int i = 1; i <= m; ++i) expect += static_cast<double>(i) * i;
  EXPECT_DOUBLE_EQ(inprod.at(0), expect);
  // Postcondition on array contents: V1[i] == i+1 visible globally.
  dist::Scalar s;
  ASSERT_EQ(rt.arrays().read_element(0, v1, std::vector<int>{m - 1}, s),
            Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(s), m);
  ASSERT_EQ(rt.arrays().free_array(0, v1), Status::Ok);
  ASSERT_EQ(rt.arrays().free_array(0, v2), Status::Ok);
}

TEST(Integration, Section62PolynomialPipelineOnePair) {
  // One polynomial pair through the full §6.2 machinery: bit-reversed
  // loads, two concurrent inverse FFTs on disjoint groups, task-parallel
  // elementwise combine, forward FFT, bit-reversed read-out.
  const int n = 16;
  const int nn = 2 * n;
  const int group = 2;
  core::Runtime rt(3 * group);
  fft::register_programs(rt.programs());

  auto make_data = [&](const std::vector<int>& procs) {
    dist::ArrayId id;
    rt.arrays().create_array(0, dist::ElemType::Float64, {2 * nn}, procs,
                             {dist::DimSpec::block()},
                             dist::BorderSpec::none(),
                             dist::Indexing::RowMajor, id);
    return id;
  };
  auto make_eps = [&](const std::vector<int>& procs) {
    dist::ArrayId id;
    rt.arrays().create_array(0, dist::ElemType::Float64, {2 * nn, group},
                             procs,
                             {dist::DimSpec::star(), dist::DimSpec::block()},
                             dist::BorderSpec::none(),
                             dist::Indexing::ColumnMajor, id);
    rt.call(procs, "compute_roots").constant(nn).local(id).run();
    return id;
  };

  const std::vector<int> g1a = util::node_array(0, 1, group);
  const std::vector<int> g1b = util::node_array(group, 1, group);
  const std::vector<int> g2 = util::node_array(2 * group, 1, group);
  dist::ArrayId a1a = make_data(g1a);
  dist::ArrayId a1b = make_data(g1b);
  dist::ArrayId a2 = make_data(g2);
  dist::ArrayId e1a = make_eps(g1a);
  dist::ArrayId e1b = make_eps(g1b);
  dist::ArrayId e2 = make_eps(g2);

  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist01(-1.0, 1.0);
  std::vector<double> f(static_cast<std::size_t>(n));
  std::vector<double> g(static_cast<std::size_t>(n));
  for (auto& c : f) c = dist01(rng);
  for (auto& c : g) c = dist01(rng);

  const int bits = util::floor_log2(nn);
  auto load = [&](dist::ArrayId id, const std::vector<double>& poly) {
    for (int j = 0; j < nn; ++j) {
      const int pos = static_cast<int>(util::bit_reverse(
          bits, static_cast<std::uint64_t>(j)));
      const double re =
          j < n ? poly[static_cast<std::size_t>(j)] : 0.0;
      rt.arrays().write_element(0, id, std::vector<int>{2 * pos},
                                dist::Scalar{re});
      rt.arrays().write_element(0, id, std::vector<int>{2 * pos + 1},
                                dist::Scalar{0.0});
    }
  };
  load(a1a, f);
  load(a1b, g);

  auto inverse_fft = [&](const std::vector<int>& procs, dist::ArrayId eps,
                         dist::ArrayId data) {
    ASSERT_EQ(rt.call(procs, "fft_reverse")
                  .constant(procs)
                  .constant(group)
                  .index()
                  .constant(nn)
                  .constant(fft::kInverse)
                  .local(eps)
                  .local(data)
                  .run(),
              kStatusOk);
  };
  pcn::par([&] { inverse_fft(g1a, e1a, a1a); },
           [&] { inverse_fft(g1b, e1b, a1b); });

  // Combine: elementwise complex multiply through the global interface.
  for (int j = 0; j < nn; ++j) {
    dist::Scalar re1s;
    dist::Scalar im1s;
    dist::Scalar re2s;
    dist::Scalar im2s;
    rt.arrays().read_element(0, a1a, std::vector<int>{2 * j}, re1s);
    rt.arrays().read_element(0, a1a, std::vector<int>{2 * j + 1}, im1s);
    rt.arrays().read_element(0, a1b, std::vector<int>{2 * j}, re2s);
    rt.arrays().read_element(0, a1b, std::vector<int>{2 * j + 1}, im2s);
    const double re1 = std::get<double>(re1s);
    const double im1 = std::get<double>(im1s);
    const double re2 = std::get<double>(re2s);
    const double im2 = std::get<double>(im2s);
    rt.arrays().write_element(0, a2, std::vector<int>{2 * j},
                              dist::Scalar{re1 * re2 - im1 * im2});
    rt.arrays().write_element(0, a2, std::vector<int>{2 * j + 1},
                              dist::Scalar{re2 * im1 + re1 * im2});
  }

  ASSERT_EQ(rt.call(g2, "fft_natural")
                .constant(g2)
                .constant(group)
                .index()
                .constant(nn)
                .constant(fft::kForward)
                .local(e2)
                .local(a2)
                .run(),
            kStatusOk);

  const std::vector<double> want = fft::poly_mul_naive(f, g);
  for (int j = 0; j < 2 * n - 1; ++j) {
    const int pos = static_cast<int>(util::bit_reverse(
        bits, static_cast<std::uint64_t>(j)));
    dist::Scalar re;
    dist::Scalar im;
    ASSERT_EQ(
        rt.arrays().read_element(0, a2, std::vector<int>{2 * pos}, re),
        Status::Ok);
    ASSERT_EQ(
        rt.arrays().read_element(0, a2, std::vector<int>{2 * pos + 1}, im),
        Status::Ok);
    EXPECT_NEAR(std::get<double>(re), want[static_cast<std::size_t>(j)],
                1e-9)
        << j;
    EXPECT_NEAR(std::get<double>(im), 0.0, 1e-9) << j;
  }
}

TEST(Integration, CoupledModelsConvergeToSharedInterface) {
  // Figure 2.1 as a test: ocean (hot) and atmosphere (cold) couple through
  // the caller; the interface settles strictly between the extremes and
  // both models move monotonically toward it.
  core::Runtime rt(4);
  linalg::register_stencil_programs(rt.programs());
  const int m = 16;
  const std::vector<int> po = util::node_array(0, 1, 2);
  const std::vector<int> pa = util::node_array(2, 1, 2);
  dist::ArrayId ocean;
  dist::ArrayId atmos;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {m}, po, {dist::DimSpec::block()},
                dist::BorderSpec::foreign("heat_step_1d", 2),
                dist::Indexing::RowMajor, ocean),
            Status::Ok);
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {m}, pa, {dist::DimSpec::block()},
                dist::BorderSpec::foreign("heat_step_1d", 2),
                dist::Indexing::RowMajor, atmos),
            Status::Ok);
  for (int i = 0; i < m; ++i) {
    rt.arrays().write_element(0, ocean, std::vector<int>{i},
                              dist::Scalar{80.0});
    rt.arrays().write_element(0, atmos, std::vector<int>{i},
                              dist::Scalar{10.0});
  }
  for (int step = 0; step < 20; ++step) {
    pcn::par(
        [&] {
          rt.call(po, "heat_step_1d")
              .constant(0.2)
              .constant(5)
              .local(ocean)
              .status()
              .run();
        },
        [&] {
          rt.call(pa, "heat_step_1d")
              .constant(0.2)
              .constant(5)
              .local(atmos)
              .status()
              .run();
        });
    dist::Scalar sea;
    dist::Scalar air;
    rt.arrays().read_element(0, ocean, std::vector<int>{m - 1}, sea);
    rt.arrays().read_element(0, atmos, std::vector<int>{0}, air);
    const double t = 0.5 * (std::get<double>(sea) + std::get<double>(air));
    rt.arrays().write_element(0, ocean, std::vector<int>{m - 1},
                              dist::Scalar{t});
    rt.arrays().write_element(0, atmos, std::vector<int>{0},
                              dist::Scalar{t});
  }
  dist::Scalar sea;
  dist::Scalar air;
  rt.arrays().read_element(0, ocean, std::vector<int>{m - 1}, sea);
  rt.arrays().read_element(0, atmos, std::vector<int>{0}, air);
  EXPECT_GT(std::get<double>(sea), 10.0);
  EXPECT_LT(std::get<double>(sea), 80.0);
  EXPECT_GT(std::get<double>(air), 10.0);
  EXPECT_LT(std::get<double>(air), 80.0);
}

TEST(Integration, ReactiveGraphDrivesDataParallelModel) {
  // Figure 2.3 as a test: a source component's events trigger distributed
  // calls on the sink component's processor group.
  core::Runtime rt(4);
  linalg::register_stencil_programs(rt.programs());
  dist::ArrayId field;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {8, 8}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::star()},
                dist::BorderSpec::foreign("jacobi_step_2d", 1),
                dist::Indexing::RowMajor, field),
            Status::Ok);
  for (int j = 0; j < 8; ++j) {
    rt.arrays().write_element(0, field, std::vector<int>{0, j},
                              dist::Scalar{100.0});
  }

  sim::EventSimulation des;
  int relaxations = 0;
  const int src = des.add_component(
      "driver", [](double now, const std::vector<sim::Event>&) {
        std::vector<sim::Event> out;
        if (now < 5.0) {
          sim::Event tick;
          tick.time = now;
          out.push_back(tick);
          sim::Event wake;
          wake.time = now + 1.0;
          wake.kind = sim::kSelfWake;
          out.push_back(wake);
        }
        return out;
      });
  const int model = des.add_component(
      "model",
      [&](double, const std::vector<sim::Event>& in) {
        for (const sim::Event& e : in) {
          (void)e;
          std::vector<double> residual;
          EXPECT_EQ(rt.call(rt.all_procs(), "jacobi_step_2d")
                        .constant(2)
                        .local(field)
                        .reduce_f64(1, core::f64_max(), &residual)
                        .run(),
                    kStatusOk);
          ++relaxations;
        }
        return std::vector<sim::Event>{};
      },
      -1.0);
  des.connect(src, model);
  des.run(10.0);
  EXPECT_EQ(relaxations, 5);  // ticks at t = 0..4 (the t=5 wake emits none)
  dist::Scalar mid;
  ASSERT_EQ(
      rt.arrays().read_element(0, field, std::vector<int>{4, 4}, mid),
      Status::Ok);
  EXPECT_GT(std::get<double>(mid), 0.0);
}

TEST(Integration, StreamsCarryDatasetsBetweenStages) {
  // The pipeline plumbing of §6.2 in isolation: producer, transformer and
  // consumer connected by definitional streams of datasets.
  pcn::Stream<std::vector<double>> raw;
  pcn::Stream<std::vector<double>> doubled;
  std::vector<double> sums;
  pcn::par(
      [&] {
        pcn::Stream<std::vector<double>> t = raw;
        for (int d = 0; d < 5; ++d) {
          t = t.put({1.0 * d, 2.0 * d});
        }
        t.close();
      },
      [&] {
        pcn::Stream<std::vector<double>> in = raw;
        pcn::Stream<std::vector<double>> out = doubled;
        for (std::optional<std::vector<double>> v; (v = in.next());) {
          for (double& e : *v) e *= 2.0;
          out = out.put(std::move(*v));
        }
        out.close();
      },
      [&] {
        pcn::Stream<std::vector<double>> in = doubled;
        for (std::optional<std::vector<double>> v; (v = in.next());) {
          double s = 0.0;
          for (double e : *v) s += e;
          sums.push_back(s);
        }
      });
  EXPECT_EQ(sums, (std::vector<double>{0.0, 6.0, 12.0, 18.0, 24.0}));
}

}  // namespace
}  // namespace tdp
