// tdp::obs — tracer, metrics, and exporter behaviour.
//
// The tracer's contract: concurrent emitters lose nothing up to capacity
// (each slot is written exactly once), drops are counted past capacity, and
// the disabled path records nothing at all.  The exporters' contract: the
// Chrome trace is well-formed JSON with the trace_event keys, and the
// summary's per-VP message counts sum to the machine total.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vp/machine.hpp"

namespace {

using namespace tdp;

// Restores the kill switch and empties the tracer around every test so obs
// state never leaks between cases (or into other suites' expectations).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kCompiledIn) GTEST_SKIP() << "built with TDP_OBS_DISABLED";
    obs::set_enabled(true);
    obs::Tracer::instance().reset(1 << 12);
    obs::Registry::instance().reset_values();
  }
  void TearDown() override {
    if (!obs::kCompiledIn) return;
    obs::set_enabled(false);
    obs::Tracer::instance().reset();
    obs::Registry::instance().reset_values();
  }
};

// --- A minimal JSON parser: enough to verify well-formedness. -------------

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool parse_string() {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool parse_number() {
    skip_ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool parse_value() {
    skip_ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return s.compare(i, 4, "true") == 0 && ((i += 4), true);
      case 'f':
        return s.compare(i, 5, "false") == 0 && ((i += 5), true);
      case 'n':
        return s.compare(i, 4, "null") == 0 && ((i += 4), true);
      default:
        return parse_number();
    }
  }
  bool parse_object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!parse_string() || !eat(':') || !parse_value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool parse_array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!parse_value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool parse_document() {
    if (!parse_value()) return false;
    skip_ws();
    return i == s.size();
  }
};

// --- Tracer. ---------------------------------------------------------------

TEST_F(ObsTest, ConcurrentEmittersLoseNothingUpToCapacity) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;  // 1600 events, well under 4096/shard

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // All threads claim the same virtual processor, so every event lands
      // in ONE shard and the emitters genuinely race on its buffer head.
      obs::set_current_vp(5);
      for (int k = 0; k < kPerThread; ++k) {
        obs::instant(obs::Op::MsgSend, 0,
                     static_cast<std::uint64_t>(t * kPerThread + k));
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<obs::EventRecord> events =
      obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);

  // Every payload appears exactly once: nothing lost, nothing duplicated.
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const obs::EventRecord& e : events) {
    ASSERT_LT(e.arg0, seen.size());
    EXPECT_FALSE(seen[e.arg0]);
    seen[e.arg0] = true;
    EXPECT_EQ(e.vp, 5);
    EXPECT_EQ(e.op, obs::Op::MsgSend);
  }
}

TEST_F(ObsTest, OverflowCountsDropsInsteadOfOverwriting) {
  obs::Tracer::instance().reset(256);
  obs::set_current_vp(0);
  for (int k = 0; k < 1000; ++k) {
    obs::instant(obs::Op::MsgSend, 0, static_cast<std::uint64_t>(k));
  }
  obs::set_current_vp(-1);

  const std::vector<obs::EventRecord> events =
      obs::Tracer::instance().snapshot();
  EXPECT_EQ(events.size(), 256u);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 744u);
  // Keep-first: the retained records are the earliest ones.
  for (const obs::EventRecord& e : events) EXPECT_LT(e.arg0, 256u);
}

TEST_F(ObsTest, DisabledModeEmitsNothing) {
  obs::set_enabled(false);
  obs::instant(obs::Op::MsgSend, 1, 2, 3);
  {
    obs::Span span(obs::Op::CallExecute, 42);
  }
  obs::counter_sample(obs::Op::QueueDepth, 7, 3);
  EXPECT_EQ(obs::Tracer::instance().recorded(), 0u);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST_F(ObsTest, SpanRecordsDurationAndLateBoundPayload) {
  {
    obs::Span span(obs::Op::CallExecute, 9, 4);
    span.set_arg1(17);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<obs::EventRecord> events =
      obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::EventKind::Span);
  EXPECT_EQ(events[0].comm, 9u);
  EXPECT_EQ(events[0].arg0, 4u);
  EXPECT_EQ(events[0].arg1, 17u);
  EXPECT_GE(events[0].dur_ns, 1000000u);  // at least 1ms of the 2ms sleep
}

// --- Metrics. --------------------------------------------------------------

TEST_F(ObsTest, ShardedCounterMergesAcrossVps) {
  obs::ShardedCounter c;
  std::vector<std::thread> threads;
  for (int vp = 0; vp < 4; ++vp) {
    threads.emplace_back([&c, vp] {
      obs::set_current_vp(vp);
      for (int k = 0; k < 1000; ++k) c.add();
    });
  }
  for (auto& th : threads) th.join();
  c.add_at(2, 5);
  EXPECT_EQ(c.value(), 4005u);
  const std::vector<std::uint64_t> per_vp = c.per_shard(4);
  EXPECT_EQ(per_vp[0], 1000u);
  EXPECT_EQ(per_vp[2], 1005u);
}

TEST_F(ObsTest, HistogramPercentilesOnKnownDistribution) {
  obs::Histogram h;
  // 100 samples of 10 (bucket ub 15), 100 of 1000 (ub 1023), 100 of
  // 100000 (ub 131071): tertile boundaries are known exactly.
  for (int k = 0; k < 100; ++k) h.record(10);
  for (int k = 0; k < 100; ++k) h.record(1000);
  for (int k = 0; k < 100; ++k) h.record(100000);

  EXPECT_EQ(h.count(), 300u);
  EXPECT_EQ(h.sum(), 100u * 10 + 100u * 1000 + 100u * 100000);
  EXPECT_EQ(h.max(), 100000u);
  // Interpolated within the containing log2 bucket: p10's rank 30 sits
  // 30% into the [8,15] bucket, p50's rank 150 halfway into [512,1023],
  // p99's rank 297 97% into [65536,131071]; p100 is the bucket upper bound.
  EXPECT_EQ(h.percentile(0.10), 10u);
  EXPECT_EQ(h.percentile(0.50), 767u);
  EXPECT_EQ(h.percentile(0.99), 129104u);
  EXPECT_EQ(h.percentile(1.0), 131071u);

  obs::Histogram zeros;
  zeros.record(0);
  EXPECT_EQ(zeros.percentile(0.5), 0u);
  EXPECT_EQ(zeros.count(), 1u);
}

TEST_F(ObsTest, HistogramMergesShardsFromConcurrentVps) {
  obs::Histogram h;
  std::vector<std::thread> threads;
  for (int vp = 0; vp < 8; ++vp) {
    threads.emplace_back([&h, vp] {
      obs::set_current_vp(vp);
      for (int k = 0; k < 500; ++k) h.record(100);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), 4000u);
  // All 4000 samples share the [64,127] bucket; the median interpolates
  // to its midpoint.
  EXPECT_EQ(h.percentile(0.5), 95u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::ShardedCounter& a = obs::Registry::instance().counter("obs_test.a");
  obs::ShardedCounter& b = obs::Registry::instance().counter("obs_test.a");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  obs::Histogram& h1 = obs::Registry::instance().histogram("obs_test.h");
  obs::Histogram& h2 = obs::Registry::instance().histogram("obs_test.h");
  EXPECT_EQ(&h1, &h2);
}

// --- Exporters. ------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  obs::set_current_vp(2);
  obs::instant(obs::Op::MsgSend, 7, 1, 2);
  obs::counter_sample(obs::Op::QueueDepth, 5, 2);
  {
    obs::Span span(obs::Op::CallExecute, 7, 0);
  }
  obs::set_current_vp(-1);
  obs::instant(obs::Op::RecvMiss, 0, 0, 1);  // external thread row

  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();

  JsonParser parser(json);
  EXPECT_TRUE(parser.parse_document()) << json;

  // The trace_event envelope and per-event keys Perfetto requires.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"vp.send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"call.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"comm\":7"), std::string::npos);
}

TEST_F(ObsTest, SummaryReportsPerVpMessagesSummingToMachineTotal) {
  vp::Machine machine(4);
  for (int dst = 0; dst < 4; ++dst) {
    for (int k = 0; k <= dst; ++k) {
      vp::Message m;
      m.src = 0;
      machine.send(dst, m);
      machine.mailbox(dst).receive([](const vp::Message&) { return true; });
    }
  }
  EXPECT_EQ(machine.messages_sent(), 10u);

  const std::vector<std::uint64_t> by_vp = machine.messages_by_vp();
  ASSERT_EQ(by_vp.size(), 4u);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < by_vp.size(); ++i) {
    EXPECT_EQ(by_vp[i], i + 1);
    sum += by_vp[i];
  }
  EXPECT_EQ(sum, machine.messages_sent());

  obs::MachineStats stats;
  stats.per_vp_messages = by_vp;
  stats.total_messages = machine.messages_sent();
  std::ostringstream out;
  obs::write_summary(out, &stats);
  const std::string text = out.str();
  EXPECT_NE(text.find("(consistent)"), std::string::npos) << text;
  EXPECT_NE(text.find("vp3=4"), std::string::npos) << text;
  EXPECT_NE(text.find("mailbox.recv_wait_ns"), std::string::npos) << text;
}

TEST_F(ObsTest, KillSwitchKeepsInstrumentedHotPathsSilent) {
  obs::set_enabled(false);
  vp::Machine machine(2);
  vp::Message m;
  m.src = 0;
  machine.send(1, m);
  machine.mailbox(1).receive([](const vp::Message&) { return true; });
  // The canonical message counter still counts (it predates obs)...
  EXPECT_EQ(machine.messages_sent(), 1u);
  // ...but no trace events and no registry activity were produced.
  EXPECT_EQ(obs::Tracer::instance().recorded(), 0u);
  EXPECT_EQ(
      obs::Registry::instance().counter("mailbox.recv_miss").value(), 0u);
}

}  // namespace
