// Transport tests: the wire codec, the env factory's fallbacks, and real
// multi-process runs over the UDS backend.
//
// Process model: this binary owns main().  Run with no TDP_TEST_ROLE it is
// an ordinary gtest suite; with one, it runs that rank role and exits.
// The suite spawns rank processes by fork + exec of /proc/self/exe with a
// pre-built environment — exec-after-fork keeps the children safe no
// matter what threads (gtest, obs singletons, TSan runtime) live in the
// parent, where a bare fork would not.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/analyze.hpp"
#include "spmd/context.hpp"
#include "vp/machine.hpp"
#include "vp/transport.hpp"

namespace tdp {
namespace {

// ---------------------------------------------------------------------------
// Rank roles (run in child processes under TDP_TEST_ROLE).

int role_ring() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  const int p = ctx.index();
  const int n = ctx.nprocs();
  int token = p;
  for (int hop = 0; hop < n - 1; ++hop) {
    ctx.send_value((p + 1) % n, 1, token);
    token = ctx.recv_value<int>((p - 1 + n) % n, 1);
  }
  if (token != (p + 1) % n) return 1;
  ctx.barrier();
  return 0;
}

int role_coll() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  const int p = ctx.index();
  const int n = ctx.nprocs();

  ctx.barrier();

  std::vector<int> bcast(8, p == 1 ? 41 : -1);
  ctx.broadcast(std::span<int>(bcast), 1);
  for (const int v : bcast) {
    if (v != 41) return 10;
  }

  std::vector<double> red{static_cast<double>(p), 1.0};
  ctx.reduce<double>(std::span<double>(red), 0,
                     [](const double& a, const double& b) { return a + b; });
  if (p == 0 &&
      (red[0] != static_cast<double>(n * (n - 1)) / 2.0 ||
       red[1] != static_cast<double>(n))) {
    return 11;
  }

  const double sum = ctx.allreduce_sum(static_cast<double>(p + 1));
  if (sum != static_cast<double>(n * (n + 1)) / 2.0) return 12;

  const int mine = p * 3;
  const std::vector<int> gathered =
      ctx.gather(std::span<const int>(&mine, 1), 0);
  if (p == 0) {
    for (int k = 0; k < n; ++k) {
      if (gathered[static_cast<std::size_t>(k)] != k * 3) return 13;
    }
  }

  const std::vector<int> all = ctx.allgather(std::span<const int>(&mine, 1));
  for (int k = 0; k < n; ++k) {
    if (all[static_cast<std::size_t>(k)] != k * 3) return 14;
  }

  int scanned = 1;
  ctx.scan<int>(std::span<int>(&scanned, 1),
                [](const int& a, const int& b) { return a + b; });
  if (scanned != p + 1) return 15;

  ctx.barrier();
  return 0;
}

// Pairwise tagged traffic that stays correct under non-lossy injection
// (delay/dup/reorder): every (tag, src) tuple is used exactly once, so a
// duplicate can never satisfy a later receive and a reorder only swaps
// messages the receiver distinguishes by tag anyway.
int role_fault() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  const int p = ctx.index();
  const int n = ctx.nprocs();
  constexpr int kMsgs = 16;
  for (int q = 0; q < n; ++q) {
    if (q == p) continue;
    for (int k = 0; k < kMsgs; ++k) {
      ctx.send_value(q, 100 + k, p * 1000 + k);
    }
  }
  for (int q = 0; q < n; ++q) {
    if (q == p) continue;
    for (int k = 0; k < kMsgs; ++k) {
      const int got = ctx.recv_value<int>(q, 100 + k);
      if (got != q * 1000 + k) return 20;
    }
  }
  return 0;
}

// drop:1 loses every message at the send boundary; the receive deadline
// must fire as vp::ReceiveTimeout (the typed error, not a hang).
int role_drop() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  const int peer = ctx.index() == 0 ? 1 : 0;
  ctx.send_value(peer, 7, 1234);
  try {
    ctx.recv_value<int>(peer, 7);
  } catch (const vp::ReceiveTimeout&) {
    return 0;
  }
  return 21;  // the dropped message arrived?!
}

// Rank 1 sends one message and exits; rank 0 receives it, then waits for a
// second that can never come.  The timeout must name the dead rank.
int role_dead() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  if (ctx.index() == 1) {
    ctx.send_value(0, 5, 99);
    return 0;  // exit; the EOF is rank 0's death notice
  }
  if (ctx.recv_value<int>(1, 5) != 99) return 30;
  try {
    ctx.recv_value<int>(1, 6);
  } catch (const vp::ReceiveTimeout& t) {
    const std::string what = t.what();
    if (what.find("rank 1") == std::string::npos) {
      std::fprintf(stderr, "timeout does not name the dead rank: %s\n",
                   what.c_str());
      return 31;
    }
    return 0;
  }
  return 32;  // no timeout at all
}

// A poison marker must survive framing: its origin crosses the wire in
// the header and the receiving copy fails fast with the right blame.
int role_poison() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  if (ctx.index() == 0) {
    ctx.send_poison(1, 9, 0);
    // Stay alive until the peer confirms: exiting early would race the
    // poison frame against our socket teardown only in one direction, but
    // the ack makes the test deterministic.
    return ctx.recv_value<int>(1, 10) == 1 ? 0 : 40;
  }
  try {
    ctx.recv_payload(0, 9);
  } catch (const spmd::coll::Poisoned& p) {
    ctx.send_value(0, 10, p.origin == 0 ? 1 : 0);
    return p.origin == 0 ? 0 : 41;
  }
  return 42;  // poison arrived as data
}

// Request/reply under TDP_OBS=1: each side's atexit flush writes a
// rank-qualified trace; the parent asserts the cross-process flow pairs.
int role_flow() {
  vp::Machine machine(spmd::env_size());
  vp::ProcScope scope(spmd::env_rank());
  spmd::SpmdContext ctx = spmd::context_from_env(machine);
  if (ctx.index() == 0) {
    ctx.send_value(1, 3, 7);
    return ctx.recv_value<int>(1, 4) == 8 ? 0 : 50;
  }
  const int got = ctx.recv_value<int>(0, 3);
  ctx.send_value(0, 4, got + 1);
  return got == 7 ? 0 : 51;
}

int run_role(const std::string& role) {
  if (role == "ring") return role_ring();
  if (role == "coll") return role_coll();
  if (role == "fault") return role_fault();
  if (role == "drop") return role_drop();
  if (role == "dead") return role_dead();
  if (role == "poison") return role_poison();
  if (role == "flow") return role_flow();
  std::fprintf(stderr, "transport_test: unknown TDP_TEST_ROLE \"%s\"\n",
               role.c_str());
  return 99;
}

// ---------------------------------------------------------------------------
// Parent-side spawning.

using EnvList = std::vector<std::pair<std::string, std::string>>;

std::string make_rendezvous_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string templ =
      std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
      "/tdp_transport_test.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) return {};
  return buf.data();
}

pid_t spawn_rank(const std::string& role, int rank, int size,
                 const std::string& dir, const EnvList& extra) {
  std::vector<std::string> env = {
      "TDP_TEST_ROLE=" + role,
      "TDP_TRANSPORT=uds",
      "TDP_RANK=" + std::to_string(rank),
      "TDP_SIZE=" + std::to_string(size),
      "TDP_UDS_DIR=" + dir,
  };
  for (const char* keep : {"PATH", "HOME", "TMPDIR", "TSAN_OPTIONS",
                           "ASAN_OPTIONS", "UBSAN_OPTIONS", "LSAN_OPTIONS"}) {
    if (const char* v = std::getenv(keep); v != nullptr) {
      env.push_back(std::string(keep) + "=" + v);
    }
  }
  for (const auto& [k, v] : extra) env.push_back(k + "=" + v);
  // Everything exec needs is built BEFORE fork: between fork and exec only
  // async-signal-safe calls are allowed in a threaded parent.
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (std::string& e : env) envp.push_back(e.data());
  envp.push_back(nullptr);
  static char argv0[] = "transport_test_rank";
  char* child_argv[] = {argv0, nullptr};
  const pid_t pid = fork();
  if (pid == 0) {
    execve("/proc/self/exe", child_argv, envp.data());
    _exit(127);
  }
  return pid;
}

/// Waits for every pid with a global deadline; on expiry kills the
/// stragglers and reports them as failures.  Returns per-rank exit codes
/// (negative: killed by that signal, -1000: deadline kill).
std::vector<int> wait_ranks(const std::vector<pid_t>& pids,
                            std::chrono::seconds budget) {
  std::vector<int> codes(pids.size(), -1000);
  std::vector<bool> done(pids.size(), false);
  const auto deadline = std::chrono::steady_clock::now() + budget;
  std::size_t remaining = pids.size();
  while (remaining > 0 && std::chrono::steady_clock::now() < deadline) {
    bool progressed = false;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (done[i]) continue;
      int status = 0;
      const pid_t r = waitpid(pids[i], &status, WNOHANG);
      if (r == pids[i]) {
        done[i] = true;
        --remaining;
        progressed = true;
        codes[i] = WIFEXITED(status) ? WEXITSTATUS(status)
                   : WIFSIGNALED(status) ? -WTERMSIG(status)
                                         : -999;
      }
    }
    if (!progressed && remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (!done[i]) {
      kill(pids[i], SIGKILL);
      waitpid(pids[i], nullptr, 0);
    }
  }
  return codes;
}

std::vector<int> launch(const std::string& role, int size,
                        const EnvList& extra = {},
                        std::string* dir_out = nullptr) {
  const std::string dir = make_rendezvous_dir();
  if (dir.empty()) return {};
  if (dir_out != nullptr) *dir_out = dir;
  std::vector<pid_t> pids;
  for (int r = 0; r < size; ++r) {
    pids.push_back(spawn_rank(role, r, size, dir, extra));
  }
  return wait_ranks(pids, std::chrono::seconds(60));
}

// ---------------------------------------------------------------------------
// Wire codec.

TEST(TransportWire, HeaderRoundTripPreservesEveryEnvelopeField) {
  vp::wire::FrameHeader h;
  h.cls = static_cast<std::uint32_t>(vp::MessageClass::DataParallel);
  h.comm = 0xDEADBEEFCAFEull;
  h.tag = -7;  // collective tags are negative: signedness must survive
  h.src = 3;
  h.poison_origin = 2;
  h.flow = (std::uint64_t{5} << 47) | (std::uint64_t{9} << 40) | 1234;
  h.seq = 42;
  h.payload_bytes = 4096;

  std::byte buf[vp::wire::kHeaderBytes];
  vp::wire::encode_header(h, buf);
  vp::wire::FrameHeader d;
  ASSERT_TRUE(vp::wire::decode_header(buf, d));
  EXPECT_EQ(d.cls, h.cls);
  EXPECT_EQ(d.comm, h.comm);
  EXPECT_EQ(d.tag, h.tag);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.poison_origin, h.poison_origin);
  EXPECT_EQ(d.flow, h.flow);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.payload_bytes, h.payload_bytes);

  buf[0] = static_cast<std::byte>(0x00);  // break the magic
  EXPECT_FALSE(vp::wire::decode_header(buf, d));
}

TEST(TransportWire, MessageSurvivesFraming) {
  vp::Message m;
  m.cls = vp::MessageClass::TaskParallel;
  m.comm = 77;
  m.tag = -4;
  m.src = 1;
  m.poison_origin = 3;
  m.flow = 0x123456789ull;
  const char body[] = "payload";
  m.payload = vp::Payload::copy_of(std::as_bytes(std::span(body)));

  const vp::wire::FrameHeader h = vp::wire::header_for(m, 7);
  EXPECT_EQ(h.seq, 7u);
  EXPECT_EQ(h.payload_bytes, m.payload.size());

  std::byte buf[vp::wire::kHeaderBytes];
  vp::wire::encode_header(h, buf);
  vp::wire::FrameHeader d;
  ASSERT_TRUE(vp::wire::decode_header(buf, d));
  vp::Message back = vp::wire::to_message(d, m.payload);
  EXPECT_EQ(back.cls, m.cls);
  EXPECT_EQ(back.comm, m.comm);
  EXPECT_EQ(back.tag, m.tag);
  EXPECT_EQ(back.src, m.src);
  EXPECT_EQ(back.poison_origin, m.poison_origin);
  EXPECT_EQ(back.flow, m.flow);
  EXPECT_EQ(back.payload.size(), m.payload.size());
  EXPECT_EQ(std::memcmp(back.payload.data(), m.payload.data(),
                        m.payload.size()),
            0);
}

TEST(TransportWire, HelloRoundTrip) {
  std::byte buf[vp::wire::kHelloBytes];
  vp::wire::encode_hello(13, buf);
  int rank = -1;
  ASSERT_TRUE(vp::wire::decode_hello(buf, rank));
  EXPECT_EQ(rank, 13);
  buf[3] = static_cast<std::byte>(0xFF);
  EXPECT_FALSE(vp::wire::decode_hello(buf, rank));
}

// ---------------------------------------------------------------------------
// Factory fallbacks: a mis-launched process degrades to the in-process
// transport instead of hanging or aborting.

TEST(TransportFactory, DefaultsToDirect) {
  vp::Machine machine(2);
  EXPECT_STREQ(machine.transport().name(), "direct");
  EXPECT_FALSE(machine.transport_remote());
  EXPECT_TRUE(machine.transport_diagnostic().empty());
}

TEST(TransportFactory, UnknownKindFallsBackToDirect) {
  ::setenv("TDP_TRANSPORT", "carrier-pigeon", 1);
  vp::Machine machine(2);
  ::unsetenv("TDP_TRANSPORT");
  EXPECT_STREQ(machine.transport().name(), "direct");
}

TEST(TransportFactory, UdsWithoutLaunchEnvFallsBackToDirect) {
  ::setenv("TDP_TRANSPORT", "uds", 1);  // no TDP_RANK/TDP_SIZE/TDP_UDS_DIR
  vp::Machine machine(2);
  ::unsetenv("TDP_TRANSPORT");
  EXPECT_STREQ(machine.transport().name(), "direct");
}

TEST(TransportFactory, UdsSizeMismatchFallsBackToDirect) {
  ::setenv("TDP_TRANSPORT", "uds", 1);
  ::setenv("TDP_RANK", "0", 1);
  ::setenv("TDP_SIZE", "4", 1);
  ::setenv("TDP_UDS_DIR", "/tmp", 1);
  vp::Machine machine(2);  // a helper machine inside a launched process
  ::unsetenv("TDP_TRANSPORT");
  ::unsetenv("TDP_RANK");
  ::unsetenv("TDP_SIZE");
  ::unsetenv("TDP_UDS_DIR");
  EXPECT_STREQ(machine.transport().name(), "direct");
}

// ---------------------------------------------------------------------------
// Multi-process runs.

TEST(TransportUds, RingAcrossFourProcesses) {
  const std::vector<int> codes = launch("ring", 4);
  ASSERT_EQ(codes.size(), 4u);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(codes[r], 0) << "rank " << r;
  }
}

TEST(TransportUds, CollectivesSweepAcrossFourProcesses) {
  const std::vector<int> codes = launch("coll", 4);
  ASSERT_EQ(codes.size(), 4u);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(codes[r], 0) << "rank " << r;
  }
}

TEST(TransportUds, NonLossyFaultInjectionDeliversEverything) {
  // delay/dup/reorder but no drop: everything must still arrive, framed in
  // per-connection order, and the receiver's selective receive sorts the
  // rest out.  Faults fire sender-side, before framing.
  const std::vector<int> codes =
      launch("fault", 3,
             {{"TDP_FAULT", "delay:1,dup:0.3,reorder:0.3,seed:11"},
              {"TDP_RECV_TIMEOUT_MS", "30000"}});
  ASSERT_EQ(codes.size(), 3u);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(codes[r], 0) << "rank " << r;
  }
}

TEST(TransportUds, CertainDropSurfacesAsReceiveTimeout) {
  const std::vector<int> codes =
      launch("drop", 2,
             {{"TDP_FAULT", "drop:1,seed:3"},
              {"TDP_RECV_TIMEOUT_MS", "300"}});
  ASSERT_EQ(codes.size(), 2u);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(codes[r], 0) << "rank " << r;
  }
}

TEST(TransportUds, PeerDeathNamesTheDeadRank) {
  const std::vector<int> codes =
      launch("dead", 2, {{"TDP_RECV_TIMEOUT_MS", "1000"}});
  ASSERT_EQ(codes.size(), 2u);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(codes[r], 0) << "rank " << r;
  }
}

TEST(TransportUds, PoisonOriginSurvivesTheWire) {
  const std::vector<int> codes =
      launch("poison", 2, {{"TDP_RECV_TIMEOUT_MS", "10000"}});
  ASSERT_EQ(codes.size(), 2u);
  for (std::size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(codes[r], 0) << "rank " << r;
  }
}

TEST(TransportUds, CrossProcessFlowsPairInMergedTraces) {
  // Spawned by hand (not via launch()) because the trace path lives inside
  // the rendezvous dir, which must exist before the env is built.
  const std::string dir2 = make_rendezvous_dir();
  ASSERT_FALSE(dir2.empty());
  const std::string trace_base = dir2 + "/pair.json";
  std::vector<pid_t> pids;
  for (int r = 0; r < 2; ++r) {
    pids.push_back(spawn_rank("flow", r, 2, dir2,
                              {{"TDP_OBS", "1"},
                               {"TDP_OBS_TRACE", trace_base},
                               {"TDP_RECV_TIMEOUT_MS", "10000"}}));
  }
  const std::vector<int> codes2 =
      wait_ranks(pids, std::chrono::seconds(60));
  ASSERT_EQ(codes2.size(), 2u);
  for (std::size_t r = 0; r < codes2.size(); ++r) {
    ASSERT_EQ(codes2[r], 0) << "rank " << r;
  }

  // Each rank wrote its own file (per_rank_path inserts ".rank<k>").
  std::vector<obs::LoadedEvent> merged;
  std::vector<std::vector<obs::LoadedEvent>> per_file(2);
  for (int r = 0; r < 2; ++r) {
    const std::string path = dir2 + "/pair.rank" + std::to_string(r) +
                             ".json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing per-rank trace " << path;
    std::string error;
    ASSERT_TRUE(obs::load_chrome_trace(in, per_file[static_cast<std::size_t>(
                                               r)],
                                       &error))
        << error;
    merged.insert(merged.end(),
                  per_file[static_cast<std::size_t>(r)].begin(),
                  per_file[static_cast<std::size_t>(r)].end());
  }

  // The raw endpoints must pair across files in BOTH directions: rank 0's
  // send received by rank 1, and the reply back.  This is the flow id
  // surviving the wire framing end to end.
  int cross_pairs = 0;
  for (int from = 0; from < 2; ++from) {
    const auto& sends = per_file[static_cast<std::size_t>(from)];
    const auto& recvs = per_file[static_cast<std::size_t>(1 - from)];
    bool paired = false;
    for (const obs::LoadedEvent& s : sends) {
      if (s.ph != "i" || s.name != "vp.send" || s.flow == 0) continue;
      for (const obs::LoadedEvent& f : recvs) {
        if (f.ph == "X" && f.name == "vp.recv" && f.flow == s.flow) {
          paired = true;
        }
      }
    }
    if (paired) ++cross_pairs;
  }
  EXPECT_EQ(cross_pairs, 2) << "cross-process flow ids did not pair";

  // And the analyzer agrees on the merged set (what `tdp_trace
  // tdp_trace.rank*.json` computes).
  const obs::TraceReport report = obs::analyze_trace(merged);
  EXPECT_GE(report.flow_pairs, 2u);
}

}  // namespace
}  // namespace tdp

int main(int argc, char** argv) {
  if (const char* role = std::getenv("TDP_TEST_ROLE");
      role != nullptr && role[0] != '\0') {
    return tdp::run_role(role);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
