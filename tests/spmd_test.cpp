// Tests for the SPMD execution context: group-scoped point-to-point
// messaging and the collective operations (§3.1.4, §D).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "pcn/process.hpp"
#include "spmd/context.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"

namespace tdp::spmd {
namespace {

/// Runs `body` as one SPMD program over the first `p` processors.
void run_group(vp::Machine& machine, int p,
               const std::function<void(SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, procs[static_cast<std::size_t>(i)], [&, i] {
      SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

TEST(SpmdContext, IdentityAccessors) {
  vp::Machine machine(4);
  run_group(machine, 4, [](SpmdContext& ctx) {
    EXPECT_EQ(ctx.nprocs(), 4);
    EXPECT_GE(ctx.index(), 0);
    EXPECT_LT(ctx.index(), 4);
    EXPECT_EQ(ctx.proc(), ctx.processors()[static_cast<std::size_t>(ctx.index())]);
    EXPECT_EQ(vp::current_proc(), ctx.proc());
  });
}

TEST(SpmdContext, PointToPointRing) {
  vp::Machine machine(4);
  run_group(machine, 4, [](SpmdContext& ctx) {
    const int next = (ctx.index() + 1) % ctx.nprocs();
    const int prev = (ctx.index() + ctx.nprocs() - 1) % ctx.nprocs();
    ctx.send_value<int>(next, 1, ctx.index() * 10);
    const int got = ctx.recv_value<int>(prev, 1);
    EXPECT_EQ(got, prev * 10);
  });
}

TEST(SpmdContext, MessagesFromSameSenderArriveInOrder) {
  vp::Machine machine(2);
  run_group(machine, 2, [](SpmdContext& ctx) {
    if (ctx.index() == 0) {
      for (int k = 0; k < 10; ++k) ctx.send_value<int>(1, 3, k);
    } else {
      for (int k = 0; k < 10; ++k) {
        EXPECT_EQ(ctx.recv_value<int>(0, 3), k);
      }
    }
  });
}

TEST(SpmdContext, Barrier) {
  vp::Machine machine(6);
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  run_group(machine, 6, [&](SpmdContext& ctx) {
    ++arrived;
    ctx.barrier();
    if (arrived.load() != 6) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(SpmdContext, Broadcast) {
  vp::Machine machine(5);
  run_group(machine, 5, [](SpmdContext& ctx) {
    std::vector<double> data(3, 0.0);
    if (ctx.index() == 2) data = {1.0, 2.0, 3.0};
    ctx.broadcast(std::span<double>(data), 2);
    EXPECT_EQ(data, (std::vector<double>{1.0, 2.0, 3.0}));
  });
}

TEST(SpmdContext, ReduceToRoot) {
  vp::Machine machine(4);
  run_group(machine, 4, [](SpmdContext& ctx) {
    std::vector<int> data{ctx.index() + 1, 10 * (ctx.index() + 1)};
    ctx.reduce<int>(std::span<int>(data), 0,
                    [](const int& a, const int& b) { return a + b; });
    if (ctx.index() == 0) {
      EXPECT_EQ(data[0], 1 + 2 + 3 + 4);
      EXPECT_EQ(data[1], 10 + 20 + 30 + 40);
    }
  });
}

TEST(SpmdContext, AllreduceSumAndMax) {
  vp::Machine machine(8);
  run_group(machine, 8, [](SpmdContext& ctx) {
    const double sum = ctx.allreduce_sum(static_cast<double>(ctx.index()));
    EXPECT_DOUBLE_EQ(sum, 28.0);
    const double mx = ctx.allreduce_max(static_cast<double>(ctx.index()));
    EXPECT_DOUBLE_EQ(mx, 7.0);
    EXPECT_EQ(ctx.allreduce_max_int(-ctx.index()), 0);
  });
}

TEST(SpmdContext, GatherConcatenatesInIndexOrder) {
  vp::Machine machine(4);
  run_group(machine, 4, [](SpmdContext& ctx) {
    std::vector<int> mine{ctx.index() * 2, ctx.index() * 2 + 1};
    std::vector<int> all = ctx.gather<int>(mine, 1);
    if (ctx.index() == 1) {
      std::vector<int> expect(8);
      std::iota(expect.begin(), expect.end(), 0);
      EXPECT_EQ(all, expect);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(SpmdContext, AllgatherGivesEveryoneEverything) {
  vp::Machine machine(3);
  run_group(machine, 3, [](SpmdContext& ctx) {
    std::vector<double> mine{static_cast<double>(ctx.index())};
    std::vector<double> all = ctx.allgather<double>(mine);
    EXPECT_EQ(all, (std::vector<double>{0.0, 1.0, 2.0}));
  });
}

TEST(SpmdContext, ScanComputesInclusivePrefix) {
  vp::Machine machine(5);
  run_group(machine, 5, [](SpmdContext& ctx) {
    std::vector<int> data{ctx.index() + 1};
    ctx.scan<int>(std::span<int>(data),
                  [](const int& a, const int& b) { return a + b; });
    int expect = 0;
    for (int i = 0; i <= ctx.index(); ++i) expect += i + 1;
    EXPECT_EQ(data[0], expect);
  });
}

TEST(SpmdContext, ScanWorksOnSingleton) {
  vp::Machine machine(1);
  run_group(machine, 1, [](SpmdContext& ctx) {
    std::vector<double> data{3.5};
    ctx.scan<double>(std::span<double>(data),
                     [](const double& a, const double& b) { return a + b; });
    EXPECT_DOUBLE_EQ(data[0], 3.5);
  });
}

TEST(SpmdContext, AllToAllTransposesBlocks) {
  vp::Machine machine(4);
  run_group(machine, 4, [](SpmdContext& ctx) {
    // Block j of copy i carries value 10*i + j.
    std::vector<int> mine(4);
    for (int j = 0; j < 4; ++j) mine[static_cast<std::size_t>(j)] = 10 * ctx.index() + j;
    std::vector<int> got = ctx.alltoall<int>(mine, 1);
    // Block j of the result came from copy j and carries 10*j + my index.
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(got[static_cast<std::size_t>(j)], 10 * j + ctx.index());
    }
  });
}

TEST(SpmdContext, AllToAllWithWiderBlocks) {
  vp::Machine machine(3);
  run_group(machine, 3, [](SpmdContext& ctx) {
    std::vector<double> mine(6);
    for (int j = 0; j < 3; ++j) {
      mine[static_cast<std::size_t>(2 * j)] = ctx.index();
      mine[static_cast<std::size_t>(2 * j) + 1] = j;
    }
    std::vector<double> got = ctx.alltoall<double>(mine, 2);
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(2 * j)], j);
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(2 * j) + 1], ctx.index());
    }
  });
}

TEST(SpmdContext, ExchangeSwapsBuffers) {
  vp::Machine machine(4);
  run_group(machine, 4, [](SpmdContext& ctx) {
    const int partner = ctx.index() ^ 1;
    std::vector<double> mine{static_cast<double>(ctx.index()), 7.0};
    std::vector<double> theirs(2);
    ctx.exchange<double>(partner, 5, mine, theirs);
    EXPECT_DOUBLE_EQ(theirs[0], partner);
    EXPECT_DOUBLE_EQ(theirs[1], 7.0);
  });
}

TEST(SpmdContext, ConcurrentGroupsDoNotInterfere) {
  // Figure 3.4: two data-parallel programs on disjoint processor groups
  // communicate internally but never with each other.  Both groups run the
  // same tag pattern concurrently; comm scoping keeps them apart.
  vp::Machine machine(8);
  auto run_subgroup = [&](std::vector<int> procs, int salt,
                          std::atomic<bool>& ok_flag) {
    const std::uint64_t comm = machine.next_comm();
    pcn::ProcessGroup group;
    const int p = static_cast<int>(procs.size());
    for (int i = 0; i < p; ++i) {
      group.spawn_on(machine, procs[static_cast<std::size_t>(i)], [&, i] {
        SpmdContext ctx(machine, comm, procs, i);
        for (int round = 0; round < 50; ++round) {
          const int next = (ctx.index() + 1) % ctx.nprocs();
          const int prev = (ctx.index() + ctx.nprocs() - 1) % ctx.nprocs();
          ctx.send_value<int>(next, 0, salt + round);
          if (ctx.recv_value<int>(prev, 0) != salt + round) ok_flag = false;
        }
      });
    }
    group.join();
  };
  std::atomic<bool> a_ok{true};
  std::atomic<bool> b_ok{true};
  pcn::par([&] { run_subgroup(util::node_array(0, 1, 4), 1000, a_ok); },
           [&] { run_subgroup(util::node_array(4, 1, 4), 2000, b_ok); });
  EXPECT_TRUE(a_ok.load());
  EXPECT_TRUE(b_ok.load());
}

TEST(SpmdContext, OverlappingGroupsWithDistinctCommsDoNotInterfere) {
  // Even two calls over the *same* processors are isolated by comm ids.
  vp::Machine machine(4);
  std::atomic<bool> ok_flag{true};
  auto ring = [&](int salt) {
    const std::uint64_t comm = machine.next_comm();
    const std::vector<int> procs = util::iota_nodes(4);
    pcn::ProcessGroup group;
    for (int i = 0; i < 4; ++i) {
      group.spawn_on(machine, i, [&, i, comm] {
        SpmdContext ctx(machine, comm, procs, i);
        const int next = (ctx.index() + 1) % 4;
        const int prev = (ctx.index() + 3) % 4;
        for (int round = 0; round < 30; ++round) {
          ctx.send_value<int>(next, 0, salt);
          if (ctx.recv_value<int>(prev, 0) != salt) ok_flag = false;
        }
      });
    }
    group.join();
  };
  pcn::par([&] { ring(111); }, [&] { ring(222); });
  EXPECT_TRUE(ok_flag.load());
}

TEST(SpmdContext, RejectsBadConstruction) {
  vp::Machine machine(2);
  EXPECT_THROW(SpmdContext(machine, 1, {}, 0), std::invalid_argument);
  EXPECT_THROW(SpmdContext(machine, 1, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(SpmdContext(machine, 1, {0, 1}, -1), std::invalid_argument);
}

TEST(SpmdContext, SendRecvIndexBoundsChecked) {
  vp::Machine machine(2);
  const std::vector<int> procs{0, 1};
  SpmdContext ctx(machine, machine.next_comm(), procs, 0);
  EXPECT_THROW(ctx.send_value<int>(5, 0, 1), std::out_of_range);
  EXPECT_THROW(ctx.recv_value<int>(-1, 0), std::out_of_range);
}

}  // namespace
}  // namespace tdp::spmd
