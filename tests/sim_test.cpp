// Tests for the discrete-event simulation substrate (§2.3.3).
#include <gtest/gtest.h>

#include "sim/event_sim.hpp"

namespace tdp::sim {
namespace {

TEST(EventSim, DeliversAlongConnections) {
  EventSimulation sim;
  std::vector<double> received;
  const int src = sim.add_component("src", [&](double now,
                                               const std::vector<Event>&) {
    std::vector<Event> out;
    if (now < 3.0) {
      Event e;
      e.time = now;
      e.payload = {now * 10.0};
      out.push_back(e);
      Event wake;
      wake.time = now + 1.0;
      wake.kind = kSelfWake;
      out.push_back(wake);
    }
    return out;
  });
  const int dst = sim.add_component(
      "dst",
      [&](double, const std::vector<Event>& inputs) {
        for (const Event& e : inputs) received.push_back(e.payload.at(0));
        return std::vector<Event>{};
      },
      /*first_wake=*/-1.0);
  sim.connect(src, dst);
  EXPECT_EQ(sim.name(src), "src");
  EXPECT_EQ(sim.name(dst), "dst");

  const auto stats = sim.run(10.0);
  EXPECT_EQ(received, (std::vector<double>{0.0, 10.0, 20.0}));
  EXPECT_EQ(stats.events_delivered, 3);
  EXPECT_GE(stats.wakes, 4);
}

TEST(EventSim, EventsProcessedInTimeOrder) {
  EventSimulation sim;
  std::vector<double> times;
  const int a = sim.add_component("a", [&](double now,
                                           const std::vector<Event>&) {
    std::vector<Event> out;
    if (now == 0.0) {
      for (double t : {5.0, 1.0, 3.0}) {
        Event e;
        e.time = t;
        out.push_back(e);
      }
    }
    return out;
  });
  const int b = sim.add_component(
      "b",
      [&](double now, const std::vector<Event>&) {
        times.push_back(now);
        return std::vector<Event>{};
      },
      -1.0);
  sim.connect(a, b);
  sim.run(10.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(EventSim, FanOutReachesAllSuccessors) {
  EventSimulation sim;
  int hits_b = 0;
  int hits_c = 0;
  const int a = sim.add_component("a", [](double, const std::vector<Event>&) {
    Event e;
    e.time = 1.0;
    return std::vector<Event>{e};
  });
  const int b = sim.add_component(
      "b",
      [&](double, const std::vector<Event>& in) {
        hits_b += static_cast<int>(in.size());
        return std::vector<Event>{};
      },
      -1.0);
  const int c = sim.add_component(
      "c",
      [&](double, const std::vector<Event>& in) {
        hits_c += static_cast<int>(in.size());
        return std::vector<Event>{};
      },
      -1.0);
  sim.connect(a, b);
  sim.connect(a, c);
  sim.run(2.0);
  EXPECT_EQ(hits_b, 1);
  EXPECT_EQ(hits_c, 1);
}

TEST(EventSim, StopsAtHorizon) {
  EventSimulation sim;
  int wakes = 0;
  sim.add_component("clock", [&](double now, const std::vector<Event>&) {
    ++wakes;
    Event e;
    e.time = now + 1.0;
    e.kind = kSelfWake;
    return std::vector<Event>{e};
  });
  const auto stats = sim.run(4.5);
  EXPECT_EQ(wakes, 5);  // t = 0,1,2,3,4
  EXPECT_DOUBLE_EQ(stats.end_time, 4.0);
}

TEST(EventSim, RejectsEventsInThePast) {
  EventSimulation sim;
  sim.add_component("bad", [](double now, const std::vector<Event>&) {
    Event e;
    e.time = now - 1.0;
    return std::vector<Event>{e};
  });
  EXPECT_THROW(sim.run(5.0), std::logic_error);
}

TEST(EventSim, ConnectValidatesIds) {
  EventSimulation sim;
  const int a =
      sim.add_component("a", [](double, const std::vector<Event>&) {
        return std::vector<Event>{};
      });
  EXPECT_THROW(sim.connect(a, 5), std::out_of_range);
  EXPECT_THROW(sim.connect(-1, a), std::out_of_range);
}

TEST(EventSim, SimultaneousWakesSeeAllDueEvents) {
  EventSimulation sim;
  std::size_t batch = 0;
  const int a = sim.add_component("a", [](double, const std::vector<Event>&) {
    Event e1;
    e1.time = 2.0;
    e1.kind = 1;
    Event e2;
    e2.time = 2.0;
    e2.kind = 2;
    return std::vector<Event>{e1, e2};
  });
  const int b = sim.add_component(
      "b",
      [&](double, const std::vector<Event>& in) {
        batch = in.size();
        return std::vector<Event>{};
      },
      -1.0);
  sim.connect(a, b);
  sim.run(3.0);
  EXPECT_EQ(batch, 2u);  // both events delivered in one wake
}

}  // namespace
}  // namespace tdp::sim
