// Tests for the generic border (overlap-area) exchange (§3.2.1.3).
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "linalg/halo.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"

namespace tdp::linalg {
namespace {

/// Creates a bordered array, stamps every interior element with a globally
/// unique value through the global interface, and hands each copy its view.
struct Fixture {
  core::Runtime rt;
  dist::ArrayId id;
  std::vector<int> grid;
  dist::Indexing indexing;

  Fixture(int nprocs, std::vector<int> dims, std::vector<dist::DimSpec> spec,
          std::vector<int> borders, dist::Indexing ix)
      : rt(nprocs), indexing(ix) {
    EXPECT_EQ(rt.arrays().create_array(0, dist::ElemType::Float64, dims,
                                       rt.all_procs(), spec,
                                       dist::BorderSpec::exact(borders), ix,
                                       id),
              Status::Ok);
    dist::InfoValue v;
    EXPECT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::GridDimensions, v),
              Status::Ok);
    grid = std::get<std::vector<int>>(v);
    const long long n = dist::element_count(dims);
    for (long long lin = 0; lin < n; ++lin) {
      std::vector<int> idx = dist::delinearize(lin, dims, ix);
      EXPECT_EQ(rt.arrays().write_element(
                    0, id, idx, dist::Scalar{static_cast<double>(lin) + 1.0}),
                Status::Ok);
    }
  }

  double global_value(const std::vector<int>& gidx,
                      const std::vector<int>& dims) {
    return static_cast<double>(dist::linearize(gidx, dims, indexing)) + 1.0;
  }

  void run(const std::function<void(spmd::SpmdContext&,
                                    const dist::LocalSectionView&)>& body) {
    const std::uint64_t comm = rt.machine().next_comm();
    dist::InfoValue v;
    ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::Processors, v),
              Status::Ok);
    const std::vector<int> procs = std::get<std::vector<int>>(v);
    pcn::ProcessGroup group;
    for (std::size_t i = 0; i < procs.size(); ++i) {
      group.spawn_on(rt.machine(), procs[i], [&, i] {
        spmd::SpmdContext ctx(rt.machine(), comm, procs,
                              static_cast<int>(i));
        dist::LocalSectionView view;
        ASSERT_EQ(rt.arrays().find_local(ctx.proc(), id, view), Status::Ok);
        body(ctx, view);
      });
    }
    group.join();
  }
};

TEST(HaloExchange, OneDimensionalBordersCarryNeighbourEdges) {
  const std::vector<int> dims{12};
  Fixture fx(4, dims, {dist::DimSpec::block()}, {2, 2},
             dist::Indexing::RowMajor);
  fx.run([&](spmd::SpmdContext& ctx, const dist::LocalSectionView& view) {
    exchange_borders(ctx, view, fx.grid, fx.indexing);
    const int m = view.interior_dims[0];
    const int base = ctx.index() * m;
    // Low border: the low neighbour's top two elements.
    if (ctx.index() > 0) {
      EXPECT_DOUBLE_EQ(view.f64()[0],
                       fx.global_value({base - 2}, dims));
      EXPECT_DOUBLE_EQ(view.f64()[1],
                       fx.global_value({base - 1}, dims));
    } else {
      EXPECT_DOUBLE_EQ(view.f64()[0], 0.0);  // global boundary untouched
    }
    // High border: the high neighbour's bottom two elements.
    if (ctx.index() < ctx.nprocs() - 1) {
      EXPECT_DOUBLE_EQ(view.f64()[2 + m],
                       fx.global_value({base + m}, dims));
      EXPECT_DOUBLE_EQ(view.f64()[2 + m + 1],
                       fx.global_value({base + m + 1}, dims));
    }
  });
}

TEST(HaloExchange, TwoDimensionalFaceExchange) {
  const std::vector<int> dims{8, 8};
  Fixture fx(4, dims, {dist::DimSpec::block_n(2), dist::DimSpec::block_n(2)},
             {1, 1, 1, 1}, dist::Indexing::RowMajor);
  fx.run([&](spmd::SpmdContext& ctx, const dist::LocalSectionView& view) {
    exchange_borders(ctx, view, fx.grid, fx.indexing);
    const int mloc = view.interior_dims[0];
    const int nloc = view.interior_dims[1];
    const int gr = ctx.index() / 2;
    const int gc = ctx.index() % 2;
    const int width = nloc + 2;
    auto storage = [&](int r, int c) {
      return view.f64()[static_cast<std::size_t>(r) * width + c];
    };
    // North halo row (storage row 0) holds the north neighbour's last row.
    if (gr > 0) {
      for (int c = 0; c < nloc; ++c) {
        EXPECT_DOUBLE_EQ(
            storage(0, c + 1),
            fx.global_value({gr * mloc - 1, gc * nloc + c}, dims))
            << c;
      }
    }
    // West halo column holds the west neighbour's last column.
    if (gc > 0) {
      for (int r = 0; r < mloc; ++r) {
        EXPECT_DOUBLE_EQ(
            storage(r + 1, 0),
            fx.global_value({gr * mloc + r, gc * nloc - 1}, dims))
            << r;
      }
    }
    // South and east symmetric.
    if (gr < fx.grid[0] - 1) {
      for (int c = 0; c < nloc; ++c) {
        EXPECT_DOUBLE_EQ(
            storage(mloc + 1, c + 1),
            fx.global_value({(gr + 1) * mloc, gc * nloc + c}, dims));
      }
    }
    if (gc < fx.grid[1] - 1) {
      for (int r = 0; r < mloc; ++r) {
        EXPECT_DOUBLE_EQ(
            storage(r + 1, nloc + 1),
            fx.global_value({gr * mloc + r, (gc + 1) * nloc}, dims));
      }
    }
  });
}

TEST(HaloExchange, AsymmetricBorders) {
  // Borders {2, 1}: low halo thickness 2, high halo thickness 1.
  const std::vector<int> dims{12};
  Fixture fx(4, dims, {dist::DimSpec::block()}, {2, 1},
             dist::Indexing::RowMajor);
  fx.run([&](spmd::SpmdContext& ctx, const dist::LocalSectionView& view) {
    exchange_borders(ctx, view, fx.grid, fx.indexing);
    const int m = view.interior_dims[0];
    const int base = ctx.index() * m;
    if (ctx.index() > 0) {
      EXPECT_DOUBLE_EQ(view.f64()[0], fx.global_value({base - 2}, dims));
      EXPECT_DOUBLE_EQ(view.f64()[1], fx.global_value({base - 1}, dims));
    }
    if (ctx.index() < ctx.nprocs() - 1) {
      EXPECT_DOUBLE_EQ(view.f64()[2 + m], fx.global_value({base + m}, dims));
    }
  });
}

TEST(HaloExchange, ThreeDimensionalDecomposition) {
  const std::vector<int> dims{4, 4, 4};
  Fixture fx(8, dims,
             {dist::DimSpec::block(), dist::DimSpec::block(),
              dist::DimSpec::block()},
             {1, 1, 1, 1, 1, 1}, dist::Indexing::RowMajor);
  fx.run([&](spmd::SpmdContext& ctx, const dist::LocalSectionView& view) {
    exchange_borders(ctx, view, fx.grid, fx.indexing);
    // Spot-check: the copy at grid position (1,1,1) received faces from
    // all three low neighbours.
    std::vector<int> pos =
        dist::delinearize(ctx.index(), fx.grid, fx.indexing);
    if (pos != std::vector<int>{1, 1, 1}) return;
    // Low face in dimension 0: global plane x = 1 (neighbour's last layer),
    // at my local (y, z) origin (global y = 2, z = 2).
    std::vector<int> start{0, 1, 1};  // storage coords of that halo cell
    const long long off =
        dist::linearize(start, view.dims_plus, view.indexing);
    EXPECT_DOUBLE_EQ(view.f64()[off], fx.global_value({1, 2, 2}, dims));
  });
}

TEST(HaloExchange, PackUnpackRoundTrip) {
  core::Runtime rt(1);
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {4, 4}, rt.all_procs(),
                {dist::DimSpec::star(), dist::DimSpec::star()},
                dist::BorderSpec::exact({1, 1, 1, 1}),
                dist::Indexing::RowMajor, id),
            Status::Ok);
  dist::LocalSectionView view;
  ASSERT_EQ(rt.arrays().find_local(0, id, view), Status::Ok);
  for (std::size_t i = 0; i < view.count_plus(); ++i) {
    view.f64()[i] = static_cast<double>(i);
  }
  const std::vector<int> start{1, 1};
  const std::vector<int> extent{2, 3};
  std::vector<double> buf(6);
  pack_region(view, start, extent, buf);
  std::vector<double> doubled = buf;
  for (double& v : doubled) v *= 2.0;
  unpack_region(view, start, extent, doubled);
  std::vector<double> buf2(6);
  pack_region(view, start, extent, buf2);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(buf2[static_cast<std::size_t>(i)],
                     2.0 * buf[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace tdp::linalg
