// Unit and property tests for decomposition / index arithmetic (§3.2.1),
// including the worked examples of the thesis text.
#include <gtest/gtest.h>

#include <set>

#include "dist/layout.hpp"

namespace tdp::dist {
namespace {

std::vector<DimSpec> blocks(std::size_t n) {
  return std::vector<DimSpec>(n, DimSpec::block());
}

TEST(Grid, DefaultSquareGrid) {
  // §3.2.1.2: a 2-D array over 16 processors defaults to a 4x4 grid.
  std::vector<int> grid;
  ASSERT_EQ(compute_grid({400, 200}, 16, blocks(2), grid), Status::Ok);
  EXPECT_EQ(grid, (std::vector<int>{4, 4}));
  EXPECT_EQ(local_dims({400, 200}, grid), (std::vector<int>{100, 50}));
}

TEST(Grid, PartiallySpecifiedThesisExample) {
  // §3.2.1.2: 3-D array over 32 processors, second grid dim pinned to 2
  // => 4 x 2 x 4.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block(), DimSpec::block_n(2),
                            DimSpec::block()};
  ASSERT_EQ(compute_grid({64, 32, 64}, 32, spec, grid), Status::Ok);
  EXPECT_EQ(grid, (std::vector<int>{4, 2, 4}));
}

TEST(Grid, FullySpecifiedDecomposition) {
  // §3.2.1.2 figure 3.6: (block(2), block(8)) over 16 => 2x8 grid,
  // 200x25 local sections.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block_n(2), DimSpec::block_n(8)};
  ASSERT_EQ(compute_grid({400, 200}, 16, spec, grid), Status::Ok);
  EXPECT_EQ(grid, (std::vector<int>{2, 8}));
  EXPECT_EQ(local_dims({400, 200}, grid), (std::vector<int>{200, 25}));
}

TEST(Grid, StarMeansNoDecomposition) {
  // §3.2.1.2 figure 3.6: (block, *) over 16 => 16x1 grid, 25x200 sections.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block(), DimSpec::star()};
  ASSERT_EQ(compute_grid({400, 200}, 16, spec, grid), Status::Ok);
  EXPECT_EQ(grid, (std::vector<int>{16, 1}));
  EXPECT_EQ(local_dims({400, 200}, grid), (std::vector<int>{25, 200}));
}

TEST(Grid, MixedSpecifiedAndDefault) {
  // block(2), block over 16: Q=2, remaining dim = 16/2 = 8.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block_n(2), DimSpec::block()};
  ASSERT_EQ(compute_grid({400, 200}, 16, spec, grid), Status::Ok);
  EXPECT_EQ(grid, (std::vector<int>{2, 8}));
}

TEST(Grid, RejectsNonSquareDefault) {
  // 2-D over 8 processors: sqrt(8) is not an integer.
  std::vector<int> grid;
  EXPECT_EQ(compute_grid({16, 16}, 8, blocks(2), grid), Status::Invalid);
}

TEST(Grid, AcceptsNonDividingGridDimension) {
  // Uneven trailing blocks: 16 elements over 3 cells is blocks {6, 6, 4} —
  // the uniform block is ceil(16/3) = 6 and the trailing cell is clipped.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block_n(3)};
  ASSERT_EQ(compute_grid({16}, 4, spec, grid), Status::Ok);
  EXPECT_EQ(grid, (std::vector<int>{3}));
  EXPECT_EQ(local_dims({16}, grid), (std::vector<int>{6}));
  EXPECT_EQ(cell_dims(std::vector<int>{16}, grid, std::vector<int>{0}),
            (std::vector<int>{6}));
  EXPECT_EQ(cell_dims(std::vector<int>{16}, grid, std::vector<int>{2}),
            (std::vector<int>{4}));
}

TEST(Grid, RejectsGridWithEmptyTrailingCell) {
  // 5 cells of ceil(16/5) = 4 would cover 16 elements in the first four
  // cells and leave the fifth empty — that grid is rejected.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block_n(5)};
  EXPECT_EQ(compute_grid({16}, 8, spec, grid), Status::Invalid);
}

TEST(Grid, AcceptsOversizedGridAsOversharding) {
  // A 3x3 grid over 8 processors used to be rejected; with sharded
  // placement the ninth cell wraps round-robin onto the processor list.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block_n(3), DimSpec::block_n(3)};
  ASSERT_EQ(compute_grid({9, 9}, 8, spec, grid), Status::Ok);
  EXPECT_EQ(grid_cells(grid), 9);
}

TEST(Grid, AcceptsGridSmallerThanProcessorCount) {
  // §3.2.1.1: any grid whose product is <= P is acceptable.
  std::vector<int> grid;
  std::vector<DimSpec> spec{DimSpec::block_n(2), DimSpec::block_n(4)};
  ASSERT_EQ(compute_grid({8, 8}, 16, spec, grid), Status::Ok);
  EXPECT_EQ(grid_cells(grid), 8);
}

TEST(Grid, RejectsMalformedInput) {
  std::vector<int> grid;
  EXPECT_EQ(compute_grid({}, 4, {}, grid), Status::Invalid);
  EXPECT_EQ(compute_grid({8}, 0, blocks(1), grid), Status::Invalid);
  EXPECT_EQ(compute_grid({8, 8}, 4, blocks(1), grid), Status::Invalid);
  EXPECT_EQ(compute_grid({-8}, 4, blocks(1), grid), Status::Invalid);
  std::vector<DimSpec> bad{DimSpec::block_n(0)};
  EXPECT_EQ(compute_grid({8}, 4, bad, grid), Status::Invalid);
}

TEST(Linearize, RowMajorVariesLastIndexFastest) {
  std::vector<int> dims{2, 3};
  EXPECT_EQ(linearize(std::vector<int>{0, 0}, dims, Indexing::RowMajor), 0);
  EXPECT_EQ(linearize(std::vector<int>{0, 1}, dims, Indexing::RowMajor), 1);
  EXPECT_EQ(linearize(std::vector<int>{1, 0}, dims, Indexing::RowMajor), 3);
  EXPECT_EQ(linearize(std::vector<int>{1, 2}, dims, Indexing::RowMajor), 5);
}

TEST(Linearize, ColumnMajorVariesFirstIndexFastest) {
  std::vector<int> dims{2, 3};
  EXPECT_EQ(linearize(std::vector<int>{0, 0}, dims, Indexing::ColumnMajor), 0);
  EXPECT_EQ(linearize(std::vector<int>{1, 0}, dims, Indexing::ColumnMajor), 1);
  EXPECT_EQ(linearize(std::vector<int>{0, 1}, dims, Indexing::ColumnMajor), 2);
  EXPECT_EQ(linearize(std::vector<int>{1, 2}, dims, Indexing::ColumnMajor), 5);
}

struct ShapeCase {
  std::vector<int> dims;
  Indexing ordering;
};

class LinearizeRoundTrip : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(LinearizeRoundTrip, DelinearizeInvertsLinearize) {
  const auto& [dims, ordering] = GetParam();
  const long long n = element_count(dims);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (long long lin = 0; lin < n; ++lin) {
    std::vector<int> idx = delinearize(lin, dims, ordering);
    EXPECT_TRUE(indices_in_range(idx, dims));
    const long long back = linearize(idx, dims, ordering);
    EXPECT_EQ(back, lin);
    seen[static_cast<std::size_t>(lin)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinearizeRoundTrip,
    ::testing::Values(ShapeCase{{7}, Indexing::RowMajor},
                      ShapeCase{{4, 5}, Indexing::RowMajor},
                      ShapeCase{{4, 5}, Indexing::ColumnMajor},
                      ShapeCase{{2, 3, 4}, Indexing::RowMajor},
                      ShapeCase{{2, 3, 4}, Indexing::ColumnMajor},
                      ShapeCase{{3, 1, 2, 2}, Indexing::RowMajor}));

struct MapCase {
  std::vector<int> dims;
  std::vector<int> grid;
};

class GlobalMapBijection : public ::testing::TestWithParam<MapCase> {};

TEST_P(GlobalMapBijection, EveryGlobalIndexMapsToExactlyOneLocalSlot) {
  // §3.2.1.1: each global N-tuple corresponds to exactly one
  // {grid position, local index} pair, and conversely.
  const auto& [dims, grid] = GetParam();
  const std::vector<int> loc = local_dims(dims, grid);
  const long long n = element_count(dims);
  std::set<std::pair<long long, long long>> slots;
  for (long long lin = 0; lin < n; ++lin) {
    std::vector<int> gidx = delinearize(lin, dims, Indexing::RowMajor);
    GlobalMap m = map_global(gidx, loc);
    EXPECT_TRUE(indices_in_range(m.grid_pos, grid));
    EXPECT_TRUE(indices_in_range(m.local_idx, loc));
    const long long rank = grid_rank(m.grid_pos, grid, Indexing::RowMajor);
    const long long off = linearize(m.local_idx, loc, Indexing::RowMajor);
    EXPECT_TRUE(slots.insert({rank, off}).second) << "collision at lin " << lin;
    EXPECT_EQ(unmap_global(m.grid_pos, m.local_idx, loc), gidx);
  }
  EXPECT_EQ(static_cast<long long>(slots.size()), n);
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, GlobalMapBijection,
    ::testing::Values(MapCase{{16}, {4}}, MapCase{{16, 16}, {4, 2}},
                      MapCase{{12, 10}, {3, 5}},
                      MapCase{{8, 8, 8}, {2, 2, 2}},
                      MapCase{{6, 4, 2}, {3, 1, 2}}));

TEST(Borders, OffsetSkipsLeadingBorder) {
  // Figure 3.7: a 4x2 local section with borders of 2 above/below and 1 on
  // either side of each row.  Storage is (4+4) x (2+2) row-major; interior
  // (0,0) sits at storage (2,1).
  std::vector<int> interior{4, 2};
  std::vector<int> borders{2, 2, 1, 1};
  EXPECT_EQ(dims_plus_borders(interior, borders), (std::vector<int>{8, 4}));
  EXPECT_EQ(local_offset(std::vector<int>{0, 0}, interior, borders,
                         Indexing::RowMajor),
            2 * 4 + 1);
  EXPECT_EQ(local_offset(std::vector<int>{3, 1}, interior, borders,
                         Indexing::RowMajor),
            5 * 4 + 2);
}

TEST(Borders, ZeroBordersIsPlainLinearize) {
  std::vector<int> interior{3, 5};
  std::vector<int> borders{0, 0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(local_offset(std::vector<int>{i, j}, interior, borders,
                             Indexing::RowMajor),
                linearize(std::vector<int>{i, j}, interior,
                          Indexing::RowMajor));
    }
  }
}

TEST(GridRank, Figure38RowVersusColumnMajor) {
  // Figure 3.8: 4x4 array over processors (0,2,4,6), 2x2 grid, local
  // sections 2x2.  Global element (0,2) lives at grid position (0,1):
  // row-major ordering assigns it processor 2; column-major processor 4.
  std::vector<int> grid{2, 2};
  std::vector<int> procs{0, 2, 4, 6};
  std::vector<int> pos{0, 1};
  EXPECT_EQ(procs[static_cast<std::size_t>(
                grid_rank(pos, grid, Indexing::RowMajor))],
            2);
  EXPECT_EQ(procs[static_cast<std::size_t>(
                grid_rank(pos, grid, Indexing::ColumnMajor))],
            4);
}

}  // namespace
}  // namespace tdp::dist
