// Tests for the textual decomposition specs (§3.2.1.2 notation) and the
// declaration-scoped Array handle (§3.2.2.1's "full syntactic support").
#include <gtest/gtest.h>

#include "core/array_handle.hpp"
#include "dist/spec_parse.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

TEST(SpecParse, ThesisNotation) {
  std::vector<dist::DimSpec> spec;
  ASSERT_EQ(dist::parse_distrib("(block, block)", spec), Status::Ok);
  ASSERT_EQ(spec.size(), 2u);
  EXPECT_EQ(spec[0].kind, dist::DimSpec::Kind::Block);
  EXPECT_EQ(spec[1].kind, dist::DimSpec::Kind::Block);

  ASSERT_EQ(dist::parse_distrib("(block(2), block(8))", spec), Status::Ok);
  EXPECT_EQ(spec[0].kind, dist::DimSpec::Kind::BlockN);
  EXPECT_EQ(spec[0].n, 2);
  EXPECT_EQ(spec[1].n, 8);

  ASSERT_EQ(dist::parse_distrib("(block, *)", spec), Status::Ok);
  EXPECT_EQ(spec[1].kind, dist::DimSpec::Kind::Star);
}

TEST(SpecParse, ParenthesesOptionalWhitespaceIgnored) {
  std::vector<dist::DimSpec> spec;
  ASSERT_EQ(dist::parse_distrib("  block( 4 ) ,*, block ", spec),
            Status::Ok);
  ASSERT_EQ(spec.size(), 3u);
  EXPECT_EQ(spec[0].n, 4);
  EXPECT_EQ(spec[1].kind, dist::DimSpec::Kind::Star);
  EXPECT_EQ(spec[2].kind, dist::DimSpec::Kind::Block);
}

TEST(SpecParse, RejectsMalformedSpecs) {
  std::vector<dist::DimSpec> spec;
  EXPECT_EQ(dist::parse_distrib("", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("()", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("cyclic", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("block()", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("block(0)", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("block(-2)", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("block(2", spec), Status::Invalid);
  EXPECT_EQ(dist::parse_distrib("block,,block", spec), Status::Invalid);
}

TEST(SpecParse, RoundTripsThroughToString) {
  for (const char* text :
       {"(block, block)", "(block(2), block(8))", "(block, *)",
        "(*, block(3), block)"}) {
    std::vector<dist::DimSpec> spec;
    ASSERT_EQ(dist::parse_distrib(text, spec), Status::Ok) << text;
    EXPECT_EQ(dist::to_string(spec), text);
  }
}

TEST(SpecParse, IndexingNames) {
  dist::Indexing ix;
  ASSERT_EQ(dist::parse_indexing("row", ix), Status::Ok);
  EXPECT_EQ(ix, dist::Indexing::RowMajor);
  ASSERT_EQ(dist::parse_indexing("C", ix), Status::Ok);
  EXPECT_EQ(ix, dist::Indexing::RowMajor);
  ASSERT_EQ(dist::parse_indexing("column", ix), Status::Ok);
  EXPECT_EQ(ix, dist::Indexing::ColumnMajor);
  ASSERT_EQ(dist::parse_indexing("Fortran", ix), Status::Ok);
  EXPECT_EQ(ix, dist::Indexing::ColumnMajor);
  EXPECT_EQ(dist::parse_indexing("banana", ix), Status::Invalid);
}

TEST(ArrayHandle, DeclarationScopedLifetime) {
  core::Runtime rt(4);
  dist::ArrayId id;
  {
    core::Array a(rt, {16}, rt.all_procs());
    id = a.id();
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(rt.arrays().records_on(0), 1u);
  }
  // Destroyed at end of scope, like a declared array (§3.2.2.1).
  EXPECT_EQ(rt.arrays().records_on(0), 0u);
  dist::Scalar v;
  EXPECT_EQ(rt.arrays().read_element(0, id, std::vector<int>{0}, v),
            Status::NotFound);
}

TEST(ArrayHandle, ElementAccessLikeOrdinaryArrays) {
  core::Runtime rt(4);
  core::Array a(rt, {4, 4}, rt.all_procs(), "(block, block)");
  a.set({2, 3}, 6.5);
  EXPECT_DOUBLE_EQ(a.at({2, 3}), 6.5);
  EXPECT_DOUBLE_EQ(a.at({0, 0}), 0.0);  // zero-initialised
  EXPECT_THROW(a.at({4, 0}), core::ArrayError);
  EXPECT_THROW(a.set({0, -1}, 1.0), core::ArrayError);
}

TEST(ArrayHandle, InfoAccessors) {
  core::Runtime rt(8);
  core::Array a(rt, {8, 6}, rt.all_procs(), "(block(4), block(2))",
                dist::BorderSpec::exact({1, 1, 0, 0}));
  EXPECT_EQ(a.grid_dims(), (std::vector<int>{4, 2}));
  EXPECT_EQ(a.local_dims(), (std::vector<int>{2, 3}));
  EXPECT_EQ(a.borders(), (std::vector<int>{1, 1, 0, 0}));
  EXPECT_EQ(a.processors(), util::iota_nodes(8));
}

TEST(ArrayHandle, BadDeclarationThrowsWithStatus) {
  core::Runtime rt(4);
  try {
    core::Array a(rt, {16}, rt.all_procs(), "cyclic");
    FAIL() << "expected ArrayError";
  } catch (const core::ArrayError& e) {
    EXPECT_EQ(e.status(), Status::Invalid);
  }
  try {
    // 3 elements over the default grid of 4 would make every block
    // ceil(3/4) = 1 and leave the trailing cell empty.
    core::Array a(rt, {3}, rt.all_procs(), "(block)");
    FAIL() << "expected ArrayError";
  } catch (const core::ArrayError& e) {
    EXPECT_EQ(e.status(), Status::Invalid);
  }
}

TEST(ArrayHandle, MoveTransfersOwnership) {
  core::Runtime rt(2);
  core::Array a(rt, {4}, rt.all_procs());
  const dist::ArrayId id = a.id();
  core::Array b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id);
  b.set({1}, 3.0);
  EXPECT_DOUBLE_EQ(b.at({1}), 3.0);
  core::Array c(rt, {4}, rt.all_procs());
  c = std::move(b);
  EXPECT_EQ(c.id(), id);  // the old array of c was freed by the assignment
}

TEST(ArrayHandle, UsableFromDistributedCalls) {
  core::Runtime rt(4);
  rt.programs().add("fill_ones", [](spmd::SpmdContext&, core::CallArgs& args) {
    const dist::LocalSectionView& v = args.local(0);
    for (long long i = 0; i < v.interior_count(); ++i) v.f64()[i] = 1.0;
  });
  core::Array a(rt, {8}, rt.all_procs());
  EXPECT_EQ(rt.call(rt.all_procs(), "fill_ones").local(a.id()).run(),
            kStatusOk);
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) sum += a.at({i});
  EXPECT_DOUBLE_EQ(sum, 8.0);
}

}  // namespace
}  // namespace tdp
