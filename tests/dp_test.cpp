// Tests for the multiple-assignment semantics layer (§1.2.1, §1.2.5) and
// the iterative solvers layered on the SPMD substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "core/runtime.hpp"
#include "dp/forall.hpp"
#include "linalg/iterative.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

void run_group(vp::Machine& machine, int p,
               const std::function<void(spmd::SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, i, [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

TEST(MultipleAssign, RhsSeesPreStatementValues) {
  // v[g] = old[g-1] (rotate right): correct only when every RHS reads the
  // value from before the statement — the §1.2.5 semantic requirement.
  const int p = 4;
  const int nloc = 3;
  const int n = p * nloc;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> local(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) {
      local[static_cast<std::size_t>(i)] = ctx.index() * nloc + i;
    }
    dp::multiple_assign(ctx, local, [](const dp::OldValues& old, long long g) {
      const long long size = old.size();
      return old((g - 1 + size) % size);
    });
    for (int i = 0; i < nloc; ++i) {
      const long long g = ctx.index() * nloc + i;
      EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(i)],
                       static_cast<double>((g - 1 + n) % n));
    }
  });
}

TEST(MultipleAssign, NaiveInPlaceEvaluationViolatesSemantics) {
  // The deliberately-broken variant shows exactly the hazard the thesis
  // warns about: within one local section, late elements observe early
  // writes, so a rotate produces wrong values.
  const int p = 2;
  const int nloc = 4;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> local(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) {
      local[static_cast<std::size_t>(i)] = ctx.index() * nloc + i;
    }
    dp::multiple_assign_naive_in_place(
        ctx, local, [](const dp::OldValues& old, long long g) {
          const long long size = old.size();
          return old((g - 1 + size) % size);
        });
    // Element 1 of each section read element 0 *after* it was overwritten:
    // local[1] should be g-1 = base, but the naive version wrote base-1
    // there first, so local[1] == base - 1 (mod n).
    const long long base = ctx.index() * nloc;
    const long long n = static_cast<long long>(p) * nloc;
    EXPECT_DOUBLE_EQ(local[1], static_cast<double>((base - 1 + n) % n));
    EXPECT_NE(local[1], static_cast<double>(base));  // the correct value
  });
}

TEST(MultipleAssign, SequenceOfStatements) {
  // "A data-parallel computation is a sequence of multiple-assignment
  // statements" (§1.2.1): three statements chained; each sees the previous
  // statement's results.
  const int p = 2;
  const int nloc = 2;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> local(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) {
      local[static_cast<std::size_t>(i)] = ctx.index() * nloc + i;  // 0..3
    }
    dp::run_statements(
        ctx, local,
        {
            [](const dp::OldValues& old, long long g) { return old(g) + 1; },
            [](const dp::OldValues& old, long long g) {
              return 2.0 * old(g);
            },
            [](const dp::OldValues& old, long long g) {
              // sum of the two neighbours, wrap-around
              const long long size = old.size();
              return old((g + 1) % size) + old((g - 1 + size) % size);
            },
        });
    // After +1 and *2: v = {2,4,6,8}; after neighbour sum: {12,8,12,16}...
    const double expect[4] = {8.0 + 4.0, 2.0 + 6.0, 4.0 + 8.0, 6.0 + 2.0};
    for (int i = 0; i < nloc; ++i) {
      const long long g = ctx.index() * nloc + i;
      EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(i)],
                       expect[g]) << g;
    }
  });
}

TEST(MultipleAssign, WholeArrayOperationReverse) {
  // A whole-array operation: v = reverse(v) — impossible without
  // pre-statement semantics.
  const int p = 4;
  const int nloc = 2;
  const int n = p * nloc;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> local(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) {
      local[static_cast<std::size_t>(i)] = ctx.index() * nloc + i;
    }
    dp::multiple_assign(ctx, local, [](const dp::OldValues& old, long long g) {
      return old(old.size() - 1 - g);
    });
    for (int i = 0; i < nloc; ++i) {
      const long long g = ctx.index() * nloc + i;
      EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(i)],
                       static_cast<double>(n - 1 - g));
    }
  });
}

TEST(ParallelFor, IndependentIterations) {
  const int p = 3;
  const int nloc = 4;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> local(static_cast<std::size_t>(nloc), 1.0);
    dp::parallel_for(ctx, local, [](long long g, double own) {
      return own + static_cast<double>(g * g);
    });
    for (int i = 0; i < nloc; ++i) {
      const long long g = ctx.index() * nloc + i;
      EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(i)],
                       1.0 + static_cast<double>(g * g));
    }
  });
}

TEST(MultipleAssign, RegisteredRotateProgram) {
  // Full-period rotation through a distributed call returns the identity.
  core::Runtime rt(4);
  dp::register_programs(rt.programs());
  const int n = 12;
  dist::ArrayId v;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n}, rt.all_procs(),
                {dist::DimSpec::block()}, dist::BorderSpec::none(),
                dist::Indexing::RowMajor, v),
            Status::Ok);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(rt.arrays().write_element(0, v, std::vector<int>{i},
                                        dist::Scalar{static_cast<double>(i)}),
              Status::Ok);
  }
  // Rotate by 5, then by n-5: back to the identity.
  ASSERT_EQ(
      rt.call(rt.all_procs(), "dp_rotate").constant(5).local(v).run(),
      kStatusOk);
  dist::Scalar s;
  ASSERT_EQ(rt.arrays().read_element(0, v, std::vector<int>{5}, s),
            Status::Ok);
  EXPECT_DOUBLE_EQ(std::get<double>(s), 0.0);
  ASSERT_EQ(
      rt.call(rt.all_procs(), "dp_rotate").constant(n - 5).local(v).run(),
      kStatusOk);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(rt.arrays().read_element(0, v, std::vector<int>{i}, s),
              Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(s), static_cast<double>(i));
  }
}

class CgSolve : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CgSolve, ConvergesOnSpdSystem) {
  const auto [p, n] = GetParam();
  const int nloc = n / p;
  // SPD system: diagonally dominant symmetric matrix.
  std::mt19937 rng(900u + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist01(0.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = dist01(rng);
      a[static_cast<std::size_t>(i) * n + j] = v;
      a[static_cast<std::size_t>(j) * n + i] = v;
    }
    a[static_cast<std::size_t>(i) * n + i] += n;
  }
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::cos(static_cast<double>(i));
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(i)] +=
          a[static_cast<std::size_t>(i) * n + j] *
          x_true[static_cast<std::size_t>(j)];
    }
  }

  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> a_local(
        a.begin() + static_cast<std::size_t>(ctx.index()) * nloc * n,
        a.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc * n);
    std::vector<double> b_local(
        b.begin() + static_cast<std::size_t>(ctx.index()) * nloc,
        b.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc);
    std::vector<double> x_local(static_cast<std::size_t>(nloc), 0.0);
    linalg::IterativeResult res = linalg::conjugate_gradient(
        ctx, n, a_local, b_local, std::span<double>(x_local), 2 * n, 1e-12);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 2 * n);
    for (int i = 0; i < nloc; ++i) {
      EXPECT_NEAR(x_local[static_cast<std::size_t>(i)],
                  x_true[static_cast<std::size_t>(ctx.index() * nloc + i)],
                  1e-8);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSolve,
                         ::testing::Values(std::pair{1, 8}, std::pair{2, 8},
                                           std::pair{4, 16},
                                           std::pair{8, 32}));

TEST(PowerMethod, FindsDominantEigenvalue) {
  // Diagonal matrix: dominant eigenvalue is the largest diagonal entry.
  const int p = 4;
  const int n = 8;
  const int nloc = n / p;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> a_local(static_cast<std::size_t>(nloc) * n, 0.0);
    for (int i = 0; i < nloc; ++i) {
      const int g = ctx.index() * nloc + i;
      a_local[static_cast<std::size_t>(i) * n + g] = g + 1.0;  // diag 1..8
    }
    std::vector<double> v(static_cast<std::size_t>(nloc), 1.0);
    double lambda = 0.0;
    linalg::IterativeResult res = linalg::power_method(
        ctx, n, a_local, std::span<double>(v), 500, 1e-12, &lambda);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(lambda, 8.0, 1e-6);
  });
}

TEST(CgSolve, RegisteredProgramThroughDistributedCall) {
  core::Runtime rt(4);
  linalg::register_iterative_programs(rt.programs());
  const int n = 8;
  dist::ArrayId a;
  dist::ArrayId b;
  dist::ArrayId x;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::star()},
                dist::BorderSpec::none(), dist::Indexing::RowMajor, a),
            Status::Ok);
  for (dist::ArrayId* id : {&b, &x}) {
    ASSERT_EQ(rt.arrays().create_array(
                  0, dist::ElemType::Float64, {n}, rt.all_procs(),
                  {dist::DimSpec::block()}, dist::BorderSpec::none(),
                  dist::Indexing::RowMajor, *id),
              Status::Ok);
  }
  // 1-D Laplacian (SPD) with x_true[i] = 1: b = A * 1.
  for (int i = 0; i < n; ++i) {
    double bi = 0.0;
    for (int j = 0; j < n; ++j) {
      const double aij = i == j ? 2.0 : (std::abs(i - j) == 1 ? -1.0 : 0.0);
      rt.arrays().write_element(0, a, std::vector<int>{i, j},
                                dist::Scalar{aij});
      bi += aij;
    }
    rt.arrays().write_element(0, b, std::vector<int>{i}, dist::Scalar{bi});
  }
  std::vector<double> residual;
  const int iters = rt.call(rt.all_procs(), "cg_solve")
                        .constant(n)
                        .constant(100)
                        .constant(1e-12)
                        .local(a)
                        .local(b)
                        .local(x)
                        .status()
                        .reduce_f64(1, core::f64_max(), &residual)
                        .run();
  EXPECT_GT(iters, 0);
  EXPECT_LE(residual[0], 1e-12);
  for (int i = 0; i < n; ++i) {
    dist::Scalar s;
    ASSERT_EQ(rt.arrays().read_element(0, x, std::vector<int>{i}, s),
              Status::Ok);
    EXPECT_NEAR(std::get<double>(s), 1.0, 1e-8);
  }
}

}  // namespace
}  // namespace tdp
