// Tests for the tdp::fault layer and the hardening it exercises: plan
// parsing, deterministic seeded injection, deadline-aware receive,
// status-merged error propagation through distributed calls and do_all,
// bounded retry for array-server requests, and clean teardown under load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/do_all.hpp"
#include "core/runtime.hpp"
#include "dist/array_server.hpp"
#include "fault/inject.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pcn/process.hpp"
#include "spmd/coll.hpp"
#include "spmd/context.hpp"
#include "util/node_array.hpp"

namespace tdp {
namespace {

// ---------------------------------------------------------------- Plan ----

TEST(FaultPlan, ParsesAllKeys) {
  fault::Plan plan;
  std::string error;
  ASSERT_TRUE(fault::Plan::parse(
      "drop:0.05,delay:2,dup:0.01,reorder:0.02,fail:3,fail:5,seed:42", plan,
      error))
      << error;
  EXPECT_DOUBLE_EQ(plan.drop, 0.05);
  EXPECT_EQ(plan.delay_ms, 2u);
  EXPECT_DOUBLE_EQ(plan.dup, 0.01);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.02);
  EXPECT_EQ(plan.failed, (std::vector<int>{3, 5}));
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, DefaultPlanIsInactive) {
  fault::Plan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, RejectsUnknownKeyNamingIt) {
  fault::Plan plan;
  std::string error;
  EXPECT_FALSE(fault::Plan::parse("drop:0.1,bogus:3", plan, error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(plan.active());  // out left default-constructed
}

TEST(FaultPlan, RejectsMalformedValues) {
  fault::Plan plan;
  std::string error;
  EXPECT_FALSE(fault::Plan::parse("drop:abc", plan, error));
  EXPECT_FALSE(fault::Plan::parse("delay", plan, error));
  EXPECT_FALSE(fault::Plan::parse("seed:", plan, error));
}

TEST(FaultPlan, ClampsProbabilities) {
  fault::Plan plan;
  std::string error;
  ASSERT_TRUE(fault::Plan::parse("drop:7.5", plan, error));
  EXPECT_DOUBLE_EQ(plan.drop, 1.0);
}

TEST(FaultPlan, DescribeRendersActiveFields) {
  fault::Plan plan;
  std::string error;
  ASSERT_TRUE(fault::Plan::parse("drop:0.5,fail:2,seed:9", plan, error));
  const std::string d = plan.describe();
  EXPECT_NE(d.find("drop:0.5"), std::string::npos);
  EXPECT_NE(d.find("fail:2"), std::string::npos);
  EXPECT_NE(d.find("seed:9"), std::string::npos);
}

// ------------------------------------------------------------ Injector ----

std::vector<int> delivered_tags(fault::Injector& inj, int dst, int count) {
  std::vector<int> tags;
  for (int i = 0; i < count; ++i) {
    vp::Message m;
    m.tag = i;
    inj.on_send(-1, dst, std::move(m),
                [&tags](vp::Message&& out) { tags.push_back(out.tag); });
  }
  return tags;
}

TEST(FaultInjector, SameSeedSameInjectedFaultSequence) {
  fault::Plan plan;
  plan.drop = 0.5;
  plan.seed = 42;
  fault::Injector a(plan, 2);
  fault::Injector b(plan, 2);
  const std::vector<int> ta = delivered_tags(a, 0, 200);
  const std::vector<int> tb = delivered_tags(b, 0, 200);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a.counts().drops, b.counts().drops);
  EXPECT_GT(a.counts().drops, 0u);
  EXPECT_LT(a.counts().drops, 200u);
}

TEST(FaultInjector, DifferentSeedDifferentSequence) {
  fault::Plan p1, p2;
  p1.drop = p2.drop = 0.5;
  p1.seed = 1;
  p2.seed = 2;
  fault::Injector a(p1, 2);
  fault::Injector b(p2, 2);
  EXPECT_NE(delivered_tags(a, 0, 200), delivered_tags(b, 0, 200));
}

TEST(FaultInjector, DuplicatesDeliverTwice) {
  fault::Plan plan;
  plan.dup = 1.0;
  fault::Injector inj(plan, 1);
  EXPECT_EQ(delivered_tags(inj, 0, 3), (std::vector<int>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(inj.counts().dups, 3u);
}

TEST(FaultInjector, ReorderSwapsAdjacentMessages) {
  fault::Plan plan;
  plan.reorder = 1.0;
  fault::Injector inj(plan, 1);
  // Every stash-empty send is stashed; the next send flushes it after
  // itself: pairwise swaps.
  EXPECT_EQ(delivered_tags(inj, 0, 4), (std::vector<int>{1, 0, 3, 2}));
  EXPECT_EQ(inj.counts().reorders, 2u);
}

TEST(FaultInjector, DrainFlushesStashedMessages) {
  fault::Plan plan;
  plan.reorder = 1.0;
  fault::Injector inj(plan, 2);
  vp::Message m;
  m.tag = 7;
  inj.on_send(-1, 1, std::move(m), [](vp::Message&&) { FAIL(); });
  int drained_dst = -1;
  int drained_tag = -1;
  inj.drain([&](int dst, vp::Message&& out) {
    drained_dst = dst;
    drained_tag = out.tag;
  });
  EXPECT_EQ(drained_dst, 1);
  EXPECT_EQ(drained_tag, 7);
}

TEST(FaultInjector, FailedVpLosesAllTraffic) {
  fault::Plan plan;
  plan.failed = {1};
  fault::Injector inj(plan, 3);
  EXPECT_TRUE(inj.vp_failed(1));
  EXPECT_FALSE(inj.vp_failed(0));
  EXPECT_TRUE(delivered_tags(inj, 1, 5).empty());     // to the failed VP
  EXPECT_EQ(delivered_tags(inj, 2, 5).size(), 5u);    // between healthy VPs
  vp::Message m;
  bool delivered = false;
  inj.on_send(/*src_vp=*/1, 2, std::move(m),
              [&](vp::Message&&) { delivered = true; });
  EXPECT_FALSE(delivered);  // from the failed VP
  EXPECT_TRUE(inj.drop_request(1));
  EXPECT_FALSE(inj.drop_request(2));
}

TEST(FaultMachine, FullDropNeverDelivers) {
  vp::Machine machine(2);
  fault::Plan plan;
  plan.drop = 1.0;
  machine.set_fault_plan(plan);
  ASSERT_NE(machine.faults(), nullptr);
  vp::Message m;
  m.tag = 1;
  machine.send(1, std::move(m));
  EXPECT_EQ(machine.mailbox(1).pending(), 0u);
  EXPECT_EQ(machine.faults()->counts().drops, 1u);
}

// ----------------------------------------------------- Receive deadline ----

TEST(ReceiveDeadline, TimeoutCarriesAwaitedTuple) {
  vp::Mailbox box(3);
  vp::Message pending;
  pending.cls = vp::MessageClass::DataParallel;
  pending.comm = 7;
  pending.tag = 99;  // queued but never matching
  pending.src = 0;
  box.post(std::move(pending));
  try {
    box.receive_for(vp::MessageClass::DataParallel, 7, 3, 2, 50);
    FAIL() << "expected ReceiveTimeout";
  } catch (const vp::ReceiveTimeout& e) {
    EXPECT_EQ(e.owner, 3);
    EXPECT_TRUE(e.has_detail);
    EXPECT_EQ(e.cls, vp::MessageClass::DataParallel);
    EXPECT_EQ(e.comm, 7u);
    EXPECT_EQ(e.tag, 3);
    EXPECT_EQ(e.src, 2);
    const std::string what = e.what();
    EXPECT_NE(what.find("comm=7"), std::string::npos);
    EXPECT_NE(what.find("tag=3"), std::string::npos);
    // The pending-queue snapshot names what was available but not matching.
    EXPECT_NE(what.find("1 pending"), std::string::npos);
    EXPECT_NE(what.find("tag=99"), std::string::npos);
  }
  EXPECT_EQ(box.pending(), 1u);  // the non-matching message stays queued
}

TEST(ReceiveDeadline, DeliversWhenMessageArrivesInTime) {
  vp::Mailbox box(0);
  std::thread poster([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    vp::Message m;
    m.cls = vp::MessageClass::TaskParallel;
    m.tag = 5;
    box.post(std::move(m));
  });
  vp::Message got =
      box.receive_for(vp::MessageClass::TaskParallel, 0, 5, -1, 5000);
  EXPECT_EQ(got.tag, 5);
  poster.join();
}

TEST(ReceiveDeadline, OpaquePredicateTimeoutSaysSo) {
  vp::Mailbox box(1);
  try {
    box.receive_for([](const vp::Message&) { return false; }, 30);
    FAIL() << "expected ReceiveTimeout";
  } catch (const vp::ReceiveTimeout& e) {
    EXPECT_FALSE(e.has_detail);
    EXPECT_NE(std::string(e.what()).find("opaque predicate"),
              std::string::npos);
  }
}

TEST(ReceiveDeadline, SpmdRecvTimesOutWithCommTagSrc) {
  spmd::set_recv_timeout_ms(60);
  vp::Machine machine(2);
  spmd::SpmdContext ctx(machine, /*comm=*/11, {0, 1}, /*index=*/0);
  try {
    ctx.recv_value<int>(/*src_index=*/1, /*tag=*/4);
    FAIL() << "expected ReceiveTimeout";
  } catch (const vp::ReceiveTimeout& e) {
    EXPECT_EQ(e.cls, vp::MessageClass::DataParallel);
    EXPECT_EQ(e.comm, 11u);
    EXPECT_EQ(e.tag, 4);
    EXPECT_EQ(e.src, 1);
  }
  // Restore the environment default (whatever TDP_RECV_TIMEOUT_MS says).
  spmd::set_recv_timeout_ms(-1);
  EXPECT_GE(spmd::recv_timeout_ms(), 0);
}

// -------------------------------------------- Opaque-predicate watchdog ----

TEST(WatchdogDetail, OpaqueWaitClearsStaleTuple) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "wait-state publishing compiled out (TDP_OBS_ENABLE=OFF)";
  }
  obs::set_enabled(true);
  {
    vp::Mailbox box(0);
    // Leave a stale detailed tuple in the wait state.
    EXPECT_THROW(
        box.receive_for(vp::MessageClass::DataParallel, 7, 3, 2, 20),
        vp::ReceiveTimeout);
    std::thread blocked([&box] {
      vp::Message m =
          box.receive([](const vp::Message& m) { return m.tag == 5; });
      EXPECT_EQ(m.tag, 5);
    });
    obs::VpWaitState& ws = box.wait_state();
    while (ws.blocked_since_ns.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    EXPECT_EQ(ws.wait_cls.load(std::memory_order_relaxed), -1);
    EXPECT_EQ(ws.wait_comm.load(std::memory_order_relaxed), 0u);
    EXPECT_EQ(ws.wait_tag.load(std::memory_order_relaxed), 0);
    EXPECT_EQ(ws.wait_src.load(std::memory_order_relaxed), -1);
    vp::Message release;
    release.tag = 5;
    box.post(std::move(release));
    blocked.join();
  }
  obs::set_enabled(false);
}

// ------------------------------------------------- Error propagation ----

TEST(ErrorPropagation, DoAllRethrowsFirstBodyExceptionOnJoiningThread) {
  vp::Machine machine(4);
  EXPECT_THROW(
      core::do_all(
          machine, util::iota_nodes(4),
          [](int index) -> int {
            if (index == 2) throw std::runtime_error("boom");
            return 0;
          },
          core::status_combine_max),
      std::runtime_error);
}

TEST(ErrorPropagation, ParRethrowsOnJoin) {
  pcn::ProcessGroup group;
  group.spawn([] { throw std::logic_error("bad"); });
  EXPECT_THROW(group.join(), std::logic_error);
  EXPECT_EQ(group.first_exception(), nullptr);  // join consumed it
}

TEST(ErrorPropagation, ThrowingCopyFoldsIntoStatusMerge) {
  core::Runtime rt(4);
  rt.programs().add("explode", [](spmd::SpmdContext& ctx, core::CallArgs&) {
    if (ctx.index() == 2) throw std::runtime_error("boom");
  });
  std::string error;
  const int status = rt.call(rt.all_procs(), "explode")
                         .error_message(&error)
                         .run();
  EXPECT_EQ(status, kStatusError);
  EXPECT_NE(error.find("copy 2"), std::string::npos);
  EXPECT_NE(error.find("boom"), std::string::npos);
}

TEST(ErrorPropagation, HealthyCallLeavesErrorMessageEmpty) {
  core::Runtime rt(2);
  rt.programs().add("fine", [](spmd::SpmdContext&, core::CallArgs&) {});
  std::string error = "stale";
  EXPECT_EQ(rt.call(rt.all_procs(), "fine").error_message(&error).run(),
            kStatusOk);
  EXPECT_TRUE(error.empty());
}

// The ISSUE acceptance scenario: under TDP_FAULT=drop:0.05,seed:1 an 8-VP
// distributed call returns a non-OK merged status — no hang, no
// std::terminate — and the trace shows the injected drops and resulting
// timeouts as fault.* events.
TEST(ErrorPropagation, DroppedMessagesSurfaceAsMergedErrorStatus) {
  spmd::set_recv_timeout_ms(250);
  obs::set_enabled(true);
  obs::Tracer::instance().reset();

  fault::Plan plan;
  std::string parse_error;
  ASSERT_TRUE(fault::Plan::parse("drop:0.05,seed:1", plan, parse_error));

  auto run_once = [&plan]() {
    core::Runtime rt(8);
    rt.machine().set_fault_plan(plan);
    rt.programs().add("chatty", [](spmd::SpmdContext& ctx, core::CallArgs&) {
      for (int round = 0; round < 20; ++round) ctx.barrier();
    });
    std::string error;
    const int status =
        rt.call(rt.all_procs(), "chatty").error_message(&error).run();
    EXPECT_FALSE(error.empty());
    const std::uint64_t drops = rt.machine().faults()->counts().drops;
    EXPECT_GT(drops, 0u);
    return status;
  };

  const int first = run_once();
  EXPECT_EQ(first, kStatusError);  // non-OK merged status, §4.1.2
  // Determinism: the same seed gives the same merged status again.
  EXPECT_EQ(run_once(), first);

  if (obs::kCompiledIn) {  // trace assertions need the instrumentation
    bool saw_drop = false;
    bool saw_timeout = false;
    for (const obs::EventRecord& rec : obs::Tracer::instance().snapshot()) {
      if (rec.op == obs::Op::FaultDrop) saw_drop = true;
      if (rec.op == obs::Op::FaultTimeout) saw_timeout = true;
    }
    EXPECT_TRUE(saw_drop);
    EXPECT_TRUE(saw_timeout);
  }

  obs::set_enabled(false);
  obs::Tracer::instance().reset();
  spmd::set_recv_timeout_ms(-1);
}

// ------------------------------------------------------------ Teardown ----

TEST(Teardown, MachineDestructionUnblocksProcessesCleanly) {
  std::atomic<int> scanning{0};
  pcn::ProcessGroup group;
  {
    vp::Machine machine(4);
    for (int p = 0; p < 4; ++p) {
      // Bait message so the never-matching predicate runs (inside the
      // mailbox monitor), proving the process is inside receive before the
      // machine is torn down.
      vp::Message bait;
      bait.tag = 1000 + p;
      machine.send(p, std::move(bait));
      group.spawn_on(machine, p, [&machine, &scanning, p] {
        bool counted = false;
        machine.mailbox(p).receive([&](const vp::Message&) {
          if (!counted) {
            counted = true;
            scanning.fetch_add(1);
          }
          return false;
        });
        ADD_FAILURE() << "receive returned without a matching message";
      });
    }
    while (scanning.load() < 4) std::this_thread::yield();
  }  // ~Machine closes mailboxes under load: MailboxClosed = clean shutdown
  EXPECT_NO_THROW(group.join());
}

// -------------------------------------------------------- TDP_COLL guard ----

TEST(CollEnv, AlgoFromNameValidatesValues) {
  bool known = false;
  EXPECT_EQ(spmd::coll::algo_from_name("linear", known),
            spmd::coll::Algo::Linear);
  EXPECT_TRUE(known);
  EXPECT_EQ(spmd::coll::algo_from_name("tree", known),
            spmd::coll::Algo::Tree);
  EXPECT_TRUE(known);
  EXPECT_EQ(spmd::coll::algo_from_name("butterfly", known),
            spmd::coll::Algo::Tree);
  EXPECT_FALSE(known);
}

// --------------------------------------------------------- Server retry ----

class FaultServerTest : public ::testing::Test {
 protected:
  FaultServerTest() : machine_(4), am_(machine_), servers_(machine_) {
    dist::install_array_manager(servers_, am_);
    dist::CreateArrayRequest create;
    create.type = dist::ElemType::Float64;
    create.dims = {8};
    create.processors = util::iota_nodes(4);
    create.distrib = {dist::DimSpec::block()};
    create.borders = dist::BorderSpec::none();
    auto created = std::any_cast<dist::CreateArrayReply>(
        servers_.request_wait(0, "create_array", create));
    EXPECT_EQ(created.status, Status::Ok);
    id_ = created.id;
  }

  vp::Machine machine_;
  dist::ArrayManager am_;
  vp::ServerSystem servers_;
  dist::ArrayId id_;
};

TEST_F(FaultServerTest, SectionRoundTripWithoutFaults) {
  vp::Payload section;
  ASSERT_EQ(dist::read_section_request(servers_, 1, id_, section),
            Status::Ok);
  ASSERT_EQ(section.size(), 2 * sizeof(double));  // 8 elements over 4 procs
  std::vector<double> values{3.5, -1.25};
  ASSERT_EQ(dist::write_section_request(
                servers_, 1, id_,
                vp::Payload::copy_of(std::as_bytes(std::span<const double>(
                    values)))),
            Status::Ok);
  ASSERT_EQ(dist::read_section_request(servers_, 1, id_, section),
            Status::Ok);
  const double* d = reinterpret_cast<const double*>(section.data());
  EXPECT_DOUBLE_EQ(d[0], 3.5);
  EXPECT_DOUBLE_EQ(d[1], -1.25);
}

TEST_F(FaultServerTest, RetryExhaustionUnderFullDropReportsError) {
  fault::Plan plan;
  plan.drop = 1.0;
  machine_.set_fault_plan(plan);
  dist::RetryPolicy policy;
  policy.timeout_ms = 20;
  policy.max_attempts = 3;
  policy.backoff_ms = 1;
  vp::Payload section;
  EXPECT_EQ(dist::read_section_request(servers_, 1, id_, section, policy),
            Status::Error);
  // All three attempts were dropped in transit, none serviced.
  EXPECT_EQ(machine_.faults()->counts().request_drops, 3u);
  machine_.set_fault_plan(fault::Plan{});  // deactivate before teardown
}

TEST_F(FaultServerTest, FailedProcessorLosesOnlyItsRequests) {
  fault::Plan plan;
  plan.failed = {2};
  machine_.set_fault_plan(plan);
  dist::RetryPolicy policy;
  policy.timeout_ms = 20;
  policy.max_attempts = 2;
  policy.backoff_ms = 1;
  vp::Payload section;
  EXPECT_EQ(dist::read_section_request(servers_, 2, id_, section, policy),
            Status::Error);
  EXPECT_EQ(dist::read_section_request(servers_, 1, id_, section, policy),
            Status::Ok);
  machine_.set_fault_plan(fault::Plan{});
}

}  // namespace
}  // namespace tdp
