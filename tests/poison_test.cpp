// Tests for collective poison propagation: a forwarding node whose receive
// times out mid-collective must flush a poison marker to the peers that were
// counting on it, so its whole subtree fails fast naming the originally
// stalled copy instead of timing out hop by hop blaming each forwarder.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pcn/process.hpp"
#include "spmd/coll.hpp"
#include "spmd/context.hpp"
#include "util/node_array.hpp"
#include "vp/machine.hpp"
#include "vp/mailbox.hpp"

namespace tdp::spmd {
namespace {

/// Forces the tree family for the enclosing scope (poison forwarding lives
/// in the tree algorithms; the linear forms have no forwarders).
class ScopedTree {
 public:
  ScopedTree() { coll::force(coll::Algo::Tree); }
  ~ScopedTree() { coll::unforce(); }
};

/// Bounds every collective receive for the enclosing scope.
class ScopedTimeout {
 public:
  explicit ScopedTimeout(long long ms) { set_recv_timeout_ms(ms); }
  ~ScopedTimeout() { set_recv_timeout_ms(-1); }
};

/// What each copy's collective call ended with.
enum class Outcome { Ok, Timeout, Poisoned, Other };

/// Runs `body` as one SPMD program over the first `p` processors, except for
/// copies listed in `stalled`, which never join the collective (simulating a
/// wedged VP).  Returns each participating copy's outcome; `origins[i]`
/// holds the Poisoned origin where applicable, else -1.
void run_with_stall(int p, const std::vector<int>& stalled,
                    const std::function<void(SpmdContext&)>& body,
                    std::vector<Outcome>& outcomes,
                    std::vector<int>& origins) {
  vp::Machine machine(p);
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  outcomes.assign(static_cast<std::size_t>(p), Outcome::Ok);
  origins.assign(static_cast<std::size_t>(p), -1);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    const bool stall = std::find(stalled.begin(), stalled.end(), i) !=
                       stalled.end();
    if (stall) continue;
    group.spawn_on(machine, procs[static_cast<std::size_t>(i)], [&, i] {
      SpmdContext ctx(machine, comm, procs, i);
      try {
        body(ctx);
      } catch (const coll::Poisoned& e) {
        outcomes[static_cast<std::size_t>(i)] = Outcome::Poisoned;
        origins[static_cast<std::size_t>(i)] = e.origin;
      } catch (const vp::ReceiveTimeout&) {
        outcomes[static_cast<std::size_t>(i)] = Outcome::Timeout;
      } catch (...) {
        outcomes[static_cast<std::size_t>(i)] = Outcome::Other;
      }
    });
  }
  group.join();
}

TEST(CollPoison, StalledBroadcastRootPoisonsTheWholeTree) {
  ScopedTree tree;
  ScopedTimeout timeout(60);
  // Binomial tree, root 0, P=4: copy 1 and copy 2 receive from the root,
  // copy 3 from copy 2.  With the root stalled, copies 1 and 2 time out on
  // it directly; copy 2 still owes copy 3 a forward, so copy 3 must see
  // poison naming the root — not a second, later timeout blaming copy 2.
  // Copy 3 joins late so copy 2's poison is already queued when it blocks;
  // otherwise copy 3's own deadline would race the poison's arrival and
  // the test would assert on timing rather than on the forwarding rule.
  std::vector<Outcome> outcomes;
  std::vector<int> origins;
  run_with_stall(4, {0},
                 [](SpmdContext& ctx) {
                   if (ctx.index() == 3) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(250));
                   }
                   std::vector<std::byte> buf(8);
                   ctx.broadcast(std::span<std::byte>(buf), /*root=*/0);
                 },
                 outcomes, origins);
  EXPECT_EQ(outcomes[1], Outcome::Timeout);
  EXPECT_EQ(outcomes[2], Outcome::Timeout);
  EXPECT_EQ(outcomes[3], Outcome::Poisoned);
  EXPECT_EQ(origins[3], 0) << "poison must name the originally stalled copy";
}

TEST(CollPoison, StalledReduceLeafPoisonsThePathToTheRoot) {
  ScopedTree tree;
  ScopedTimeout timeout(60);
  // Combining tree, root 0, P=4: copy 2 receives copy 3's contribution and
  // folds it into its own before sending up.  With copy 3 stalled, copy 2
  // times out on it and must poison its pending send to the root, so the
  // root fails fast blaming copy 3 rather than copy 2.  The root joins
  // late for the same reason copy 3 does in the broadcast test: its own
  // deadline must not race the poison's arrival.
  std::vector<Outcome> outcomes;
  std::vector<int> origins;
  run_with_stall(4, {3},
                 [](SpmdContext& ctx) {
                   if (ctx.index() == 0) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(250));
                   }
                   double v = 1.0;
                   const std::function<double(const double&, const double&)>
                       sum = [](const double& a, const double& b) {
                         return a + b;
                       };
                   ctx.reduce(std::span<double>(&v, 1), /*root=*/0, sum);
                 },
                 outcomes, origins);
  EXPECT_EQ(outcomes[1], Outcome::Ok);
  EXPECT_EQ(outcomes[2], Outcome::Timeout);
  EXPECT_EQ(outcomes[0], Outcome::Poisoned);
  EXPECT_EQ(origins[0], 3) << "poison must name the originally stalled copy";
}

}  // namespace
}  // namespace tdp::spmd
