// Tests for the SPMD Householder QR decomposition (Appendix D).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/runtime.hpp"
#include "linalg/qr.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"

namespace tdp::linalg {
namespace {

void run_group(vp::Machine& machine, int p,
               const std::function<void(spmd::SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, i, [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

/// Builds a well-conditioned random system A x = b with known x.
struct System {
  int n;
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> x;

  explicit System(int n_, unsigned seed) : n(n_) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    a.resize(static_cast<std::size_t>(n) * n);
    x.resize(static_cast<std::size_t>(n));
    b.assign(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = dist(rng);
      for (int j = 0; j < n; ++j) {
        a[static_cast<std::size_t>(i) * n + j] =
            dist(rng) + (i == j ? static_cast<double>(n) : 0.0);
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        b[static_cast<std::size_t>(i)] +=
            a[static_cast<std::size_t>(i) * n + j] *
            x[static_cast<std::size_t>(j)];
      }
    }
  }
};

class QrSolve : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrSolve, RecoversKnownSolution) {
  const auto [p, n] = GetParam();
  const int nloc = n / p;
  System sys(n, 500u + static_cast<unsigned>(n));
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> a_local(
        sys.a.begin() + static_cast<std::size_t>(ctx.index()) * nloc * n,
        sys.a.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc * n);
    std::vector<double> b_local(
        sys.b.begin() + static_cast<std::size_t>(ctx.index()) * nloc,
        sys.b.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc);
    ASSERT_EQ(qr_solve(ctx, n, std::span<double>(a_local),
                       std::span<double>(b_local)),
              0);
    for (int i = 0; i < nloc; ++i) {
      EXPECT_NEAR(b_local[static_cast<std::size_t>(i)],
                  sys.x[static_cast<std::size_t>(ctx.index() * nloc + i)],
                  1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrSolve,
                         ::testing::Values(std::pair{1, 8}, std::pair{2, 8},
                                           std::pair{4, 8}, std::pair{4, 16},
                                           std::pair{8, 32}));

TEST(Qr, FactorsProduceUpperTriangularR) {
  const int p = 2;
  const int n = 6;
  System sys(n, 77);
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    const int nloc = n / p;
    std::vector<double> a_local(
        sys.a.begin() + static_cast<std::size_t>(ctx.index()) * nloc * n,
        sys.a.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc * n);
    QrFactors f;
    ASSERT_EQ(qr_factor(ctx, n, std::span<double>(a_local), f), 0);
    EXPECT_EQ(f.beta.size(), static_cast<std::size_t>(n));
    // R's diagonal is nonzero for a nonsingular matrix.
    for (int k = 0; k < n; ++k) {
      EXPECT_NE(f.diag[static_cast<std::size_t>(k)], 0.0);
    }
  });
}

TEST(Qr, QtPreservesNorm) {
  // Q' is orthogonal: applying it must preserve the Euclidean norm.
  const int p = 4;
  const int n = 16;
  System sys(n, 91);
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    const int nloc = n / p;
    std::vector<double> a_local(
        sys.a.begin() + static_cast<std::size_t>(ctx.index()) * nloc * n,
        sys.a.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc * n);
    QrFactors f;
    ASSERT_EQ(qr_factor(ctx, n, std::span<double>(a_local), f), 0);
    std::vector<double> v(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) {
      v[static_cast<std::size_t>(i)] = ctx.index() * nloc + i + 1.0;
    }
    double before = 0.0;
    for (double e : v) before += e * e;
    before = ctx.allreduce_sum(before);
    qr_apply_qt(ctx, n, a_local, f, std::span<double>(v));
    double after = 0.0;
    for (double e : v) after += e * e;
    after = ctx.allreduce_sum(after);
    EXPECT_NEAR(after, before, 1e-8 * before);
  });
}

TEST(Qr, RankDeficiencyReported) {
  const int p = 2;
  const int n = 4;
  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    // Column 2 identically zero => breakdown at step 2 (status 3).
    std::vector<double> a_local(static_cast<std::size_t>(2) * n, 0.0);
    for (int i = 0; i < 2; ++i) {
      a_local[static_cast<std::size_t>(i) * n + 0] = 1.0 + ctx.index() + i;
      a_local[static_cast<std::size_t>(i) * n + 1] = 2.0 + i;
      a_local[static_cast<std::size_t>(i) * n + 3] = 1.0;
    }
    // Make columns 0,1 independent enough that steps 0,1 succeed.
    if (ctx.index() == 0) a_local[1] = 7.0;
    QrFactors f;
    const int rc = qr_factor(ctx, n, std::span<double>(a_local), f);
    EXPECT_EQ(rc, 3);
  });
}

TEST(Qr, RegisteredProgramSolvesThroughDistributedCall) {
  core::Runtime rt(4);
  register_qr_programs(rt.programs());
  const int n = 8;
  System sys(n, 123);
  dist::ArrayId a;
  dist::ArrayId b;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::star()},
                dist::BorderSpec::none(), dist::Indexing::RowMajor, a),
            Status::Ok);
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n}, rt.all_procs(),
                {dist::DimSpec::block()}, dist::BorderSpec::none(),
                dist::Indexing::RowMajor, b),
            Status::Ok);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(rt.arrays().write_element(
                    0, a, std::vector<int>{i, j},
                    dist::Scalar{sys.a[static_cast<std::size_t>(i) * n + j]}),
                Status::Ok);
    }
    ASSERT_EQ(rt.arrays().write_element(
                  0, b, std::vector<int>{i},
                  dist::Scalar{sys.b[static_cast<std::size_t>(i)]}),
              Status::Ok);
  }
  EXPECT_EQ(rt.call(rt.all_procs(), "qr_solve_system")
                .constant(n)
                .local(a)
                .local(b)
                .status()
                .run(),
            0);
  for (int i = 0; i < n; ++i) {
    dist::Scalar v;
    ASSERT_EQ(rt.arrays().read_element(0, b, std::vector<int>{i}, v),
              Status::Ok);
    EXPECT_NEAR(std::get<double>(v), sys.x[static_cast<std::size_t>(i)],
                1e-9);
  }
}

TEST(Qr, AgreesWithLuOnSameSystem) {
  // Cross-validation of the two factorizations on one machine.
  core::Runtime rt(2);
  register_qr_programs(rt.programs());
  const int p = 2;
  const int n = 8;
  System sys(n, 321);
  vp::Machine& machine = rt.machine();
  std::vector<double> qr_x(static_cast<std::size_t>(n));
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    const int nloc = n / p;
    std::vector<double> a_local(
        sys.a.begin() + static_cast<std::size_t>(ctx.index()) * nloc * n,
        sys.a.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc * n);
    std::vector<double> b_local(
        sys.b.begin() + static_cast<std::size_t>(ctx.index()) * nloc,
        sys.b.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc);
    ASSERT_EQ(qr_solve(ctx, n, std::span<double>(a_local),
                       std::span<double>(b_local)),
              0);
    for (int i = 0; i < nloc; ++i) {
      qr_x[static_cast<std::size_t>(ctx.index() * nloc + i)] =
          b_local[static_cast<std::size_t>(i)];
    }
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(qr_x[static_cast<std::size_t>(i)],
                sys.x[static_cast<std::size_t>(i)], 1e-9);
  }
}

}  // namespace
}  // namespace tdp::linalg
