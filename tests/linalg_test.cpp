// Tests for the SPMD linear-algebra substrate (Appendix D) against
// sequential references.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/runtime.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix_ops.hpp"
#include "linalg/stencil.hpp"
#include "linalg/vector_ops.hpp"
#include "pcn/process.hpp"
#include "util/node_array.hpp"

namespace tdp::linalg {
namespace {

/// Runs `body` as one SPMD program over the first `p` processors.
void run_group(vp::Machine& machine, int p,
               const std::function<void(spmd::SpmdContext&)>& body) {
  const std::uint64_t comm = machine.next_comm();
  const std::vector<int> procs = util::iota_nodes(p);
  pcn::ProcessGroup group;
  for (int i = 0; i < p; ++i) {
    group.spawn_on(machine, i, [&, i] {
      spmd::SpmdContext ctx(machine, comm, procs, i);
      body(ctx);
    });
  }
  group.join();
}

TEST(VectorOps, InnerProductMatchesClosedForm) {
  // §6.1: v1[i] == v2[i] == i+1, so the inner product is sum of squares.
  vp::Machine machine(4);
  const int m = 4;
  const int big_m = 16;
  run_group(machine, 4, [&](spmd::SpmdContext& ctx) {
    std::vector<double> v1(m);
    std::vector<double> v2(m);
    double ipr = 0.0;
    test_iprdv(ctx, big_m, m, v1.data(), v2.data(), &ipr);
    double expect = 0.0;
    for (int i = 1; i <= big_m; ++i) expect += static_cast<double>(i) * i;
    EXPECT_DOUBLE_EQ(ipr, expect);
    // Postcondition: V1[i] == V2[i] == i+1 on this copy's block.
    for (int i = 0; i < m; ++i) {
      EXPECT_DOUBLE_EQ(v1[static_cast<std::size_t>(i)], ctx.index() * m + i + 1);
      EXPECT_DOUBLE_EQ(v2[static_cast<std::size_t>(i)], ctx.index() * m + i + 1);
    }
  });
}

TEST(VectorOps, NormsAndSums) {
  vp::Machine machine(4);
  run_group(machine, 4, [&](spmd::SpmdContext& ctx) {
    std::vector<double> v(2);
    init_iota_plus1(ctx, 2, v.data());  // global 1..8
    EXPECT_DOUBLE_EQ(vec_sum(ctx, v), 36.0);
    EXPECT_DOUBLE_EQ(norm_inf(ctx, v), 8.0);
    EXPECT_DOUBLE_EQ(norm2(ctx, v), std::sqrt(204.0));
  });
}

TEST(VectorOps, AxpyAndScaleAreLocal) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12.0, 24.0}));
  scale(0.5, y);
  EXPECT_EQ(y, (std::vector<double>{6.0, 12.0}));
}

TEST(MatrixOps, MatvecMatchesSequential) {
  const int p = 4;
  const int n = 8;
  const int mloc = n / p;
  vp::Machine machine(p);
  // Global A[i][j] = i + 2j, x[j] = j+1.
  std::vector<double> ax_expect(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ax_expect[static_cast<std::size_t>(i)] +=
          (i + 2.0 * j) * (j + 1);
    }
  }
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> a(static_cast<std::size_t>(mloc) * n);
    init_matrix(ctx, mloc, n, a.data(),
                [](long long i, long long j) {
                  return static_cast<double>(i) + 2.0 * j;
                });
    std::vector<double> x(static_cast<std::size_t>(mloc));
    init_iota_plus1(ctx, mloc, x.data());
    std::vector<double> y(static_cast<std::size_t>(mloc));
    matvec(ctx, mloc, n, a, x, y);
    for (int i = 0; i < mloc; ++i) {
      EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                       ax_expect[static_cast<std::size_t>(
                           ctx.index() * mloc + i)]);
    }
  });
}

TEST(MatrixOps, MatmulMatchesSequential) {
  const int p = 2;
  const int n = 4;
  const int mloc = n / p;
  vp::Machine machine(p);
  auto fa = [](long long i, long long j) {
    return static_cast<double>(i * 4 + j + 1);
  };
  auto fb = [](long long i, long long j) {
    return static_cast<double>((i + 1) * (j + 2));
  };
  // Sequential reference product.
  std::vector<double> c_ref(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int l = 0; l < n; ++l) {
      for (int j = 0; j < n; ++j) {
        c_ref[static_cast<std::size_t>(i) * n + j] += fa(i, l) * fb(l, j);
      }
    }
  }
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> a(static_cast<std::size_t>(mloc) * n);
    std::vector<double> b(static_cast<std::size_t>(mloc) * n);
    std::vector<double> c(static_cast<std::size_t>(mloc) * n);
    init_matrix(ctx, mloc, n, a.data(), fa);
    init_matrix(ctx, mloc, n, b.data(), fb);
    matmul(ctx, mloc, n, n, a, b, c);
    for (int i = 0; i < mloc; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_DOUBLE_EQ(
            c[static_cast<std::size_t>(i) * n + j],
            c_ref[static_cast<std::size_t>(ctx.index() * mloc + i) * n + j]);
      }
    }
  });
}

TEST(MatrixOps, FrobeniusNorm) {
  vp::Machine machine(2);
  run_group(machine, 2, [](spmd::SpmdContext& ctx) {
    std::vector<double> a{ctx.index() == 0 ? 3.0 : 4.0};
    EXPECT_DOUBLE_EQ(frobenius_norm(ctx, a), 5.0);
  });
}

class LuSolve : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LuSolve, RecoversKnownSolution) {
  const auto [p, n] = GetParam();
  vp::Machine machine(p);
  const int nloc = n / p;
  std::mt19937 rng(1234 + n);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);

  // A diagonally-perturbed random matrix (well-conditioned) and a known x.
  std::vector<double> a_full(static_cast<std::size_t>(n) * n);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = dist(rng);
    for (int j = 0; j < n; ++j) {
      a_full[static_cast<std::size_t>(i) * n + j] =
          dist(rng) + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  std::vector<double> b_full(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b_full[static_cast<std::size_t>(i)] +=
          a_full[static_cast<std::size_t>(i) * n + j] *
          x_true[static_cast<std::size_t>(j)];
    }
  }

  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> a_local(
        a_full.begin() + static_cast<std::size_t>(ctx.index()) * nloc * n,
        a_full.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc * n);
    std::vector<double> b_local(
        b_full.begin() + static_cast<std::size_t>(ctx.index()) * nloc,
        b_full.begin() + static_cast<std::size_t>(ctx.index() + 1) * nloc);
    std::vector<int> pivots;
    ASSERT_EQ(lu_factor(ctx, n, std::span<double>(a_local), pivots), 0);
    lu_solve(ctx, n, a_local, pivots, std::span<double>(b_local));
    for (int i = 0; i < nloc; ++i) {
      EXPECT_NEAR(b_local[static_cast<std::size_t>(i)],
                  x_true[static_cast<std::size_t>(ctx.index() * nloc + i)],
                  1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolve,
                         ::testing::Values(std::pair{1, 8}, std::pair{2, 8},
                                           std::pair{4, 8}, std::pair{4, 16},
                                           std::pair{8, 32}));

TEST(Lu, SingularMatrixReported) {
  vp::Machine machine(2);
  run_group(machine, 2, [](spmd::SpmdContext& ctx) {
    // Column 1 is identically zero => singular at step 1.
    std::vector<double> a_local(static_cast<std::size_t>(2) * 4, 0.0);
    for (int i = 0; i < 2; ++i) {
      a_local[static_cast<std::size_t>(i) * 4 + 0] = 1.0;  // col 0 nonzero
      a_local[static_cast<std::size_t>(i) * 4 + 2 + ctx.index()] = 1.0;
    }
    std::vector<int> pivots;
    EXPECT_EQ(lu_factor(ctx, 4, std::span<double>(a_local), pivots), 2);
  });
}

TEST(Lu, RegisteredProgramSolvesThroughDistributedCall) {
  core::Runtime rt(4);
  register_lu_programs(rt.programs());
  const int n = 8;
  dist::ArrayId a;
  dist::ArrayId b;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::star()},
                dist::BorderSpec::none(), dist::Indexing::RowMajor, a),
            Status::Ok);
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n}, rt.all_procs(),
                {dist::DimSpec::block()}, dist::BorderSpec::none(),
                dist::Indexing::RowMajor, b),
            Status::Ok);
  // A = I + small off-diagonal; x_true[i] = i; b = A x.
  std::vector<double> x_true(n);
  for (int i = 0; i < n; ++i) x_true[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < n; ++i) {
    double bi = 0.0;
    for (int j = 0; j < n; ++j) {
      const double aij = (i == j ? 4.0 : 0.0) + 0.1 * ((i + j) % 3);
      ASSERT_EQ(rt.arrays().write_element(0, a, std::vector<int>{i, j},
                                          dist::Scalar{aij}),
                Status::Ok);
      bi += aij * x_true[static_cast<std::size_t>(j)];
    }
    ASSERT_EQ(rt.arrays().write_element(0, b, std::vector<int>{i},
                                        dist::Scalar{bi}),
              Status::Ok);
  }
  const int status = rt.call(rt.all_procs(), "lu_solve_system")
                         .constant(n)
                         .local(a)
                         .local(b)
                         .status()
                         .run();
  EXPECT_EQ(status, 0);
  for (int i = 0; i < n; ++i) {
    dist::Scalar v;
    ASSERT_EQ(rt.arrays().read_element(0, b, std::vector<int>{i}, v),
              Status::Ok);
    EXPECT_NEAR(std::get<double>(v), x_true[static_cast<std::size_t>(i)],
                1e-9);
  }
}

TEST(Stencil, HaloExchangeMovesEdgeValues) {
  vp::Machine machine(4);
  const int m = 3;
  run_group(machine, 4, [&](spmd::SpmdContext& ctx) {
    std::vector<double> field(static_cast<std::size_t>(m) + 2, -1.0);
    for (int i = 1; i <= m; ++i) {
      field[static_cast<std::size_t>(i)] = ctx.index() * 10.0 + i;
    }
    exchange_halo_1d(ctx, field, m);
    if (ctx.index() > 0) {
      EXPECT_DOUBLE_EQ(field[0], (ctx.index() - 1) * 10.0 + m);
    } else {
      EXPECT_DOUBLE_EQ(field[0], -1.0);  // boundary untouched
    }
    if (ctx.index() < ctx.nprocs() - 1) {
      EXPECT_DOUBLE_EQ(field[static_cast<std::size_t>(m) + 1],
                       (ctx.index() + 1) * 10.0 + 1);
    } else {
      EXPECT_DOUBLE_EQ(field[static_cast<std::size_t>(m) + 1], -1.0);
    }
  });
}

TEST(Stencil, HeatStepMatchesSequentialReference) {
  const int p = 4;
  const int m = 4;
  const int n = p * m;
  const double alpha = 0.2;
  // Sequential reference on the full rod with insulated (reflecting) ends.
  std::vector<double> ref(static_cast<std::size_t>(n) + 2, 0.0);
  for (int i = 1; i <= n; ++i) ref[static_cast<std::size_t>(i)] = i;
  for (int step = 0; step < 5; ++step) {
    ref[0] = ref[1];
    ref[static_cast<std::size_t>(n) + 1] = ref[static_cast<std::size_t>(n)];
    std::vector<double> next = ref;
    for (int i = 1; i <= n; ++i) {
      next[static_cast<std::size_t>(i)] =
          ref[static_cast<std::size_t>(i)] +
          alpha * (ref[static_cast<std::size_t>(i) - 1] -
                   2.0 * ref[static_cast<std::size_t>(i)] +
                   ref[static_cast<std::size_t>(i) + 1]);
    }
    ref = next;
  }

  vp::Machine machine(p);
  run_group(machine, p, [&](spmd::SpmdContext& ctx) {
    std::vector<double> field(static_cast<std::size_t>(m) + 2, 0.0);
    for (int i = 1; i <= m; ++i) {
      field[static_cast<std::size_t>(i)] = ctx.index() * m + i;
    }
    std::vector<double> scratch(static_cast<std::size_t>(m));
    for (int step = 0; step < 5; ++step) {
      heat_step_1d(ctx, field, m, alpha, scratch, 2 * step);
    }
    for (int i = 1; i <= m; ++i) {
      EXPECT_NEAR(field[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(ctx.index() * m + i)], 1e-12);
    }
  });
}

TEST(Stencil, JacobiConvergesTowardHarmonicInterior) {
  // A coarse sanity check: Jacobi on a square with hot top edge relaxes the
  // interior monotonically toward values between the boundary extremes, and
  // the residual decreases.
  core::Runtime rt(4);
  register_stencil_programs(rt.programs());
  const int n = 8;
  dist::ArrayId u;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::star()},
                dist::BorderSpec::foreign("jacobi_step_2d", 1),
                dist::Indexing::RowMajor, u),
            Status::Ok);
  for (int j = 0; j < n; ++j) {
    ASSERT_EQ(rt.arrays().write_element(0, u, std::vector<int>{0, j},
                                        dist::Scalar{100.0}),
              Status::Ok);
  }
  std::vector<double> res1;
  std::vector<double> res2;
  ASSERT_EQ(rt.call(rt.all_procs(), "jacobi_step_2d")
                .constant(5)
                .local(u)
                .reduce_f64(1, core::f64_max(), &res1)
                .run(),
            kStatusOk);
  ASSERT_EQ(rt.call(rt.all_procs(), "jacobi_step_2d")
                .constant(40)
                .local(u)
                .reduce_f64(1, core::f64_max(), &res2)
                .run(),
            kStatusOk);
  EXPECT_LT(res2[0], res1[0]);  // residual shrinks as it converges
  dist::Scalar mid;
  ASSERT_EQ(rt.arrays().read_element(0, u, std::vector<int>{n / 2, n / 2},
                                     mid),
            Status::Ok);
  EXPECT_GT(std::get<double>(mid), 0.0);
  EXPECT_LT(std::get<double>(mid), 100.0);
}

TEST(Stencil, Jacobi2dGridMatchesSequentialReference) {
  // 8x8 grid over a 2x2 processor grid; hot top edge; compare 3 sweeps
  // against a sequential Jacobi.
  const int n = 8;
  const int pr = 2;
  const int pc = 2;
  const int mloc = n / pr;
  const int nloc = n / pc;
  std::vector<double> ref(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) ref[static_cast<std::size_t>(j)] = 100.0;
  for (int step = 0; step < 3; ++step) {
    std::vector<double> next = ref;
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        next[static_cast<std::size_t>(i) * n + j] =
            0.25 * (ref[static_cast<std::size_t>(i - 1) * n + j] +
                    ref[static_cast<std::size_t>(i + 1) * n + j] +
                    ref[static_cast<std::size_t>(i) * n + j - 1] +
                    ref[static_cast<std::size_t>(i) * n + j + 1]);
      }
    }
    ref = next;
  }

  vp::Machine machine(4);
  run_group(machine, 4, [&](spmd::SpmdContext& ctx) {
    const int gr = ctx.index() / pc;
    const int gc = ctx.index() % pc;
    std::vector<double> field(
        static_cast<std::size_t>(mloc + 2) * (nloc + 2), 0.0);
    for (int r = 0; r < mloc; ++r) {
      for (int c = 0; c < nloc; ++c) {
        const int gi = gr * mloc + r;
        field[static_cast<std::size_t>(r + 1) * (nloc + 2) + c + 1] =
            gi == 0 ? 100.0 : 0.0;
      }
    }
    std::vector<double> scratch(static_cast<std::size_t>(mloc) * nloc);
    for (int step = 0; step < 3; ++step) {
      jacobi_step_2d_grid(ctx, field, mloc, nloc, pr, pc, scratch, 4 * step);
    }
    for (int r = 0; r < mloc; ++r) {
      for (int c = 0; c < nloc; ++c) {
        const int gi = gr * mloc + r;
        const int gj = gc * nloc + c;
        EXPECT_NEAR(
            field[static_cast<std::size_t>(r + 1) * (nloc + 2) + c + 1],
            ref[static_cast<std::size_t>(gi) * n + gj], 1e-12)
            << gi << "," << gj;
      }
    }
  });
}

TEST(Stencil, Jacobi2dGridRegisteredProgramOnBlockBlockArray) {
  // The same model driven through a distributed call on a (block, block)
  // array whose halos come from the program's border routine.
  core::Runtime rt(4);
  register_stencil_programs(rt.programs());
  const int n = 8;
  dist::ArrayId u;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {n, n}, rt.all_procs(),
                {dist::DimSpec::block(), dist::DimSpec::block()},
                dist::BorderSpec::foreign("jacobi_step_2d_grid", 3),
                dist::Indexing::RowMajor, u),
            Status::Ok);
  for (int j = 0; j < n; ++j) {
    ASSERT_EQ(rt.arrays().write_element(0, u, std::vector<int>{0, j},
                                        dist::Scalar{100.0}),
              Status::Ok);
  }
  std::vector<double> residual;
  ASSERT_EQ(rt.call(rt.all_procs(), "jacobi_step_2d_grid")
                .constant(10)
                .constant(2)
                .constant(2)
                .local(u)
                .reduce_f64(1, core::f64_max(), &residual)
                .run(),
            kStatusOk);
  EXPECT_GT(residual[0], 0.0);
  dist::Scalar mid;
  ASSERT_EQ(rt.arrays().read_element(0, u, std::vector<int>{n / 2, n / 2},
                                     mid),
            Status::Ok);
  EXPECT_GT(std::get<double>(mid), 0.0);
  EXPECT_LT(std::get<double>(mid), 100.0);
}

TEST(RegisteredPrograms, InnerProductViaDistributedCall) {
  // The full §6.1 example through the registered "test_iprdv".
  core::Runtime rt(4);
  register_programs(rt.programs());
  const int p = rt.nprocs();
  const int local_m = 4;
  const int big_m = p * local_m;
  dist::ArrayId v1;
  dist::ArrayId v2;
  for (dist::ArrayId* id : {&v1, &v2}) {
    ASSERT_EQ(rt.arrays().create_array(
                  0, dist::ElemType::Float64, {big_m}, rt.all_procs(),
                  {dist::DimSpec::block()}, dist::BorderSpec::none(),
                  dist::Indexing::RowMajor, *id),
              Status::Ok);
  }
  std::vector<double> inprod;
  const int status = rt.call(rt.all_procs(), "test_iprdv")
                         .constant(rt.all_procs())
                         .constant(p)
                         .index()
                         .constant(big_m)
                         .constant(local_m)
                         .local(v1)
                         .local(v2)
                         .reduce_f64(1, core::f64_max(), &inprod)
                         .run();
  EXPECT_EQ(status, kStatusOk);
  double expect = 0.0;
  for (int i = 1; i <= big_m; ++i) expect += static_cast<double>(i) * i;
  EXPECT_DOUBLE_EQ(inprod[0], expect);
}

}  // namespace
}  // namespace tdp::linalg
