// Scheduler/runtime interaction tests for the TDP_SCHED=steal lane: the
// park/ready protocol as seen through the blocking layers (mailbox waiter
// wakeups, Def dependency edges, ProcessGroup join), exception propagation
// from fiber bodies, and teardown while fibers are suspended in receives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pcn/def.hpp"
#include "pcn/process.hpp"
#include "sched/sched.hpp"
#include "vp/machine.hpp"
#include "vp/mailbox.hpp"

namespace tdp {
namespace {

// Restores the TDP_SCHED selection even when an assertion fails mid-test.
struct SchedGuard {
  explicit SchedGuard(sched::SchedMode m) { sched::force_sched_mode(m); }
  ~SchedGuard() { sched::unforce_sched_mode(); }
};

struct MailboxGuard {
  explicit MailboxGuard(vp::MailboxMode m) { vp::force_mailbox_mode(m); }
  ~MailboxGuard() { vp::unforce_mailbox_mode(); }
};

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

vp::Message make(vp::MessageClass cls, std::uint64_t comm, int tag, int src) {
  vp::Message m;
  m.cls = cls;
  m.comm = comm;
  m.tag = tag;
  m.src = src;
  return m;
}

// Polls until `pred` holds, so tests can wait for fibers to actually
// suspend without sleeping blind.
template <typename Pred>
bool wait_until(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(SchedMode, DefaultIsThreadAndForceOverrides) {
  // No TDP_SCHED in the test environment unless CI sets it; the force API
  // must win either way, and unforce must restore the environment's choice.
  const sched::SchedMode env_mode = sched::sched_mode();
  sched::force_sched_mode(sched::SchedMode::Steal);
  EXPECT_EQ(sched::sched_mode(), sched::SchedMode::Steal);
  sched::force_sched_mode(sched::SchedMode::Thread);
  EXPECT_EQ(sched::sched_mode(), sched::SchedMode::Thread);
  sched::unforce_sched_mode();
  EXPECT_EQ(sched::sched_mode(), env_mode);
}

TEST(SchedSteal, JoinRethrowsWorkerException) {
  SchedGuard guard(sched::SchedMode::Steal);
  pcn::ProcessGroup group;
  group.spawn([] { throw std::runtime_error("task body failed"); });
  EXPECT_THROW(group.join(), std::runtime_error);
  // join() consumed the exception; a second join is clean.
  group.join();
}

TEST(SchedSteal, SpawnedCountsTasks) {
  SchedGuard guard(sched::SchedMode::Steal);
  pcn::ProcessGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.spawn([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(group.spawned(), 8u);
  group.join();
  EXPECT_EQ(ran.load(), 8);
}

TEST(SchedSteal, PostReschedulesExactlyOneSuspendedReceiver) {
  SchedGuard sched_guard(sched::SchedMode::Steal);
  MailboxGuard mode_guard(vp::MailboxMode::Indexed);
  vp::Mailbox mb;
  std::atomic<bool> got_tag1{false};
  std::atomic<bool> got_tag2{false};
  pcn::ProcessGroup a;
  pcn::ProcessGroup b;
  a.spawn([&] {
    (void)mb.receive(vp::MessageClass::DataParallel, 1, 1, -1);
    got_tag1.store(true);
  });
  b.spawn([&] {
    (void)mb.receive(vp::MessageClass::DataParallel, 1, 2, -1);
    got_tag2.store(true);
  });
  // Both receivers must be *suspended tasks*, not blocked threads: the
  // watchdog-visible suspended count is the proof.
  ASSERT_TRUE(wait_until([&] {
    return mb.wait_state().suspended_waiters.load(std::memory_order_relaxed) ==
           2;
  }));
  ASSERT_NE(mb.describe_wait().find("2 waiting"), std::string::npos);

  const std::uint64_t wakes_before = counter_value("mailbox.wakeups");
  const std::uint64_t readies_before = counter_value("sched.wakeups");
  mb.post(make(vp::MessageClass::DataParallel, 1, 2, 0));
  b.join();
  EXPECT_TRUE(got_tag2.load());
  // The tag-1 fiber must not have been disturbed: no delivery, no
  // reschedule.  One post, one mailbox wakeup, one task readied.
  EXPECT_FALSE(got_tag1.load());
  EXPECT_EQ(counter_value("mailbox.wakeups"), wakes_before + 1);
  EXPECT_EQ(counter_value("sched.wakeups"), readies_before + 1);
  EXPECT_EQ(mb.wait_state().suspended_waiters.load(std::memory_order_relaxed),
            1);

  mb.post(make(vp::MessageClass::DataParallel, 1, 1, 0));
  a.join();
  EXPECT_TRUE(got_tag1.load());
}

TEST(SchedSteal, ReceiveTimeoutFiresForSuspendedTask) {
  SchedGuard guard(sched::SchedMode::Steal);
  vp::Mailbox mb;
  pcn::ProcessGroup group;
  group.spawn([&mb] {
    (void)mb.receive_for(vp::MessageClass::TaskParallel, 0, 9, -1, 50);
  });
  // The fiber suspends (a task record, serviced by the timer thread) and
  // must still observe its deadline — the group join rethrows the
  // ReceiveTimeout its body threw.
  ASSERT_TRUE(wait_until([&] {
    return mb.wait_state().suspended_waiters.load(std::memory_order_relaxed) ==
           1;
  }));
  EXPECT_THROW(group.join(), vp::ReceiveTimeout);
  EXPECT_EQ(mb.wait_state().suspended_waiters.load(std::memory_order_relaxed),
            0);
}

TEST(SchedSteal, DefDefineRequeuesSuspendedReaders) {
  SchedGuard guard(sched::SchedMode::Steal);
  // A chain of dependency edges: fiber i suspends reading link[i] and
  // defines link[i+1]; defining link[0] must ripple the whole chain.
  constexpr int kChain = 64;
  std::vector<pcn::Def<int>> links(kChain + 1);
  pcn::ProcessGroup group;
  for (int i = 0; i < kChain; ++i) {
    group.spawn([&links, i] { links[i + 1].define(links[i].read() + 1); });
  }
  links[0].define(0);
  group.join();
  EXPECT_EQ(links[kChain].read(), kChain);
}

TEST(SchedSteal, DefReadForTimesOutOnFiber) {
  SchedGuard guard(sched::SchedMode::Steal);
  pcn::Def<int> never;
  std::atomic<bool> timed_out{false};
  pcn::ProcessGroup group;
  group.spawn([&] {
    timed_out.store(never.read_for(std::chrono::milliseconds(50)) == nullptr);
  });
  group.join();
  EXPECT_TRUE(timed_out.load());
  // And a defined value is still delivered to a later fiber read.
  never.define(7);
  group.spawn([&] { EXPECT_EQ(never.read(), 7); });
  group.join();
}

TEST(SchedSteal, NestedParDoesNotWedgeThePool) {
  SchedGuard guard(sched::SchedMode::Steal);
  // Joining fibers suspend instead of blocking their worker, so nesting
  // deeper than the worker count must still complete.
  std::atomic<int> leaves{0};
  pcn::par(
      [&] {
        pcn::par([&] { pcn::par([&] { leaves.fetch_add(1); },
                                [&] { leaves.fetch_add(1); }); },
                 [&] { leaves.fetch_add(1); });
      },
      [&] { pcn::par([&] { leaves.fetch_add(1); },
                     [&] { leaves.fetch_add(1); }); });
  EXPECT_EQ(leaves.load(), 5);
}

TEST(SchedSteal, TeardownWithSuspendedReceiversIsClean) {
  SchedGuard guard(sched::SchedMode::Steal);
  pcn::ProcessGroup group;
  {
    vp::Machine machine(4);
    for (int p = 0; p < machine.nprocs(); ++p) {
      group.spawn_on(machine, p, [&machine, p] {
        // Blocks forever: only machine teardown ends this process, and
        // that must read as a clean shutdown (MailboxClosed is swallowed
        // by the group), not an error.
        (void)machine.mailbox(p).receive(vp::MessageClass::TaskParallel, 0,
                                         99, -1);
      });
    }
    ASSERT_TRUE(wait_until([&] {
      const sched::Stats s = sched::stats();
      return s.suspended >= 4;
    }));
  }  // ~Machine closes every mailbox and drains the waiters
  group.join();
  EXPECT_EQ(group.first_exception(), nullptr);
}

TEST(SchedSteal, ThousandsOfTasksMultiplexOnFixedPool) {
  SchedGuard guard(sched::SchedMode::Steal);
  // Far more concurrently-suspended processes than any thread-per-VP pool
  // could carry comfortably: each waits on its own Def, then the chain is
  // released.  Verifies spawn/park/ready at depth, not just throughput.
  constexpr int kTasks = 2048;
  std::vector<pcn::Def<int>> gates(kTasks);
  std::atomic<int> done{0};
  pcn::ProcessGroup group;
  for (int i = 0; i < kTasks; ++i) {
    group.spawn([&gates, &done, i] {
      (void)gates[i].read();
      done.fetch_add(1);
      if (i + 1 < kTasks) gates[i + 1].define(1);
    });
  }
  const sched::Stats mid = sched::stats();
  EXPECT_GE(mid.workers, 2u);
  gates[0].define(1);
  group.join();
  EXPECT_EQ(done.load(), kTasks);
  const sched::Stats after = sched::stats();
  EXPECT_GE(after.completed, static_cast<std::uint64_t>(kTasks));
  EXPECT_FALSE(sched::describe().empty());
}

TEST(SchedThread, ThreadLaneIsUnchanged) {
  SchedGuard guard(sched::SchedMode::Thread);
  pcn::ProcessGroup group;
  std::atomic<bool> on_fiber{true};
  group.spawn([&] { on_fiber.store(sched::on_worker_fiber()); });
  group.join();
  // Legacy lane: the body ran on a dedicated thread, not a worker fiber.
  EXPECT_FALSE(on_fiber.load());
  EXPECT_EQ(group.spawned(), 1u);
}

}  // namespace
}  // namespace tdp
