// Tests for the distributed-call machinery (§3.3, §4.3, §5.2): do_all, the
// five parameter kinds, status/reduction merging, failure paths, concurrent
// calls and the channels extension (§7.2.1).
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/do_all.hpp"
#include "core/runtime.hpp"
#include "obs/metrics.hpp"
#include "util/node_array.hpp"
#include "vp/payload.hpp"

namespace tdp::core {
namespace {

TEST(DoAll, RunsOncePerProcessorOnThatProcessor) {
  vp::Machine machine(4);
  std::vector<int> placed(4, -1);
  const int status = do_all(
      machine, util::iota_nodes(4),
      [&](int index) {
        placed[static_cast<std::size_t>(index)] = vp::current_proc();
        return index;
      },
      status_combine_max);
  EXPECT_EQ(status, 3);  // max of 0..3
  EXPECT_EQ(placed, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DoAll, CombinesPairwiseInIndexOrder) {
  vp::Machine machine(4);
  std::vector<std::pair<int, int>> combinations;
  std::mutex mu;
  const int status = do_all(
      machine, util::iota_nodes(4), [](int index) { return index + 1; },
      [&](int a, int b) {
        std::lock_guard<std::mutex> lock(mu);
        combinations.push_back({a, b});
        return a + b;
      });
  EXPECT_EQ(status, 10);
  ASSERT_EQ(combinations.size(), 3u);
  EXPECT_EQ(combinations[0], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(combinations[1], (std::pair<int, int>{3, 3}));
  EXPECT_EQ(combinations[2], (std::pair<int, int>{6, 4}));
}

TEST(DoAll, EmptyGroupYieldsZero) {
  vp::Machine machine(2);
  EXPECT_EQ(do_all(machine, {}, [](int) { return 42; }, status_combine_max),
            0);
}

TEST(DoAll, AsyncStatusDefinedOnlyAfterAllCopies) {
  vp::Machine machine(3);
  pcn::Def<int> release_copy2;
  pcn::ProcessGroup group;
  pcn::Def<int> status = do_all_async(
      machine, util::iota_nodes(3),
      [&](int index) {
        if (index == 2) return release_copy2.read();
        return 0;
      },
      status_combine_max, group);
  EXPECT_EQ(status.read_for(std::chrono::milliseconds(30)), nullptr);
  release_copy2.define(5);
  group.join();
  EXPECT_EQ(status.read(), 5);
}

class DistributedCallTest : public ::testing::Test {
 protected:
  DistributedCallTest() : rt_(8) {}

  dist::ArrayId make_vector(int n, const std::vector<int>& procs) {
    dist::ArrayId id;
    EXPECT_EQ(rt_.arrays().create_array(
                  0, dist::ElemType::Float64, {n}, procs,
                  {dist::DimSpec::block()}, dist::BorderSpec::none(),
                  dist::Indexing::RowMajor, id),
              Status::Ok);
    return id;
  }

  Runtime rt_;
};

TEST_F(DistributedCallTest, ControlFlowCallAndReturn) {
  // Fig 3.2: one copy per processor; caller resumes after all return.
  std::atomic<int> copies{0};
  std::set<int> procs_seen;
  std::mutex mu;
  rt_.programs().add("count", [&](spmd::SpmdContext& ctx, CallArgs&) {
    ++copies;
    std::lock_guard<std::mutex> lock(mu);
    procs_seen.insert(ctx.proc());
  });
  const int status = rt_.call(util::iota_nodes(8), "count").run();
  EXPECT_EQ(status, kStatusOk);
  EXPECT_EQ(copies.load(), 8);
  EXPECT_EQ(procs_seen.size(), 8u);
}

TEST_F(DistributedCallTest, ConstantsAreSharedInputs) {
  rt_.programs().add("check_consts",
                     [](spmd::SpmdContext&, CallArgs& args) {
                       EXPECT_EQ(args.in<int>(0), 7);
                       EXPECT_DOUBLE_EQ(args.in<double>(1), 2.5);
                       EXPECT_EQ(args.in<std::string>(2), "hello");
                       EXPECT_EQ(args.in<std::vector<int>>(3),
                                 (std::vector<int>{1, 2, 3}));
                     });
  const int status = rt_.call(util::iota_nodes(4), "check_consts")
                         .constant(7)
                         .constant(2.5)
                         .constant(std::string("hello"))
                         .constant(std::vector<int>{1, 2, 3})
                         .run();
  EXPECT_EQ(status, kStatusOk);
}

TEST_F(DistributedCallTest, PayloadConstantIsSharedWithoutCopies) {
  // A bulk constant rides through the marshal phase as a refcounted handle:
  // every copy of the program sees the *same* buffer, and wrapping plus
  // marshalling costs zero payload-byte copies.
  std::vector<std::byte> bulk(512);
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    bulk[i] = static_cast<std::byte>(i & 0xff);
  }
  const std::byte* raw = bulk.data();
  auto& copied = obs::Registry::instance().counter("comm.bytes_copied");
  const std::uint64_t before = copied.value();

  std::mutex mu;
  std::set<const std::byte*> seen;
  rt_.programs().add("check_payload",
                     [&](spmd::SpmdContext&, CallArgs& args) {
                       const std::span<const std::byte> p = args.payload(0);
                       ASSERT_EQ(p.size(), 512u);
                       EXPECT_EQ(p[255], std::byte{255});
                       std::lock_guard<std::mutex> lock(mu);
                       seen.insert(p.data());
                     });
  const int status = rt_.call(util::iota_nodes(4), "check_payload")
                         .constant(vp::Payload::take(std::move(bulk)))
                         .run();
  EXPECT_EQ(status, kStatusOk);
  ASSERT_EQ(seen.size(), 1u) << "all copies must share one buffer";
  EXPECT_EQ(*seen.begin(), raw) << "and it is the caller's adopted storage";
  EXPECT_EQ(copied.value() - before, 0u);
}

TEST_F(DistributedCallTest, IndexParameterIsPositionInProcessorArray) {
  // §3.3.1.2: the index is an index into the call's processor array.
  std::vector<int> index_on_proc(8, -1);
  rt_.programs().add("record_index",
                     [&](spmd::SpmdContext& ctx, CallArgs& args) {
                       index_on_proc[static_cast<std::size_t>(ctx.proc())] =
                           args.index(0);
                     });
  const std::vector<int> procs = util::node_array(6, -2, 4);  // 6,4,2,0
  ASSERT_EQ(rt_.call(procs, "record_index").index().run(), kStatusOk);
  EXPECT_EQ(index_on_proc[6], 0);
  EXPECT_EQ(index_on_proc[4], 1);
  EXPECT_EQ(index_on_proc[2], 2);
  EXPECT_EQ(index_on_proc[0], 3);
}

TEST_F(DistributedCallTest, LocalSectionsArePerCopyAndWritable) {
  // Fig 3.3: each copy gets its own local section, used as output here.
  dist::ArrayId a = make_vector(16, util::iota_nodes(4));
  rt_.programs().add("fill_with_index",
                     [](spmd::SpmdContext&, CallArgs& args) {
                       const dist::LocalSectionView& v = args.local(1);
                       for (long long i = 0; i < v.interior_count(); ++i) {
                         v.f64()[i] = args.index(0) * 100.0 + i;
                       }
                     });
  ASSERT_EQ(rt_.call(util::iota_nodes(4), "fill_with_index")
                .index()
                .local(a)
                .run(),
            kStatusOk);
  for (int g = 0; g < 16; ++g) {
    dist::Scalar v;
    ASSERT_EQ(rt_.arrays().read_element(0, a, std::vector<int>{g}, v),
              Status::Ok);
    EXPECT_DOUBLE_EQ(std::get<double>(v), (g / 4) * 100.0 + (g % 4));
  }
}

TEST_F(DistributedCallTest, StatusMergesWithDefaultMax) {
  rt_.programs().add("set_status",
                     [](spmd::SpmdContext& ctx, CallArgs& args) {
                       args.status(0) = ctx.index() == 2 ? 7 : 1;
                     });
  EXPECT_EQ(rt_.call(util::iota_nodes(4), "set_status").status().run(), 7);
}

TEST_F(DistributedCallTest, StatusMergesWithUserCombiner) {
  rt_.programs().add("set_status_min",
                     [](spmd::SpmdContext& ctx, CallArgs& args) {
                       args.status(0) = 10 + ctx.index();
                     });
  EXPECT_EQ(rt_.call(util::iota_nodes(4), "set_status_min")
                .status(status_combine_min)
                .run(),
            10);
}

TEST_F(DistributedCallTest, NoStatusParameterYieldsOk) {
  rt_.programs().add("noop", [](spmd::SpmdContext&, CallArgs&) {});
  EXPECT_EQ(rt_.call(util::iota_nodes(3), "noop").run(), kStatusOk);
}

TEST_F(DistributedCallTest, ReduceVariableMergesPairwise) {
  // §6.1-style: every copy writes a value; combiner max returns the global.
  rt_.programs().add("reduce_index",
                     [](spmd::SpmdContext& ctx, CallArgs& args) {
                       args.reduce_f64(0)[0] = static_cast<double>(ctx.index());
                     });
  std::vector<double> out;
  ASSERT_EQ(rt_.call(util::iota_nodes(6), "reduce_index")
                .reduce_f64(1, f64_max(), &out)
                .run(),
            kStatusOk);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
}

TEST_F(DistributedCallTest, ReduceSupportsArraysAndMultipleVariables) {
  // §3.3.1.2: any number of reduction variables, any length.
  rt_.programs().add("two_reduces",
                     [](spmd::SpmdContext& ctx, CallArgs& args) {
                       auto r0 = args.reduce_f64(0);
                       r0[0] = ctx.index();
                       r0[1] = 2.0 * ctx.index();
                       args.reduce_i32(1)[0] = 1;
                     });
  std::vector<double> sums;
  std::vector<int> counts;
  ASSERT_EQ(rt_.call(util::iota_nodes(4), "two_reduces")
                .reduce_f64(2, f64_sum(), &sums)
                .reduce_i32(1, i32_sum(), &counts)
                .run(),
            kStatusOk);
  EXPECT_EQ(sums, (std::vector<double>{6.0, 12.0}));
  EXPECT_EQ(counts, (std::vector<int>{4}));
}

TEST_F(DistributedCallTest, StatusAndReduceTogether) {
  // The §5.2.4 "status, reduction, and local-section" shape.
  dist::ArrayId a = make_vector(8, util::iota_nodes(4));
  rt_.programs().add("mixed", [](spmd::SpmdContext& ctx, CallArgs& args) {
    const dist::LocalSectionView& v = args.local(0);
    for (long long i = 0; i < v.interior_count(); ++i) {
      v.f64()[i] = 1.0;
    }
    args.status(1) = ctx.index();
    args.reduce_f64(2)[0] = static_cast<double>(v.interior_count());
  });
  std::vector<double> total;
  const int status = rt_.call(util::iota_nodes(4), "mixed")
                         .local(a)
                         .status()
                         .reduce_f64(1, f64_sum(), &total)
                         .run();
  EXPECT_EQ(status, 3);
  EXPECT_DOUBLE_EQ(total[0], 8.0);
}

TEST_F(DistributedCallTest, UnknownProgramIsInvalid) {
  EXPECT_EQ(rt_.call(util::iota_nodes(2), "does_not_exist").run(),
            kStatusInvalid);
}

TEST_F(DistributedCallTest, BadProcessorsAreInvalid) {
  rt_.programs().add("noop2", [](spmd::SpmdContext&, CallArgs&) {});
  EXPECT_EQ(rt_.call({0, 99}, "noop2").run(), kStatusInvalid);
  EXPECT_EQ(rt_.call({}, "noop2").run(), kStatusInvalid);
}

TEST_F(DistributedCallTest, TwoStatusParametersAreInvalid) {
  rt_.programs().add("noop3", [](spmd::SpmdContext&, CallArgs&) {});
  EXPECT_EQ(rt_.call(util::iota_nodes(2), "noop3").status().status().run(),
            kStatusInvalid);
}

TEST_F(DistributedCallTest, ArrayNotDistributedOverCallProcessorsFails) {
  // The wrapper's find_local fails on copies whose processor owns no local
  // section; the failure code surfaces through the merged status and the
  // program is not called there (§5.2.4).
  dist::ArrayId a = make_vector(8, util::iota_nodes(4));  // owners 0..3
  std::atomic<int> calls{0};
  rt_.programs().add("count_calls",
                     [&](spmd::SpmdContext&, CallArgs&) { ++calls; });
  const int status =
      rt_.call(util::node_array(2, 1, 4), "count_calls").local(a).run();
  EXPECT_EQ(status, kStatusNotFound);  // copies on 4,5 fail find_local
  EXPECT_EQ(calls.load(), 2);          // copies on 2,3 ran
}

TEST_F(DistributedCallTest, FreedArrayFailsTheCall) {
  dist::ArrayId a = make_vector(8, util::iota_nodes(4));
  ASSERT_EQ(rt_.arrays().free_array(0, a), Status::Ok);
  rt_.programs().add("touch", [](spmd::SpmdContext&, CallArgs&) {
    FAIL() << "program must not run when find_local fails everywhere";
  });
  EXPECT_EQ(rt_.call(util::iota_nodes(4), "touch").local(a).run(),
            kStatusNotFound);
}

TEST_F(DistributedCallTest, CopiesCanCommunicateWithinTheCall) {
  // §3.3.1: concurrently-executing copies communicate just as they would
  // outside a distributed call.
  rt_.programs().add("allreduce_check",
                     [](spmd::SpmdContext& ctx, CallArgs& args) {
                       const double sum = ctx.allreduce_sum(1.0);
                       args.reduce_f64(0)[0] = sum;
                     });
  std::vector<double> out;
  ASSERT_EQ(rt_.call(util::iota_nodes(8), "allreduce_check")
                .reduce_f64(1, f64_max(), &out)
                .run(),
            kStatusOk);
  EXPECT_DOUBLE_EQ(out[0], 8.0);
}

TEST_F(DistributedCallTest, ConcurrentCallsOnDisjointGroupsRunIndependently) {
  // Fig 3.4: TPA calls DPA on group A while TPB calls DPB on group B.
  rt_.programs().add("ring_sum",
                     [](spmd::SpmdContext& ctx, CallArgs& args) {
                       for (int round = 0; round < 20; ++round) {
                         const int next = (ctx.index() + 1) % ctx.nprocs();
                         const int prev =
                             (ctx.index() + ctx.nprocs() - 1) % ctx.nprocs();
                         ctx.send_value<int>(next, round, ctx.index());
                         const int got = ctx.recv_value<int>(prev, round);
                         EXPECT_EQ(got, prev);
                       }
                       args.reduce_f64(1)[0] = args.in<double>(0);
                     });
  std::vector<double> out_a;
  std::vector<double> out_b;
  pcn::par(
      [&] {
        EXPECT_EQ(rt_.call(util::node_array(0, 1, 4), "ring_sum")
                      .constant(1.0)
                      .reduce_f64(1, f64_sum(), &out_a)
                      .run(),
                  kStatusOk);
      },
      [&] {
        EXPECT_EQ(rt_.call(util::node_array(4, 1, 4), "ring_sum")
                      .constant(2.0)
                      .reduce_f64(1, f64_sum(), &out_b)
                      .run(),
                  kStatusOk);
      });
  EXPECT_DOUBLE_EQ(out_a[0], 4.0);
  EXPECT_DOUBLE_EQ(out_b[0], 8.0);
}

TEST_F(DistributedCallTest, RunAsyncStatusDefinedOnlyAtCompletion) {
  pcn::Def<int> release;
  rt_.programs().add("wait_release",
                     [&](spmd::SpmdContext& ctx, CallArgs& args) {
                       if (ctx.index() == 0) release.read();
                       args.status(0) = kStatusOk;
                     });
  pcn::ProcessGroup group;
  pcn::Def<int> status =
      rt_.call(util::iota_nodes(3), "wait_release").status().run_async(group);
  EXPECT_EQ(status.read_for(std::chrono::milliseconds(30)), nullptr);
  release.define(1);
  group.join();
  EXPECT_EQ(status.read(), kStatusOk);
}

TEST_F(DistributedCallTest, ChannelsConnectTwoConcurrentCalls) {
  // §7.2.1 extension: copy i of the producer call talks directly to copy i
  // of the consumer call, bypassing the task-parallel level.
  auto [producer_side, consumer_side] = make_channels(4);
  rt_.programs().add("producer", [](spmd::SpmdContext& ctx, CallArgs& args) {
    std::vector<double> data{static_cast<double>(ctx.index()), 1.5};
    args.port(0).send<double>(data);
  });
  rt_.programs().add("consumer", [](spmd::SpmdContext& ctx, CallArgs& args) {
    std::vector<double> got = args.port(0).recv<double>();
    EXPECT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], ctx.index());
    args.reduce_f64(1)[0] = got[1];
  });
  std::vector<double> out;
  pcn::par(
      [&, side = producer_side] {
        EXPECT_EQ(rt_.call(util::node_array(0, 1, 4), "producer")
                      .port(side)
                      .run(),
                  kStatusOk);
      },
      [&, side = consumer_side] {
        EXPECT_EQ(rt_.call(util::node_array(4, 1, 4), "consumer")
                      .port(side)
                      .reduce_f64(1, f64_max(), &out)
                      .run(),
                  kStatusOk);
      });
  EXPECT_DOUBLE_EQ(out[0], 1.5);
}

TEST_F(DistributedCallTest, PortGroupTooSmallIsInvalid) {
  auto [a, b] = make_channels(2);
  (void)b;
  rt_.programs().add("noop4", [](spmd::SpmdContext&, CallArgs&) {});
  EXPECT_EQ(rt_.call(util::iota_nodes(4), "noop4").port(a).run(),
            kStatusInvalid);
}

TEST_F(DistributedCallTest, WrongKindAccessThrowsInsideProgram) {
  rt_.programs().add("misuse", [](spmd::SpmdContext&, CallArgs& args) {
    EXPECT_THROW(args.index(0), std::logic_error);   // slot 0 is a constant
    EXPECT_THROW(args.local(1), std::logic_error);   // out of range
    EXPECT_NO_THROW(args.in<int>(0));
  });
  EXPECT_EQ(rt_.call(util::iota_nodes(1), "misuse").constant(3).run(),
            kStatusOk);
}

TEST(Registry, AddFindAndBorders) {
  ProgramRegistry reg;
  EXPECT_EQ(reg.add("", [](spmd::SpmdContext&, CallArgs&) {}),
            Status::Invalid);
  EXPECT_EQ(reg.add("p", nullptr), Status::Invalid);
  EXPECT_EQ(reg.add("p", [](spmd::SpmdContext&, CallArgs&) {},
                    [](int parm, int ndims) {
                      return std::vector<int>(
                          static_cast<std::size_t>(2 * ndims), parm);
                    }),
            Status::Ok);
  EXPECT_TRUE(reg.contains("p"));
  EXPECT_FALSE(reg.contains("q"));
  std::vector<int> borders;
  EXPECT_EQ(reg.borders_for("p", 3, 2, borders), Status::Ok);
  EXPECT_EQ(borders, (std::vector<int>{3, 3, 3, 3}));
  EXPECT_EQ(reg.borders_for("q", 1, 1, borders), Status::NotFound);
  // A program without a border routine is NotFound for borders.
  reg.add("plain", [](spmd::SpmdContext&, CallArgs&) {});
  EXPECT_EQ(reg.borders_for("plain", 1, 1, borders), Status::NotFound);
}

TEST(RuntimeWiring, ForeignBordersResolveThroughRegistry) {
  // End-to-end §5.1.7: create_array(foreign_borders) consults the border
  // routine registered with the named program.
  Runtime rt(4);
  rt.programs().add("stencil3", [](spmd::SpmdContext&, CallArgs&) {},
                    [](int parm_num, int ndims) {
                      std::vector<int> b(static_cast<std::size_t>(2 * ndims),
                                         0);
                      if (parm_num == 0) b = {1, 1};
                      return b;
                    });
  dist::ArrayId id;
  ASSERT_EQ(rt.arrays().create_array(
                0, dist::ElemType::Float64, {8}, rt.all_procs(),
                {dist::DimSpec::block()},
                dist::BorderSpec::foreign("stencil3", 0),
                dist::Indexing::RowMajor, id),
            Status::Ok);
  dist::InfoValue v;
  ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::Borders, v),
            Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{1, 1}));
  // verify_array against a different program's expectations reallocates.
  rt.programs().add("stencil5", [](spmd::SpmdContext&, CallArgs&) {},
                    [](int, int) { return std::vector<int>{2, 2}; });
  ASSERT_EQ(rt.arrays().verify_array(0, id, 1,
                                     dist::BorderSpec::foreign("stencil5", 0),
                                     dist::Indexing::RowMajor),
            Status::Ok);
  ASSERT_EQ(rt.arrays().find_info(0, id, dist::InfoKind::Borders, v),
            Status::Ok);
  EXPECT_EQ(std::get<std::vector<int>>(v), (std::vector<int>{2, 2}));
}

}  // namespace
}  // namespace tdp::core
