// Signal-processing operations on distributed arrays (§2.3.2).
//
// The thesis motivates the pipeline problem class with "signal-processing
// operations like convolution, correlation, and filtering" built from the
// DFT / elementwise-manipulation / inverse-DFT pattern.  These routines are
// those operations, composed from distributed calls to the §6.2.3 FFT
// programs:
//
//   * an "evaluation" pass: fft_natural with the inverse kernel takes
//     natural-order input to bit-reversed evaluations;
//   * the elementwise manipulation in bit-reversed order (order-free);
//   * a "fitting" pass: fft_reverse with the forward kernel (including the
//     1/N) takes bit-reversed values back to natural-order coefficients —
//     so no explicit bit-reversal permutation is ever needed.
//
// All functions are task-parallel top levels: they create the distributed
// arrays, make the distributed calls on `processors`, and collect results
// through the global-array interface.
#pragma once

#include <vector>

#include "core/runtime.hpp"

namespace tdp::fft {

/// Full linear convolution of two real sequences: result has
/// a.size() + b.size() - 1 entries.  `processors` must be a power-of-two
/// group; transform sizes are padded to the next power of two that is a
/// multiple of the group size.
std::vector<double> convolve(core::Runtime& rt,
                             const std::vector<int>& processors,
                             const std::vector<double>& a,
                             const std::vector<double>& b);

/// Cross-correlation r[k] = sum_i a[i] * b[i + k - (b.size()-1)] for
/// k in [0, a.size()+b.size()-1): convolution with b reversed.
std::vector<double> correlate(core::Runtime& rt,
                              const std::vector<int>& processors,
                              const std::vector<double>& a,
                              const std::vector<double>& b);

/// Ideal low-pass filter: keeps DFT bins [0, keep_bins] and their
/// conjugate-symmetric partners, zeroes the rest, and returns the filtered
/// real sequence (same length as x, which must be a power of two and a
/// multiple of the group size).
std::vector<double> lowpass_filter(core::Runtime& rt,
                                   const std::vector<int>& processors,
                                   const std::vector<double>& x,
                                   int keep_bins);

/// Ensures the §6.2.3 FFT programs are registered with rt (idempotent).
void ensure_programs(core::Runtime& rt);

}  // namespace tdp::fft
