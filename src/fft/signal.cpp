#include "fft/signal.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/fft.hpp"
#include "util/bits.hpp"

namespace tdp::fft {
namespace {

/// Smallest power of two >= needed that the group size divides.
int pad_size(int needed, int group) {
  int n = group;
  while (n < needed) n *= 2;
  return n;
}

/// A distributed complex vector plus its roots table, with the lifetime and
/// element plumbing the signal operations need.
class Workspace {
 public:
  Workspace(core::Runtime& rt, std::vector<int> procs, int n)
      : rt_(rt), procs_(std::move(procs)), n_(n) {
    Status st = rt_.arrays().create_array(
        0, dist::ElemType::Float64, {2 * n_}, procs_,
        {dist::DimSpec::block()}, dist::BorderSpec::none(),
        dist::Indexing::RowMajor, data_);
    if (!ok(st)) throw std::runtime_error("signal: create data array");
    st = rt_.arrays().create_array(
        0, dist::ElemType::Float64, {2 * n_, static_cast<int>(procs_.size())},
        procs_, {dist::DimSpec::star(), dist::DimSpec::block()},
        dist::BorderSpec::none(), dist::Indexing::ColumnMajor, eps_);
    if (!ok(st)) throw std::runtime_error("signal: create roots array");
    rt_.call(procs_, "compute_roots").constant(n_).local(eps_).run();
  }

  ~Workspace() {
    rt_.arrays().free_array(0, data_);
    rt_.arrays().free_array(0, eps_);
  }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  int n() const { return n_; }

  /// Loads a real sequence into storage-natural order, zero-padded.
  void load_real(const std::vector<double>& x) {
    for (int i = 0; i < n_; ++i) {
      const double re =
          i < static_cast<int>(x.size()) ? x[static_cast<std::size_t>(i)] : 0.0;
      rt_.arrays().write_element(0, data_, std::vector<int>{2 * i},
                                 dist::Scalar{re});
      rt_.arrays().write_element(0, data_, std::vector<int>{2 * i + 1},
                                 dist::Scalar{0.0});
    }
  }

  std::vector<double> read_interleaved() const {
    std::vector<double> out(static_cast<std::size_t>(2 * n_));
    for (int s = 0; s < 2 * n_; ++s) {
      dist::Scalar v;
      rt_.arrays().read_element(0, data_, std::vector<int>{s}, v);
      out[static_cast<std::size_t>(s)] = dist::scalar_to_double(v);
    }
    return out;
  }

  void write_interleaved(const std::vector<double>& packed) {
    for (int s = 0; s < 2 * n_; ++s) {
      rt_.arrays().write_element(0, data_, std::vector<int>{s},
                                 dist::Scalar{packed[static_cast<std::size_t>(s)]});
    }
  }

  /// One distributed FFT call ("fft_natural" or "fft_reverse").
  void transform(const char* program, int flag) {
    const int status = rt_.call(procs_, program)
                           .constant(procs_)
                           .constant(static_cast<int>(procs_.size()))
                           .index()
                           .constant(n_)
                           .constant(flag)
                           .local(eps_)
                           .local(data_)
                           .run();
    if (status != kStatusOk) {
      throw std::runtime_error("signal: distributed FFT call failed");
    }
  }

 private:
  core::Runtime& rt_;
  std::vector<int> procs_;
  int n_;
  dist::ArrayId data_;
  dist::ArrayId eps_;
};

}  // namespace

void ensure_programs(core::Runtime& rt) {
  if (!rt.programs().contains("fft_natural")) {
    register_programs(rt.programs());
  }
}

std::vector<double> convolve(core::Runtime& rt,
                             const std::vector<int>& processors,
                             const std::vector<double>& a,
                             const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  ensure_programs(rt);
  const int m = static_cast<int>(a.size() + b.size()) - 1;
  const int n = pad_size(m, static_cast<int>(processors.size()));

  // Evaluate both inputs at the n-th roots of unity: natural in,
  // bit-reversed evaluations out — order-free for the pointwise product.
  Workspace wa(rt, processors, n);
  wa.load_real(a);
  wa.transform("fft_natural", kInverse);
  std::vector<double> ea = wa.read_interleaved();

  Workspace wb(rt, processors, n);
  wb.load_real(b);
  wb.transform("fft_natural", kInverse);
  std::vector<double> eb = wb.read_interleaved();

  // Elementwise complex multiplication (the middle pipeline stage).
  std::vector<double> prod(static_cast<std::size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    const double re1 = ea[static_cast<std::size_t>(2 * i)];
    const double im1 = ea[static_cast<std::size_t>(2 * i + 1)];
    const double re2 = eb[static_cast<std::size_t>(2 * i)];
    const double im2 = eb[static_cast<std::size_t>(2 * i + 1)];
    prod[static_cast<std::size_t>(2 * i)] = re1 * re2 - im1 * im2;
    prod[static_cast<std::size_t>(2 * i + 1)] = re2 * im1 + re1 * im2;
  }

  // Fit the product polynomial: bit-reversed in, natural coefficients out
  // (including the 1/n).
  wa.write_interleaved(prod);
  wa.transform("fft_reverse", kForward);
  std::vector<double> packed = wa.read_interleaved();

  std::vector<double> out(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    out[static_cast<std::size_t>(i)] = packed[static_cast<std::size_t>(2 * i)];
  }
  return out;
}

std::vector<double> correlate(core::Runtime& rt,
                              const std::vector<int>& processors,
                              const std::vector<double>& a,
                              const std::vector<double>& b) {
  std::vector<double> reversed(b.rbegin(), b.rend());
  return convolve(rt, processors, a, reversed);
}

std::vector<double> lowpass_filter(core::Runtime& rt,
                                   const std::vector<int>& processors,
                                   const std::vector<double>& x,
                                   int keep_bins) {
  const int n = static_cast<int>(x.size());
  if (!util::is_pow2(n) || n % static_cast<int>(processors.size()) != 0) {
    throw std::invalid_argument(
        "lowpass_filter: length must be a power of two divisible by the "
        "group size");
  }
  ensure_programs(rt);

  Workspace w(rt, processors, n);
  w.load_real(x);
  w.transform("fft_natural", kInverse);  // spectrum, bit-reversed order
  std::vector<double> spectrum = w.read_interleaved();

  // Zero every bin outside [0, keep] and its conjugate partner; storage
  // position s carries bin rho(s).
  const int bits = util::floor_log2(n);
  for (int s = 0; s < n; ++s) {
    const auto bin = static_cast<int>(
        util::bit_reverse(bits, static_cast<std::uint64_t>(s)));
    const bool keep = bin <= keep_bins || bin >= n - keep_bins;
    if (!keep) {
      spectrum[static_cast<std::size_t>(2 * s)] = 0.0;
      spectrum[static_cast<std::size_t>(2 * s + 1)] = 0.0;
    }
  }
  w.write_interleaved(spectrum);
  w.transform("fft_reverse", kForward);  // back to natural samples
  std::vector<double> packed = w.read_interleaved();

  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = packed[static_cast<std::size_t>(2 * i)];
  }
  return out;
}

}  // namespace tdp::fft
