#include "fft/reference.hpp"

#include <numbers>

#include "util/bits.hpp"

namespace tdp::fft {

std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x, int sign) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  const double base = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t k = 0; k < n; ++k) {
      const double angle = base * static_cast<double>(j * k % n) * sign;
      acc += x[k] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[j] = acc;
  }
  return out;
}

std::vector<std::complex<double>> bit_reverse_permute(
    const std::vector<std::complex<double>>& x) {
  const int bits = util::floor_log2(static_cast<std::int64_t>(x.size()));
  std::vector<std::complex<double>> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[util::bit_reverse(bits, i)] = x[i];
  }
  return out;
}

std::vector<double> poly_mul_naive(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<double> to_interleaved(
    const std::vector<std::complex<double>>& x) {
  std::vector<double> out(2 * x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[2 * i] = x[i].real();
    out[2 * i + 1] = x[i].imag();
  }
  return out;
}

std::vector<std::complex<double>> from_interleaved(
    const std::vector<double>& packed) {
  std::vector<std::complex<double>> out(packed.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {packed[2 * i], packed[2 * i + 1]};
  }
  return out;
}

}  // namespace tdp::fft
