#include "fft/fft.hpp"

#include <vector>

#include "util/bits.hpp"

namespace tdp::fft {
namespace {

/// One interleaved complex value.
struct Cx {
  double re;
  double im;
};

inline Cx load(const double* a, int i) { return {a[2 * i], a[2 * i + 1]}; }
inline void store(double* a, int i, Cx v) {
  a[2 * i] = v.re;
  a[2 * i + 1] = v.im;
}
inline Cx add(Cx a, Cx b) { return {a.re + b.re, a.im + b.im}; }
inline Cx sub(Cx a, Cx b) { return {a.re - b.re, a.im - b.im}; }
inline Cx mul(Cx a, Cx b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

/// Twiddle omega^{sign*idx} from the roots table (omega = e^{2*pi*i/n}).
inline Cx twiddle(const double* eps, int idx, bool conj) {
  Cx w{eps[2 * idx], eps[2 * idx + 1]};
  if (conj) w.im = -w.im;
  return w;
}

constexpr int kStageTagBase = 16;

}  // namespace

void fft_reverse(spmd::SpmdContext& ctx, int n, int flag,
                 const double* epsilon, double* bb) {
  const int p = ctx.nprocs();
  const int b = n / p;  // local complex count
  const int rank = ctx.index();
  const long long base = static_cast<long long>(rank) * b;
  const bool conj = flag == kForward;  // forward kernel uses e^{-2*pi*i/n}

  std::vector<double> theirs(static_cast<std::size_t>(2 * b));
  int stage = 0;
  for (int m = 2; m <= n; m <<= 1, ++stage) {
    const int half = m / 2;
    const int step = n / m;
    if (half < b) {
      for (int k = 0; k < b; k += m) {
        for (int j = 0; j < half; ++j) {
          const Cx w = twiddle(epsilon, j * step, conj);
          const int i0 = k + j;
          const int i1 = k + j + half;
          const Cx u = load(bb, i0);
          const Cx t = mul(w, load(bb, i1));
          store(bb, i0, add(u, t));
          store(bb, i1, sub(u, t));
        }
      }
    } else {
      const int partner = rank ^ (half / b);
      ctx.exchange<double>(
          partner, kStageTagBase + stage,
          std::span<const double>(bb, static_cast<std::size_t>(2 * b)),
          std::span<double>(theirs));
      const bool upper = (base & half) != 0;
      for (int i = 0; i < b; ++i) {
        const long long g = base + i;
        const int j = static_cast<int>(g & (half - 1));
        const Cx w = twiddle(epsilon, j * step, conj);
        if (!upper) {
          store(bb, i, add(load(bb, i), mul(w, load(theirs.data(), i))));
        } else {
          store(bb, i, sub(load(theirs.data(), i), mul(w, load(bb, i))));
        }
      }
    }
  }

  if (flag == kForward) {
    const double inv = 1.0 / static_cast<double>(n);
    for (int i = 0; i < 2 * b; ++i) bb[i] *= inv;
  }
}

void fft_natural(spmd::SpmdContext& ctx, int n, int flag,
                 const double* epsilon, double* bb) {
  const int p = ctx.nprocs();
  const int b = n / p;
  const int rank = ctx.index();
  const long long base = static_cast<long long>(rank) * b;
  const bool conj = flag == kForward;

  std::vector<double> theirs(static_cast<std::size_t>(2 * b));
  int stage = 0;
  for (int m = n; m >= 2; m >>= 1, ++stage) {
    const int half = m / 2;
    const int step = n / m;
    if (half < b) {
      for (int k = 0; k < b; k += m) {
        for (int j = 0; j < half; ++j) {
          const Cx w = twiddle(epsilon, j * step, conj);
          const int i0 = k + j;
          const int i1 = k + j + half;
          const Cx u = load(bb, i0);
          const Cx v = load(bb, i1);
          store(bb, i0, add(u, v));
          store(bb, i1, mul(sub(u, v), w));
        }
      }
    } else {
      const int partner = rank ^ (half / b);
      ctx.exchange<double>(
          partner, kStageTagBase + stage,
          std::span<const double>(bb, static_cast<std::size_t>(2 * b)),
          std::span<double>(theirs));
      const bool upper = (base & half) != 0;
      for (int i = 0; i < b; ++i) {
        const long long g = base + i;
        const int j = static_cast<int>(g & (half - 1));
        const Cx w = twiddle(epsilon, j * step, conj);
        if (!upper) {
          store(bb, i, add(load(bb, i), load(theirs.data(), i)));
        } else {
          store(bb, i, mul(sub(load(theirs.data(), i), load(bb, i)), w));
        }
      }
    }
  }

  if (flag == kForward) {
    const double inv = 1.0 / static_cast<double>(n);
    for (int i = 0; i < 2 * b; ++i) bb[i] *= inv;
  }
}

void register_programs(core::ProgramRegistry& registry) {
  // §6.2.2 call: distributed_call(Procs, "compute_roots", {NN, local(Eps)}).
  registry.add("compute_roots",
               [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                 (void)ctx;
                 const int nn = args.in<int>(0);
                 compute_roots(nn, args.local(1).f64());
               });

  // §6.2.2 call: Procs, P, "index", NN, Flag, local(Eps), local(Array).
  auto fft_args = [](spmd::SpmdContext& ctx, core::CallArgs& args,
                     bool reverse_order) {
    const int nn = args.in<int>(3);
    const int flag = args.in<int>(4);
    const double* eps = args.local(5).f64();
    double* bb = args.local(6).f64();
    if (reverse_order) {
      fft_reverse(ctx, nn, flag, eps, bb);
    } else {
      fft_natural(ctx, nn, flag, eps, bb);
    }
  };
  registry.add("fft_reverse",
               [fft_args](spmd::SpmdContext& ctx, core::CallArgs& args) {
                 fft_args(ctx, args, true);
               });
  registry.add("fft_natural",
               [fft_args](spmd::SpmdContext& ctx, core::CallArgs& args) {
                 fft_args(ctx, args, false);
               });
}

}  // namespace tdp::fft
