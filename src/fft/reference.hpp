// Sequential reference transforms and the polynomial-multiplication
// reference used to validate the distributed FFT and the §6.2 pipeline.
#pragma once

#include <complex>
#include <vector>

namespace tdp::fft {

/// Naive O(N^2) DFT with the thesis conventions: sign=+1 is the inverse
/// transform (no scaling), sign=-1 the forward transform *without* the 1/N
/// (apply `scale` for the forward convention).
std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x, int sign);

/// Applies the bit-reversal permutation rho to a length-2^bits vector.
std::vector<std::complex<double>> bit_reverse_permute(
    const std::vector<std::complex<double>>& x);

/// Coefficient-domain product of two polynomials (naive convolution);
/// result has a.size() + b.size() - 1 coefficients.
std::vector<double> poly_mul_naive(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Packs a real vector into interleaved complex doubles (imag = 0).
std::vector<double> to_interleaved(const std::vector<std::complex<double>>& x);
std::vector<std::complex<double>> from_interleaved(
    const std::vector<double>& packed);

}  // namespace tdp::fft
