// Distributed FFT data-parallel programs (thesis §6.2.3).
//
// The thesis pipeline example calls four routines whose specifications we
// implement exactly:
//   compute_roots(N, epsilon) — epsilon[j] = omega^j where omega is the
//       primitive N-th root of unity e^{2*pi*i/N};
//   rho_proc(bits, t)         — bit-reversal permutation (util::bit_reverse);
//   fft_reverse(...)          — transform with input in bit-reversed order
//       and output in natural order (decimation in time);
//   fft_natural(...)          — transform with input in natural order and
//       output in bit-reversed order (decimation in frequency).
//
// Conventions (§6.2.1): the *inverse* transform is
//   X[j] = sum_k x[k] e^{+2*pi*i*j*k/N}          (no scaling)
// and the *forward* transform is
//   x[j] = (1/N) sum_k X[k] e^{-2*pi*i*j*k/N}    (includes division by N).
//
// Arrays are interleaved complex: element j occupies doubles 2j (real) and
// 2j+1 (imaginary).  A length-N complex array is block-distributed over P
// processors (P a power of two, N >= P), N/P complex elements per copy;
// butterflies spanning processors are performed by a pairwise full exchange
// of local blocks (each copy then computes its own elements).
#pragma once

#include <span>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::fft {

/// Direction flags, as in the example's fftdef.h.
inline constexpr int kForward = 0;
inline constexpr int kInverse = 1;

/// compute_roots (§6.2.3): fills `epsilon` (2*N doubles) with the N N-th
/// roots of unity, epsilon[2j] + i*epsilon[2j+1] = e^{2*pi*i*j/N}.
void compute_roots(int n, double* epsilon);

/// fft_reverse (§6.2.3): in-place transform of the distributed array whose
/// local section is `bb` (2*(N/P) doubles); global indexing of the input is
/// in bit-reversed order, of the output in natural order.  `epsilon` holds
/// the N roots of unity (each copy has the full table).  `flag` is kInverse
/// or kForward; forward includes the division by N.
void fft_reverse(spmd::SpmdContext& ctx, int n, int flag,
                 const double* epsilon, double* bb);

/// fft_natural (§6.2.3): like fft_reverse but with input in natural order
/// and output in bit-reversed order.
void fft_natural(spmd::SpmdContext& ctx, int n, int flag,
                 const double* epsilon, double* bb);

/// Registers the callable data-parallel programs with the exact parameter
/// shapes used by the thesis pipeline (§6.2.2):
///   "compute_roots" — NN (int), local epsilon
///   "fft_reverse"   — Procs, P, index, NN, Flag, local epsilon, local bb
///   "fft_natural"   — Procs, P, index, NN, Flag, local epsilon, local bb
void register_programs(core::ProgramRegistry& registry);

}  // namespace tdp::fft
