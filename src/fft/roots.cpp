#include <cmath>
#include <numbers>

#include "fft/fft.hpp"

namespace tdp::fft {

void compute_roots(int n, double* epsilon) {
  const double step = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (int j = 0; j < n; ++j) {
    epsilon[2 * j] = std::cos(step * j);
    epsilon[2 * j + 1] = std::sin(step * j);
  }
}

}  // namespace tdp::fft
