// Stackful execution contexts for the tdp::sched work-stealing scheduler.
//
// A pcn process body is an arbitrary std::function that blocks deep inside
// library code (selective receive, Def<T>::read, ProcessGroup::join), so the
// unit of suspension must carry its own call stack — a continuation-passing
// rewrite of every blocking layer is not on the table.  Each task therefore
// runs on a ucontext fiber whose stack is a dedicated mmap region:
//
//  * MAP_NORESERVE keeps 10k+ concurrent fibers cheap in physical memory
//    (pages are committed only as each stack is touched);
//  * a PROT_NONE guard page at the low end turns stack overflow into an
//    immediate fault instead of silent corruption of a neighbouring fiber;
//  * stacks are pooled by the scheduler — spawn-heavy workloads (do_all
//    over thousands of nodes) recycle warm stacks instead of paying a
//    mmap/munmap pair per process.
//
// TDP_SCHED_STACK_KB sizes the usable region (default 256 KiB — deep enough
// for the SPMD solvers the distributed calls run, small enough that 10k
// suspended VPs reserve ~2.5 GiB of address space, nearly all untouched).
#pragma once

#include <ucontext.h>

#include <cstddef>

namespace tdp::sched {

/// One fiber stack: an mmap'd region with a guard page at the low end.
struct FiberStack {
  void* base = nullptr;  ///< mapping base (the guard page)
  std::size_t size = 0;  ///< total mapping size, guard included

  /// Lowest usable address (just above the guard page) — what ucontext's
  /// uc_stack.ss_sp wants on a grows-down architecture.
  void* limit() const;
  /// Usable bytes (size minus the guard page).
  std::size_t usable() const;
};

/// TDP_SCHED_STACK_KB from the environment (default 256, minimum 64),
/// rounded up to a whole number of pages.  Cached on first read.
std::size_t fiber_stack_bytes();

/// Maps a fresh stack of `usable_bytes` (plus the guard page).  Throws
/// std::bad_alloc when the mapping fails.
FiberStack fiber_stack_alloc(std::size_t usable_bytes);

/// Unmaps a stack previously returned by fiber_stack_alloc.
void fiber_stack_free(const FiberStack& stack);

}  // namespace tdp::sched
