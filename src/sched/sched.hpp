// tdp::sched — a work-stealing M:N scheduler for pcn processes.
//
// The paper's PCN layer assumes processes are cheap and abundant; the
// thread-per-VP lane caps realistic runs at a few thousand processes
// because every Def<T> wait and selective receive parks a whole OS thread.
// This scheduler multiplexes logical processes — stackful fibers, see
// sched/fiber.hpp — onto a fixed pool of workers:
//
//  * each worker owns a Chase-Lev deque (owner pushes/pops the bottom,
//    thieves CAS the top), with a mutex-protected inject queue for spawns
//    and wakeups arriving from non-worker threads;
//  * a blocked process costs a suspended-task record, not a thread: the
//    blocking layers (mailbox, Def, ProcessGroup::join) call park() with
//    their own lock held, and the matching event (post, define, last task
//    done) calls ready() to requeue the task;
//  * a dedicated timer thread services deadline waits (receive_for,
//    Def::read_for) for suspended tasks.
//
// Mode selection mirrors TDP_MAILBOX: TDP_SCHED=steal|thread, snapshotted
// per spawn, with force/unforce overrides for tests and benches.  The
// default is the legacy thread lane — steal is opted into per run (CI
// exercises the full suite under both).
//
// Park/unpark protocol (the core of the rewire): each task carries an
// atomic state {Running, Parking, Parked, Notified}.  park() flags
// Parking, unlocks the caller's mutex on the fiber, and switches out; the
// scheduler then commits Parking→Parked.  ready() either requeues a
// Parked task or leaves a sticky Notified permit — consumed by a park()
// still on the fiber, or by the commit, which requeues instead of
// parking — so a wakeup racing the suspension is never lost.  Wakers must
// hold the mutex the task parked with (that keeps the task handle they
// read from the waiter record alive: the task must re-acquire that mutex
// to deregister).  park() may return spuriously; callers re-check their
// predicate in a loop, exactly as they would around a condition variable.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace tdp::sched {

/// Execution lane for pcn process bodies.
enum class SchedMode : int {
  Thread = 0,  ///< legacy: one OS thread per spawned process
  Steal = 1,   ///< M:N: fibers multiplexed onto a fixed worker pool
};

/// The lane new spawns take: a force_sched_mode() override if one is in
/// effect, else TDP_SCHED from the environment ("steal"/"thread", cached on
/// first read; unknown values warn and fall back to thread).
SchedMode sched_mode();

/// Programmatic override of TDP_SCHED (benches, tests).  Affects only
/// spawns issued afterwards — a live process never switches lane.
void force_sched_mode(SchedMode m);

/// Removes the override; sched_mode() reads the environment again.
void unforce_sched_mode();

/// Worker pool size for steal mode: TDP_SCHED_WORKERS when set, else
/// max(2, hardware_concurrency).  The floor of 2 matters on small hosts:
/// a fiber that thread-blocks a worker (opaque receive racing teardown,
/// a mixed-lane join) must never wedge the whole pool.
std::size_t worker_count();

/// Opaque handle to a scheduler task; valid while the task is alive.  A
/// blocking layer stores the current task's handle in its waiter record
/// while suspended, and its waker passes the handle back to ready().
using TaskRef = void*;

/// True when the calling code is running on a scheduler fiber — i.e. when
/// park() is the correct way to wait.  False on the legacy thread lane,
/// on non-worker threads, and inside scheduler callbacks.
bool on_worker_fiber();

/// The running task's handle (nullptr when !on_worker_fiber()).
TaskRef current_task();

/// Submits a new task.  `proc` is the virtual-processor placement seen via
/// vp::current_proc() (-1 for none); it travels with the fiber across
/// workers.  `on_complete` runs on a worker's scheduler stack after the
/// task's body returns and its fiber has fully switched out — the hook
/// ProcessGroup uses to resolve join().  A body that throws terminates the
/// process, exactly like an exception escaping a std::thread; wrap bodies
/// that may throw (ProcessGroup::run_guarded does).
void spawn(int proc, std::function<void()> fn,
           std::function<void()> on_complete);

/// Makes a parked task runnable, or leaves a sticky wake permit if the
/// task is currently running or mid-park.  Delivery is exactly-once per
/// park.  Lifetime rule: the caller must hold the mutex the task parked
/// with (post/define/task-done all naturally do), or otherwise guarantee
/// the task cannot finish its wait and terminate before ready() returns.
void ready(TaskRef task);

/// Suspends the current fiber.  `lock` must own a std::mutex; it is
/// released before the fiber switches out and re-acquired before park
/// returns.  Spurious returns are possible — re-check the predicate in a
/// loop.
void park(std::unique_lock<std::mutex>& lock);

/// park() with a deadline serviced by the timer thread.  Returns (with the
/// lock re-acquired) on wakeup, deadline expiry, or spuriously; the caller
/// distinguishes timeout by re-checking the clock, mirroring the
/// cv_status::timeout re-scan idiom in the mailbox.
void park_until(std::unique_lock<std::mutex>& lock,
                std::chrono::steady_clock::time_point deadline);

/// Scheduler-state snapshot for diagnostics (watchdog stall reports, the
/// telemetry probe, tests).  All zeros until the first steal-lane spawn
/// starts the pool.
struct Stats {
  std::size_t workers = 0;
  std::uint64_t runnable = 0;   ///< tasks queued, not yet running
  std::uint64_t suspended = 0;  ///< tasks parked in a blocking layer
  std::uint64_t spawned = 0;
  std::uint64_t completed = 0;
  std::uint64_t steals = 0;
  std::uint64_t parks = 0;  ///< worker idle-sleeps
  std::vector<std::uint64_t> worker_busy_ns;  ///< cumulative, per worker
};
Stats stats();

/// One-line rendering of stats() — the scheduler's contribution to a
/// watchdog stall report, so "suspended task" never reads as "deadlocked
/// thread".
std::string describe();

}  // namespace tdp::sched
