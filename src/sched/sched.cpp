#include "sched/sched.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sched/fiber.hpp"
#include "util/env.hpp"

// Sanitizer fiber annotations: without them TSan sees one thread's history
// teleport onto another when a fiber migrates between workers, and ASan's
// fake-stack bookkeeping corrupts across swapcontext.  Both interfaces ship
// with GCC's libsanitizer; detect via the GCC macros and, for clang,
// __has_feature.
#if defined(__SANITIZE_THREAD__)
#define TDP_SCHED_TSAN 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define TDP_SCHED_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(TDP_SCHED_TSAN)
#define TDP_SCHED_TSAN 1
#endif
#if __has_feature(address_sanitizer) && !defined(TDP_SCHED_ASAN)
#define TDP_SCHED_ASAN 1
#endif
#endif

#ifdef TDP_SCHED_TSAN
#include <sanitizer/tsan_interface.h>
#endif
#ifdef TDP_SCHED_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace tdp::sched {

namespace {

// -1 = no force() override; else the SchedMode value.
std::atomic<int> g_forced_mode{-1};

SchedMode env_sched_mode() {
  static const SchedMode parsed = [] {
    const char* env = std::getenv("TDP_SCHED");
    if (env == nullptr || env[0] == '\0') return SchedMode::Thread;
    if (std::strcmp(env, "thread") == 0) return SchedMode::Thread;
    if (std::strcmp(env, "steal") == 0) return SchedMode::Steal;
    // Mirror the guarded env parsing in mailbox.cpp: a typo must be
    // reported, never silently remapped.
    std::fprintf(stderr,
                 "tdp::sched: ignoring unknown TDP_SCHED \"%s\"; valid "
                 "values are \"steal\" and \"thread\" (using thread)\n",
                 env);
    return SchedMode::Thread;
  }();
  return parsed;
}

obs::ShardedCounter& steals_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("sched.steals");
  return c;
}

obs::ShardedCounter& parks_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("sched.parks");
  return c;
}

obs::ShardedCounter& spawned_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("sched.spawned");
  return c;
}

obs::ShardedCounter& completed_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("sched.completed");
  return c;
}

obs::ShardedCounter& suspend_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("sched.suspends");
  return c;
}

obs::ShardedCounter& wakeup_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("sched.wakeups");
  return c;
}

/// Task park protocol states; see the header comment.
enum : int { kRunning = 0, kParking = 1, kParked = 2, kNotified = 3 };

struct Worker;

struct Task {
  ucontext_t ctx{};
  FiberStack stack;
  std::function<void()> fn;
  std::function<void()> on_complete;
  std::atomic<int> state{kRunning};
  /// The obs::current_vp thread-local is part of the fiber's context: saved
  /// when the fiber switches out, restored wherever it resumes, so @proc
  /// placement survives migration between workers.
  int saved_vp = -1;
  bool done = false;
#ifdef TDP_SCHED_TSAN
  void* tsan_fiber = nullptr;
#endif
#ifdef TDP_SCHED_ASAN
  void* asan_fake_stack = nullptr;
#endif
};

/// Chase-Lev work-stealing deque (Lê et al., "Correct and efficient
/// work-stealing for weak memory models"): the owner pushes and pops the
/// bottom without synchronisation on the fast path; thieves race a CAS on
/// the top.  Fixed capacity — a full deque overflows to the inject queue,
/// which is correctness-neutral (just a slower enqueue).
class WsDeque {
 public:
  static constexpr std::size_t kCapacity = 8192;  // power of two
  WsDeque() : cells_(kCapacity) {}

  /// Owner only.  False when full (caller falls back to the inject queue).
  bool push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    cells_[static_cast<std::size_t>(b) & kMask].store(
        task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task =
        cells_[static_cast<std::size_t>(b) & kMask].load(
            std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread.
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Task* task =
        cells_[static_cast<std::size_t>(t) & kMask].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller tries the next victim
    }
    return task;
  }

 private:
  static constexpr std::size_t kMask = kCapacity - 1;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<Task*>> cells_;
};

struct Worker {
  int id = 0;
  WsDeque deque;
  ucontext_t sched_ctx{};
  Task* current = nullptr;
  std::atomic<std::uint64_t> busy_ns{0};
  std::uint64_t rng = 0;
  std::thread thread;
#ifdef TDP_SCHED_TSAN
  void* tsan_fiber = nullptr;  ///< the worker thread's own TSan context
#endif
#ifdef TDP_SCHED_ASAN
  void* asan_fake_stack = nullptr;
  const void* asan_stack_bottom = nullptr;
  std::size_t asan_stack_size = 0;
#endif
};

thread_local Worker* t_worker = nullptr;

// --- sanitizer switch glue --------------------------------------------------
// ASan protocol: __sanitizer_start_switch_fiber BEFORE swapcontext (saving
// the departing context's fake stack, naming the arriving stack's bounds),
// __sanitizer_finish_switch_fiber as the FIRST thing after arrival.  A
// dying fiber passes nullptr as the save slot so its fake stack is freed.
// TSan protocol: __tsan_switch_to_fiber immediately before swapcontext.

void sanitizer_enter_task(Worker& w, Task& t) {
#ifdef TDP_SCHED_ASAN
  __sanitizer_start_switch_fiber(&w.asan_fake_stack, t.stack.limit(),
                                 t.stack.usable());
#endif
#ifdef TDP_SCHED_TSAN
  __tsan_switch_to_fiber(t.tsan_fiber, 0);
#endif
  (void)w;
  (void)t;
}

void sanitizer_back_on_worker(Worker& w) {
#ifdef TDP_SCHED_ASAN
  __sanitizer_finish_switch_fiber(w.asan_fake_stack, nullptr, nullptr);
#endif
  (void)w;
}

void sanitizer_leave_task(Task& t, Worker& w, bool dying) {
#ifdef TDP_SCHED_ASAN
  __sanitizer_start_switch_fiber(dying ? nullptr : &t.asan_fake_stack,
                                 w.asan_stack_bottom, w.asan_stack_size);
#endif
#ifdef TDP_SCHED_TSAN
  __tsan_switch_to_fiber(w.tsan_fiber, 0);
#endif
  (void)t;
  (void)w;
  (void)dying;
}

void sanitizer_arrive_on_task(Task& t) {
  // After a resume the fiber may be on a different worker than it left;
  // record the arrival thread's native stack bounds for the next leave.
  Worker& w = *t_worker;
#ifdef TDP_SCHED_ASAN
  __sanitizer_finish_switch_fiber(t.asan_fake_stack, &w.asan_stack_bottom,
                                  &w.asan_stack_size);
#endif
  (void)t;
  (void)w;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Scheduler {
 public:
  static Scheduler& instance();

  ~Scheduler() {
    if (started_.load(std::memory_order_acquire)) {
      // Detach the diagnostics probes first: both invoke stats() under
      // their own locks, and must never do so while workers are torn down.
      obs::Watchdog::instance().set_aux_report(nullptr);
      obs::Telemetry::instance().set_sched_probe(nullptr);
      stopping_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(inject_mutex_);
      }
      inject_cv_.notify_all();
      {
        std::lock_guard<std::mutex> lock(timer_mutex_);
      }
      timer_cv_.notify_all();
      for (auto& w : workers_) w->thread.join();
      timer_thread_.join();
    }
    for (FiberStack& s : stack_pool_) fiber_stack_free(s);
  }

  void spawn(int proc, std::function<void()> fn,
             std::function<void()> on_complete) {
    start();
    Task* t = new Task;
    t->fn = std::move(fn);
    t->on_complete = std::move(on_complete);
    t->saved_vp = proc;
    t->stack = acquire_stack();
    getcontext(&t->ctx);
    t->ctx.uc_stack.ss_sp = t->stack.limit();
    t->ctx.uc_stack.ss_size = t->stack.usable();
    t->ctx.uc_link = nullptr;
    // makecontext only passes ints; split the Task* across two.
    const std::uintptr_t p = reinterpret_cast<std::uintptr_t>(t);
    makecontext(&t->ctx, reinterpret_cast<void (*)()>(&Scheduler::trampoline),
                2, static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xffffffffu));
#ifdef TDP_SCHED_TSAN
    t->tsan_fiber = __tsan_create_fiber(0);
#endif
    spawned_.fetch_add(1, std::memory_order_relaxed);
    spawned_counter().add();
    enqueue(t);
  }

  void ready(Task* t) {
    for (;;) {
      int s = t->state.load(std::memory_order_acquire);
      if (s == kParked) {
        if (t->state.compare_exchange_weak(s, kRunning,
                                           std::memory_order_acq_rel)) {
          suspended_.fetch_sub(1, std::memory_order_relaxed);
          wakeup_counter().add();
          enqueue(t);
          return;
        }
      } else if (s == kNotified) {
        return;  // a permit is already pending
      } else {  // kRunning or kParking: leave a sticky permit
        if (t->state.compare_exchange_weak(s, kNotified,
                                           std::memory_order_acq_rel)) {
          return;
        }
      }
    }
  }

  void park(std::unique_lock<std::mutex>& lock) {
    Worker* w = t_worker;
    Task* t = w->current;
    const int prev = t->state.exchange(kParking, std::memory_order_acq_rel);
    if (prev == kNotified) {
      // A wakeup arrived while we were running: consume the permit and
      // return without switching (the caller's loop re-checks).
      t->state.store(kRunning, std::memory_order_release);
      return;
    }
    // Unlock on the fiber itself, before switching out, so the mutex is
    // locked and unlocked in the same (fiber) context — a waker that slips
    // in between this unlock and the scheduler's Parking→Parked commit
    // finds state kParking and leaves a sticky kNotified permit, which
    // makes commit_park requeue the task instead of parking it.  The
    // waker's task handle stays valid through the window: it read the
    // handle under the caller's mutex, and every wait site re-acquires
    // that mutex to deregister before its task can complete.
    lock.unlock();
    sanitizer_leave_task(*t, *w, /*dying=*/false);
    swapcontext(&t->ctx, &w->sched_ctx);
    // Resumed — possibly on a different worker; w is stale from here.
    sanitizer_arrive_on_task(*t);
    lock.lock();
  }

  void park_until(std::unique_lock<std::mutex>& lock,
                  std::chrono::steady_clock::time_point deadline) {
    Task* t = t_worker->current;
    const std::uint64_t id = arm_timer(deadline, t);
    park(lock);
    cancel_timer(deadline, id);
  }

  Stats snapshot() {
    Stats s;
    if (!started_.load(std::memory_order_acquire)) return s;
    s.workers = workers_.size();
    const std::int64_t runnable = runnable_.load(std::memory_order_relaxed);
    const std::int64_t suspended = suspended_.load(std::memory_order_relaxed);
    s.runnable = runnable > 0 ? static_cast<std::uint64_t>(runnable) : 0;
    s.suspended = suspended > 0 ? static_cast<std::uint64_t>(suspended) : 0;
    s.spawned = spawned_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.parks = parks_.load(std::memory_order_relaxed);
    s.worker_busy_ns.reserve(workers_.size());
    for (const auto& w : workers_) {
      s.worker_busy_ns.push_back(w->busy_ns.load(std::memory_order_relaxed));
    }
    return s;
  }

 private:
  Scheduler() = default;

  void start() {
    if (started_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(start_mutex_);
    if (started_.load(std::memory_order_relaxed)) return;
    const std::size_t n = worker_count();
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto w = std::make_unique<Worker>();
      w->id = static_cast<int>(i);
      w->rng = 0x9e3779b97f4a7c15ULL ^ (i + 1);
      workers_.push_back(std::move(w));
    }
    for (auto& w : workers_) {
      Worker* raw = w.get();
      raw->thread = std::thread([this, raw] { worker_main(*raw); });
    }
    timer_thread_ = std::thread([this] { timer_main(); });
    obs::Watchdog::instance().set_aux_report([] { return describe(); });
    obs::Telemetry::instance().set_sched_probe([this] {
      obs::Telemetry::SchedSample sample;
      const Stats s = snapshot();
      sample.runnable = s.runnable;
      sample.suspended = s.suspended;
      sample.worker_busy_ns = s.worker_busy_ns;
      return sample;
    });
    started_.store(true, std::memory_order_release);
  }

  // --- queues ---------------------------------------------------------------

  void enqueue(Task* t) {
    runnable_.fetch_add(1, std::memory_order_relaxed);
    if (Worker* w = t_worker; w != nullptr && w->deque.push(t)) {
      // Work landed in a deque only thieves can reach: kick a sleeper if
      // any.  The racing window (sleeper counted after our load) is closed
      // by the bounded idle wait in worker_main.
      if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        inject_cv_.notify_one();
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(inject_mutex_);
      inject_.push_back(t);
    }
    inject_cv_.notify_one();
  }

  Task* take_injected() {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (inject_.empty()) return nullptr;
    Task* t = inject_.front();
    inject_.pop_front();
    return t;
  }

  Task* try_steal(Worker& w) {
    const std::size_t n = workers_.size();
    if (n <= 1) return nullptr;
    // xorshift64 start offset: thieves fan out instead of convoying on
    // worker 0.
    w.rng ^= w.rng << 13;
    w.rng ^= w.rng >> 7;
    w.rng ^= w.rng << 17;
    const std::size_t start = static_cast<std::size_t>(w.rng) % n;
    for (std::size_t i = 0; i < n; ++i) {
      Worker& victim = *workers_[(start + i) % n];
      if (&victim == &w) continue;
      if (Task* t = victim.deque.steal()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        steals_counter().add_at(w.id);
        return t;
      }
    }
    return nullptr;
  }

  Task* find_task(Worker& w) {
    if (Task* t = w.deque.pop()) return t;
    if (Task* t = take_injected()) return t;
    return try_steal(w);
  }

  // --- worker loop ----------------------------------------------------------

  void worker_main(Worker& w) {
    t_worker = &w;
#ifdef TDP_SCHED_TSAN
    w.tsan_fiber = __tsan_get_current_fiber();
#endif
    while (!stopping_.load(std::memory_order_acquire)) {
      if (Task* t = find_task(w)) {
        runnable_.fetch_sub(1, std::memory_order_relaxed);
        run_task(w, t);
        continue;
      }
      // Publish sleeper status, then look once more: an enqueue that
      // missed our increment is caught by this sweep, one that missed the
      // sweep sees the increment and notifies.  The bounded wait backstops
      // the residual weak-memory window (worst case: 10 ms extra latency,
      // never a lost task).
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (Task* t = find_task(w)) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        runnable_.fetch_sub(1, std::memory_order_relaxed);
        run_task(w, t);
        continue;
      }
      {
        std::unique_lock<std::mutex> lock(inject_mutex_);
        if (inject_.empty() && !stopping_.load(std::memory_order_acquire)) {
          parks_.fetch_add(1, std::memory_order_relaxed);
          parks_counter().add_at(w.id);
          inject_cv_.wait_for(lock, std::chrono::milliseconds(10));
        }
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    t_worker = nullptr;
  }

  void run_task(Worker& w, Task* t) {
    const std::uint64_t t0 = steady_ns();
    w.current = t;
    const int worker_vp = obs::set_current_vp(t->saved_vp);
    sanitizer_enter_task(w, *t);
    swapcontext(&w.sched_ctx, &t->ctx);
    sanitizer_back_on_worker(w);
    // The fiber either finished or parked; either way the thread-local VP
    // it was running under belongs to the fiber, not this worker.
    t->saved_vp = obs::set_current_vp(worker_vp);
    w.current = nullptr;
    if (t->done) {
      finalize(w, t);
    } else {
      commit_park(w, t);
    }
    w.busy_ns.fetch_add(steady_ns() - t0, std::memory_order_relaxed);
  }

  void commit_park(Worker& w, Task* t) {
    int expected = kParking;
    if (t->state.compare_exchange_strong(expected, kParked,
                                         std::memory_order_acq_rel)) {
      suspended_.fetch_add(1, std::memory_order_relaxed);
      suspend_counter().add_at(w.id);
      return;
    }
    // A permit landed mid-switch (state is kNotified): the park is void.
    t->state.store(kRunning, std::memory_order_release);
    enqueue(t);
  }

  void finalize(Worker& w, Task* t) {
#ifdef TDP_SCHED_TSAN
    __tsan_destroy_fiber(t->tsan_fiber);
#endif
    // Count the completion before the hook: the hook may release a joiner
    // whose next act is to read stats(), and the joiner must see every
    // joined task as completed.
    completed_.fetch_add(1, std::memory_order_relaxed);
    completed_counter().add_at(w.id);
    // The completion hook runs on the scheduler stack, after the fiber has
    // fully switched out: it may ready() joiners that go on to destroy the
    // structures the hook's owner (e.g. a ProcessGroup) holds, but never
    // this Task, which the scheduler owns.
    if (t->on_complete) t->on_complete();
    release_stack(t->stack);
    delete t;
  }

  static void trampoline(unsigned hi, unsigned lo) {
    Task* t = reinterpret_cast<Task*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    sanitizer_arrive_on_task(*t);
    try {
      t->fn();
    } catch (...) {
      // Same contract as an exception escaping a std::thread.
      std::fprintf(stderr,
                   "tdp::sched: exception escaped a task body; terminating\n");
      std::terminate();
    }
    t->done = true;
    Worker* w = t_worker;
    sanitizer_leave_task(*t, *w, /*dying=*/true);
    swapcontext(&t->ctx, &w->sched_ctx);
    // Unreachable: the scheduler never resumes a done fiber.
  }

  // --- deadline timers ------------------------------------------------------

  std::uint64_t arm_timer(std::chrono::steady_clock::time_point deadline,
                          Task* t) {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    const std::uint64_t id = next_timer_id_++;
    const bool new_front =
        timers_.empty() || deadline < timers_.begin()->first;
    timers_.emplace(deadline, std::make_pair(id, t));
    if (new_front) timer_cv_.notify_one();
    return id;
  }

  void cancel_timer(std::chrono::steady_clock::time_point deadline,
                    std::uint64_t id) {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    auto [begin, end] = timers_.equal_range(deadline);
    for (auto it = begin; it != end; ++it) {
      if (it->second.first == id) {
        timers_.erase(it);
        return;
      }
    }
    // Not found: the timer thread already fired it (and its ready() has
    // completed — firing happens under timer_mutex_, which we now hold).
  }

  void timer_main() {
    std::unique_lock<std::mutex> lock(timer_mutex_);
    while (!stopping_.load(std::memory_order_acquire)) {
      if (timers_.empty()) {
        timer_cv_.wait(lock);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      auto it = timers_.begin();
      if (it->first <= now) {
        Task* t = it->second.second;
        timers_.erase(it);
        // ready() under timer_mutex_: a task leaving its timed wait must
        // cancel_timer() before its waiter record dies, and that cancel
        // blocks on this mutex — so `t` cannot be freed mid-ready().
        ready(t);
        continue;
      }
      timer_cv_.wait_until(lock, it->first);
    }
  }

  // --- stack pool -----------------------------------------------------------

  FiberStack acquire_stack() {
    {
      std::lock_guard<std::mutex> lock(stack_mutex_);
      if (!stack_pool_.empty()) {
        FiberStack s = stack_pool_.back();
        stack_pool_.pop_back();
        return s;
      }
    }
    return fiber_stack_alloc(fiber_stack_bytes());
  }

  void release_stack(FiberStack s) {
#ifdef TDP_SCHED_ASAN
    // A recycled stack must not inherit the dead fiber's redzone poison.
    __asan_unpoison_memory_region(s.limit(), s.usable());
#endif
    constexpr std::size_t kPoolCap = 128;
    {
      std::lock_guard<std::mutex> lock(stack_mutex_);
      if (stack_pool_.size() < kPoolCap) {
        stack_pool_.push_back(s);
        return;
      }
    }
    fiber_stack_free(s);
  }

  std::mutex start_mutex_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex inject_mutex_;
  std::condition_variable inject_cv_;
  std::deque<Task*> inject_;
  std::atomic<int> sleepers_{0};

  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::multimap<std::chrono::steady_clock::time_point,
                std::pair<std::uint64_t, Task*>>
      timers_;
  std::uint64_t next_timer_id_ = 1;
  std::thread timer_thread_;

  std::mutex stack_mutex_;
  std::vector<FiberStack> stack_pool_;

  std::atomic<std::int64_t> runnable_{0};
  std::atomic<std::int64_t> suspended_{0};
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parks_{0};
};

Scheduler& Scheduler::instance() {
  // Construction is ordered after the obs singletons: workers emit into
  // the registry and the probes hook the watchdog/telemetry, so all of
  // them must be destroyed after the scheduler joins its threads.
  obs::Registry::instance();
  obs::Tracer::instance();
  obs::Watchdog::instance();
  obs::Telemetry::instance();
  static Scheduler scheduler;
  return scheduler;
}

}  // namespace

SchedMode sched_mode() {
  const int forced = g_forced_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SchedMode>(forced);
  return env_sched_mode();
}

void force_sched_mode(SchedMode m) {
  g_forced_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

void unforce_sched_mode() {
  g_forced_mode.store(-1, std::memory_order_relaxed);
}

std::size_t worker_count() {
  static const std::size_t count = [] {
    // Checked parse (util::env_int): garbage or non-positive values warn
    // loudly and fall back to the hardware default instead of reading as 0.
    const long long v = util::env_int("TDP_SCHED_WORKERS", 0, 1, 1 << 16);
    if (v > 0) return static_cast<std::size_t>(v);
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 2 ? hw : 2);
  }();
  return count;
}

bool on_worker_fiber() {
  const Worker* w = t_worker;
  return w != nullptr && w->current != nullptr;
}

TaskRef current_task() {
  const Worker* w = t_worker;
  return w != nullptr ? static_cast<TaskRef>(w->current) : nullptr;
}

void spawn(int proc, std::function<void()> fn,
           std::function<void()> on_complete) {
  Scheduler::instance().spawn(proc, std::move(fn), std::move(on_complete));
}

void ready(TaskRef task) {
  Scheduler::instance().ready(static_cast<Task*>(task));
}

void park(std::unique_lock<std::mutex>& lock) {
  Scheduler::instance().park(lock);
}

void park_until(std::unique_lock<std::mutex>& lock,
                std::chrono::steady_clock::time_point deadline) {
  Scheduler::instance().park_until(lock, deadline);
}

Stats stats() { return Scheduler::instance().snapshot(); }

std::string describe() {
  const Stats s = stats();
  std::ostringstream out;
  if (s.workers == 0) {
    out << "sched: steal pool not started (all processes on the thread lane)";
    return out.str();
  }
  out << "sched: " << s.workers << " workers, " << s.runnable
      << " runnable, " << s.suspended
      << " suspended (tasks, not thread-blocked), " << s.spawned
      << " spawned, " << s.completed << " completed, " << s.steals
      << " steals, " << s.parks << " worker parks";
  return out.str();
}

}  // namespace tdp::sched
