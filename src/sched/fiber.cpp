#include "sched/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <new>

namespace tdp::sched {

namespace {

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

void* FiberStack::limit() const {
  return static_cast<char*>(base) + page_size();
}

std::size_t FiberStack::usable() const { return size - page_size(); }

std::size_t fiber_stack_bytes() {
  static const std::size_t bytes = [] {
    long kb = 256;
    if (const char* env = std::getenv("TDP_SCHED_STACK_KB");
        env != nullptr && env[0] != '\0') {
      const long v = std::atol(env);
      if (v >= 64) {
        kb = v;
      } else {
        std::fprintf(stderr,
                     "tdp::sched: ignoring TDP_SCHED_STACK_KB \"%s\" "
                     "(minimum 64; using 256)\n",
                     env);
      }
    }
    const std::size_t page = page_size();
    const std::size_t raw = static_cast<std::size_t>(kb) * 1024;
    return (raw + page - 1) / page * page;
  }();
  return bytes;
}

FiberStack fiber_stack_alloc(std::size_t usable_bytes) {
  const std::size_t total = usable_bytes + page_size();
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK | MAP_NORESERVE,
                      -1, 0);
  if (base == MAP_FAILED) throw std::bad_alloc();
  // Guard page at the low end: a fiber that overruns its stack faults here
  // instead of scribbling over the adjacent mapping.
  ::mprotect(base, page_size(), PROT_NONE);
  return FiberStack{base, total};
}

void fiber_stack_free(const FiberStack& stack) {
  if (stack.base != nullptr) ::munmap(stack.base, stack.size);
}

}  // namespace tdp::sched
