#include "sched/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <new>

#include "util/env.hpp"

namespace tdp::sched {

namespace {

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

void* FiberStack::limit() const {
  return static_cast<char*>(base) + page_size();
}

std::size_t FiberStack::usable() const { return size - page_size(); }

std::size_t fiber_stack_bytes() {
  static const std::size_t bytes = [] {
    // Checked parse: values below the 64 KiB floor (and garbage) warn and
    // fall back to the 256 KiB default.
    const long long kb =
        util::env_int("TDP_SCHED_STACK_KB", 256, 64, 1LL << 22);
    const std::size_t page = page_size();
    const std::size_t raw = static_cast<std::size_t>(kb) * 1024;
    return (raw + page - 1) / page * page;
  }();
  return bytes;
}

FiberStack fiber_stack_alloc(std::size_t usable_bytes) {
  const std::size_t total = usable_bytes + page_size();
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK | MAP_NORESERVE,
                      -1, 0);
  if (base == MAP_FAILED) throw std::bad_alloc();
  // Guard page at the low end: a fiber that overruns its stack faults here
  // instead of scribbling over the adjacent mapping.
  ::mprotect(base, page_size(), PROT_NONE);
  return FiberStack{base, total};
}

void fiber_stack_free(const FiberStack& stack) {
  if (stack.base != nullptr) ::munmap(stack.base, stack.size);
}

}  // namespace tdp::sched
