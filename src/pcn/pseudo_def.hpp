// Pseudo-definitional arrays (§5.1.5–5.1.6).
//
// Local sections cannot be true mutables (they must live inside the array
// manager's record tuples) nor true definition variables (their contents
// are multiple-assignment), and for efficiency their storage is allocated
// explicitly outside the garbage-collected heap with the `build` and `free`
// primitives.  The resulting hybrid is "definitional" in its binding — the
// variable is bound to storage at most once, and any use must be preceded
// by a *data guard* ensuring the storage exists — and "pseudo" in that the
// storage itself is mutable.
//
// PseudoDefArray reproduces those semantics: a copyable handle whose
// binding is single-assignment (build() at most once per variable), whose
// readers suspend on the data guard until built, and whose element storage
// is freely mutable afterwards.  free() releases the storage explicitly;
// later guarded uses observe the released state, mirroring the emulator's
// free instruction.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>

#include "pcn/def.hpp"

namespace tdp::pcn {

class PseudoDefArray {
 public:
  PseudoDefArray() = default;

  /// The build primitive: allocates `size` doubles (zeroed) and defines the
  /// variable to that storage.  Throws DoubleDefinition on a second build.
  void build(std::size_t size) const {
    auto storage = std::make_shared<Storage>();
    storage->data.assign(size, 0.0);
    binding_.define(std::move(storage));
  }

  /// Data guard (non-blocking): has the variable been built?
  bool guard() const { return binding_.is_defined(); }

  /// Data guard (blocking): suspends until the variable is built, then
  /// returns whether the storage is still live (not freed).
  bool wait_guard() const { return !binding_.read()->freed; }

  /// Mutable view of the storage; suspends on the data guard.  Throws if
  /// the storage has been freed (a use-after-free the emulator would
  /// catch only by crashing; we are stricter).
  std::span<double> data() const {
    const std::shared_ptr<Storage>& s = binding_.read();
    if (s->freed) {
      throw std::logic_error("PseudoDefArray: use after free");
    }
    return std::span<double>(s->data);
  }

  std::size_t size() const { return binding_.read()->data.size(); }

  /// The free primitive: releases the storage.  Requires the data guard
  /// (suspends until built); idempotent frees throw, as a double free is a
  /// program error.
  void free() const {
    const std::shared_ptr<Storage>& s = binding_.read();
    if (s->freed) throw std::logic_error("PseudoDefArray: double free");
    s->freed = true;
    s->data.clear();
    s->data.shrink_to_fit();
  }

  /// Two handles naming the same variable compare equal.
  bool same_variable(const PseudoDefArray& other) const {
    return binding_.same_variable(other.binding_);
  }

 private:
  struct Storage {
    std::vector<double> data;
    bool freed = false;
  };
  Def<std::shared_ptr<Storage>> binding_;
};

}  // namespace tdp::pcn
