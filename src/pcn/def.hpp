// Single-assignment ("definitional") variables (thesis §3.1.1.2, §A.2).
//
// A definitional variable can be assigned a value at most once; its initial
// state is "undefined", and a process that requires the value of an
// undefined variable suspends until the variable has been defined.  All
// readers observe the same value, which is how the task-parallel notation
// communicates and synchronises (there are no conflicting accesses by
// construction, §3.1.1.4).
//
// Def<T> is a copyable handle to shared single-assignment state, mirroring
// how PCN definition variables are shared between concurrently-executing
// processes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace tdp::pcn {

/// Thrown on a second define(); PCN programs that attempt this are erroneous.
class DoubleDefinition : public std::logic_error {
 public:
  DoubleDefinition() : std::logic_error("definitional variable defined twice") {}
};

template <typename T>
class Def {
 public:
  Def() : state_(std::make_shared<State>()) {}

  /// Defines the variable.  Throws DoubleDefinition if already defined.
  void define(T value) const {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->value.has_value()) throw DoubleDefinition();
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

  /// Defines the variable unless already defined; returns whether this call
  /// performed the definition.
  bool try_define(T value) const {
    bool defined = false;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->value.has_value()) {
        state_->value.emplace(std::move(value));
        defined = true;
      }
    }
    if (defined) state_->cv.notify_all();
    return defined;
  }

  /// Reads the value, suspending the calling process until defined.
  const T& read() const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    return *state_->value;
  }

  /// Reads with a timeout; nullptr when still undefined at the deadline.
  template <typename Rep, typename Period>
  const T* read_for(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (!state_->cv.wait_for(lock, timeout,
                             [&] { return state_->value.has_value(); })) {
      return nullptr;
    }
    return &*state_->value;
  }

  /// Non-blocking "data guard" (§5.1.5): is the variable defined yet?
  bool is_defined() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.has_value();
  }

  /// Two handles naming the same shared variable compare equal.
  bool same_variable(const Def& other) const { return state_ == other.state_; }

 private:
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::optional<T> value;
  };
  std::shared_ptr<State> state_;
};

}  // namespace tdp::pcn
