// Single-assignment ("definitional") variables (thesis §3.1.1.2, §A.2).
//
// A definitional variable can be assigned a value at most once; its initial
// state is "undefined", and a process that requires the value of an
// undefined variable suspends until the variable has been defined.  All
// readers observe the same value, which is how the task-parallel notation
// communicates and synchronises (there are no conflicting accesses by
// construction, §3.1.1.4).
//
// Def<T> is a copyable handle to shared single-assignment state, mirroring
// how PCN definition variables are shared between concurrently-executing
// processes.
//
// Suspension is lane-aware: a reader on a scheduler fiber (TDP_SCHED=steal)
// registers itself as a dependency edge — a task handle in the state's
// waiter list — and parks, costing a record instead of a blocked thread;
// define() requeues every registered reader.  Thread-lane readers block on
// the condition variable exactly as before.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sched/sched.hpp"

namespace tdp::pcn {

/// Thrown on a second define(); PCN programs that attempt this are erroneous.
class DoubleDefinition : public std::logic_error {
 public:
  DoubleDefinition() : std::logic_error("definitional variable defined twice") {}
};

template <typename T>
class Def {
 public:
  Def() : state_(std::make_shared<State>()) {}

  /// Defines the variable.  Throws DoubleDefinition if already defined.
  void define(T value) const {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->value.has_value()) throw DoubleDefinition();
      state_->value.emplace(std::move(value));
      state_->ready_waiters_locked();
    }
    state_->cv.notify_all();
  }

  /// Defines the variable unless already defined; returns whether this call
  /// performed the definition.
  bool try_define(T value) const {
    bool defined = false;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->value.has_value()) {
        state_->value.emplace(std::move(value));
        state_->ready_waiters_locked();
        defined = true;
      }
    }
    if (defined) state_->cv.notify_all();
    return defined;
  }

  /// Reads the value, suspending the calling process until defined.
  const T& read() const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (sched::on_worker_fiber()) {
      while (!state_->value.has_value()) {
        state_->register_waiter_locked(sched::current_task());
        sched::park(lock);
      }
      return *state_->value;
    }
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    return *state_->value;
  }

  /// Reads with a timeout; nullptr when still undefined at the deadline.
  template <typename Rep, typename Period>
  const T* read_for(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (sched::on_worker_fiber()) {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      const sched::TaskRef self = sched::current_task();
      while (!state_->value.has_value()) {
        if (std::chrono::steady_clock::now() >= deadline) {
          state_->deregister_waiter_locked(self);
          return nullptr;
        }
        state_->register_waiter_locked(self);
        sched::park_until(lock, deadline);
      }
      state_->deregister_waiter_locked(self);
      return &*state_->value;
    }
    if (!state_->cv.wait_for(lock, timeout,
                             [&] { return state_->value.has_value(); })) {
      return nullptr;
    }
    return &*state_->value;
  }

  /// Non-blocking "data guard" (§5.1.5): is the variable defined yet?
  bool is_defined() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.has_value();
  }

  /// Two handles naming the same shared variable compare equal.
  bool same_variable(const Def& other) const { return state_ == other.state_; }

 private:
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::optional<T> value;
    /// Suspended fiber readers — the dependency edges define() resolves.
    std::vector<sched::TaskRef> waiters;

    void register_waiter_locked(sched::TaskRef self) {
      if (std::find(waiters.begin(), waiters.end(), self) == waiters.end()) {
        waiters.push_back(self);
      }
    }

    void deregister_waiter_locked(sched::TaskRef self) {
      const auto it = std::find(waiters.begin(), waiters.end(), self);
      if (it != waiters.end()) waiters.erase(it);
    }

    /// Requeues every suspended reader.  Caller holds mutex — the mutex
    /// each reader parked with, satisfying the sched::ready lifetime rule.
    void ready_waiters_locked() {
      for (sched::TaskRef t : waiters) sched::ready(t);
      waiters.clear();
    }
  };
  std::shared_ptr<State> state_;
};

}  // namespace tdp::pcn
