// Definitional streams (thesis §A.3): a stream of messages between two
// processes is a shared definitional list whose elements correspond to
// messages.  The producer incrementally defines cons cells; the consumer
// suspends on the undefined tail.  Closing a stream defines the tail to be
// the empty list (the PCN `[]`).
//
// Suspension is inherited from Def<T>: a consumer blocked on the undefined
// tail parks as a scheduler task under TDP_SCHED=steal (the producer's
// define requeues it) and blocks its thread on the legacy lane, so long
// producer/consumer chains scale with the fiber count, not the thread count.
//
// Stream<T> is a copyable handle to one cell position.  Typical use:
//
//   Stream<int> s;                // shared between producer and consumer
//   // producer:
//   Stream<int> tail = s.put(1).put(2);
//   tail.close();
//   // consumer:
//   for (std::optional<int> v; (v = s.next());) consume(*v);
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "pcn/def.hpp"

namespace tdp::pcn {

template <typename T>
class Stream {
 public:
  Stream() = default;

  /// Producer: defines this cell as cons(value, fresh-tail); returns the
  /// tail handle for the next put.  Throws DoubleDefinition if this cell was
  /// already produced or closed.
  Stream put(T value) const {
    auto cell = std::make_shared<Cell>();
    cell->head = std::move(value);
    cell_.define(cell);
    return cell->tail;
  }

  /// Producer: defines this cell as the empty list, ending the stream.
  void close() const { cell_.define(nullptr); }

  /// Consumer: suspends until this cell is defined.  Returns the head value
  /// and advances *this to the tail; returns nullopt (and leaves *this at
  /// the closed cell) when the stream has ended.
  std::optional<T> next() {
    const std::shared_ptr<Cell>& cell = cell_.read();
    if (cell == nullptr) return std::nullopt;
    T value = cell->head;
    *this = cell->tail;
    return value;
  }

  /// Consumer: peeks at the head without advancing; nullopt when closed.
  std::optional<T> head() const {
    const std::shared_ptr<Cell>& cell = cell_.read();
    if (cell == nullptr) return std::nullopt;
    return cell->head;
  }

  /// Consumer: the tail position; only meaningful after head() returned a
  /// value.
  Stream tail() const {
    const std::shared_ptr<Cell>& cell = cell_.read();
    return cell == nullptr ? *this : cell->tail;
  }

  /// Non-blocking guard: has this cell been produced (or the stream closed)?
  bool available() const { return cell_.is_defined(); }

  /// Drains the remaining stream into a vector (suspends until closed).
  std::vector<T> collect() {
    std::vector<T> out;
    for (std::optional<T> v; (v = next());) out.push_back(std::move(*v));
    return out;
  }

  /// Producer convenience: puts every element of `values`, returns new tail.
  Stream put_all(const std::vector<T>& values) const {
    Stream s = *this;
    for (const T& v : values) s = s.put(v);
    return s;
  }

 private:
  struct Cell {
    T head;
    Stream tail;
  };
  Def<std::shared_ptr<Cell>> cell_;
};

}  // namespace tdp::pcn
