// Process creation and program composition (thesis §3.1.1.1, §A.1).
//
// PCN programs are compositions of statements executed in sequence (`;`),
// in parallel (`||`), or by guarded choice (`?`).  Execution of a parallel
// composition is equivalent to creating one concurrently-executing process
// per statement and waiting for all of them to terminate.  Processes may be
// placed on a particular virtual processor with the `@p` annotation.
//
// We reproduce those constructs as library combinators:
//
//   par(f, g, h);                  // parallel composition, fork/join
//   seq(f, g, h);                  // sequential composition
//   choose({{guard, body}, ...});  // choice composition (first true guard)
//   ProcessGroup pg;
//   pg.spawn(f);                   // dynamic process creation
//   pg.spawn_on(machine, 3, f);    // ... with @3 placement
//   pg.join();
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sched/sched.hpp"
#include "vp/machine.hpp"

namespace tdp::pcn {

using Block = std::function<void()>;

/// A set of dynamically-created processes with a fork/join lifetime.  The
/// destructor joins any processes still running (a parallel composition
/// terminates only when all its statements have, §3.1.1.1).
///
/// Execution lane: under TDP_SCHED=steal (sched::sched_mode, snapshotted
/// per spawn) each process is a scheduler task — a fiber multiplexed onto
/// the work-stealing pool — instead of a dedicated std::thread, so a group
/// can hold tens of thousands of concurrently-blocked processes.  join()
/// then waits on a completion count: a fiber joiner suspends as a task
/// record, a thread joiner blocks on a condvar.  Both lanes preserve the
/// exception policy below, and a group may mix lanes (spawns before and
/// after a mode switch).
///
/// Exception policy: a body that throws no longer takes the whole OS
/// process down with std::terminate.  The group records the first
/// exception and join() rethrows it on the joining thread — the same
/// propagation a sequential composition would give.  Two exceptions are
/// special-cased: vp::MailboxClosed means the machine is being torn down
/// while this process was blocked in a receive, which is a *clean*
/// shutdown, not an error; further exceptions after the first are dropped
/// (first-wins, like nested exceptions in a sequential program).
class ProcessGroup {
 public:
  ProcessGroup() = default;
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// Creates a process executing `body` with no particular placement.
  void spawn(Block body);

  /// Creates a process executing `body` placed on virtual processor `proc`
  /// of `machine` (the `@proc` annotation); library code run by the process
  /// sees vp::current_proc() == proc.
  void spawn_on(vp::Machine& machine, int proc, Block body);

  /// Waits for every spawned process to terminate, then rethrows the first
  /// exception any of them threw (if any).  The destructor joins WITHOUT
  /// rethrowing; call join() explicitly to observe failures.
  void join();

  /// The first exception thrown by a body, or nullptr; meaningful once all
  /// processes have terminated.  join() consumes it.
  std::exception_ptr first_exception() const;

  /// Number of processes ever spawned in this group (both lanes).
  std::size_t spawned() const;

 private:
  void run_guarded(const Block& body) noexcept;
  void spawn_task(int proc, Block body);
  void task_finished();
  void join_all();

  std::vector<std::thread> threads_;
  mutable std::mutex mutex_;
  std::exception_ptr first_exception_;
  /// Steal-lane bookkeeping, all under mutex_: spawned/active task counts
  /// and the joiners suspended until the active count drains to zero.
  std::size_t tasks_spawned_ = 0;
  std::size_t tasks_active_ = 0;
  std::vector<sched::TaskRef> join_waiters_;
  std::condition_variable done_cv_;
};

/// Parallel composition: runs every block concurrently and waits for all to
/// terminate before returning.
void par(std::vector<Block> blocks);

template <typename... Fs>
void par(Fs&&... blocks) {
  par(std::vector<Block>{Block(std::forward<Fs>(blocks))...});
}

/// Sequential composition; trivial, provided for symmetry with the notation.
void seq(std::vector<Block> blocks);

template <typename... Fs>
void seq(Fs&&... blocks) {
  seq(std::vector<Block>{Block(std::forward<Fs>(blocks))...});
}

/// One guarded alternative of a choice composition.
struct Guarded {
  std::function<bool()> guard;
  Block body;
};

/// Choice composition (§A.1): executes the body of the first alternative
/// whose guard holds; executes `otherwise` (the `default ->` branch) when no
/// guard holds and `otherwise` is non-null.  Returns whether any body ran.
bool choose(std::vector<Guarded> alternatives, Block otherwise = nullptr);

}  // namespace tdp::pcn
