#include "pcn/process.hpp"

namespace tdp::pcn {

ProcessGroup::~ProcessGroup() { join_threads(); }

void ProcessGroup::run_guarded(const Block& body) noexcept {
  try {
    body();
  } catch (const vp::MailboxClosed&) {
    // Machine teardown closed the mailbox this process was blocked on:
    // clean shutdown, not a failure (the §3.1.1.1 composition simply ends).
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
}

void ProcessGroup::spawn(Block body) {
  threads_.emplace_back(
      [this, body = std::move(body)] { run_guarded(body); });
}

void ProcessGroup::spawn_on(vp::Machine& machine, int proc, Block body) {
  if (!machine.valid_proc(proc)) {
    throw std::out_of_range("ProcessGroup::spawn_on: bad processor number");
  }
  threads_.emplace_back([this, proc, body = std::move(body)] {
    vp::ProcScope scope(proc);
    run_guarded(body);
  });
}

void ProcessGroup::join_threads() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ProcessGroup::join() {
  join_threads();
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    e = std::exchange(first_exception_, nullptr);
  }
  if (e) std::rethrow_exception(e);
}

std::exception_ptr ProcessGroup::first_exception() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_exception_;
}

void par(std::vector<Block> blocks) {
  ProcessGroup group;
  for (auto& b : blocks) group.spawn(std::move(b));
  group.join();
}

void seq(std::vector<Block> blocks) {
  for (auto& b : blocks) b();
}

bool choose(std::vector<Guarded> alternatives, Block otherwise) {
  for (auto& alt : alternatives) {
    if (alt.guard()) {
      alt.body();
      return true;
    }
  }
  if (otherwise) {
    otherwise();
    return true;
  }
  return false;
}

}  // namespace tdp::pcn
