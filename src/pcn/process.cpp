#include "pcn/process.hpp"

#include <algorithm>

namespace tdp::pcn {

ProcessGroup::~ProcessGroup() { join_all(); }

void ProcessGroup::run_guarded(const Block& body) noexcept {
  try {
    body();
  } catch (const vp::MailboxClosed&) {
    // Machine teardown closed the mailbox this process was blocked on:
    // clean shutdown, not a failure (the §3.1.1.1 composition simply ends).
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
}

void ProcessGroup::spawn(Block body) {
  if (sched::sched_mode() == sched::SchedMode::Steal) {
    spawn_task(-1, std::move(body));
    return;
  }
  threads_.emplace_back(
      [this, body = std::move(body)] { run_guarded(body); });
}

void ProcessGroup::spawn_on(vp::Machine& machine, int proc, Block body) {
  if (!machine.valid_proc(proc)) {
    throw std::out_of_range("ProcessGroup::spawn_on: bad processor number");
  }
  if (sched::sched_mode() == sched::SchedMode::Steal) {
    // The @proc placement travels with the fiber: the scheduler restores
    // it into the current-vp thread-local wherever the task runs or
    // resumes, doing what vp::ProcScope does on the thread lane.
    spawn_task(proc, std::move(body));
    return;
  }
  threads_.emplace_back([this, proc, body = std::move(body)] {
    vp::ProcScope scope(proc);
    run_guarded(body);
  });
}

void ProcessGroup::spawn_task(int proc, Block body) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++tasks_spawned_;
    ++tasks_active_;
  }
  sched::spawn(
      proc, [this, body = std::move(body)] { run_guarded(body); },
      [this] { task_finished(); });
}

void ProcessGroup::task_finished() {
  // Runs on a worker's scheduler stack after the task's fiber has fully
  // switched out.  ready() is called under mutex_ — the mutex the joiners
  // parked with — per the sched::ready lifetime rule.
  std::lock_guard<std::mutex> lock(mutex_);
  if (--tasks_active_ == 0) {
    for (sched::TaskRef t : join_waiters_) sched::ready(t);
    join_waiters_.clear();
    done_cv_.notify_all();
  }
}

void ProcessGroup::join_all() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  while (tasks_active_ > 0) {
    if (sched::on_worker_fiber()) {
      // A fiber joining a group suspends instead of wedging its worker
      // (nested par compositions would otherwise exhaust the pool).
      const sched::TaskRef self = sched::current_task();
      if (std::find(join_waiters_.begin(), join_waiters_.end(), self) ==
          join_waiters_.end()) {
        join_waiters_.push_back(self);
      }
      sched::park(lock);
    } else {
      done_cv_.wait(lock);
    }
  }
}

void ProcessGroup::join() {
  join_all();
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    e = std::exchange(first_exception_, nullptr);
  }
  if (e) std::rethrow_exception(e);
}

std::exception_ptr ProcessGroup::first_exception() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_exception_;
}

std::size_t ProcessGroup::spawned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size() + tasks_spawned_;
}

void par(std::vector<Block> blocks) {
  ProcessGroup group;
  for (auto& b : blocks) group.spawn(std::move(b));
  group.join();
}

void seq(std::vector<Block> blocks) {
  for (auto& b : blocks) b();
}

bool choose(std::vector<Guarded> alternatives, Block otherwise) {
  for (auto& alt : alternatives) {
    if (alt.guard()) {
      alt.body();
      return true;
    }
  }
  if (otherwise) {
    otherwise();
    return true;
  }
  return false;
}

}  // namespace tdp::pcn
