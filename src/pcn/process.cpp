#include "pcn/process.hpp"

namespace tdp::pcn {

ProcessGroup::~ProcessGroup() { join(); }

void ProcessGroup::spawn(Block body) {
  threads_.emplace_back(std::move(body));
}

void ProcessGroup::spawn_on(vp::Machine& machine, int proc, Block body) {
  if (!machine.valid_proc(proc)) {
    throw std::out_of_range("ProcessGroup::spawn_on: bad processor number");
  }
  threads_.emplace_back([proc, body = std::move(body)] {
    vp::ProcScope scope(proc);
    body();
  });
}

void ProcessGroup::join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void par(std::vector<Block> blocks) {
  ProcessGroup group;
  for (auto& b : blocks) group.spawn(std::move(b));
  group.join();
}

void seq(std::vector<Block> blocks) {
  for (auto& b : blocks) b();
}

bool choose(std::vector<Guarded> alternatives, Block otherwise) {
  for (auto& alt : alternatives) {
    if (alt.guard()) {
      alt.body();
      return true;
    }
  }
  if (otherwise) {
    otherwise();
    return true;
  }
  return false;
}

}  // namespace tdp::pcn
