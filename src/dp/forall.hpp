// Multiple-assignment semantics for SPMD copies (§1.2.1, §1.2.5).
//
// The thesis defines a data-parallel computation as a sequence of
// *multiple-assignment statements*: first evaluate all right-hand sides,
// then assign — so every RHS sees the values from *before* the statement.
// On an MIMD/SPMD implementation with multiple elements per process "care
// must be taken that the implementation preserves the semantics of the
// programming model" (§1.2.5): a naive in-place loop lets late iterations
// observe early writes.
//
// This module provides the MIMD-correct primitives:
//   * multiple_assign — new[g] = f(old, g) where f may read ANY global
//     element's pre-statement value (the implementation snapshots the whole
//     vector via allgather, then writes);
//   * parallel_for — the independent-iterations parallel loop of §1.2.1,
//     where each iteration touches only its own element and no snapshot is
//     needed;
//   * a small statement-sequence runner mirroring "a data-parallel program
//     is a sequence of multiple-assignment statements".
#pragma once

#include <functional>
#include <span>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::dp {

/// Pre-statement view of the whole distributed vector: old(g) is the value
/// global element g had before the current statement.  Owns its snapshot in
/// the correct implementation; the deliberately-broken naive variant below
/// constructs it as a non-owning view over live storage.
class OldValues {
 public:
  explicit OldValues(std::vector<double> snapshot)
      : owned_(std::move(snapshot)), view_(owned_) {}
  explicit OldValues(std::span<const double> view) : view_(view) {}

  OldValues(const OldValues&) = delete;
  OldValues& operator=(const OldValues&) = delete;

  double operator()(long long g) const {
    return view_[static_cast<std::size_t>(g)];
  }
  long long size() const { return static_cast<long long>(view_.size()); }

 private:
  std::vector<double> owned_;
  std::span<const double> view_;
};

/// RHS of a multiple-assignment statement: the new value of global element
/// g, computed from the pre-statement values of the whole vector.
using Rhs = std::function<double(const OldValues& old, long long g)>;

/// One multiple-assignment statement over a block-distributed vector of
/// nloc local elements per copy.  All copies must call it (it contains an
/// allgather); afterwards local[i] = rhs(old, my_base + i) with `old`
/// frozen at entry.
void multiple_assign(spmd::SpmdContext& ctx, std::span<double> local,
                     const Rhs& rhs);

/// The independent parallel loop of §1.2.1: each iteration may read and
/// write only its own element, so no snapshot or synchronisation is
/// required beyond the call structure itself.
void parallel_for(spmd::SpmdContext& ctx, std::span<double> local,
                  const std::function<double(long long g, double own)>& body);

/// Runs a sequence of multiple-assignment statements — the thesis's
/// simplest view of a data-parallel program.
void run_statements(spmd::SpmdContext& ctx, std::span<double> local,
                    const std::vector<Rhs>& statements);

/// The *incorrect* naive in-place evaluation, exposed deliberately so tests
/// and benches can demonstrate the §1.2.5 hazard it creates on MIMD
/// implementations (late elements observing early writes).
void multiple_assign_naive_in_place(spmd::SpmdContext& ctx,
                                    std::span<double> local, const Rhs& rhs);

/// Registers the callable program:
///   "dp_rotate" — steps, local v; performs v[g] = old[(g-1+N) mod N]
///   `steps` times, a pure shift that is only correct under
///   multiple-assignment semantics.
void register_programs(core::ProgramRegistry& registry);

}  // namespace tdp::dp
