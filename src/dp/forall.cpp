#include "dp/forall.hpp"

#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::dp {

namespace {

obs::ShardedCounter& statement_count() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("dp.statements");
  return c;
}

/// Monotonic per-process-thread statement sequence, carried in each dp
/// span's arg1: within one copy of a called program the statements of
/// §1.2.4 execute in order, and the sequence lets the trace analyzer
/// recover that order even when spans from many copies interleave.
std::uint64_t next_statement_seq() {
  thread_local std::uint64_t t_seq = 0;
  return ++t_seq;
}

}  // namespace

void multiple_assign(spmd::SpmdContext& ctx, std::span<double> local,
                     const Rhs& rhs) {
  obs::Span span(obs::Op::DpAssign, ctx.comm(), local.size());
  if (obs::enabled()) {
    span.set_arg1(next_statement_seq());
    statement_count().add();
    obs::CallTable::instance().add_statement(ctx.comm());
  }
  // Phase 1: freeze the pre-statement values of the whole vector.
  std::vector<double> snapshot =
      ctx.allgather(std::span<const double>(local.data(), local.size()));
  const OldValues old(std::move(snapshot));
  // Phase 2: assign.  The allgather is itself the barrier between the two
  // phases: no copy can start writing until every copy has contributed its
  // old values.
  const long long base =
      static_cast<long long>(ctx.index()) * static_cast<long long>(local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    local[i] = rhs(old, base + static_cast<long long>(i));
  }
}

void parallel_for(spmd::SpmdContext& ctx, std::span<double> local,
                  const std::function<double(long long g, double own)>& body) {
  obs::Span span(obs::Op::DpParallelFor, ctx.comm(), local.size());
  if (obs::enabled()) {
    span.set_arg1(next_statement_seq());
    statement_count().add();
    obs::CallTable::instance().add_statement(ctx.comm());
  }
  const long long base =
      static_cast<long long>(ctx.index()) * static_cast<long long>(local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    local[i] = body(base + static_cast<long long>(i), local[i]);
  }
}

void run_statements(spmd::SpmdContext& ctx, std::span<double> local,
                    const std::vector<Rhs>& statements) {
  for (const Rhs& statement : statements) {
    multiple_assign(ctx, local, statement);
  }
}

void multiple_assign_naive_in_place(spmd::SpmdContext& ctx,
                                    std::span<double> local, const Rhs& rhs) {
  // Deliberately wrong on purpose (§1.2.5): the "snapshot" aliases live
  // storage, so RHS evaluations of later elements see already-assigned
  // values of earlier ones within the same local section.  Cross-copy
  // values are still pre-statement (they were gathered before any write),
  // which makes the bug data-dependent and timing-independent — the worst
  // kind.
  std::vector<double> gathered =
      ctx.allgather(std::span<const double>(local.data(), local.size()));
  const OldValues live_view{std::span<const double>(gathered)};
  const long long base =
      static_cast<long long>(ctx.index()) * static_cast<long long>(local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    // Overwrite the gathered copy as we go, simulating in-place update: the
    // "old values" view aliases live storage.
    const double value = rhs(live_view, base + static_cast<long long>(i));
    gathered[static_cast<std::size_t>(base) + i] = value;
    local[i] = value;
  }
}

void register_programs(core::ProgramRegistry& registry) {
  registry.add("dp_rotate", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const int steps = args.in<int>(0);
    const dist::LocalSectionView& v = args.local(1);
    std::span<double> local(v.f64(),
                            static_cast<std::size_t>(v.interior_count()));
    for (int s = 0; s < steps; ++s) {
      multiple_assign(ctx, local, [](const OldValues& old, long long g) {
        const long long n = old.size();
        return old((g - 1 + n) % n);
      });
    }
  });
}

}  // namespace tdp::dp
