#include "fault/inject.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::fault {

namespace {

/// splitmix64 finalizer: a bijective avalanche mix, the standard way to
/// turn a structured counter into decision bits.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of a mixed word.
double u01(std::uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

// Distinct salts give each fault kind an independent decision stream from
// the same (seed, dst, seq) coordinate.
constexpr std::uint64_t kSaltDrop = 0xd1f7a11ed5ea501dULL;
constexpr std::uint64_t kSaltDup = 0x2b7e151628aed2a6ULL;
constexpr std::uint64_t kSaltReorder = 0x452821e638d01377ULL;
constexpr std::uint64_t kSaltRequest = 0x9216d5d98979fb1bULL;

std::uint64_t decision_word(std::uint64_t seed, int dst, std::uint64_t seq,
                            std::uint64_t salt) {
  return mix(seed ^ salt ^
             mix((static_cast<std::uint64_t>(static_cast<unsigned>(dst))
                  << 32) ^
                 seq));
}

obs::ShardedCounter& drops_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("fault.drops");
  return c;
}
obs::ShardedCounter& delays_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("fault.delays");
  return c;
}
obs::ShardedCounter& dups_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("fault.dups");
  return c;
}
obs::ShardedCounter& reorders_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("fault.reorders");
  return c;
}
obs::ShardedCounter& request_drops_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("fault.request_drops");
  return c;
}

}  // namespace

Injector::Injector(Plan plan, int nprocs) : plan_(std::move(plan)) {
  dsts_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    dsts_.push_back(std::make_unique<DstState>());
  }
  failed_.assign(static_cast<std::size_t>(nprocs), false);
  for (int vp : plan_.failed) {
    if (vp >= 0 && vp < nprocs) failed_[static_cast<std::size_t>(vp)] = true;
  }
}

bool Injector::vp_failed(int vp) const {
  return vp >= 0 && vp < static_cast<int>(failed_.size()) &&
         failed_[static_cast<std::size_t>(vp)];
}

void Injector::on_send(int src_vp, int dst, vp::Message&& m,
                       const Deliver& deliver) {
  if (vp_failed(src_vp) || vp_failed(dst)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      drops_counter().add();
      obs::instant_flow(obs::Op::FaultDrop, m.flow, m.comm,
                        static_cast<std::uint64_t>(dst),
                        static_cast<std::uint64_t>(
                            static_cast<unsigned>(m.tag)));
    }
    return;
  }

  DstState& state = dst_state(dst);
  const std::uint64_t seq =
      state.msg_seq.fetch_add(1, std::memory_order_relaxed);

  if (plan_.drop > 0.0 &&
      u01(decision_word(plan_.seed, dst, seq, kSaltDrop)) < plan_.drop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      drops_counter().add();
      obs::instant_flow(obs::Op::FaultDrop, m.flow, m.comm,
                        static_cast<std::uint64_t>(dst),
                        static_cast<std::uint64_t>(
                            static_cast<unsigned>(m.tag)));
    }
    return;
  }

  if (plan_.delay_ms > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      delays_counter().add();
      obs::instant_flow(obs::Op::FaultDelay, m.flow, m.comm,
                        static_cast<std::uint64_t>(dst), plan_.delay_ms);
    }
    // Holding the sender is the delay: the message (and everything the
    // sender would have sent next) arrives late relative to other senders.
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
  }

  const bool dup =
      plan_.dup > 0.0 &&
      u01(decision_word(plan_.seed, dst, seq, kSaltDup)) < plan_.dup;
  if (dup) {
    dups_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      dups_counter().add();
      obs::instant_flow(obs::Op::FaultDup, m.flow, m.comm,
                        static_cast<std::uint64_t>(dst),
                        static_cast<std::uint64_t>(
                            static_cast<unsigned>(m.tag)));
    }
    deliver(vp::Message(m));  // extra copy shares the refcounted payload
  }

  if (plan_.reorder > 0.0) {
    std::optional<vp::Message> flushed;
    bool stashed = false;
    {
      std::lock_guard<std::mutex> lock(state.stash_mutex);
      if (state.stash.has_value()) {
        // A message is already held back: deliver the new one first, then
        // release the stash — the pairwise swap.
        flushed = std::move(state.stash);
        state.stash.reset();
      } else if (u01(decision_word(plan_.seed, dst, seq, kSaltReorder)) <
                 plan_.reorder) {
        state.stash = std::move(m);
        state.stash_since = std::chrono::steady_clock::now();
        stashed = true;
      }
    }
    if (stashed) {
      reorders_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        reorders_counter().add();
        obs::instant(obs::Op::FaultReorder, 0,
                     static_cast<std::uint64_t>(dst), seq);
      }
      return;
    }
    deliver(std::move(m));
    if (flushed.has_value()) deliver(std::move(*flushed));
    return;
  }

  deliver(std::move(m));
}

bool Injector::drop_request(int dst) {
  if (vp_failed(dst)) {
    request_drops_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      request_drops_counter().add();
      obs::instant(obs::Op::FaultDrop, 0, static_cast<std::uint64_t>(dst),
                   /*arg1=*/1);
    }
    return true;
  }
  if (plan_.drop <= 0.0 || dst < 0 ||
      dst >= static_cast<int>(dsts_.size())) {
    return false;
  }
  DstState& state = dst_state(dst);
  const std::uint64_t seq =
      state.req_seq.fetch_add(1, std::memory_order_relaxed);
  if (u01(decision_word(plan_.seed, dst, seq, kSaltRequest)) < plan_.drop) {
    request_drops_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      request_drops_counter().add();
      obs::instant(obs::Op::FaultDrop, 0, static_cast<std::uint64_t>(dst),
                   /*arg1=*/1);
    }
    return true;
  }
  return false;
}

void Injector::start_stash_flusher(LateSink sink) {
  if (plan_.reorder <= 0.0 || flusher_.joinable()) return;
  late_sink_ = std::move(sink);
  flusher_ = std::thread([this] { flusher_loop(); });
}

void Injector::stop_stash_flusher() {
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Injector::~Injector() { stop_stash_flusher(); }

void Injector::flusher_loop() {
  // How long a stash may hold a message waiting for a swap partner.  Long
  // enough that back-to-back traffic still reorders, short enough that a
  // final-message stash reads as a delay, not a loss.
  constexpr auto kHold = std::chrono::milliseconds(25);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(flusher_mu_);
      flusher_cv_.wait_for(lock, kHold / 5,
                           [this] { return flusher_stop_; });
      if (flusher_stop_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t dst = 0; dst < dsts_.size(); ++dst) {
      std::optional<vp::Message> late;
      {
        std::lock_guard<std::mutex> lock(dsts_[dst]->stash_mutex);
        if (dsts_[dst]->stash.has_value() &&
            now - dsts_[dst]->stash_since >= kHold) {
          late = std::move(dsts_[dst]->stash);
          dsts_[dst]->stash.reset();
        }
      }
      if (late.has_value()) {
        late_sink_(static_cast<int>(dst), std::move(*late));
      }
    }
  }
}

void Injector::drain(
    const std::function<void(int dst, vp::Message&&)>& deliver) {
  stop_stash_flusher();
  for (std::size_t dst = 0; dst < dsts_.size(); ++dst) {
    std::optional<vp::Message> held;
    {
      std::lock_guard<std::mutex> lock(dsts_[dst]->stash_mutex);
      if (dsts_[dst]->stash.has_value()) {
        held = std::move(dsts_[dst]->stash);
        dsts_[dst]->stash.reset();
      }
    }
    if (held.has_value()) deliver(static_cast<int>(dst), std::move(*held));
  }
}

InjectionCounts Injector::counts() const {
  InjectionCounts c;
  c.drops = drops_.load(std::memory_order_relaxed);
  c.delays = delays_.load(std::memory_order_relaxed);
  c.dups = dups_.load(std::memory_order_relaxed);
  c.reorders = reorders_.load(std::memory_order_relaxed);
  c.request_drops = request_drops_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace tdp::fault
