#include "fault/plan.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tdp::fault {

namespace {

bool parse_probability(std::string_view value, double& out) {
  std::string buf(value);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || v < 0.0) return false;
  out = v > 1.0 ? 1.0 : v;
  return true;
}

bool parse_u64(std::string_view value, std::uint64_t& out) {
  std::string buf(value);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

bool Plan::parse(std::string_view spec, Plan& out, std::string& error_out) {
  Plan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view token =
        spec.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) continue;

    const std::size_t colon = token.find(':');
    if (colon == std::string_view::npos) {
      error_out = "missing ':' in \"" + std::string(token) + "\"";
      out = Plan{};
      return false;
    }
    const std::string_view key = token.substr(0, colon);
    const std::string_view value = token.substr(colon + 1);

    bool ok = true;
    if (key == "drop") {
      ok = parse_probability(value, plan.drop);
    } else if (key == "dup") {
      ok = parse_probability(value, plan.dup);
    } else if (key == "reorder") {
      ok = parse_probability(value, plan.reorder);
    } else if (key == "delay") {
      ok = parse_u64(value, plan.delay_ms);
    } else if (key == "seed") {
      ok = parse_u64(value, plan.seed);
    } else if (key == "fail") {
      std::uint64_t vp = 0;
      ok = parse_u64(value, vp);
      if (ok) plan.failed.push_back(static_cast<int>(vp));
    } else {
      error_out = "unknown key \"" + std::string(key) + "\"";
      out = Plan{};
      return false;
    }
    if (!ok) {
      error_out = "bad value in \"" + std::string(token) + "\"";
      out = Plan{};
      return false;
    }
  }
  out = plan;
  return true;
}

Plan Plan::from_env() {
  const char* env = std::getenv("TDP_FAULT");
  if (env == nullptr || env[0] == '\0') return Plan{};
  Plan plan;
  std::string error;
  if (!Plan::parse(env, plan, error)) {
    std::fprintf(stderr,
                 "tdp::fault: ignoring malformed TDP_FAULT \"%s\" (%s); valid "
                 "keys are drop:p, delay:ms, dup:p, reorder:p, fail:vp, "
                 "seed:n\n",
                 env, error.c_str());
    return Plan{};
  }
  return plan;
}

std::string Plan::describe() const {
  std::ostringstream out;
  const char* sep = "";
  if (drop > 0.0) {
    out << sep << "drop:" << drop;
    sep = ",";
  }
  if (delay_ms > 0) {
    out << sep << "delay:" << delay_ms;
    sep = ",";
  }
  if (dup > 0.0) {
    out << sep << "dup:" << dup;
    sep = ",";
  }
  if (reorder > 0.0) {
    out << sep << "reorder:" << reorder;
    sep = ",";
  }
  for (int vp : failed) {
    out << sep << "fail:" << vp;
    sep = ",";
  }
  out << sep << "seed:" << seed;
  return out.str();
}

}  // namespace tdp::fault
