// tdp::fault — deterministic fault-injection plans for the VP substrate.
//
// The thesis makes failure part of the model (every library procedure
// returns a status code, §4.1.2, and distributed calls merge per-copy
// statuses pairwise), but a substrate can only be *trusted* to surface
// partial failure if failures can be manufactured on demand.  A Plan is the
// declarative description of what to inject:
//
//   * drop      — lose a message with probability p;
//   * delay_ms  — hold every message for a fixed time before delivery
//                 (stalls the sender, perturbing interleavings);
//   * dup       — deliver a message twice with probability p;
//   * reorder   — with probability p, stash a message and deliver it after
//                 the next message to the same destination (a pairwise swap);
//   * failed    — virtual processors marked failed: every message to or
//                 from them, and every server request addressed to them, is
//                 silently dropped.
//
// Plans come from the TDP_FAULT environment variable
// ("drop:0.05,delay:2,dup:0.01,reorder:0.02,fail:3,seed:42" — keys in any
// order, all optional) or are built programmatically by tests.  All
// randomness is derived from `seed` and per-destination send sequence
// numbers (see inject.hpp), so a fixed seed and a fixed per-destination
// traffic pattern give an identical injected-fault sequence on every run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdp::fault {

struct Plan {
  double drop = 0.0;             ///< P(message dropped), in [0, 1]
  double dup = 0.0;              ///< P(message duplicated), in [0, 1]
  double reorder = 0.0;          ///< P(message stashed for a pairwise swap)
  std::uint64_t delay_ms = 0;    ///< fixed pre-delivery delay per message
  std::uint64_t seed = 1;        ///< root of every injection decision
  std::vector<int> failed;       ///< VPs whose traffic is dropped entirely

  /// True when the plan injects anything at all; inactive plans cost the
  /// substrate nothing (Machine::send keeps its plain path).
  bool active() const {
    return drop > 0.0 || dup > 0.0 || reorder > 0.0 || delay_ms > 0 ||
           !failed.empty();
  }

  /// Parses "key:value,key:value,..." with keys drop, delay, dup, reorder,
  /// fail, seed.  Returns false (and names the offending token in
  /// `error_out`) on an unknown key or a malformed value; `out` is then
  /// left default-constructed.  Probabilities are clamped to [0, 1].
  static bool parse(std::string_view spec, Plan& out, std::string& error_out);

  /// The plan described by TDP_FAULT, or an inactive plan when the variable
  /// is unset.  A malformed value earns a one-line stderr warning naming
  /// the valid keys (mirroring the guarded env parsing elsewhere in the
  /// runtime) and is treated as unset — a typo must never silently inject.
  static Plan from_env();

  /// One-line human rendering ("drop:0.05,seed:42"); for logs and tests.
  std::string describe() const;
};

}  // namespace tdp::fault
