// tdp::fault — the injector that executes a Plan at the substrate's send
// boundary.
//
// One Injector belongs to one vp::Machine.  Machine::send routes every
// message through on_send(), which may deliver it zero, one, or two times
// (drop / normal or delayed / duplicate) and may hold a message back to
// swap its order with the next one bound for the same destination.
// vp::ServerSystem routes server requests through drop_request(), so a
// "failed" virtual processor loses its server traffic too.
//
// Determinism: every decision is a pure function of (plan.seed, destination,
// per-destination sequence number).  The sequence number counts messages
// accepted for a destination in arrival order at the injector, so a program
// whose per-destination traffic is deterministic (single-threaded sends, or
// any fixed communication pattern — collectives, rings, trees) sees the
// *identical* injected-fault sequence on every run with the same seed.
// Under racy multi-sender interleavings the mapping of decisions to
// individual messages can vary, but the multiset of decisions per
// destination cannot — so per-destination drop/dup/reorder counts are still
// reproducible.
//
// Every injected fault is visible: a fault.* obs counter is bumped and a
// fault.* instant event (carrying the message's causal flow id, when
// stamped) lands in the trace, so a dropped send shows up as a send with no
// matching receive PLUS an explicit fault.drop marker explaining why.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fault/plan.hpp"
#include "vp/mailbox.hpp"

namespace tdp::fault {

/// Counts of injected faults so far (diagnostics and tests; the same values
/// feed the fault.* metrics registry).
struct InjectionCounts {
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t dups = 0;
  std::uint64_t reorders = 0;
  std::uint64_t request_drops = 0;
};

class Injector {
 public:
  /// Delivery callback: posts one message to the destination mailbox.
  using Deliver = std::function<void(vp::Message&&)>;

  Injector(Plan plan, int nprocs);

  const Plan& plan() const { return plan_; }
  bool active() const { return plan_.active(); }

  /// Applies the plan to one message from `src_vp` (the sending thread's
  /// placement, -1 when unplaced) to `dst`.  Calls `deliver` zero times
  /// (dropped, or stashed for reorder), once (normal, possibly after a
  /// delay), or twice (duplicated).  A stashed message is delivered right
  /// after the next message bound for the same destination — or by the
  /// stash flusher once the hold deadline passes, if a flusher is running.
  void on_send(int src_vp, int dst, vp::Message&& m, const Deliver& deliver);

  /// Delivery callback for stash-deadline flushes (needs the destination:
  /// no originating on_send call is on the stack).
  using LateSink = std::function<void(int dst, vp::Message&&)>;

  /// Bounds how long a reorder stash can hold a message: a background
  /// thread delivers any stash older than ~25 ms through `sink`.  Without
  /// this, the LAST message a sender directs at some destination stays
  /// stashed until teardown — an unplanned drop.  In-process that is
  /// masked by other senders' traffic flushing the shared per-destination
  /// stash, but with one injector per process (multi-process transport)
  /// each injector sees only its own sends, so collectives would lose
  /// their final hop and deadlock.  No-op unless the plan reorders.
  void start_stash_flusher(LateSink sink);

  /// Stops the stash flusher thread (idempotent; called by drain and the
  /// destructor).  Any still-held stash stays for drain() to deliver.
  void stop_stash_flusher();

  ~Injector();

  /// Whether a server request addressed to processor `dst` is lost in
  /// transit (failed destination, or the plan's drop probability applied to
  /// an independent per-destination request sequence).  The requester's
  /// reply definitional then never becomes defined — which is exactly what
  /// the bounded-retry helpers in dist/array_server.hpp exist to absorb.
  bool drop_request(int dst);

  /// Delivers any messages still stashed for reordering (machine teardown;
  /// an unflushed stash would otherwise act as an unplanned drop).
  void drain(const std::function<void(int dst, vp::Message&&)>& deliver);

  /// True when `vp` is marked failed by the plan.
  bool vp_failed(int vp) const;

  InjectionCounts counts() const;

 private:
  struct alignas(64) DstState {
    std::atomic<std::uint64_t> msg_seq{0};
    std::atomic<std::uint64_t> req_seq{0};
    std::mutex stash_mutex;
    std::optional<vp::Message> stash;
    std::chrono::steady_clock::time_point stash_since{};
  };

  void flusher_loop();

  DstState& dst_state(int dst) {
    return *dsts_[static_cast<std::size_t>(dst)];
  }

  const Plan plan_;
  std::vector<std::unique_ptr<DstState>> dsts_;
  std::vector<bool> failed_;  // indexed by vp

  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> reorders_{0};
  std::atomic<std::uint64_t> request_drops_{0};

  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
  LateSink late_sink_;
  std::thread flusher_;
};

}  // namespace tdp::fault
