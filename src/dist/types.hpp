// Common types of the distributed-array subsystem (thesis §3.2, §4.2).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace tdp::dist {

/// Element types supported by the prototype ("int" or "double", §4.2.1).
enum class ElemType { Int32, Float64 };

inline constexpr std::size_t elem_size(ElemType t) {
  return t == ElemType::Int32 ? sizeof(int) : sizeof(double);
}

const char* to_string(ElemType t);

/// Row-major ("C") or column-major ("Fortran") indexing (§3.2.1.3).  The
/// choice applies to both the array and its processor grid (§3.2.1.4).
enum class Indexing { RowMajor, ColumnMajor };

const char* to_string(Indexing ix);

/// Globally-unique array identifier (§4.1.3): the processor number on which
/// the creation request was made plus a per-processor sequence number.
struct ArrayId {
  int creator = -1;
  std::uint64_t seq = 0;

  friend auto operator<=>(const ArrayId&, const ArrayId&) = default;
  bool valid() const { return creator >= 0; }
};

/// Per-dimension decomposition specification (§3.2.1.2):
///   block      — grid dimension takes the default ("square" grid) value
///   block(N)   — grid dimension is exactly N
///   *          — grid dimension is 1 (no decomposition along this axis)
struct DimSpec {
  enum class Kind { Block, BlockN, Star };
  Kind kind = Kind::Block;
  int n = 0;  ///< grid size for BlockN

  static DimSpec block() { return {Kind::Block, 0}; }
  static DimSpec block_n(int n) { return {Kind::BlockN, n}; }
  static DimSpec star() { return {Kind::Star, 0}; }
};

/// Callback resolving `foreign_borders` requests: given the program name and
/// the parameter number the array will be passed as, produce the 2*ndims
/// border sizes (the `Program_` routine of §3.2.1.3 / §4.2.1).
using BorderLookup = std::function<Status(
    const std::string& program, int parm_num, int ndims,
    std::vector<int>& borders_out)>;

/// Border specification for local sections (§4.2.1 Border_info):
///   none                  — local sections have no borders
///   explicit sizes        — 2*ndims sizes, elements 2i and 2i+1 giving the
///                           border on either side of dimension i
///   foreign(program,parm) — sizes are supplied at array-creation time by
///                           the named data-parallel program's border routine
struct BorderSpec {
  enum class Kind { None, Explicit, Foreign };
  Kind kind = Kind::None;
  std::vector<int> sizes;  ///< for Explicit
  std::string program;     ///< for Foreign
  int parm_num = 0;        ///< for Foreign

  static BorderSpec none() { return {}; }
  static BorderSpec exact(std::vector<int> sizes) {
    BorderSpec b;
    b.kind = Kind::Explicit;
    b.sizes = std::move(sizes);
    return b;
  }
  static BorderSpec foreign(std::string program, int parm_num) {
    BorderSpec b;
    b.kind = Kind::Foreign;
    b.program = std::move(program);
    b.parm_num = parm_num;
    return b;
  }
};

/// A single array element in transit (read_element / write_element).
using Scalar = std::variant<int, double>;

/// Numeric coercion helpers for Scalar.
double scalar_to_double(const Scalar& s);
int scalar_to_int(const Scalar& s);

/// Queries supported by find_info (§4.2.6).  The Shard* kinds extend the
/// thesis taxonomy for the power-of-two shard map: ShardCount is the number
/// of shards (= grid cells), ShardOwners the current owner of each shard in
/// shard-rank order, and OwnerEpoch the owner table's version — bumped on
/// every migration so stale replicas are detectable.
enum class InfoKind {
  Type,
  Dimensions,
  Processors,
  GridDimensions,
  LocalDimensions,
  Borders,
  LocalDimensionsPlus,
  IndexingType,
  GridIndexingType,
  ShardCount,
  ShardOwners,
  OwnerEpoch,
};

using InfoValue =
    std::variant<ElemType, std::vector<int>, Indexing, std::uint64_t>;

}  // namespace tdp::dist
