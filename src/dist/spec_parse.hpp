// Textual decomposition and indexing specifications (§3.2.1.2, §4.2.1).
//
// The thesis writes distribution requests in a Fortran-D-derived notation —
// `(block, block)`, `(block(2), block(8))`, `(block, *)` — and selects
// indexing with the strings "row"/"C" or "column"/"Fortran".  These parsers
// accept exactly that syntax so programs can carry decompositions as data
// (configuration files, experiment sweeps) the way the thesis's PCN tuples
// did.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dist/types.hpp"
#include "util/status.hpp"

namespace tdp::dist {

/// Parses a decomposition like "(block, block(4), *)"; surrounding
/// parentheses are optional and whitespace is ignored.  Returns
/// Status::Invalid on any malformed dimension.
Status parse_distrib(std::string_view text, std::vector<DimSpec>& out);

/// Renders a DimSpec list back to the thesis notation.
std::string to_string(const std::vector<DimSpec>& spec);

/// Parses "row" / "C" / "column" / "Fortran" (§4.2.1 Indexing_type).
Status parse_indexing(std::string_view text, Indexing& out);

}  // namespace tdp::dist
