#include "dist/array_server.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::dist {

namespace {

/// splitmix64 finaliser: a well-mixed 64-bit hash of its input, used to
/// derive deterministic per-(seed, proc, attempt) jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t retry_backoff_ms(const RetryPolicy& policy, int proc,
                               int attempt) {
  if (attempt < 1 || policy.backoff_ms == 0) return 0;
  // backoff_ms << (attempt - 1), with the shift clamped so a deep retry
  // sequence cannot overflow 64-bit milliseconds into a tiny (or huge)
  // sleep; the cap then bounds the result regardless.
  const int shift = attempt - 1;
  std::uint64_t delay;
  if (shift >= 63 || policy.backoff_ms > (~0ULL >> shift)) {
    // Saturate: the unclamped product exceeds 64 bits, so stand in the
    // largest delay the caller's sleep_for can represent (chrono's
    // millisecond rep is signed) and let the cap below apply when set.
    // Assigning max_backoff_ms here would yield 0 — a hot spin — whenever
    // the cap is disabled, the exact failure the clamp guards against.
    delay = ~0ULL >> 1;
  } else {
    delay = policy.backoff_ms << shift;
  }
  if (policy.max_backoff_ms > 0 && delay > policy.max_backoff_ms) {
    delay = policy.max_backoff_ms;
  }
  if (policy.jitter_seed != 0 && delay > 1) {
    // Deterministic jitter in [delay/2, delay]: requesters that collided
    // on this attempt spread out, and the exact spread reproduces from the
    // seed on every run.
    const std::uint64_t h = mix64(
        mix64(policy.jitter_seed ^ static_cast<std::uint64_t>(
                                       static_cast<unsigned>(proc))) ^
        static_cast<std::uint64_t>(static_cast<unsigned>(attempt)));
    const std::uint64_t lo = delay / 2;
    delay = lo + h % (delay - lo + 1);
  }
  return delay;
}

namespace {

/// Issues `type` to `proc`'s server until a reply arrives or the policy is
/// exhausted; returns the reply or an empty std::any on exhaustion.  The
/// caller guarantees the request is idempotent.
std::any request_with_retry(vp::ServerSystem& servers, int proc,
                            const std::string& type, const std::any& params,
                            const RetryPolicy& policy) {
  static obs::ShardedCounter& timeouts =
      obs::Registry::instance().counter("fault.timeouts");
  static obs::ShardedCounter& retries =
      obs::Registry::instance().counter("fault.retries");
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (obs::enabled()) {
        retries.add();
        obs::instant(obs::Op::FaultRetry, 0,
                     static_cast<std::uint64_t>(proc),
                     static_cast<std::uint64_t>(attempt));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retry_backoff_ms(policy, proc, attempt)));
    }
    pcn::Def<std::any> reply = servers.request(proc, type, params);
    const std::any* answer =
        reply.read_for(std::chrono::milliseconds(policy.timeout_ms));
    if (answer != nullptr) return *answer;
    if (obs::enabled()) {
      timeouts.add();
      obs::instant(obs::Op::FaultTimeout, 0,
                   static_cast<std::uint64_t>(proc),
                   static_cast<std::uint64_t>(attempt));
    }
  }
  return std::any{};
}

}  // namespace

Status read_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                            vp::Payload& out, const RetryPolicy& policy) {
  ReadSectionRequest params;
  params.id = id;
  const std::any answer =
      request_with_retry(servers, proc, "read_section", params, policy);
  const auto* reply = std::any_cast<ReadSectionReply>(&answer);
  if (reply == nullptr) return Status::Error;  // attempts exhausted
  if (ok(reply->status)) out = reply->data;
  return reply->status;
}

Status write_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                             vp::Payload data, const RetryPolicy& policy) {
  WriteSectionRequest params;
  params.id = id;
  params.data = std::move(data);
  const std::any answer =
      request_with_retry(servers, proc, "write_section", params, policy);
  const auto* reply = std::any_cast<StatusReply>(&answer);
  return reply != nullptr ? reply->status : Status::Error;
}

namespace {

/// The stale-epoch forwarding loop shared by the shard-addressed request
/// helpers: issue against `proc`; while the reply is a forward pointer
/// (no data, but a current owner that differs from where we asked),
/// re-issue there.  Hop count is bounded — each hop lands on a strictly
/// fresher table, so in practice one hop resolves any migration.
constexpr int kMaxForwardHops = 8;

Status shard_request_with_forwarding(vp::ServerSystem& servers, int proc,
                                     const std::string& type,
                                     ArrayId id, long long shard,
                                     const vp::Payload* data_in,
                                     vp::Payload* data_out,
                                     const RetryPolicy& policy) {
  static obs::ShardedCounter& forwards =
      obs::Registry::instance().counter("am.shard_forwards");
  int target = proc;
  for (int hop = 0; hop < kMaxForwardHops; ++hop) {
    std::any params;
    if (data_in != nullptr) {
      WriteShardRequest w;
      w.id = id;
      w.shard = shard;
      w.data = *data_in;
      params = std::move(w);
    } else {
      ReadShardRequest r;
      r.id = id;
      r.shard = shard;
      params = std::move(r);
    }
    const std::any answer =
        request_with_retry(servers, target, type, params, policy);
    const auto* reply = std::any_cast<ShardReply>(&answer);
    if (reply == nullptr) return Status::Error;  // attempts exhausted
    if (ok(reply->status)) {
      if (data_out != nullptr) *data_out = reply->data;
      return reply->status;
    }
    if (reply->owner >= 0 && reply->owner != target) {
      // The servicing processor does not own the shard: follow its table.
      if (obs::enabled()) {
        forwards.add();
        obs::instant(obs::Op::AmShardForward, 0,
                     static_cast<std::uint64_t>(shard), reply->epoch);
      }
      target = reply->owner;
      continue;
    }
    return reply->status;
  }
  return Status::Error;
}

}  // namespace

Status read_shard_request(vp::ServerSystem& servers, int proc, ArrayId id,
                          long long shard, vp::Payload& out,
                          const RetryPolicy& policy) {
  return shard_request_with_forwarding(servers, proc, "read_shard", id, shard,
                                       nullptr, &out, policy);
}

Status write_shard_request(vp::ServerSystem& servers, int proc, ArrayId id,
                           long long shard, vp::Payload data,
                           const RetryPolicy& policy) {
  return shard_request_with_forwarding(servers, proc, "write_shard", id,
                                       shard, &data, nullptr, policy);
}

Status migrate_shard_request(vp::ServerSystem& servers, int proc, ArrayId id,
                             long long shard, int to_proc,
                             const RetryPolicy& policy) {
  MigrateShardRequest params;
  params.id = id;
  params.shard = shard;
  params.to_proc = to_proc;
  const std::any answer =
      request_with_retry(servers, proc, "migrate_shard", params, policy);
  const auto* reply = std::any_cast<StatusReply>(&answer);
  return reply != nullptr ? reply->status : Status::Error;
}

void install_array_manager(vp::ServerSystem& servers, ArrayManager& manager) {
  ArrayManager* am = &manager;

  servers.add_capability_all(
      "create_array", [am](vp::ServerRequest& req) {
        const auto* p = std::any_cast<CreateArrayRequest>(&req.parameters);
        CreateArrayReply reply;
        if (p != nullptr) {
          reply.status =
              am->create_array(vp::current_proc(), p->type, p->dims,
                               p->processors, p->distrib, p->borders,
                               p->indexing, reply.id);
        } else {
          reply.status = Status::Invalid;
        }
        req.reply.define(reply);
      });

  servers.add_capability_all("free_array", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<FreeArrayRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr ? am->free_array(vp::current_proc(), p->id)
                                : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("read_element", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadElementRequest>(&req.parameters);
    ReadElementReply reply;
    if (p != nullptr) {
      reply.status =
          am->read_element(vp::current_proc(), p->id, p->indices, reply.value);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_element", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteElementRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->write_element(vp::current_proc(), p->id,
                                           p->indices, p->value)
                       : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("read_section", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadSectionRequest>(&req.parameters);
    ReadSectionReply reply;
    if (p != nullptr) {
      reply.status = am->read_section(vp::current_proc(), p->id, reply.data);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_section", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteSectionRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr ? am->write_section(vp::current_proc(), p->id,
                                                    p->data)
                                : Status::Invalid;
    req.reply.define(reply);
  });

  // Shard-addressed requests enforce the locality rule at the server: a
  // processor answers only for shards its own table says it owns, and
  // otherwise replies with a forward pointer (current owner + epoch) for
  // the requester to chase.
  servers.add_capability_all("read_shard", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadShardRequest>(&req.parameters);
    ShardReply reply;
    if (p != nullptr) {
      const int me = vp::current_proc();
      reply.status = am->shard_owner(me, p->id, p->shard, reply.owner,
                                     reply.epoch);
      if (ok(reply.status)) {
        reply.status = reply.owner == me
                           ? am->read_shard(me, p->id, p->shard, reply.data)
                           : Status::NotFound;  // forward: owner names where
      }
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_shard", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteShardRequest>(&req.parameters);
    ShardReply reply;
    if (p != nullptr) {
      const int me = vp::current_proc();
      reply.status = am->shard_owner(me, p->id, p->shard, reply.owner,
                                     reply.epoch);
      if (ok(reply.status)) {
        reply.status = reply.owner == me
                           ? am->write_shard(me, p->id, p->shard, p->data)
                           : Status::NotFound;
      }
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("migrate_shard", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<MigrateShardRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->migrate_shard(vp::current_proc(), p->id,
                                           p->shard, p->to_proc)
                       : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("find_info", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<FindInfoRequest>(&req.parameters);
    FindInfoReply reply;
    if (p != nullptr) {
      reply.status =
          am->find_info(vp::current_proc(), p->id, p->which, reply.value);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("verify_array", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<VerifyArrayRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->verify_array(vp::current_proc(), p->id,
                                          p->n_dims, p->expected, p->indexing)
                       : Status::Invalid;
    req.reply.define(reply);
  });
}

}  // namespace tdp::dist
