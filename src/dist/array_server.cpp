#include "dist/array_server.hpp"

namespace tdp::dist {

void install_array_manager(vp::ServerSystem& servers, ArrayManager& manager) {
  ArrayManager* am = &manager;

  servers.add_capability_all(
      "create_array", [am](vp::ServerRequest& req) {
        const auto* p = std::any_cast<CreateArrayRequest>(&req.parameters);
        CreateArrayReply reply;
        if (p != nullptr) {
          reply.status =
              am->create_array(vp::current_proc(), p->type, p->dims,
                               p->processors, p->distrib, p->borders,
                               p->indexing, reply.id);
        } else {
          reply.status = Status::Invalid;
        }
        req.reply.define(reply);
      });

  servers.add_capability_all("free_array", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<FreeArrayRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr ? am->free_array(vp::current_proc(), p->id)
                                : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("read_element", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadElementRequest>(&req.parameters);
    ReadElementReply reply;
    if (p != nullptr) {
      reply.status =
          am->read_element(vp::current_proc(), p->id, p->indices, reply.value);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_element", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteElementRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->write_element(vp::current_proc(), p->id,
                                           p->indices, p->value)
                       : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("read_section", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadSectionRequest>(&req.parameters);
    ReadSectionReply reply;
    if (p != nullptr) {
      reply.status = am->read_section(vp::current_proc(), p->id, reply.data);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_section", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteSectionRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr ? am->write_section(vp::current_proc(), p->id,
                                                    p->data)
                                : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("find_info", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<FindInfoRequest>(&req.parameters);
    FindInfoReply reply;
    if (p != nullptr) {
      reply.status =
          am->find_info(vp::current_proc(), p->id, p->which, reply.value);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("verify_array", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<VerifyArrayRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->verify_array(vp::current_proc(), p->id,
                                          p->n_dims, p->expected, p->indexing)
                       : Status::Invalid;
    req.reply.define(reply);
  });
}

}  // namespace tdp::dist
