#include "dist/array_server.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::dist {

namespace {

/// Issues `type` to `proc`'s server until a reply arrives or the policy is
/// exhausted; returns the reply or an empty std::any on exhaustion.  The
/// caller guarantees the request is idempotent.
std::any request_with_retry(vp::ServerSystem& servers, int proc,
                            const std::string& type, const std::any& params,
                            const RetryPolicy& policy) {
  static obs::ShardedCounter& timeouts =
      obs::Registry::instance().counter("fault.timeouts");
  static obs::ShardedCounter& retries =
      obs::Registry::instance().counter("fault.retries");
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (obs::enabled()) {
        retries.add();
        obs::instant(obs::Op::FaultRetry, 0,
                     static_cast<std::uint64_t>(proc),
                     static_cast<std::uint64_t>(attempt));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          policy.backoff_ms << (attempt - 1)));
    }
    pcn::Def<std::any> reply = servers.request(proc, type, params);
    const std::any* answer =
        reply.read_for(std::chrono::milliseconds(policy.timeout_ms));
    if (answer != nullptr) return *answer;
    if (obs::enabled()) {
      timeouts.add();
      obs::instant(obs::Op::FaultTimeout, 0,
                   static_cast<std::uint64_t>(proc),
                   static_cast<std::uint64_t>(attempt));
    }
  }
  return std::any{};
}

}  // namespace

Status read_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                            vp::Payload& out, const RetryPolicy& policy) {
  ReadSectionRequest params;
  params.id = id;
  const std::any answer =
      request_with_retry(servers, proc, "read_section", params, policy);
  const auto* reply = std::any_cast<ReadSectionReply>(&answer);
  if (reply == nullptr) return Status::Error;  // attempts exhausted
  if (ok(reply->status)) out = reply->data;
  return reply->status;
}

Status write_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                             vp::Payload data, const RetryPolicy& policy) {
  WriteSectionRequest params;
  params.id = id;
  params.data = std::move(data);
  const std::any answer =
      request_with_retry(servers, proc, "write_section", params, policy);
  const auto* reply = std::any_cast<StatusReply>(&answer);
  return reply != nullptr ? reply->status : Status::Error;
}

void install_array_manager(vp::ServerSystem& servers, ArrayManager& manager) {
  ArrayManager* am = &manager;

  servers.add_capability_all(
      "create_array", [am](vp::ServerRequest& req) {
        const auto* p = std::any_cast<CreateArrayRequest>(&req.parameters);
        CreateArrayReply reply;
        if (p != nullptr) {
          reply.status =
              am->create_array(vp::current_proc(), p->type, p->dims,
                               p->processors, p->distrib, p->borders,
                               p->indexing, reply.id);
        } else {
          reply.status = Status::Invalid;
        }
        req.reply.define(reply);
      });

  servers.add_capability_all("free_array", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<FreeArrayRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr ? am->free_array(vp::current_proc(), p->id)
                                : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("read_element", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadElementRequest>(&req.parameters);
    ReadElementReply reply;
    if (p != nullptr) {
      reply.status =
          am->read_element(vp::current_proc(), p->id, p->indices, reply.value);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_element", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteElementRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->write_element(vp::current_proc(), p->id,
                                           p->indices, p->value)
                       : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("read_section", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<ReadSectionRequest>(&req.parameters);
    ReadSectionReply reply;
    if (p != nullptr) {
      reply.status = am->read_section(vp::current_proc(), p->id, reply.data);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("write_section", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<WriteSectionRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr ? am->write_section(vp::current_proc(), p->id,
                                                    p->data)
                                : Status::Invalid;
    req.reply.define(reply);
  });

  servers.add_capability_all("find_info", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<FindInfoRequest>(&req.parameters);
    FindInfoReply reply;
    if (p != nullptr) {
      reply.status =
          am->find_info(vp::current_proc(), p->id, p->which, reply.value);
    } else {
      reply.status = Status::Invalid;
    }
    req.reply.define(reply);
  });

  servers.add_capability_all("verify_array", [am](vp::ServerRequest& req) {
    const auto* p = std::any_cast<VerifyArrayRequest>(&req.parameters);
    StatusReply reply;
    reply.status = p != nullptr
                       ? am->verify_array(vp::current_proc(), p->id,
                                          p->n_dims, p->expected, p->indexing)
                       : Status::Invalid;
    req.reply.define(reply);
  });
}

}  // namespace tdp::dist
