#include "dist/layout.hpp"

#include "util/bits.hpp"

namespace tdp::dist {

const char* to_string(ElemType t) {
  return t == ElemType::Int32 ? "int" : "double";
}

const char* to_string(Indexing ix) {
  return ix == Indexing::RowMajor ? "row" : "column";
}

double scalar_to_double(const Scalar& s) {
  if (const int* i = std::get_if<int>(&s)) return static_cast<double>(*i);
  return std::get<double>(s);
}

int scalar_to_int(const Scalar& s) {
  if (const double* d = std::get_if<double>(&s)) return static_cast<int>(*d);
  return std::get<int>(s);
}

Status compute_grid(const std::vector<int>& dims, int nprocs,
                    const std::vector<DimSpec>& spec,
                    std::vector<int>& grid_out) {
  const std::size_t n = dims.size();
  if (n == 0 || spec.size() != n || nprocs <= 0) return Status::Invalid;
  for (int d : dims) {
    if (d <= 0) return Status::Invalid;
  }

  grid_out.assign(n, 0);
  long long specified_product = 1;
  int unspecified = 0;
  for (std::size_t d = 0; d < n; ++d) {
    switch (spec[d].kind) {
      case DimSpec::Kind::Star:
        grid_out[d] = 1;
        specified_product *= 1;
        break;
      case DimSpec::Kind::BlockN:
        if (spec[d].n <= 0) return Status::Invalid;
        grid_out[d] = spec[d].n;
        specified_product *= spec[d].n;
        break;
      case DimSpec::Kind::Block:
        ++unspecified;
        break;
    }
  }
  // A fully-specified grid may exceed nprocs (oversharding): the extra
  // cells wrap round-robin onto the processor list at placement time.
  if (unspecified > 0) {
    if (nprocs % specified_product != 0) return Status::Invalid;
    const long long quotient = nprocs / specified_product;
    std::int64_t root = 0;
    if (!util::exact_iroot(quotient, unspecified, &root) || root <= 0) {
      return Status::Invalid;
    }
    for (std::size_t d = 0; d < n; ++d) {
      if (spec[d].kind == DimSpec::Kind::Block) {
        grid_out[d] = static_cast<int>(root);
      }
    }
  }

  for (std::size_t d = 0; d < n; ++d) {
    if (grid_out[d] <= 0) return Status::Invalid;
    // Uneven trailing blocks are fine; an *empty* trailing cell is not —
    // with block = ceil(dims/grid), the first grid-1 cells must not already
    // cover the whole dimension.
    const long long block =
        (static_cast<long long>(dims[d]) + grid_out[d] - 1) / grid_out[d];
    if (static_cast<long long>(grid_out[d] - 1) * block >= dims[d]) {
      return Status::Invalid;
    }
  }
  return Status::Ok;
}

long long grid_cells(const std::vector<int>& grid) {
  long long cells = 1;
  for (int g : grid) cells *= g;
  return cells;
}

std::vector<int> local_dims(const std::vector<int>& dims,
                            const std::vector<int>& grid) {
  std::vector<int> out(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    out[d] = static_cast<int>(
        (static_cast<long long>(dims[d]) + grid[d] - 1) / grid[d]);
  }
  return out;
}

std::vector<int> cell_dims(std::span<const int> dims,
                           std::span<const int> grid,
                           std::span<const int> grid_pos) {
  std::vector<int> out(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const long long block =
        (static_cast<long long>(dims[d]) + grid[d] - 1) / grid[d];
    const long long remaining =
        static_cast<long long>(dims[d]) - grid_pos[d] * block;
    out[d] = static_cast<int>(remaining < block ? remaining : block);
  }
  return out;
}

std::vector<int> dims_plus_borders(const std::vector<int>& interior,
                                   const std::vector<int>& borders) {
  std::vector<int> out(interior.size());
  for (std::size_t d = 0; d < interior.size(); ++d) {
    out[d] = interior[d] + borders[2 * d] + borders[2 * d + 1];
  }
  return out;
}

long long linearize(std::span<const int> idx, std::span<const int> dims,
                    Indexing ordering) {
  long long lin = 0;
  if (ordering == Indexing::RowMajor) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      lin = lin * dims[d] + idx[d];
    }
  } else {
    for (std::size_t d = dims.size(); d-- > 0;) {
      lin = lin * dims[d] + idx[d];
    }
  }
  return lin;
}

std::vector<int> delinearize(long long lin, std::span<const int> dims,
                             Indexing ordering) {
  std::vector<int> idx(dims.size(), 0);
  if (ordering == Indexing::RowMajor) {
    for (std::size_t d = dims.size(); d-- > 0;) {
      idx[d] = static_cast<int>(lin % dims[d]);
      lin /= dims[d];
    }
  } else {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      idx[d] = static_cast<int>(lin % dims[d]);
      lin /= dims[d];
    }
  }
  return idx;
}

GlobalMap map_global(std::span<const int> global_idx,
                     std::span<const int> local_dims) {
  GlobalMap out;
  out.grid_pos.resize(global_idx.size());
  out.local_idx.resize(global_idx.size());
  for (std::size_t d = 0; d < global_idx.size(); ++d) {
    out.grid_pos[d] = global_idx[d] / local_dims[d];
    out.local_idx[d] = global_idx[d] % local_dims[d];
  }
  return out;
}

std::vector<int> unmap_global(std::span<const int> grid_pos,
                              std::span<const int> local_idx,
                              std::span<const int> local_dims) {
  std::vector<int> out(grid_pos.size());
  for (std::size_t d = 0; d < grid_pos.size(); ++d) {
    out[d] = grid_pos[d] * local_dims[d] + local_idx[d];
  }
  return out;
}

long long local_offset(std::span<const int> local_idx,
                       std::span<const int> interior_dims,
                       std::span<const int> borders, Indexing ordering) {
  std::vector<int> shifted(local_idx.size());
  std::vector<int> plus(local_idx.size());
  for (std::size_t d = 0; d < local_idx.size(); ++d) {
    shifted[d] = local_idx[d] + borders[2 * d];
    plus[d] = interior_dims[d] + borders[2 * d] + borders[2 * d + 1];
  }
  return linearize(shifted, plus, ordering);
}

long long grid_rank(std::span<const int> grid_pos,
                    std::span<const int> grid_dims, Indexing grid_ordering) {
  return linearize(grid_pos, grid_dims, grid_ordering);
}

bool indices_in_range(std::span<const int> idx, std::span<const int> dims) {
  if (idx.size() != dims.size()) return false;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    if (idx[d] < 0 || idx[d] >= dims[d]) return false;
  }
  return true;
}

long long element_count(std::span<const int> dims) {
  long long n = 1;
  for (int d : dims) n *= d;
  return n;
}

}  // namespace tdp::dist
