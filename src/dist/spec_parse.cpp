#include "dist/spec_parse.hpp"

#include <cctype>

namespace tdp::dist {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Status parse_one(std::string_view token, DimSpec& out) {
  token = trim(token);
  if (token == "*") {
    out = DimSpec::star();
    return Status::Ok;
  }
  if (token == "block") {
    out = DimSpec::block();
    return Status::Ok;
  }
  // block(N)
  constexpr std::string_view kPrefix = "block(";
  if (token.size() > kPrefix.size() + 1 &&
      token.substr(0, kPrefix.size()) == kPrefix && token.back() == ')') {
    std::string_view digits =
        trim(token.substr(kPrefix.size(),
                          token.size() - kPrefix.size() - 1));
    if (digits.empty()) return Status::Invalid;
    int n = 0;
    for (char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Status::Invalid;
      }
      n = n * 10 + (c - '0');
      if (n > 1 << 24) return Status::Invalid;
    }
    if (n <= 0) return Status::Invalid;
    out = DimSpec::block_n(n);
    return Status::Ok;
  }
  return Status::Invalid;
}

}  // namespace

Status parse_distrib(std::string_view text, std::vector<DimSpec>& out) {
  out.clear();
  text = trim(text);
  if (text.size() >= 2 && text.front() == '(' && text.back() == ')') {
    text = trim(text.substr(1, text.size() - 2));
  }
  if (text.empty()) return Status::Invalid;

  // Split on commas that are not inside block(...) parentheses.
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] == '(') ++depth;
    if (i < text.size() && text[i] == ')') --depth;
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      DimSpec spec;
      if (Status st = parse_one(text.substr(start, i - start), spec);
          !ok(st)) {
        out.clear();
        return st;
      }
      out.push_back(spec);
      start = i + 1;
    }
  }
  return depth == 0 ? Status::Ok : Status::Invalid;
}

std::string to_string(const std::vector<DimSpec>& spec) {
  std::string out = "(";
  for (std::size_t d = 0; d < spec.size(); ++d) {
    if (d > 0) out += ", ";
    switch (spec[d].kind) {
      case DimSpec::Kind::Block:
        out += "block";
        break;
      case DimSpec::Kind::BlockN:
        out += "block(" + std::to_string(spec[d].n) + ")";
        break;
      case DimSpec::Kind::Star:
        out += "*";
        break;
    }
  }
  out += ")";
  return out;
}

Status parse_indexing(std::string_view text, Indexing& out) {
  text = trim(text);
  if (text == "row" || text == "C") {
    out = Indexing::RowMajor;
    return Status::Ok;
  }
  if (text == "column" || text == "Fortran") {
    out = Indexing::ColumnMajor;
    return Status::Ok;
  }
  return Status::Invalid;
}

}  // namespace tdp::dist
