// Array-manager server capabilities (§5.1.1).
//
// The thesis's array manager is reached through the PCN server: loading the
// `am` module adds capabilities like create_array and free_array, and a
// program then issues `! free_array(A1, Status)` — optionally annotated
// `@Processor` — to have the local (or a remote) array-manager process
// service it.  install_array_manager() reproduces that wiring: it registers
// one capability per request type on every processor's server; a request
// executes against the array manager *on the processor whose server
// received it*, exactly the thesis's locality rule.
//
// Request/reply payloads travel as the structs below inside std::any.
#pragma once

#include "dist/array_manager.hpp"
#include "vp/payload.hpp"
#include "vp/server.hpp"

namespace tdp::dist {

struct CreateArrayRequest {
  ElemType type = ElemType::Float64;
  std::vector<int> dims;
  std::vector<int> processors;
  std::vector<DimSpec> distrib;
  BorderSpec borders;
  Indexing indexing = Indexing::RowMajor;
};

struct CreateArrayReply {
  Status status = Status::Error;
  ArrayId id;
};

struct FreeArrayRequest {
  ArrayId id;
};

struct ReadElementRequest {
  ArrayId id;
  std::vector<int> indices;
};

struct ReadElementReply {
  Status status = Status::Error;
  Scalar value;
};

struct WriteElementRequest {
  ArrayId id;
  std::vector<int> indices;
  Scalar value;
};

struct ReadSectionRequest {
  ArrayId id;
};

/// The reply carries the section interior as a refcounted payload, so a
/// requester that fans the snapshot out to further consumers moves only
/// handles (the §5.1.1 bulk-shipping path).
struct ReadSectionReply {
  Status status = Status::Error;
  vp::Payload data;
};

struct WriteSectionRequest {
  ArrayId id;
  vp::Payload data;
};

struct FindInfoRequest {
  ArrayId id;
  InfoKind which = InfoKind::Type;
};

struct FindInfoReply {
  Status status = Status::Error;
  InfoValue value;
};

struct VerifyArrayRequest {
  ArrayId id;
  int n_dims = 0;
  BorderSpec expected;
  Indexing indexing = Indexing::RowMajor;
};

struct StatusReply {
  Status status = Status::Error;
};

/// Shard-addressed requests.  A server only answers for shards its own
/// processor currently owns; when the owner table says the shard lives
/// elsewhere the reply carries no data but names the current owner and
/// epoch, and the requester re-issues against that processor (stale-epoch
/// forwarding, counted in am.shard_forwards).
struct ReadShardRequest {
  ArrayId id;
  long long shard = 0;
};

struct WriteShardRequest {
  ArrayId id;
  long long shard = 0;
  vp::Payload data;
};

/// Reply to a shard-addressed request: on Status::Ok, `data` holds the
/// shard interior (reads only).  On any failure, `owner` >= 0 names the
/// shard's current owner as the servicing processor sees it — the forward
/// pointer — and `epoch` its table version.
struct ShardReply {
  Status status = Status::Error;
  vp::Payload data;
  int owner = -1;
  std::uint64_t epoch = 0;
};

struct MigrateShardRequest {
  ArrayId id;
  long long shard = 0;
  int to_proc = -1;
};

/// Registers the array-manager capabilities — "create_array", "free_array",
/// "read_element", "write_element", "read_section", "write_section",
/// "read_shard", "write_shard", "migrate_shard", "find_info",
/// "verify_array" — on every processor of `servers`, serviced by `manager`.
void install_array_manager(vp::ServerSystem& servers, ArrayManager& manager);

/// Bounded retry-with-backoff for server requests whose reply may never
/// arrive (a fault plan can drop requests in transit; see
/// vp::ServerSystem::request).  Each attempt waits `timeout_ms` for the
/// reply; before retry k (1-based) the requester sleeps
/// `backoff_ms << (k - 1)`, shift-clamped and capped at `max_backoff_ms`
/// so deep retries can neither overflow 64-bit milliseconds nor sleep
/// unboundedly.  With a non-zero `jitter_seed` the delay is drawn
/// deterministically from [delay/2, delay] — seeded per (seed, proc,
/// attempt), so colliding requesters desynchronise identically on every
/// run.  After `max_attempts` unanswered attempts the operation reports
/// Status::Error — bounded, visible failure instead of an eternal hang.
struct RetryPolicy {
  std::uint64_t timeout_ms = 200;      ///< per-attempt reply deadline
  int max_attempts = 4;                ///< total attempts (first + retries)
  std::uint64_t backoff_ms = 10;       ///< base backoff, doubled per retry
  std::uint64_t max_backoff_ms = 2000; ///< cap on any single backoff sleep
  std::uint64_t jitter_seed = 0;       ///< 0 = full (deterministic) delay
};

/// The backoff delay before 1-based retry `attempt` under `policy` for a
/// requester on `proc`: exponential, capped, optionally jittered.  Exposed
/// for tests — the doc contract above is executable.
std::uint64_t retry_backoff_ms(const RetryPolicy& policy, int proc,
                               int attempt);

/// Requests processor `proc`'s section of array `id` through the server,
/// retrying per `policy`.  Section reads are idempotent — re-issuing a
/// request whose reply was merely lost (not unserviced) returns the same
/// snapshot — so retry is always safe here.  Timeouts and retries are
/// counted (fault.timeouts, fault.retries) and traced as fault.* events.
Status read_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                            vp::Payload& out,
                            const RetryPolicy& policy = {});

/// Overwrites processor `proc`'s section of `id` with `data` through the
/// server, retrying per `policy`.  Idempotent for the same reason a read
/// is: writing the same bytes twice leaves the same section.
Status write_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                             vp::Payload data,
                             const RetryPolicy& policy = {});

/// Reads shard `shard` of `id`, starting at processor `proc` and following
/// forward pointers when `proc`'s owner table turns out to be stale (each
/// hop retried per `policy`).  Idempotent, so retry is always safe.
Status read_shard_request(vp::ServerSystem& servers, int proc, ArrayId id,
                          long long shard, vp::Payload& out,
                          const RetryPolicy& policy = {});

/// Overwrites shard `shard` of `id` with `data`, following forwards like
/// read_shard_request.  Idempotent: writing the same bytes twice leaves
/// the same shard.
Status write_shard_request(vp::ServerSystem& servers, int proc, ArrayId id,
                           long long shard, vp::Payload data,
                           const RetryPolicy& policy = {});

/// Migrates shard `shard` of `id` to `to_proc` through `proc`'s server,
/// retrying per `policy`.  Migration is idempotent — a retry of a
/// migration that already completed finds the shard at its destination and
/// reports Status::Ok — so a dropped reply never wedges or double-moves.
Status migrate_shard_request(vp::ServerSystem& servers, int proc, ArrayId id,
                             long long shard, int to_proc,
                             const RetryPolicy& policy = {});

}  // namespace tdp::dist
