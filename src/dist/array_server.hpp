// Array-manager server capabilities (§5.1.1).
//
// The thesis's array manager is reached through the PCN server: loading the
// `am` module adds capabilities like create_array and free_array, and a
// program then issues `! free_array(A1, Status)` — optionally annotated
// `@Processor` — to have the local (or a remote) array-manager process
// service it.  install_array_manager() reproduces that wiring: it registers
// one capability per request type on every processor's server; a request
// executes against the array manager *on the processor whose server
// received it*, exactly the thesis's locality rule.
//
// Request/reply payloads travel as the structs below inside std::any.
#pragma once

#include "dist/array_manager.hpp"
#include "vp/payload.hpp"
#include "vp/server.hpp"

namespace tdp::dist {

struct CreateArrayRequest {
  ElemType type = ElemType::Float64;
  std::vector<int> dims;
  std::vector<int> processors;
  std::vector<DimSpec> distrib;
  BorderSpec borders;
  Indexing indexing = Indexing::RowMajor;
};

struct CreateArrayReply {
  Status status = Status::Error;
  ArrayId id;
};

struct FreeArrayRequest {
  ArrayId id;
};

struct ReadElementRequest {
  ArrayId id;
  std::vector<int> indices;
};

struct ReadElementReply {
  Status status = Status::Error;
  Scalar value;
};

struct WriteElementRequest {
  ArrayId id;
  std::vector<int> indices;
  Scalar value;
};

struct ReadSectionRequest {
  ArrayId id;
};

/// The reply carries the section interior as a refcounted payload, so a
/// requester that fans the snapshot out to further consumers moves only
/// handles (the §5.1.1 bulk-shipping path).
struct ReadSectionReply {
  Status status = Status::Error;
  vp::Payload data;
};

struct WriteSectionRequest {
  ArrayId id;
  vp::Payload data;
};

struct FindInfoRequest {
  ArrayId id;
  InfoKind which = InfoKind::Type;
};

struct FindInfoReply {
  Status status = Status::Error;
  InfoValue value;
};

struct VerifyArrayRequest {
  ArrayId id;
  int n_dims = 0;
  BorderSpec expected;
  Indexing indexing = Indexing::RowMajor;
};

struct StatusReply {
  Status status = Status::Error;
};

/// Registers the array-manager capabilities — "create_array", "free_array",
/// "read_element", "write_element", "read_section", "write_section",
/// "find_info", "verify_array" — on every processor of `servers`, serviced
/// by `manager`.
void install_array_manager(vp::ServerSystem& servers, ArrayManager& manager);

/// Bounded retry-with-backoff for server requests whose reply may never
/// arrive (a fault plan can drop requests in transit; see
/// vp::ServerSystem::request).  Each attempt waits `timeout_ms` for the
/// reply; between attempts the requester sleeps `backoff_ms << attempt`.
/// After `max_attempts` unanswered attempts the operation reports
/// Status::Error — bounded, visible failure instead of an eternal hang.
struct RetryPolicy {
  std::uint64_t timeout_ms = 200;  ///< per-attempt reply deadline
  int max_attempts = 4;            ///< total attempts (first + retries)
  std::uint64_t backoff_ms = 10;   ///< base backoff, doubled per retry
};

/// Requests processor `proc`'s section of array `id` through the server,
/// retrying per `policy`.  Section reads are idempotent — re-issuing a
/// request whose reply was merely lost (not unserviced) returns the same
/// snapshot — so retry is always safe here.  Timeouts and retries are
/// counted (fault.timeouts, fault.retries) and traced as fault.* events.
Status read_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                            vp::Payload& out,
                            const RetryPolicy& policy = {});

/// Overwrites processor `proc`'s section of `id` with `data` through the
/// server, retrying per `policy`.  Idempotent for the same reason a read
/// is: writing the same bytes twice leaves the same section.
Status write_section_request(vp::ServerSystem& servers, int proc, ArrayId id,
                             vp::Payload data,
                             const RetryPolicy& policy = {});

}  // namespace tdp::dist
