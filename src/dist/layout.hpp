// Block decomposition, processor grids and index arithmetic (§3.2.1).
//
// An N-dimensional array is partitioned into N-dimensional contiguous
// subarrays (local sections) and distributed over an N-dimensional processor
// grid.  Each N-tuple of global indices corresponds to exactly one
// {processor-grid position, local-indices} pair and conversely (§3.2.1.1).
// All functions here are pure; they are the substrate for both the array
// manager and the tests' property sweeps.
#pragma once

#include <span>
#include <vector>

#include "dist/types.hpp"
#include "util/status.hpp"

namespace tdp::dist {

/// Computes the processor-grid dimensions for distributing an array with
/// the given global `dims` over `nprocs` processors under `spec`
/// (§3.2.1.2).  Rules:
///   * block(N) pins the grid dimension to N; * pins it to 1; both count as
///     "specified" dimensions with product Q.
///   * every unspecified (plain block) dimension becomes
///     (nprocs/Q)^(1/#unspecified), which must be a positive integer.
///   * block sizes are ceil(dims[d] / grid[d]); the trailing cell in each
///     dimension may be smaller (uneven blocks), but no grid dimension may
///     leave the trailing cell empty.
///   * the grid-cell count may exceed nprocs: cells beyond the processor
///     list wrap round-robin onto it (oversharding — more shards than
///     owners, the substrate for load-driven rebalancing).
/// Returns Status::Invalid on any violation.
Status compute_grid(const std::vector<int>& dims, int nprocs,
                    const std::vector<DimSpec>& spec,
                    std::vector<int>& grid_out);

/// Number of grid cells = number of local sections = number of shards.
long long grid_cells(const std::vector<int>& grid);

/// Uniform block dimensions: ceil(dims[d] / grid[d]) elementwise.  All
/// cells except the trailing one in each dimension have exactly this
/// interior; index arithmetic (map_global/unmap_global) uses it uniformly.
std::vector<int> local_dims(const std::vector<int>& dims,
                            const std::vector<int>& grid);

/// The actual interior of the cell at `grid_pos`: the uniform block size
/// clipped against the array bounds, min(block[d], dims[d] - pos*block[d]).
/// Equal to local_dims() everywhere when every grid dimension divides the
/// array dimension.
std::vector<int> cell_dims(std::span<const int> dims,
                           std::span<const int> grid,
                           std::span<const int> grid_pos);

/// Local-section dimensions including borders: interior[d] + borders[2d] +
/// borders[2d+1].
std::vector<int> dims_plus_borders(const std::vector<int>& interior,
                                   const std::vector<int>& borders);

/// Linearises a multi-index into `dims` under the given ordering.  Row-major
/// varies the last index fastest; column-major the first.
long long linearize(std::span<const int> idx, std::span<const int> dims,
                    Indexing ordering);

/// Inverse of linearize.
std::vector<int> delinearize(long long lin, std::span<const int> dims,
                             Indexing ordering);

/// Decomposes a global index into the owning grid position and the local
/// index within that owner's interior.
struct GlobalMap {
  std::vector<int> grid_pos;
  std::vector<int> local_idx;
};
GlobalMap map_global(std::span<const int> global_idx,
                     std::span<const int> local_dims);

/// Recomposes a global index from a grid position and local index.
std::vector<int> unmap_global(std::span<const int> grid_pos,
                              std::span<const int> local_idx,
                              std::span<const int> local_dims);

/// Storage offset (in elements) of an interior local index within a local
/// section that carries `borders`; the interior is shifted by the leading
/// border in each dimension.
long long local_offset(std::span<const int> local_idx,
                       std::span<const int> interior_dims,
                       std::span<const int> borders, Indexing ordering);

/// Rank of a grid position in the 1-dimensional processors array, using the
/// grid's indexing type (§3.2.1.4).
long long grid_rank(std::span<const int> grid_pos,
                    std::span<const int> grid_dims, Indexing grid_ordering);

/// True when every index is within [0, dims[d]).
bool indices_in_range(std::span<const int> idx, std::span<const int> dims);

/// Total element count of a shape.
long long element_count(std::span<const int> dims);

}  // namespace tdp::dist
