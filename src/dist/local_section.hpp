// Local sections: flat, explicitly-allocated storage with borders
// (§3.2.1.3, §5.1.5–5.1.6).
//
// A local section is a flat piece of contiguous storage sized as the
// product of the local-section dimensions *including* any borders.  The
// thesis allocates this storage outside the PCN heap ("pseudo-definitional
// arrays") so that data-parallel programs can treat it as a plain C array;
// here plain heap allocation with shared ownership plays that role: the
// section can be stored in the array-manager record (a "tuple"), while raw
// pointers into it are handed to data-parallel programs as mutable arrays.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "dist/layout.hpp"
#include "dist/types.hpp"

namespace tdp::dist {

class LocalSection {
 public:
  /// Allocates zero-initialised storage for a section whose dimensions,
  /// including borders, are `dims_plus`.
  LocalSection(ElemType type, std::vector<int> dims_plus)
      : type_(type),
        dims_plus_(std::move(dims_plus)),
        count_(static_cast<std::size_t>(element_count(dims_plus_))),
        bytes_(count_ * elem_size(type)),
        storage_(std::make_unique<std::byte[]>(bytes_)) {
    std::memset(storage_.get(), 0, bytes_);
  }

  ElemType type() const { return type_; }
  const std::vector<int>& dims_plus() const { return dims_plus_; }
  std::size_t count() const { return count_; }
  std::size_t bytes() const { return bytes_; }

  void* data() { return storage_.get(); }
  const void* data() const { return storage_.get(); }
  double* f64() { return reinterpret_cast<double*>(storage_.get()); }
  const double* f64() const {
    return reinterpret_cast<const double*>(storage_.get());
  }
  int* i32() { return reinterpret_cast<int*>(storage_.get()); }
  const int* i32() const {
    return reinterpret_cast<const int*>(storage_.get());
  }

  double read_f64(long long offset) const { return f64()[offset]; }
  int read_i32(long long offset) const { return i32()[offset]; }
  void write_f64(long long offset, double v) { f64()[offset] = v; }
  void write_i32(long long offset, int v) { i32()[offset] = v; }

 private:
  ElemType type_;
  std::vector<int> dims_plus_;
  std::size_t count_;
  std::size_t bytes_;
  std::unique_ptr<std::byte[]> storage_;
};

/// What find_local hands to a data-parallel program: a direct reference to
/// the local section's storage plus the geometry needed to index it.  The
/// interior (non-border) region starts at offset borders[2d] in dimension d.
struct LocalSectionView {
  ElemType type = ElemType::Float64;
  std::vector<int> interior_dims;
  std::vector<int> borders;
  std::vector<int> dims_plus;
  Indexing indexing = Indexing::RowMajor;
  std::shared_ptr<LocalSection> section;  ///< keeps the storage alive

  bool valid() const { return section != nullptr; }
  std::size_t count_plus() const { return section ? section->count() : 0; }
  double* f64() const { return section->f64(); }
  int* i32() const { return section->i32(); }

  /// Element count of the interior region.
  long long interior_count() const { return element_count(interior_dims); }

  /// Storage offset of an interior multi-index.
  long long offset(std::span<const int> local_idx) const {
    return local_offset(local_idx, interior_dims, borders, indexing);
  }
};

}  // namespace tdp::dist
