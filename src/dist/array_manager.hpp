// The array manager (§3.2.2.2, §5.1): runtime support for distributed
// arrays.
//
// The array manager consists of one manager per virtual processor.  All
// requests to create or manipulate distributed arrays are made *on* some
// processor (in the thesis, via a server request to the local array-manager
// process) and the local manager communicates with the managers on other
// processors as needed: create_array issues create_local on every owner,
// read_element routes to the owner of the element, verify_array issues
// copy_local everywhere, and so on (§5.1.1's request taxonomy).
//
// In this in-process reproduction the request round-trip is performed by
// the requesting process entering the target node-manager's monitor
// directly; the request taxonomy, placement rules and observable semantics
// (§3.2.1.5) are unchanged:
//   * create_array may be made on any processor;
//   * every other global operation may be made on any owner processor or on
//     the creating processor, with identical results anywhere;
//   * find_local requires a local view and works only on owner processors.
//
// Placement is no longer a static block map.  Each array is split into
// S shards — one per grid cell, where the cell count may exceed the
// processor count (oversharding) — and a replicated, versioned owner table
// maps shard → processor.  Every routing decision (element access, section
// reads/writes, find_local) translates through the table, so the paper's
// owner-side semantics are preserved while shards can migrate between
// processors at runtime, driven by per-shard traffic counters.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "dist/local_section.hpp"
#include "dist/types.hpp"
#include "util/status.hpp"
#include "vp/machine.hpp"
#include "vp/payload.hpp"

namespace tdp::dist {

/// The replicated, versioned owner table: shard rank → owning processor.
/// The table is sized to the next power of two above the shard count so the
/// lookup is one masked index; every node record of an array carries its
/// own copy, and migrations bump `epoch` on every replica — a replica whose
/// epoch lags is stale and routes to a processor that answers "moved".
struct ShardMap {
  long long cells = 1;       ///< shard count (= grid cells)
  std::uint64_t epoch = 0;   ///< bumped on every migration
  std::vector<int> owners;   ///< size = next power of two >= cells

  int owner_of(long long shard) const {
    return owners[static_cast<std::size_t>(shard) &
                  (owners.size() - 1)];
  }

  /// Builds the initial table: shard s → pool[s mod pool.size()], i.e. the
  /// prefix of the processor list when cells <= pool size (the §3.2.1.1
  /// placement), wrapping round-robin when oversharded.
  static ShardMap initial(long long cells, const std::vector<int>& pool);
};

/// Per-shard traffic counters, shared by every replica of an array's record
/// (element and section bytes accrue at the owner-side access).  The
/// repartitioner consumes these to propose moves.
struct ShardStats {
  explicit ShardStats(std::size_t n) : bytes(n) {}
  std::vector<std::atomic<std::uint64_t>> bytes;

  std::uint64_t read(std::size_t shard) const {
    return bytes[shard].load(std::memory_order_relaxed);
  }
  void add(std::size_t shard, std::uint64_t n) {
    bytes[shard].fetch_add(n, std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : bytes) b.store(0, std::memory_order_relaxed);
  }
};

/// One shard's storage on its owner: the cell's actual interior (the
/// trailing cell of an unevenly-blocked dimension is smaller than the
/// uniform block), the storage shape including borders, and the quiesce
/// flag a migration raises while the payload is in flight.
struct ShardSection {
  std::vector<int> interior;   ///< this cell's interior dimensions
  std::vector<int> dims_plus;  ///< interior + borders
  std::shared_ptr<LocalSection> storage;
  bool migrating = false;
};

/// Internal representation of a distributed array (§5.1.3).  One copy per
/// processor that owns at least one shard, plus one on the creating
/// processor (and on any processor a shard has migrated to).  The thesis
/// stores some derivable quantities redundantly ("compute once and store");
/// we mirror that.
struct ArrayRecord {
  ArrayId id;
  ElemType type = ElemType::Float64;
  std::vector<int> dims;         ///< global dimensions
  std::vector<int> processors;   ///< initial owner per shard, grid order
  std::vector<int> pool;         ///< distinct processors eligible to own
  std::vector<int> grid_dims;    ///< processor-grid dimensions
  std::vector<int> local_dims;   ///< uniform block dims (ceil-div)
  std::vector<int> borders;      ///< 2*ndims border sizes
  std::vector<int> dims_plus;    ///< uniform block dims including borders
  Indexing indexing = Indexing::RowMajor;
  Indexing grid_indexing = Indexing::RowMajor;
  ShardMap shards;               ///< this replica's owner table
  std::map<long long, ShardSection> sections;  ///< owned shards only
  std::shared_ptr<ShardStats> stats;           ///< shared across replicas
};

/// A repartitioner proposal: move `shard` from its current owner to `to`.
struct ShardMove {
  long long shard = -1;
  int from = -1;
  int to = -1;
};

/// The distributed array manager for a whole machine.
class ArrayManager {
 public:
  /// `border_lookup` resolves foreign_borders requests (§3.2.1.3); it may be
  /// empty, in which case foreign_borders specs fail with Status::Invalid.
  explicit ArrayManager(vp::Machine& machine,
                        BorderLookup border_lookup = nullptr);
  ~ArrayManager();

  ArrayManager(const ArrayManager&) = delete;
  ArrayManager& operator=(const ArrayManager&) = delete;

  vp::Machine& machine() { return machine_; }

  /// Replaces the foreign-border resolver (wired up by core::Runtime).
  void set_border_lookup(BorderLookup lookup);

  /// Trace hook: when set, every library-procedure request is reported on
  /// completion — the "am_debug" version of the array manager, which
  /// "produces a trace message for each operation it performs" (§B.3).
  /// Pass nullptr to return to the silent ("am") version.
  using TraceFn = std::function<void(std::string_view op, int on_proc,
                                     ArrayId id, Status status)>;
  void set_trace(TraceFn trace);

  // --- Library procedures (§4.2), each made "on" a processor. -------------

  /// am_user:create_array.  Creates the whole distributed array with one
  /// request; local sections are zero-initialised.  When the decomposition
  /// yields more cells than processors, shards wrap round-robin onto the
  /// list.  TDP_DIST_SHARDS=N oversubscribes default 1-D block
  /// decompositions to N shards (when N is a valid grid for the extent).
  Status create_array(int on_proc, ElemType type, const std::vector<int>& dims,
                      const std::vector<int>& processors,
                      const std::vector<DimSpec>& distrib,
                      const BorderSpec& borders, Indexing indexing,
                      ArrayId& id_out);

  /// am_user:free_array.  Deletes the entire array; subsequent references
  /// fail with Status::NotFound.
  Status free_array(int on_proc, ArrayId id);

  /// am_user:read_element by global indices.
  Status read_element(int on_proc, ArrayId id, std::span<const int> indices,
                      Scalar& out);

  /// am_user:write_element by global indices; `value` must be numeric and is
  /// coerced to the array's element type.
  Status write_element(int on_proc, ArrayId id, std::span<const int> indices,
                       const Scalar& value);

  /// am_user:find_local.  Only meaningful on a processor that owns at least
  /// one shard; returns the lowest-ranked owned shard's section (identical
  /// to the historical one-section-per-owner behaviour for un-migrated
  /// arrays).  A shard held quiesced by an in-flight migration is waited
  /// out, never handed to the caller.
  Status find_local(int on_proc, ArrayId id, LocalSectionView& out);

  /// find_local for one specific shard; NotFound when `on_proc` does not
  /// currently own it.  Like find_local, waits out an in-flight migration
  /// of the shard.
  Status find_local_shard(int on_proc, ArrayId id, long long shard,
                          LocalSectionView& out);

  /// am_user:find_info.
  Status find_info(int on_proc, ArrayId id, InfoKind which, InfoValue& out);

  /// am_user:read_section — snapshots the interior of `on_proc`'s sole
  /// owned shard as one immutable payload (elements in storage order,
  /// borders stripped).  The bulk section-shipping path: the returned
  /// payload is refcounted, so forwarding it to any number of consumers
  /// costs zero further copies.  When migration (or oversharding) has put
  /// more than one shard on `on_proc`, "the" local section is ambiguous
  /// and the request fails with Status::Invalid — address shards
  /// explicitly via read_shard.  A shard quiesced by an in-flight
  /// migration is waited out.
  Status read_section(int on_proc, ArrayId id, vp::Payload& out);

  /// am_user:write_section — overwrites the sole owned shard's interior on
  /// `on_proc` from `data`, which must hold exactly
  /// interior_count * elem_size bytes in storage order (the inverse of
  /// read_section; borders are untouched).  Status::Invalid when `on_proc`
  /// owns more than one shard, exactly like read_section.
  Status write_section(int on_proc, ArrayId id, const vp::Payload& data);

  /// Shard-addressed section read: snapshots shard `shard`'s interior,
  /// wherever it lives.  When `on_proc`'s replica routes to a processor
  /// that no longer owns the shard, the request follows the fresher owner
  /// table there (counted in am.shard_forwards).
  Status read_shard(int on_proc, ArrayId id, long long shard,
                    vp::Payload& out);

  /// Shard-addressed section write; the inverse of read_shard.
  Status write_shard(int on_proc, ArrayId id, long long shard,
                     const vp::Payload& data);

  /// Resolves the current owner of `shard` as `on_proc`'s replica sees it.
  Status shard_owner(int on_proc, ArrayId id, long long shard,
                     int& owner_out, std::uint64_t& epoch_out);

  /// am_user:verify_array (§4.2.7): checks the indexing type and expected
  /// borders; on a border mismatch, reallocates every local section with the
  /// expected borders and copies all interior data.
  Status verify_array(int on_proc, ArrayId id, int n_dims,
                      const BorderSpec& expected, Indexing indexing);

  // --- Migration and repartitioning. --------------------------------------

  /// Moves shard `shard` to processor `to_proc`: quiesce the shard, ship
  /// its storage zero-copy (vp::Payload::borrow over the quiesced section),
  /// install it at the destination with one counted copy, flip every
  /// replica's owner table to a new epoch, then release the source.
  /// Idempotent: migrating a shard to its current owner is Status::Ok with
  /// no work, so faulted retries are always safe.  Waits for in-flight
  /// distributed calls that pinned the array's layout; the wait is bounded,
  /// so a migration requested from code that itself pins this array (which
  /// could never proceed) fails with Status::Error instead of
  /// self-deadlocking.
  Status migrate_shard(int on_proc, ArrayId id, long long shard, int to_proc);

  /// Computes moves that bring per-processor traffic (per the shard
  /// counters accumulated since the last rebalance) within `max_ratio`
  /// between the most- and least-loaded processors of the array's pool.
  /// Pure planning — nothing moves.
  Status propose_rebalance(int on_proc, ArrayId id, double max_ratio,
                           std::vector<ShardMove>& moves_out);

  /// propose_rebalance + migrate_shard for each move + reset of the
  /// traffic window.  `moved_out` (optional) reports how many shards moved.
  /// `max_ratio` <= 0 uses TDP_DIST_REBALANCE (no-op when that is unset
  /// or 0 — rebalancing stays opt-in).
  Status rebalance(int on_proc, ArrayId id, double max_ratio = 0.0,
                   int* moved_out = nullptr);

  /// TDP_DIST_REBALANCE as a double, 0 when unset/invalid (disabled).
  static double env_rebalance_ratio();

  // --- Repartition barrier (distributed-call integration). ----------------

  /// Holds the array's placement fixed: migrate_shard blocks until every
  /// pin is released.  core::DistributedCall pins the arrays its copies
  /// resolve with find_local for the duration of the call, so a rebalance
  /// can never move a section out from under a running program.
  void pin_layout(ArrayId id);
  void unpin_layout(ArrayId id);

  // --- Diagnostics. --------------------------------------------------------

  /// Number of arrays currently known on processor p (records, owned or
  /// creator-side).
  std::size_t records_on(int p) const;

  /// Count of storage bytes currently allocated for local sections on p.
  std::size_t local_bytes_on(int p) const;

  /// One row of the live shard-traffic probe (obs::Telemetry "dist" plane).
  struct ShardTrafficRow {
    ArrayId id;
    long long shard = 0;
    int owner = -1;
    std::uint64_t bytes = 0;  ///< cumulative traffic this window
  };

  /// The hottest `limit` shards across all live arrays, by window traffic.
  std::vector<ShardTrafficRow> hottest_shards(std::size_t limit) const;

 private:
  struct Node {
    mutable std::mutex mutex;
    std::map<ArrayId, ArrayRecord> records;
    std::uint64_t next_seq = 0;
  };

  Node& node(int p) { return nodes_[static_cast<std::size_t>(p)]; }
  const Node& node(int p) const {
    return nodes_[static_cast<std::size_t>(p)];
  }

  /// Copies a record's metadata from processor `on_proc` (no storage).
  /// Returns Status::NotFound if the processor has no valid record.
  Status fetch_record(int on_proc, ArrayId id, ArrayRecord& meta_out) const;

  /// Resolves a BorderSpec to concrete 2*ndims sizes.
  Status resolve_borders(const BorderSpec& spec, int ndims,
                         std::vector<int>& out) const;

  /// create_local: installs a record on p with storage for `owned` shards.
  void create_local(int p, const ArrayRecord& meta,
                    const std::vector<long long>& owned);

  /// Allocates a zeroed section for `shard` per the record's geometry.
  ShardSection make_section(const ArrayRecord& meta, long long shard) const;

  /// copy_local (§5.1.1): reallocates p's shard sections with `new_borders`
  /// and copies the interiors; updates p's record metadata.
  void copy_local(int p, ArrayId id, const std::vector<int>& new_borders);

  /// The element/section access core: locks the owner the routing table
  /// names, re-resolving through fresher replicas when the shard has moved
  /// (stale-epoch forwarding) and retrying while a migration holds the
  /// shard quiesced.  `fn` runs under the owner node's mutex with the
  /// record and the shard's section; it must not block.
  Status with_shard(ArrayRecord& meta, long long shard,
                    const std::function<Status(ArrayRecord&, ShardSection&)>&
                        fn);

  /// The legacy (section-addressed) access core: runs `fn` under `on_proc`'s
  /// node mutex with its sole owned shard.  Invalid when the processor owns
  /// more than one shard ("the" local section would be ambiguous); a shard
  /// quiesced by an in-flight migration is waited out like with_shard does,
  /// so legacy traffic can never race the migration payload.
  Status with_sole_section(
      int on_proc, ArrayId id,
      const std::function<Status(ArrayRecord&, ShardSection&)>& fn);

  /// The current route generation (bumped at every migration completion).
  std::uint64_t route_gen() const;

  /// Blocks until the route generation advances past `seen_gen` or
  /// `deadline` passes; false on timeout.  Requesters parked on a quiesced
  /// shard wait here instead of polling.
  bool wait_route_change(
      std::uint64_t seen_gen,
      std::chrono::steady_clock::time_point deadline) const;

  /// Shared body of read_section/read_shard and write_section/write_shard.
  Status read_shard_locked(const ArrayRecord& rec, const ShardSection& sec,
                           vp::Payload& out);
  Status write_shard_locked(ArrayRecord& rec, ShardSection& sec,
                            const vp::Payload& data);

  /// Reports `status`, tracing the request first when tracing is on.
  Status traced(std::string_view op, int on_proc, ArrayId id,
                Status status) const;

  vp::Machine& machine_;
  BorderLookup border_lookup_;
  TraceFn trace_;
  mutable std::mutex trace_mutex_;
  std::vector<Node> nodes_;

  /// Repartition-barrier state: per-array pin counts and, per array, the
  /// count of migrations in flight (a count, not a set: concurrent
  /// migrations of one array overlap at the barrier before serialising on
  /// migrate_mutex_, and pins must stay blocked until the last one ends).
  /// Pins block migrations; migrations block new pins (but never
  /// element/section traffic, which quiesces per shard).
  std::mutex pin_mutex_;
  std::condition_variable pin_cv_;
  std::map<ArrayId, int> pins_;
  std::map<ArrayId, int> migrating_;
  /// Serialises migrations so epoch bumps are totally ordered.  Taken only
  /// after the pin barrier clears, so one array's pin wait never stalls
  /// other arrays' migrations.
  std::mutex migrate_mutex_;
  /// Migration-completion signal: every finished migration (success or
  /// failure) bumps the generation and wakes requesters parked on a
  /// quiesced shard, replacing any fixed-window polling.  The generation
  /// is atomic so the access hot path reads it without locking; the mutex
  /// serialises only the park/notify handshake (the bump happens under it,
  /// so a completion cannot slip between a waiter's predicate check and
  /// its wait).
  mutable std::mutex route_mutex_;
  mutable std::condition_variable route_cv_;
  std::atomic<std::uint64_t> route_gen_{0};
};

}  // namespace tdp::dist
