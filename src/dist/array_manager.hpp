// The array manager (§3.2.2.2, §5.1): runtime support for distributed
// arrays.
//
// The array manager consists of one manager per virtual processor.  All
// requests to create or manipulate distributed arrays are made *on* some
// processor (in the thesis, via a server request to the local array-manager
// process) and the local manager communicates with the managers on other
// processors as needed: create_array issues create_local on every owner,
// read_element routes to the owner of the element, verify_array issues
// copy_local everywhere, and so on (§5.1.1's request taxonomy).
//
// In this in-process reproduction the request round-trip is performed by
// the requesting process entering the target node-manager's monitor
// directly; the request taxonomy, placement rules and observable semantics
// (§3.2.1.5) are unchanged:
//   * create_array may be made on any processor;
//   * every other global operation may be made on any owner processor or on
//     the creating processor, with identical results anywhere;
//   * find_local requires a local view and works only on owner processors.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "dist/local_section.hpp"
#include "dist/types.hpp"
#include "util/status.hpp"
#include "vp/machine.hpp"
#include "vp/payload.hpp"

namespace tdp::dist {

/// Internal representation of a distributed array (§5.1.3).  One copy per
/// processor that owns a local section, plus one on the creating processor.
/// The thesis stores some derivable quantities redundantly ("compute once
/// and store"); we mirror that.
struct ArrayRecord {
  ArrayId id;
  ElemType type = ElemType::Float64;
  std::vector<int> dims;         ///< global dimensions
  std::vector<int> processors;   ///< owner processor numbers, grid order
  std::vector<int> grid_dims;    ///< processor-grid dimensions
  std::vector<int> local_dims;   ///< local-section interior dimensions
  std::vector<int> borders;      ///< 2*ndims border sizes
  std::vector<int> dims_plus;    ///< local dims including borders
  Indexing indexing = Indexing::RowMajor;
  Indexing grid_indexing = Indexing::RowMajor;
  std::shared_ptr<LocalSection> local;  ///< null on a non-owner (creator)
};

/// The distributed array manager for a whole machine.
class ArrayManager {
 public:
  /// `border_lookup` resolves foreign_borders requests (§3.2.1.3); it may be
  /// empty, in which case foreign_borders specs fail with Status::Invalid.
  explicit ArrayManager(vp::Machine& machine,
                        BorderLookup border_lookup = nullptr);

  ArrayManager(const ArrayManager&) = delete;
  ArrayManager& operator=(const ArrayManager&) = delete;

  vp::Machine& machine() { return machine_; }

  /// Replaces the foreign-border resolver (wired up by core::Runtime).
  void set_border_lookup(BorderLookup lookup);

  /// Trace hook: when set, every library-procedure request is reported on
  /// completion — the "am_debug" version of the array manager, which
  /// "produces a trace message for each operation it performs" (§B.3).
  /// Pass nullptr to return to the silent ("am") version.
  using TraceFn = std::function<void(std::string_view op, int on_proc,
                                     ArrayId id, Status status)>;
  void set_trace(TraceFn trace);

  // --- Library procedures (§4.2), each made "on" a processor. -------------

  /// am_user:create_array.  Creates the whole distributed array with one
  /// request; local sections are zero-initialised.
  Status create_array(int on_proc, ElemType type, const std::vector<int>& dims,
                      const std::vector<int>& processors,
                      const std::vector<DimSpec>& distrib,
                      const BorderSpec& borders, Indexing indexing,
                      ArrayId& id_out);

  /// am_user:free_array.  Deletes the entire array; subsequent references
  /// fail with Status::NotFound.
  Status free_array(int on_proc, ArrayId id);

  /// am_user:read_element by global indices.
  Status read_element(int on_proc, ArrayId id, std::span<const int> indices,
                      Scalar& out);

  /// am_user:write_element by global indices; `value` must be numeric and is
  /// coerced to the array's element type.
  Status write_element(int on_proc, ArrayId id, std::span<const int> indices,
                       const Scalar& value);

  /// am_user:find_local.  Only meaningful on a processor that owns a local
  /// section of the array.
  Status find_local(int on_proc, ArrayId id, LocalSectionView& out);

  /// am_user:find_info.
  Status find_info(int on_proc, ArrayId id, InfoKind which, InfoValue& out);

  /// am_user:read_section — snapshots the local-section *interior* on
  /// `on_proc` as one immutable payload (elements in storage order, borders
  /// stripped).  The bulk section-shipping path: the returned payload is
  /// refcounted, so forwarding it to any number of consumers (a broadcast of
  /// a section, a redistribution fan-out) costs zero further copies.
  Status read_section(int on_proc, ArrayId id, vp::Payload& out);

  /// am_user:write_section — overwrites the local-section interior on
  /// `on_proc` from `data`, which must hold exactly interior_count *
  /// elem_size bytes in storage order (the inverse of read_section; borders
  /// are untouched).
  Status write_section(int on_proc, ArrayId id, const vp::Payload& data);

  /// am_user:verify_array (§4.2.7): checks the indexing type and expected
  /// borders; on a border mismatch, reallocates every local section with the
  /// expected borders and copies all interior data.
  Status verify_array(int on_proc, ArrayId id, int n_dims,
                      const BorderSpec& expected, Indexing indexing);

  // --- Diagnostics. --------------------------------------------------------

  /// Number of arrays currently known on processor p (records, owned or
  /// creator-side).
  std::size_t records_on(int p) const;

  /// Count of storage bytes currently allocated for local sections on p.
  std::size_t local_bytes_on(int p) const;

 private:
  struct Node {
    mutable std::mutex mutex;
    std::map<ArrayId, ArrayRecord> records;
    std::uint64_t next_seq = 0;
  };

  Node& node(int p) { return nodes_[static_cast<std::size_t>(p)]; }
  const Node& node(int p) const {
    return nodes_[static_cast<std::size_t>(p)];
  }

  /// Copies a record's metadata from processor `on_proc` (no storage).
  /// Returns Status::NotFound if the processor has no valid record.
  Status fetch_record(int on_proc, ArrayId id, ArrayRecord& meta_out) const;

  /// Resolves a BorderSpec to concrete 2*ndims sizes.
  Status resolve_borders(const BorderSpec& spec, int ndims,
                         std::vector<int>& out) const;

  /// create_local: installs a record (with storage when `owner`) on p.
  void create_local(int p, const ArrayRecord& meta, bool owner);

  /// copy_local (§5.1.1): reallocates p's local section with `new_borders`
  /// and copies the interior; updates p's record metadata.
  void copy_local(int p, ArrayId id, const std::vector<int>& new_borders);

  /// Reports `status`, tracing the request first when tracing is on.
  Status traced(std::string_view op, int on_proc, ArrayId id,
                Status status) const;

  vp::Machine& machine_;
  BorderLookup border_lookup_;
  TraceFn trace_;
  mutable std::mutex trace_mutex_;
  std::vector<Node> nodes_;
};

}  // namespace tdp::dist
