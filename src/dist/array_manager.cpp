#include "dist/array_manager.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::dist {

namespace {

obs::Histogram& am_service_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("am.service_ns");
  return h;
}

obs::ShardedCounter& am_bytes_moved() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("am.bytes_moved");
  return c;
}

}  // namespace

ArrayManager::ArrayManager(vp::Machine& machine, BorderLookup border_lookup)
    : machine_(machine),
      border_lookup_(std::move(border_lookup)),
      nodes_(static_cast<std::size_t>(machine.nprocs())) {}

void ArrayManager::set_border_lookup(BorderLookup lookup) {
  border_lookup_ = std::move(lookup);
}

void ArrayManager::set_trace(TraceFn trace) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_ = std::move(trace);
}

Status ArrayManager::traced(std::string_view op, int on_proc, ArrayId id,
                            Status status) const {
  static obs::ShardedCounter& requests =
      obs::Registry::instance().counter("am.requests");
  if (obs::enabled()) requests.add();
  TraceFn trace;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace = trace_;
  }
  if (trace) trace(op, on_proc, id, status);
  return status;
}

Status ArrayManager::resolve_borders(const BorderSpec& spec, int ndims,
                                     std::vector<int>& out) const {
  switch (spec.kind) {
    case BorderSpec::Kind::None:
      out.assign(static_cast<std::size_t>(2 * ndims), 0);
      return Status::Ok;
    case BorderSpec::Kind::Explicit:
      if (spec.sizes.size() != static_cast<std::size_t>(2 * ndims)) {
        return Status::Invalid;
      }
      for (int b : spec.sizes) {
        if (b < 0) return Status::Invalid;
      }
      out = spec.sizes;
      return Status::Ok;
    case BorderSpec::Kind::Foreign: {
      if (!border_lookup_) return Status::Invalid;
      Status st = border_lookup_(spec.program, spec.parm_num, ndims, out);
      if (!ok(st)) return st;
      if (out.size() != static_cast<std::size_t>(2 * ndims)) {
        return Status::Invalid;
      }
      for (int b : out) {
        if (b < 0) return Status::Invalid;
      }
      return Status::Ok;
    }
  }
  return Status::Error;
}

Status ArrayManager::create_array(int on_proc, ElemType type,
                                  const std::vector<int>& dims,
                                  const std::vector<int>& processors,
                                  const std::vector<DimSpec>& distrib,
                                  const BorderSpec& borders, Indexing indexing,
                                  ArrayId& id_out) {
  obs::Span span(obs::Op::AmCreate, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      id_out = ArrayId{};
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      if (dims.empty() || processors.empty()) return Status::Invalid;
      for (int p : processors) {
        if (!machine_.valid_proc(p)) return Status::Invalid;
      }

      const int ndims = static_cast<int>(dims.size());
      std::vector<int> border_sizes;
      if (Status st = resolve_borders(borders, ndims, border_sizes); !ok(st)) {
        return st;
      }

      std::vector<int> grid;
      if (Status st = compute_grid(dims, static_cast<int>(processors.size()),
                                   distrib, grid);
          !ok(st)) {
        return st;
      }

      const long long cells = grid_cells(grid);
      std::vector<int> owners(processors.begin(),
                              processors.begin() + cells);
      // One local section per owner requires the owners to be distinct
      // processors (§3.2.1.4 assigns one section to each).
      if (std::set<int>(owners.begin(), owners.end()).size() != owners.size()) {
        return Status::Invalid;
      }

      ArrayRecord meta;
      meta.type = type;
      meta.dims = dims;
      meta.processors = owners;
      meta.grid_dims = grid;
      meta.local_dims = local_dims(dims, grid);
      meta.borders = border_sizes;
      meta.dims_plus = dims_plus_borders(meta.local_dims, border_sizes);
      meta.indexing = indexing;
      meta.grid_indexing = indexing;  // §3.2.1.4: one choice governs both.

      {
        Node& creator = node(on_proc);
        std::lock_guard<std::mutex> lock(creator.mutex);
        meta.id = ArrayId{on_proc, creator.next_seq++};
      }

      for (int p : owners) create_local(p, meta, /*owner=*/true);
      if (std::find(owners.begin(), owners.end(), on_proc) == owners.end()) {
        create_local(on_proc, meta, /*owner=*/false);
      }

      if (obs::enabled()) {
        std::uint64_t bytes = elem_size(type);
        for (const int d : meta.dims_plus) {
          bytes *= static_cast<std::uint64_t>(d);
        }
        bytes *= static_cast<std::uint64_t>(owners.size());
        span.set_arg1(bytes);
        am_bytes_moved().add(bytes);
      }
      id_out = meta.id;
      return Status::Ok;

  }();
  return traced("create_array", on_proc, id_out, st);
}

void ArrayManager::create_local(int p, const ArrayRecord& meta, bool owner) {
  ArrayRecord record = meta;
  record.local =
      owner ? std::make_shared<LocalSection>(meta.type, meta.dims_plus)
            : nullptr;
  Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  n.records[record.id] = std::move(record);
}

Status ArrayManager::fetch_record(int on_proc, ArrayId id,
                                  ArrayRecord& meta_out) const {
  if (!machine_.valid_proc(on_proc)) return Status::Invalid;
  const Node& n = node(on_proc);
  std::lock_guard<std::mutex> lock(n.mutex);
  auto it = n.records.find(id);
  if (it == n.records.end()) return Status::NotFound;
  meta_out = it->second;
  return Status::Ok;
}

Status ArrayManager::free_array(int on_proc, ArrayId id) {
  obs::Span span(obs::Op::AmFree, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;

      auto erase_on = [&](int p) {
        Node& n = node(p);
        std::lock_guard<std::mutex> lock(n.mutex);
        n.records.erase(id);
      };
      for (int p : meta.processors) erase_on(p);
      erase_on(id.creator);
      erase_on(on_proc);
      return Status::Ok;

  }();
  return traced("free_array", on_proc, id, st);
}

Status ArrayManager::read_element(int on_proc, ArrayId id,
                                  std::span<const int> indices, Scalar& out) {
  obs::Span span(obs::Op::AmRead, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (!indices_in_range(indices, meta.dims)) return Status::Invalid;

      GlobalMap m = map_global(indices, meta.local_dims);
      const long long rank = grid_rank(m.grid_pos, meta.grid_dims,
                                       meta.grid_indexing);
      const int owner = meta.processors[static_cast<std::size_t>(rank)];
      const long long off =
          local_offset(m.local_idx, meta.local_dims, meta.borders, meta.indexing);

      Node& n = node(owner);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(id);
      if (it == n.records.end() || it->second.local == nullptr) {
        return Status::NotFound;
      }
      if (it->second.type == ElemType::Float64) {
        out = it->second.local->read_f64(off);
      } else {
        out = it->second.local->read_i32(off);
      }
      if (obs::enabled()) {
        const std::uint64_t bytes = elem_size(it->second.type);
        span.set_arg1(bytes);
        am_bytes_moved().add(bytes);
      }
      return Status::Ok;

  }();
  return traced("read_element", on_proc, id, st);
}

Status ArrayManager::write_element(int on_proc, ArrayId id,
                                   std::span<const int> indices,
                                   const Scalar& value) {
  obs::Span span(obs::Op::AmWrite, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (!indices_in_range(indices, meta.dims)) return Status::Invalid;

      GlobalMap m = map_global(indices, meta.local_dims);
      const long long rank = grid_rank(m.grid_pos, meta.grid_dims,
                                       meta.grid_indexing);
      const int owner = meta.processors[static_cast<std::size_t>(rank)];
      const long long off =
          local_offset(m.local_idx, meta.local_dims, meta.borders, meta.indexing);

      Node& n = node(owner);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(id);
      if (it == n.records.end() || it->second.local == nullptr) {
        return Status::NotFound;
      }
      if (it->second.type == ElemType::Float64) {
        it->second.local->write_f64(off, scalar_to_double(value));
      } else {
        it->second.local->write_i32(off, scalar_to_int(value));
      }
      if (obs::enabled()) {
        const std::uint64_t bytes = elem_size(it->second.type);
        span.set_arg1(bytes);
        am_bytes_moved().add(bytes);
      }
      return Status::Ok;

  }();
  return traced("write_element", on_proc, id, st);
}

Status ArrayManager::find_local(int on_proc, ArrayId id,
                                LocalSectionView& out) {
  obs::Span span(obs::Op::AmFindLocal, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      out = LocalSectionView{};
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      Node& n = node(on_proc);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(id);
      if (it == n.records.end() || it->second.local == nullptr) {
        return Status::NotFound;
      }
      const ArrayRecord& r = it->second;
      out.type = r.type;
      out.interior_dims = r.local_dims;
      out.borders = r.borders;
      out.dims_plus = r.dims_plus;
      out.indexing = r.indexing;
      out.section = r.local;
      return Status::Ok;

  }();
  return traced("find_local", on_proc, id, st);
}

namespace {

/// True when the section's interior is its whole storage (no borders), so
/// bulk moves can be one memcpy instead of an element walk.
bool contiguous_interior(const std::vector<int>& borders) {
  for (int b : borders) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace

Status ArrayManager::read_section(int on_proc, ArrayId id, vp::Payload& out) {
  obs::Span span(obs::Op::AmReadSection, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      out = vp::Payload();
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      Node& n = node(on_proc);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(id);
      if (it == n.records.end() || it->second.local == nullptr) {
        return Status::NotFound;
      }
      const ArrayRecord& r = it->second;
      const std::size_t esize = elem_size(r.type);
      const long long count = element_count(r.local_dims);
      std::vector<std::byte> staging(static_cast<std::size_t>(count) * esize);
      const std::byte* base = static_cast<const std::byte*>(r.local->data());
      if (contiguous_interior(r.borders)) {
        std::memcpy(staging.data(), base, staging.size());
      } else {
        for (long long lin = 0; lin < count; ++lin) {
          std::vector<int> idx = delinearize(lin, r.local_dims, r.indexing);
          const long long src =
              local_offset(idx, r.local_dims, r.borders, r.indexing);
          std::memcpy(staging.data() + static_cast<std::size_t>(lin) * esize,
                      base + static_cast<std::size_t>(src) * esize, esize);
        }
      }
      if (obs::enabled()) {
        span.set_arg1(staging.size());
        am_bytes_moved().add(staging.size());
      }
      // take(): the one packing copy above is the only copy this snapshot
      // ever costs, however many consumers the payload is shipped to.
      out = vp::Payload::take(std::move(staging));
      return Status::Ok;

  }();
  return traced("read_section", on_proc, id, st);
}

Status ArrayManager::write_section(int on_proc, ArrayId id,
                                   const vp::Payload& data) {
  obs::Span span(obs::Op::AmWriteSection, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      Node& n = node(on_proc);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(id);
      if (it == n.records.end() || it->second.local == nullptr) {
        return Status::NotFound;
      }
      ArrayRecord& r = it->second;
      const std::size_t esize = elem_size(r.type);
      const long long count = element_count(r.local_dims);
      if (data.size() != static_cast<std::size_t>(count) * esize) {
        return Status::Invalid;
      }
      std::byte* base = static_cast<std::byte*>(r.local->data());
      if (contiguous_interior(r.borders)) {
        std::memcpy(base, data.data(), data.size());
      } else {
        for (long long lin = 0; lin < count; ++lin) {
          std::vector<int> idx = delinearize(lin, r.local_dims, r.indexing);
          const long long dst =
              local_offset(idx, r.local_dims, r.borders, r.indexing);
          std::memcpy(base + static_cast<std::size_t>(dst) * esize,
                      data.data() + static_cast<std::size_t>(lin) * esize,
                      esize);
        }
      }
      if (obs::enabled()) {
        span.set_arg1(data.size());
        am_bytes_moved().add(data.size());
      }
      return Status::Ok;

  }();
  return traced("write_section", on_proc, id, st);
}

Status ArrayManager::find_info(int on_proc, ArrayId id, InfoKind which,
                               InfoValue& out) {
  obs::Span span(obs::Op::AmFindInfo, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      switch (which) {
        case InfoKind::Type:
          out = meta.type;
          return Status::Ok;
        case InfoKind::Dimensions:
          out = meta.dims;
          return Status::Ok;
        case InfoKind::Processors:
          out = meta.processors;
          return Status::Ok;
        case InfoKind::GridDimensions:
          out = meta.grid_dims;
          return Status::Ok;
        case InfoKind::LocalDimensions:
          out = meta.local_dims;
          return Status::Ok;
        case InfoKind::Borders:
          out = meta.borders;
          return Status::Ok;
        case InfoKind::LocalDimensionsPlus:
          out = meta.dims_plus;
          return Status::Ok;
        case InfoKind::IndexingType:
          out = meta.indexing;
          return Status::Ok;
        case InfoKind::GridIndexingType:
          out = meta.grid_indexing;
          return Status::Ok;
      }
      return Status::Invalid;

  }();
  return traced("find_info", on_proc, id, st);
}

Status ArrayManager::verify_array(int on_proc, ArrayId id, int n_dims,
                                  const BorderSpec& expected,
                                  Indexing indexing) {
  obs::Span span(obs::Op::AmVerify, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (n_dims != static_cast<int>(meta.dims.size())) return Status::Invalid;
      if (indexing != meta.indexing) return Status::Invalid;

      std::vector<int> want;
      if (Status st = resolve_borders(expected, n_dims, want); !ok(st)) return st;
      if (want == meta.borders) return Status::Ok;

      for (int p : meta.processors) copy_local(p, id, want);
      // Refresh metadata on the creating processor if it holds no section.
      if (std::find(meta.processors.begin(), meta.processors.end(), id.creator) ==
          meta.processors.end()) {
        Node& n = node(id.creator);
        std::lock_guard<std::mutex> lock(n.mutex);
        auto it = n.records.find(id);
        if (it != n.records.end()) {
          it->second.borders = want;
          it->second.dims_plus = dims_plus_borders(it->second.local_dims, want);
        }
      }
      return Status::Ok;

  }();
  return traced("verify_array", on_proc, id, st);
}

void ArrayManager::copy_local(int p, ArrayId id,
                              const std::vector<int>& new_borders) {
  Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  auto it = n.records.find(id);
  if (it == n.records.end() || it->second.local == nullptr) return;

  ArrayRecord& r = it->second;
  std::vector<int> new_plus = dims_plus_borders(r.local_dims, new_borders);
  auto fresh = std::make_shared<LocalSection>(r.type, new_plus);

  const long long count = element_count(r.local_dims);
  for (long long lin = 0; lin < count; ++lin) {
    std::vector<int> idx = delinearize(lin, r.local_dims, r.indexing);
    const long long src =
        local_offset(idx, r.local_dims, r.borders, r.indexing);
    const long long dst =
        local_offset(idx, r.local_dims, new_borders, r.indexing);
    if (r.type == ElemType::Float64) {
      fresh->write_f64(dst, r.local->read_f64(src));
    } else {
      fresh->write_i32(dst, r.local->read_i32(src));
    }
  }
  r.local = std::move(fresh);
  r.borders = new_borders;
  r.dims_plus = std::move(new_plus);
}

std::size_t ArrayManager::records_on(int p) const {
  const Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  return n.records.size();
}

std::size_t ArrayManager::local_bytes_on(int p) const {
  const Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  std::size_t bytes = 0;
  for (const auto& [id, r] : n.records) {
    if (r.local) bytes += r.local->bytes();
  }
  return bytes;
}

}  // namespace tdp::dist
