#include "dist/array_manager.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"

namespace tdp::dist {

namespace {

obs::Histogram& am_service_hist() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("am.service_ns");
  return h;
}

obs::ShardedCounter& am_bytes_moved() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("am.bytes_moved");
  return c;
}

obs::ShardedCounter& am_shard_migrations() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("am.shard_migrations");
  return c;
}

obs::ShardedCounter& am_migrated_bytes() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("am.migrated_bytes");
  return c;
}

obs::ShardedCounter& am_shard_forwards() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("am.shard_forwards");
  return c;
}

obs::ShardedCounter& am_rebalances() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("am.rebalances");
  return c;
}

/// True when the section's interior is its whole storage (no borders), so
/// bulk moves can be one memcpy instead of an element walk.
bool contiguous_interior(const std::vector<int>& borders) {
  for (int b : borders) {
    if (b != 0) return false;
  }
  return true;
}

/// TDP_DIST_SHARDS: overshard default 1-D block decompositions to this many
/// shards.  Read fresh on every creation so tests can flip it per-case.
/// Checked parse: garbage and negative values warn loudly and read as 0
/// (no oversharding) instead of silently flowing into grid math.
int env_shard_count() {
  return util::env_int32("TDP_DIST_SHARDS", 0, 0, 1 << 20);
}

/// At most one live ArrayManager feeds the telemetry dist probe; the last
/// one constructed wins, and only the owner clears it on destruction.
std::atomic<ArrayManager*> g_dist_probe_owner{nullptr};

/// Deadline for a request parked on a quiesced shard.  Requesters wake on
/// the migration-completion signal, so this bounds only pathological states
/// (a shard that is nowhere); it can therefore be generous — a large-shard
/// migration legitimately holds the quiesce for as long as its copy takes,
/// and must not turn concurrent accesses into spurious failures.
constexpr auto kQuiesceTimeout = std::chrono::seconds(10);

/// Bound on migrate_shard's pin-drain wait.  A migration requested from
/// code that itself holds a pin on the array can never be satisfied; the
/// bound converts that self-deadlock into Status::Error.
constexpr auto kPinDrainTimeout = std::chrono::seconds(2);

}  // namespace

ShardMap ShardMap::initial(long long cells, const std::vector<int>& pool) {
  ShardMap m;
  m.cells = cells;
  std::size_t size = 1;
  while (size < static_cast<std::size_t>(cells)) size <<= 1;
  m.owners.resize(size);
  for (std::size_t s = 0; s < size; ++s) {
    m.owners[s] = pool[s % pool.size()];
  }
  return m;
}

ArrayManager::ArrayManager(vp::Machine& machine, BorderLookup border_lookup)
    : machine_(machine),
      border_lookup_(std::move(border_lookup)),
      nodes_(static_cast<std::size_t>(machine.nprocs())) {
  g_dist_probe_owner.store(this, std::memory_order_release);
  obs::Telemetry::instance().set_dist_probe([this] {
    obs::Telemetry::DistSample d;
    d.migrations = am_shard_migrations().value();
    d.rebalances = am_rebalances().value();
    d.forwards = am_shard_forwards().value();
    for (const ShardTrafficRow& r : hottest_shards(8)) {
      obs::Telemetry::DistSample::ShardRow row;
      row.creator = r.id.creator;
      row.seq = r.id.seq;
      row.shard = r.shard;
      row.owner = r.owner;
      row.bytes = r.bytes;
      d.hottest.push_back(std::move(row));
    }
    return d;
  });
}

ArrayManager::~ArrayManager() {
  ArrayManager* expected = this;
  if (g_dist_probe_owner.compare_exchange_strong(expected, nullptr,
                                                 std::memory_order_acq_rel)) {
    obs::Telemetry::instance().set_dist_probe(nullptr);
  }
}

void ArrayManager::set_border_lookup(BorderLookup lookup) {
  border_lookup_ = std::move(lookup);
}

void ArrayManager::set_trace(TraceFn trace) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_ = std::move(trace);
}

double ArrayManager::env_rebalance_ratio() {
  const char* env = std::getenv("TDP_DIST_REBALANCE");
  if (env == nullptr || env[0] == '\0') return 0.0;
  const double v = std::strtod(env, nullptr);
  return v > 0.0 ? v : 0.0;
}

Status ArrayManager::traced(std::string_view op, int on_proc, ArrayId id,
                            Status status) const {
  static obs::ShardedCounter& requests =
      obs::Registry::instance().counter("am.requests");
  if (obs::enabled()) requests.add();
  TraceFn trace;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace = trace_;
  }
  if (trace) trace(op, on_proc, id, status);
  return status;
}

Status ArrayManager::resolve_borders(const BorderSpec& spec, int ndims,
                                     std::vector<int>& out) const {
  switch (spec.kind) {
    case BorderSpec::Kind::None:
      out.assign(static_cast<std::size_t>(2 * ndims), 0);
      return Status::Ok;
    case BorderSpec::Kind::Explicit:
      if (spec.sizes.size() != static_cast<std::size_t>(2 * ndims)) {
        return Status::Invalid;
      }
      for (int b : spec.sizes) {
        if (b < 0) return Status::Invalid;
      }
      out = spec.sizes;
      return Status::Ok;
    case BorderSpec::Kind::Foreign: {
      if (!border_lookup_) return Status::Invalid;
      Status st = border_lookup_(spec.program, spec.parm_num, ndims, out);
      if (!ok(st)) return st;
      if (out.size() != static_cast<std::size_t>(2 * ndims)) {
        return Status::Invalid;
      }
      for (int b : out) {
        if (b < 0) return Status::Invalid;
      }
      return Status::Ok;
    }
  }
  return Status::Error;
}

Status ArrayManager::create_array(int on_proc, ElemType type,
                                  const std::vector<int>& dims,
                                  const std::vector<int>& processors,
                                  const std::vector<DimSpec>& distrib,
                                  const BorderSpec& borders, Indexing indexing,
                                  ArrayId& id_out) {
  obs::Span span(obs::Op::AmCreate, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      id_out = ArrayId{};
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      if (dims.empty() || processors.empty()) return Status::Invalid;
      for (int p : processors) {
        if (!machine_.valid_proc(p)) return Status::Invalid;
      }
      // The processor list is the ownership pool: shards round-robin over
      // it, and the repartitioner treats every entry as a migration target,
      // so the entries must be distinct processors (§3.2.1.4).
      if (std::set<int>(processors.begin(), processors.end()).size() !=
          processors.size()) {
        return Status::Invalid;
      }

      const int ndims = static_cast<int>(dims.size());
      std::vector<int> border_sizes;
      if (Status st = resolve_borders(borders, ndims, border_sizes); !ok(st)) {
        return st;
      }

      // TDP_DIST_SHARDS=N oversubscribes a default 1-D block decomposition
      // to N shards when N is a valid grid for the extent; invalid N (empty
      // trailing cell) falls back to the spec as written.
      std::vector<DimSpec> spec = distrib;
      if (dims.size() == 1 && spec.size() == 1 &&
          spec[0].kind == DimSpec::Kind::Block) {
        if (const int n = env_shard_count(); n > 1) {
          std::vector<int> probe;
          if (ok(compute_grid(dims, static_cast<int>(processors.size()),
                              {DimSpec::block_n(n)}, probe))) {
            spec = {DimSpec::block_n(n)};
          }
        }
      }

      std::vector<int> grid;
      if (Status st = compute_grid(dims, static_cast<int>(processors.size()),
                                   spec, grid);
          !ok(st)) {
        return st;
      }

      const long long cells = grid_cells(grid);
      ArrayRecord meta;
      meta.type = type;
      meta.dims = dims;
      meta.pool = processors;
      meta.processors.reserve(static_cast<std::size_t>(cells));
      for (long long s = 0; s < cells; ++s) {
        meta.processors.push_back(
            processors[static_cast<std::size_t>(s) % processors.size()]);
      }
      meta.grid_dims = grid;
      meta.local_dims = local_dims(dims, grid);
      meta.borders = border_sizes;
      meta.dims_plus = dims_plus_borders(meta.local_dims, border_sizes);
      meta.indexing = indexing;
      meta.grid_indexing = indexing;  // §3.2.1.4: one choice governs both.
      meta.shards = ShardMap::initial(cells, processors);
      meta.stats = std::make_shared<ShardStats>(static_cast<std::size_t>(cells));

      {
        Node& creator = node(on_proc);
        std::lock_guard<std::mutex> lock(creator.mutex);
        meta.id = ArrayId{on_proc, creator.next_seq++};
      }

      std::map<int, std::vector<long long>> owned;
      for (long long s = 0; s < cells; ++s) {
        owned[meta.shards.owner_of(s)].push_back(s);
      }
      for (const auto& [p, shards] : owned) create_local(p, meta, shards);
      if (owned.find(on_proc) == owned.end()) {
        create_local(on_proc, meta, {});
      }

      if (obs::enabled()) {
        std::uint64_t bytes = 0;
        for (long long s = 0; s < cells; ++s) {
          const std::vector<int> pos =
              delinearize(s, meta.grid_dims, meta.grid_indexing);
          const std::vector<int> interior =
              cell_dims(meta.dims, meta.grid_dims, pos);
          bytes += static_cast<std::uint64_t>(
                       element_count(dims_plus_borders(interior,
                                                       meta.borders))) *
                   elem_size(type);
        }
        span.set_arg1(bytes);
        am_bytes_moved().add(bytes);
      }
      id_out = meta.id;
      return Status::Ok;

  }();
  return traced("create_array", on_proc, id_out, st);
}

ShardSection ArrayManager::make_section(const ArrayRecord& meta,
                                        long long shard) const {
  ShardSection sec;
  const std::vector<int> pos =
      delinearize(shard, meta.grid_dims, meta.grid_indexing);
  sec.interior = cell_dims(meta.dims, meta.grid_dims, pos);
  sec.dims_plus = dims_plus_borders(sec.interior, meta.borders);
  sec.storage = std::make_shared<LocalSection>(meta.type, sec.dims_plus);
  return sec;
}

void ArrayManager::create_local(int p, const ArrayRecord& meta,
                                const std::vector<long long>& owned) {
  ArrayRecord record = meta;
  for (long long s : owned) record.sections[s] = make_section(meta, s);
  Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  n.records[record.id] = std::move(record);
}

Status ArrayManager::fetch_record(int on_proc, ArrayId id,
                                  ArrayRecord& meta_out) const {
  if (!machine_.valid_proc(on_proc)) return Status::Invalid;
  const Node& n = node(on_proc);
  std::lock_guard<std::mutex> lock(n.mutex);
  auto it = n.records.find(id);
  if (it == n.records.end()) return Status::NotFound;
  // Metadata only: copying the sections map would touch every owned
  // shard's storage refcount under the node lock — a cross-thread
  // cache-line storm on the request hot path, for state no caller reads.
  const ArrayRecord& rec = it->second;
  meta_out.id = rec.id;
  meta_out.type = rec.type;
  meta_out.dims = rec.dims;
  meta_out.processors = rec.processors;
  meta_out.pool = rec.pool;
  meta_out.grid_dims = rec.grid_dims;
  meta_out.local_dims = rec.local_dims;
  meta_out.borders = rec.borders;
  meta_out.dims_plus = rec.dims_plus;
  meta_out.indexing = rec.indexing;
  meta_out.grid_indexing = rec.grid_indexing;
  meta_out.shards = rec.shards;
  meta_out.sections.clear();
  meta_out.stats = rec.stats;
  return Status::Ok;
}

Status ArrayManager::free_array(int on_proc, ArrayId id) {
  obs::Span span(obs::Op::AmFree, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      // Migration may have spread replicas anywhere; sweep every node.
      for (int p = 0; p < machine_.nprocs(); ++p) {
        Node& n = node(p);
        std::lock_guard<std::mutex> lock(n.mutex);
        n.records.erase(id);
      }
      return Status::Ok;

  }();
  return traced("free_array", on_proc, id, st);
}

std::uint64_t ArrayManager::route_gen() const {
  return route_gen_.load(std::memory_order_acquire);
}

bool ArrayManager::wait_route_change(
    std::uint64_t seen_gen,
    std::chrono::steady_clock::time_point deadline) const {
  std::unique_lock<std::mutex> lock(route_mutex_);
  return route_cv_.wait_until(lock, deadline, [&] {
    return route_gen_.load(std::memory_order_acquire) != seen_gen;
  });
}

Status ArrayManager::with_shard(
    ArrayRecord& meta, long long shard,
    const std::function<Status(ArrayRecord&, ShardSection&)>& fn) {
  const auto deadline = std::chrono::steady_clock::now() + kQuiesceTimeout;
  for (;;) {
    // Read the generation before inspecting the node: a migration that
    // completes between the inspection and the wait below then wakes the
    // wait immediately instead of being missed.
    const std::uint64_t gen = route_gen();
    const int owner = meta.shards.owner_of(shard);
    {
      Node& n = node(owner);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(meta.id);
      if (it == n.records.end()) return Status::NotFound;  // freed
      ArrayRecord& rec = it->second;
      auto sit = rec.sections.find(shard);
      if (sit != rec.sections.end() && !sit->second.migrating) {
        return fn(rec, sit->second);
      }
      // The shard is not accessible here: either it has moved (this
      // replica's table is fresher than ours — adopt it and re-route) or a
      // migration holds it quiesced (wait for it to finish).
      if (rec.shards.epoch > meta.shards.epoch) {
        meta.shards = rec.shards;
        if (obs::enabled()) {
          am_shard_forwards().add();
          obs::instant(obs::Op::AmShardForward, 0,
                       static_cast<std::uint64_t>(shard), rec.shards.epoch);
        }
        continue;  // fresh table in hand: re-route without waiting
      }
    }
    // Never wait holding a node lock: the migration that will unblock us
    // needs it.
    if (!wait_route_change(gen, deadline)) return Status::Error;
  }
}

Status ArrayManager::with_sole_section(
    int on_proc, ArrayId id,
    const std::function<Status(ArrayRecord&, ShardSection&)>& fn) {
  if (!machine_.valid_proc(on_proc)) return Status::Invalid;
  const auto deadline = std::chrono::steady_clock::now() + kQuiesceTimeout;
  for (;;) {
    const std::uint64_t gen = route_gen();
    {
      Node& n = node(on_proc);
      std::lock_guard<std::mutex> lock(n.mutex);
      auto it = n.records.find(id);
      if (it == n.records.end() || it->second.sections.empty()) {
        return Status::NotFound;
      }
      ArrayRecord& rec = it->second;
      // Owning several shards makes "the" local section ambiguous — which
      // shard sections.begin() yields can change across migrations, so a
      // read/write round-trip could silently target different data.
      // Refuse rather than guess; callers address shards explicitly via
      // read_shard/write_shard.
      if (rec.sections.size() > 1) return Status::Invalid;
      ShardSection& sec = rec.sections.begin()->second;
      if (!sec.migrating) return fn(rec, sec);
    }
    // A migration holds the shard quiesced: its payload borrows the very
    // storage `fn` would touch, so wait the migration out rather than race
    // it.
    if (!wait_route_change(gen, deadline)) return Status::Error;
  }
}

Status ArrayManager::read_element(int on_proc, ArrayId id,
                                  std::span<const int> indices, Scalar& out) {
  obs::Span span(obs::Op::AmRead, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (!indices_in_range(indices, meta.dims)) return Status::Invalid;

      GlobalMap m = map_global(indices, meta.local_dims);
      const long long shard =
          grid_rank(m.grid_pos, meta.grid_dims, meta.grid_indexing);
      return with_shard(meta, shard, [&](ArrayRecord& rec, ShardSection& sec) {
        const long long off = local_offset(m.local_idx, sec.interior,
                                           rec.borders, rec.indexing);
        if (rec.type == ElemType::Float64) {
          out = sec.storage->read_f64(off);
        } else {
          out = sec.storage->read_i32(off);
        }
        const std::uint64_t bytes = elem_size(rec.type);
        rec.stats->add(static_cast<std::size_t>(shard), bytes);
        if (obs::enabled()) {
          span.set_arg1(bytes);
          am_bytes_moved().add(bytes);
        }
        return Status::Ok;
      });

  }();
  return traced("read_element", on_proc, id, st);
}

Status ArrayManager::write_element(int on_proc, ArrayId id,
                                   std::span<const int> indices,
                                   const Scalar& value) {
  obs::Span span(obs::Op::AmWrite, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (!indices_in_range(indices, meta.dims)) return Status::Invalid;

      GlobalMap m = map_global(indices, meta.local_dims);
      const long long shard =
          grid_rank(m.grid_pos, meta.grid_dims, meta.grid_indexing);
      return with_shard(meta, shard, [&](ArrayRecord& rec, ShardSection& sec) {
        const long long off = local_offset(m.local_idx, sec.interior,
                                           rec.borders, rec.indexing);
        if (rec.type == ElemType::Float64) {
          sec.storage->write_f64(off, scalar_to_double(value));
        } else {
          sec.storage->write_i32(off, scalar_to_int(value));
        }
        const std::uint64_t bytes = elem_size(rec.type);
        rec.stats->add(static_cast<std::size_t>(shard), bytes);
        if (obs::enabled()) {
          span.set_arg1(bytes);
          am_bytes_moved().add(bytes);
        }
        return Status::Ok;
      });

  }();
  return traced("write_element", on_proc, id, st);
}

Status ArrayManager::find_local(int on_proc, ArrayId id,
                                LocalSectionView& out) {
  obs::Span span(obs::Op::AmFindLocal, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      out = LocalSectionView{};
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      const auto deadline =
          std::chrono::steady_clock::now() + kQuiesceTimeout;
      for (;;) {
        const std::uint64_t gen = route_gen();
        {
          Node& n = node(on_proc);
          std::lock_guard<std::mutex> lock(n.mutex);
          auto it = n.records.find(id);
          if (it == n.records.end() || it->second.sections.empty()) {
            return Status::NotFound;
          }
          // The lowest-ranked owned shard: for un-migrated arrays with one
          // shard per owner this is *the* local section, exactly the
          // historical behaviour.
          const ArrayRecord& r = it->second;
          const ShardSection& sec = r.sections.begin()->second;
          if (!sec.migrating) {
            out.type = r.type;
            out.interior_dims = sec.interior;
            out.borders = r.borders;
            out.dims_plus = sec.dims_plus;
            out.indexing = r.indexing;
            out.section = sec.storage;
            return Status::Ok;
          }
        }
        // Migration in flight: handing out the quiesced storage would let
        // the caller mutate the payload being shipped.  Wait it out.
        if (!wait_route_change(gen, deadline)) return Status::Error;
      }

  }();
  return traced("find_local", on_proc, id, st);
}

Status ArrayManager::find_local_shard(int on_proc, ArrayId id, long long shard,
                                      LocalSectionView& out) {
  obs::Span span(obs::Op::AmFindLocal, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      out = LocalSectionView{};
      if (!machine_.valid_proc(on_proc)) return Status::Invalid;
      const auto deadline =
          std::chrono::steady_clock::now() + kQuiesceTimeout;
      for (;;) {
        const std::uint64_t gen = route_gen();
        {
          Node& n = node(on_proc);
          std::lock_guard<std::mutex> lock(n.mutex);
          auto it = n.records.find(id);
          if (it == n.records.end()) return Status::NotFound;
          const ArrayRecord& r = it->second;
          auto sit = r.sections.find(shard);
          if (sit == r.sections.end()) return Status::NotFound;
          if (!sit->second.migrating) {
            out.type = r.type;
            out.interior_dims = sit->second.interior;
            out.borders = r.borders;
            out.dims_plus = sit->second.dims_plus;
            out.indexing = r.indexing;
            out.section = sit->second.storage;
            return Status::Ok;
          }
        }
        // Quiesced mid-migration: wait; once the move lands the section is
        // erased here and the retry reports NotFound (no longer local).
        if (!wait_route_change(gen, deadline)) return Status::Error;
      }

  }();
  return traced("find_local", on_proc, id, st);
}

Status ArrayManager::read_shard_locked(const ArrayRecord& rec,
                                       const ShardSection& sec,
                                       vp::Payload& out) {
  const std::size_t esize = elem_size(rec.type);
  const long long count = element_count(sec.interior);
  std::vector<std::byte> staging(static_cast<std::size_t>(count) * esize);
  const std::byte* base = static_cast<const std::byte*>(sec.storage->data());
  if (contiguous_interior(rec.borders)) {
    std::memcpy(staging.data(), base, staging.size());
  } else {
    for (long long lin = 0; lin < count; ++lin) {
      std::vector<int> idx = delinearize(lin, sec.interior, rec.indexing);
      const long long src =
          local_offset(idx, sec.interior, rec.borders, rec.indexing);
      std::memcpy(staging.data() + static_cast<std::size_t>(lin) * esize,
                  base + static_cast<std::size_t>(src) * esize, esize);
    }
  }
  if (obs::enabled()) am_bytes_moved().add(staging.size());
  // take(): the one packing copy above is the only copy this snapshot
  // ever costs, however many consumers the payload is shipped to.
  out = vp::Payload::take(std::move(staging));
  return Status::Ok;
}

Status ArrayManager::write_shard_locked(ArrayRecord& rec, ShardSection& sec,
                                        const vp::Payload& data) {
  const std::size_t esize = elem_size(rec.type);
  const long long count = element_count(sec.interior);
  if (data.size() != static_cast<std::size_t>(count) * esize) {
    return Status::Invalid;
  }
  std::byte* base = static_cast<std::byte*>(sec.storage->data());
  if (contiguous_interior(rec.borders)) {
    std::memcpy(base, data.data(), data.size());
  } else {
    for (long long lin = 0; lin < count; ++lin) {
      std::vector<int> idx = delinearize(lin, sec.interior, rec.indexing);
      const long long dst =
          local_offset(idx, sec.interior, rec.borders, rec.indexing);
      std::memcpy(base + static_cast<std::size_t>(dst) * esize,
                  data.data() + static_cast<std::size_t>(lin) * esize, esize);
    }
  }
  if (obs::enabled()) am_bytes_moved().add(data.size());
  return Status::Ok;
}

Status ArrayManager::read_section(int on_proc, ArrayId id, vp::Payload& out) {
  obs::Span span(obs::Op::AmReadSection, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      out = vp::Payload();
      return with_sole_section(
          on_proc, id, [&](ArrayRecord& rec, ShardSection& sec) {
            Status st = read_shard_locked(rec, sec, out);
            if (ok(st)) span.set_arg1(out.size());
            return st;
          });

  }();
  return traced("read_section", on_proc, id, st);
}

Status ArrayManager::write_section(int on_proc, ArrayId id,
                                   const vp::Payload& data) {
  obs::Span span(obs::Op::AmWriteSection, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      return with_sole_section(
          on_proc, id, [&](ArrayRecord& rec, ShardSection& sec) {
            Status st = write_shard_locked(rec, sec, data);
            if (ok(st)) span.set_arg1(data.size());
            return st;
          });

  }();
  return traced("write_section", on_proc, id, st);
}

Status ArrayManager::read_shard(int on_proc, ArrayId id, long long shard,
                                vp::Payload& out) {
  obs::Span span(obs::Op::AmReadSection, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      out = vp::Payload();
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (shard < 0 || shard >= meta.shards.cells) return Status::Invalid;
      return with_shard(meta, shard, [&](ArrayRecord& rec, ShardSection& sec) {
        Status st = read_shard_locked(rec, sec, out);
        if (ok(st)) {
          rec.stats->add(static_cast<std::size_t>(shard), out.size());
          span.set_arg1(out.size());
        }
        return st;
      });

  }();
  return traced("read_shard", on_proc, id, st);
}

Status ArrayManager::write_shard(int on_proc, ArrayId id, long long shard,
                                 const vp::Payload& data) {
  obs::Span span(obs::Op::AmWriteSection, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (shard < 0 || shard >= meta.shards.cells) return Status::Invalid;
      return with_shard(meta, shard, [&](ArrayRecord& rec, ShardSection& sec) {
        Status st = write_shard_locked(rec, sec, data);
        if (ok(st)) {
          rec.stats->add(static_cast<std::size_t>(shard), data.size());
          span.set_arg1(data.size());
        }
        return st;
      });

  }();
  return traced("write_shard", on_proc, id, st);
}

Status ArrayManager::shard_owner(int on_proc, ArrayId id, long long shard,
                                 int& owner_out, std::uint64_t& epoch_out) {
  ArrayRecord meta;
  if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
  if (shard < 0 || shard >= meta.shards.cells) return Status::Invalid;
  owner_out = meta.shards.owner_of(shard);
  epoch_out = meta.shards.epoch;
  return Status::Ok;
}

Status ArrayManager::find_info(int on_proc, ArrayId id, InfoKind which,
                               InfoValue& out) {
  obs::Span span(obs::Op::AmFindInfo, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      switch (which) {
        case InfoKind::Type:
          out = meta.type;
          return Status::Ok;
        case InfoKind::Dimensions:
          out = meta.dims;
          return Status::Ok;
        case InfoKind::Processors: {
          // The owner set as this replica's table sees it, in first-shard
          // order: the prefix of the creation pool until a migration
          // changes it.
          std::vector<int> procs;
          for (long long s = 0; s < meta.shards.cells; ++s) {
            const int p = meta.shards.owner_of(s);
            if (std::find(procs.begin(), procs.end(), p) == procs.end()) {
              procs.push_back(p);
            }
          }
          out = std::move(procs);
          return Status::Ok;
        }
        case InfoKind::GridDimensions:
          out = meta.grid_dims;
          return Status::Ok;
        case InfoKind::LocalDimensions:
          out = meta.local_dims;
          return Status::Ok;
        case InfoKind::Borders:
          out = meta.borders;
          return Status::Ok;
        case InfoKind::LocalDimensionsPlus:
          out = meta.dims_plus;
          return Status::Ok;
        case InfoKind::IndexingType:
          out = meta.indexing;
          return Status::Ok;
        case InfoKind::GridIndexingType:
          out = meta.grid_indexing;
          return Status::Ok;
        case InfoKind::ShardCount:
          out = static_cast<std::uint64_t>(meta.shards.cells);
          return Status::Ok;
        case InfoKind::ShardOwners: {
          std::vector<int> owners;
          owners.reserve(static_cast<std::size_t>(meta.shards.cells));
          for (long long s = 0; s < meta.shards.cells; ++s) {
            owners.push_back(meta.shards.owner_of(s));
          }
          out = std::move(owners);
          return Status::Ok;
        }
        case InfoKind::OwnerEpoch:
          out = meta.shards.epoch;
          return Status::Ok;
      }
      return Status::Invalid;

  }();
  return traced("find_info", on_proc, id, st);
}

Status ArrayManager::verify_array(int on_proc, ArrayId id, int n_dims,
                                  const BorderSpec& expected,
                                  Indexing indexing) {
  obs::Span span(obs::Op::AmVerify, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      if (n_dims != static_cast<int>(meta.dims.size())) return Status::Invalid;
      if (indexing != meta.indexing) return Status::Invalid;

      std::vector<int> want;
      if (Status st = resolve_borders(expected, n_dims, want); !ok(st)) return st;
      if (want == meta.borders) return Status::Ok;

      // copy_local updates every replica's metadata and reallocates any
      // sections it holds, wherever migration has put them.
      for (int p = 0; p < machine_.nprocs(); ++p) copy_local(p, id, want);
      return Status::Ok;

  }();
  return traced("verify_array", on_proc, id, st);
}

void ArrayManager::copy_local(int p, ArrayId id,
                              const std::vector<int>& new_borders) {
  Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  auto it = n.records.find(id);
  if (it == n.records.end()) return;

  ArrayRecord& r = it->second;
  for (auto& [shard, sec] : r.sections) {
    std::vector<int> new_plus = dims_plus_borders(sec.interior, new_borders);
    auto fresh = std::make_shared<LocalSection>(r.type, new_plus);
    const long long count = element_count(sec.interior);
    for (long long lin = 0; lin < count; ++lin) {
      std::vector<int> idx = delinearize(lin, sec.interior, r.indexing);
      const long long src =
          local_offset(idx, sec.interior, r.borders, r.indexing);
      const long long dst =
          local_offset(idx, sec.interior, new_borders, r.indexing);
      if (r.type == ElemType::Float64) {
        fresh->write_f64(dst, sec.storage->read_f64(src));
      } else {
        fresh->write_i32(dst, sec.storage->read_i32(src));
      }
    }
    sec.storage = std::move(fresh);
    sec.dims_plus = std::move(new_plus);
  }
  r.borders = new_borders;
  r.dims_plus = dims_plus_borders(r.local_dims, new_borders);
}

Status ArrayManager::migrate_shard(int on_proc, ArrayId id, long long shard,
                                   int to_proc) {
  obs::Span span(obs::Op::AmMigrate, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      if (!machine_.valid_proc(on_proc) || !machine_.valid_proc(to_proc)) {
        return Status::Invalid;
      }

      // Repartition barrier: block new layout pins, drain existing ones.
      // Runs before migrate_mutex_ is taken, so one array's pin wait never
      // stalls other arrays' migrations; and the drain is bounded, so a
      // migration requested from code that itself pins this array (which
      // could never be satisfied) fails instead of self-deadlocking.
      {
        std::unique_lock<std::mutex> lock(pin_mutex_);
        ++migrating_[id];
        const bool drained = pin_cv_.wait_for(lock, kPinDrainTimeout, [&] {
          auto it = pins_.find(id);
          return it == pins_.end() || it->second == 0;
        });
        if (!drained) {
          auto it = migrating_.find(id);
          if (it != migrating_.end() && --it->second == 0) {
            migrating_.erase(it);
          }
          lock.unlock();
          pin_cv_.notify_all();
          return Status::Error;
        }
      }
      const Status mst = [&]() -> Status {
        // Serialise migrations so owner-table epochs are totally ordered
        // and any replica's table is current between migrations.
        std::lock_guard<std::mutex> mig(migrate_mutex_);

        ArrayRecord meta;
        if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
        if (shard < 0 || shard >= meta.shards.cells) return Status::Invalid;
        const int from = meta.shards.owner_of(shard);
        // Idempotent: a faulted retry of a migration that already completed
        // finds the shard at its destination and succeeds with no work.
        if (from == to_proc) return Status::Ok;
        // 1. Quiesce the shard at the source and borrow its storage
        //    zero-copy: element/section traffic sees `migrating` and backs
        //    off, which is what earns Payload::borrow's immutability
        //    contract.
        vp::Payload payload;
        std::vector<int> interior;
        std::vector<int> sec_plus;
        {
          Node& src = node(from);
          std::lock_guard<std::mutex> lock(src.mutex);
          auto it = src.records.find(id);
          if (it == src.records.end()) return Status::NotFound;
          auto sit = it->second.sections.find(shard);
          if (sit == it->second.sections.end()) return Status::Error;
          ShardSection& sec = sit->second;
          sec.migrating = true;
          interior = sec.interior;
          sec_plus = sec.dims_plus;
          payload = vp::Payload::borrow(
              sec.storage,
              static_cast<const std::byte*>(sec.storage->data()),
              sec.storage->bytes());
        }

        // 2. Install at the destination: one counted copy of the whole
        //    section (interior + borders), creating a replica record there
        //    if the destination has never seen this array.
        {
          Node& dst = node(to_proc);
          std::lock_guard<std::mutex> lock(dst.mutex);
          auto [it, inserted] = dst.records.try_emplace(id);
          if (inserted) {
            ArrayRecord replica = meta;
            replica.sections.clear();
            it->second = std::move(replica);
          }
          ShardSection sec;
          sec.interior = std::move(interior);
          sec.dims_plus = sec_plus;
          sec.storage =
              std::make_shared<LocalSection>(it->second.type, sec_plus);
          std::memcpy(sec.storage->data(), payload.data(), payload.size());
          it->second.sections[shard] = std::move(sec);
        }

        // 3. Flip every replica's owner table to the new epoch.  After
        //    this, any requester — however stale its own copy — reaches a
        //    replica that routes it to the destination.
        const std::uint64_t new_epoch = meta.shards.epoch + 1;
        for (int p = 0; p < machine_.nprocs(); ++p) {
          Node& n = node(p);
          std::lock_guard<std::mutex> lock(n.mutex);
          auto it = n.records.find(id);
          if (it == n.records.end()) continue;
          ShardMap& m = it->second.shards;
          m.owners[static_cast<std::size_t>(shard) & (m.owners.size() - 1)] =
              to_proc;
          m.epoch = new_epoch;
        }

        // 4. Release the source section last: a requester arriving here
        //    before the erase sees the quiesce flag plus a fresher table
        //    and follows the shard to its new home.
        {
          Node& src = node(from);
          std::lock_guard<std::mutex> lock(src.mutex);
          auto it = src.records.find(id);
          if (it != src.records.end()) it->second.sections.erase(shard);
        }

        if (obs::enabled()) {
          span.set_arg1(payload.size());
          am_shard_migrations().add();
          am_migrated_bytes().add(payload.size());
        }
        return Status::Ok;
      }();
      {
        std::lock_guard<std::mutex> lock(pin_mutex_);
        auto it = migrating_.find(id);
        if (it != migrating_.end() && --it->second == 0) migrating_.erase(it);
      }
      pin_cv_.notify_all();
      // Completion signal (success or failure): requesters parked on the
      // quiesced shard re-check their route now instead of timing out.
      {
        std::lock_guard<std::mutex> lock(route_mutex_);
        route_gen_.fetch_add(1, std::memory_order_release);
      }
      route_cv_.notify_all();
      return mst;

  }();
  return traced("migrate_shard", on_proc, id, st);
}

Status ArrayManager::propose_rebalance(int on_proc, ArrayId id,
                                       double max_ratio,
                                       std::vector<ShardMove>& moves_out) {
  moves_out.clear();
  if (max_ratio <= 0.0) return Status::Invalid;
  if (max_ratio < 1.0) max_ratio = 1.0;
  ArrayRecord meta;
  if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;

  const long long cells = meta.shards.cells;
  std::vector<std::uint64_t> traffic(static_cast<std::size_t>(cells));
  std::vector<int> owner(static_cast<std::size_t>(cells));
  std::map<int, std::uint64_t> load;
  for (int p : meta.pool) load[p] = 0;
  for (long long s = 0; s < cells; ++s) {
    traffic[static_cast<std::size_t>(s)] =
        meta.stats->read(static_cast<std::size_t>(s));
    owner[static_cast<std::size_t>(s)] = meta.shards.owner_of(s);
    load[owner[static_cast<std::size_t>(s)]] +=
        traffic[static_cast<std::size_t>(s)];
  }

  // Greedy: while the hottest processor exceeds the coldest by more than
  // max_ratio, move its hottest shard that actually helps.  Bounded by the
  // shard count — each shard moves at most once per proposal.
  for (long long iter = 0; iter < cells; ++iter) {
    int pmax = -1;
    int pmin = -1;
    for (const auto& [p, l] : load) {
      if (pmax < 0 || l > load[pmax]) pmax = p;
      if (pmin < 0 || l < load[pmin]) pmin = p;
    }
    if (pmax < 0 || pmax == pmin) break;
    if (static_cast<double>(load[pmax]) <=
        max_ratio * static_cast<double>(load[pmin])) {
      break;
    }
    long long best = -1;
    for (long long s = 0; s < cells; ++s) {
      const std::size_t i = static_cast<std::size_t>(s);
      if (owner[i] != pmax || traffic[i] == 0) continue;
      // Moving must strictly improve this pair, or the proposal oscillates.
      if (load[pmin] + traffic[i] >= load[pmax]) continue;
      if (best < 0 ||
          traffic[i] > traffic[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    if (best < 0) break;
    const std::size_t bi = static_cast<std::size_t>(best);
    moves_out.push_back(ShardMove{best, pmax, pmin});
    load[pmax] -= traffic[bi];
    load[pmin] += traffic[bi];
    owner[bi] = pmin;
  }
  return Status::Ok;
}

Status ArrayManager::rebalance(int on_proc, ArrayId id, double max_ratio,
                               int* moved_out) {
  obs::Span span(obs::Op::AmRebalance, 0,
                 static_cast<std::uint64_t>(static_cast<unsigned>(on_proc)),
                 &am_service_hist());
  const Status st = [&]() -> Status {
      if (moved_out != nullptr) *moved_out = 0;
      ArrayRecord meta;
      if (Status st = fetch_record(on_proc, id, meta); !ok(st)) return st;
      const double ratio = max_ratio > 0.0 ? max_ratio : env_rebalance_ratio();
      if (ratio <= 0.0) return Status::Ok;  // rebalancing disabled

      std::vector<ShardMove> moves;
      if (Status st = propose_rebalance(on_proc, id, ratio, moves); !ok(st)) {
        return st;
      }
      for (const ShardMove& m : moves) {
        if (Status st = migrate_shard(on_proc, id, m.shard, m.to); !ok(st)) {
          return st;
        }
      }
      // The traffic window restarts after every pass, so stale history
      // cannot pin a shard to a processor it no longer favours.
      meta.stats->reset();
      if (moved_out != nullptr) *moved_out = static_cast<int>(moves.size());
      if (obs::enabled()) {
        span.set_arg1(moves.size());
        am_rebalances().add();
      }
      return Status::Ok;

  }();
  return traced("rebalance", on_proc, id, st);
}

void ArrayManager::pin_layout(ArrayId id) {
  std::unique_lock<std::mutex> lock(pin_mutex_);
  pin_cv_.wait(lock, [&] { return migrating_.find(id) == migrating_.end(); });
  ++pins_[id];
}

void ArrayManager::unpin_layout(ArrayId id) {
  {
    std::lock_guard<std::mutex> lock(pin_mutex_);
    auto it = pins_.find(id);
    if (it != pins_.end() && --it->second == 0) pins_.erase(it);
  }
  pin_cv_.notify_all();
}

std::size_t ArrayManager::records_on(int p) const {
  const Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  return n.records.size();
}

std::size_t ArrayManager::local_bytes_on(int p) const {
  const Node& n = node(p);
  std::lock_guard<std::mutex> lock(n.mutex);
  std::size_t bytes = 0;
  for (const auto& [id, r] : n.records) {
    for (const auto& [shard, sec] : r.sections) bytes += sec.storage->bytes();
  }
  return bytes;
}

std::vector<ArrayManager::ShardTrafficRow> ArrayManager::hottest_shards(
    std::size_t limit) const {
  std::vector<ShardTrafficRow> rows;
  std::set<ArrayId> seen;
  for (int p = 0; p < machine_.nprocs(); ++p) {
    const Node& n = node(p);
    std::lock_guard<std::mutex> lock(n.mutex);
    for (const auto& [id, r] : n.records) {
      if (!seen.insert(id).second) continue;
      for (long long s = 0; s < r.shards.cells; ++s) {
        const std::uint64_t b = r.stats->read(static_cast<std::size_t>(s));
        if (b == 0) continue;
        ShardTrafficRow row;
        row.id = id;
        row.shard = s;
        row.owner = r.shards.owner_of(s);
        row.bytes = b;
        rows.push_back(std::move(row));
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const ShardTrafficRow& a, const ShardTrafficRow& b) {
              return a.bytes > b.bytes;
            });
  if (rows.size() > limit) rows.resize(limit);
  return rows;
}

}  // namespace tdp::dist
