// tdp::obs metrics — named counters and log-scale latency histograms.
//
// All metric primitives are sharded by the emitting thread's virtual
// processor (obs::current_vp) so concurrent virtual processors never
// contend on a cache line; values are merged on read.  Everything is
// relaxed atomics: metrics are statistical, not synchronising.
//
// The registry hands out process-global metrics by name.  Instrumentation
// sites cache the returned reference (references are stable for the process
// lifetime), so the registry mutex is off the hot path:
//
//   static obs::ShardedCounter& c =
//       obs::Registry::instance().counter("am.requests");
//   c.add();
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace tdp::obs {

/// Number of counter/histogram shards.  Virtual processor p maps to shard
/// p % kMetricShards (exact per-VP attribution for machines of up to 64
/// processors — far beyond what the simulated multicomputer runs);
/// unplaced threads share the last shard.
inline constexpr std::size_t kMetricShards = 64;

inline std::size_t metric_shard(int vp) {
  return vp >= 0 ? static_cast<std::size_t>(vp) % kMetricShards
                 : kMetricShards - 1;
}

/// A monotonically-increasing counter, per-VP sharded, merged on read.
class ShardedCounter {
 public:
  void add(std::uint64_t n = 1) { add_at(current_vp(), n); }

  /// Attributes `n` to an explicit virtual processor (e.g. the destination
  /// of a message rather than the sending thread).
  void add_at(int vp, std::uint64_t n = 1) {
    shards_[metric_shard(vp)].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards (relaxed loads).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : shards_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// The first `n` per-shard values (per-VP counts when vp < kMetricShards).
  std::vector<std::uint64_t> per_shard(std::size_t n = kMetricShards) const {
    if (n > kMetricShards) n = kMetricShards;
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = shards_[i].v.load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    for (Cell& c : shards_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> shards_{};
};

/// A high-water-mark gauge: remembers the maximum value ever recorded,
/// per-VP sharded (atomic CAS-max, relaxed) and merged on read.  Used for
/// peak mailbox queue depth per virtual processor.
class MaxGauge {
 public:
  void record(std::uint64_t value) { record_at(current_vp(), value); }

  /// Attributes `value` to an explicit virtual processor (e.g. the mailbox
  /// owner rather than the posting thread).
  void record_at(int vp, std::uint64_t value) {
    std::atomic<std::uint64_t>& cell = shards_[metric_shard(vp)].v;
    std::uint64_t prev = cell.load(std::memory_order_relaxed);
    while (prev < value &&
           !cell.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Maximum over all shards (relaxed loads).
  std::uint64_t max() const {
    std::uint64_t m = 0;
    for (const Cell& c : shards_) {
      const std::uint64_t v = c.v.load(std::memory_order_relaxed);
      if (v > m) m = v;
    }
    return m;
  }

  /// The first `n` per-shard maxima (per-VP peaks when vp < kMetricShards).
  std::vector<std::uint64_t> per_shard(std::size_t n = kMetricShards) const {
    if (n > kMetricShards) n = kMetricShards;
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = shards_[i].v.load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    for (Cell& c : shards_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> shards_{};
};

/// A log2-scale histogram of non-negative samples (typically latencies in
/// ns).  Bucket b holds samples whose bit width is b, i.e. values in
/// [2^(b-1), 2^b - 1]; bucket 0 holds zeros.  Per-VP sharded, merged on
/// read; percentiles interpolate linearly inside the containing bucket
/// (percentile_from_buckets — the one bucket→quantile routine shared by
/// the shutdown summary, the trace analyzer, and the telemetry sampler).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  Histogram() : cells_(kMetricShards) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) {
    Cell& c = cells_[metric_shard(current_vp())];
    const auto b = static_cast<std::size_t>(std::bit_width(value));
    c.buckets[b].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = c.max.load(std::memory_order_relaxed);
    while (prev < value &&
           !c.max.compare_exchange_weak(prev, value,
                                        std::memory_order_relaxed)) {
    }
  }

  std::array<std::uint64_t, kBuckets> merged() const {
    std::array<std::uint64_t, kBuckets> out{};
    for (const Cell& c : cells_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out[b] += c.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : merged()) total += n;
    return total;
  }

  std::uint64_t sum() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.sum.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::uint64_t max() const {
    std::uint64_t m = 0;
    for (const Cell& c : cells_) {
      m = std::max(m, c.max.load(std::memory_order_relaxed));
    }
    return m;
  }

  /// The p-quantile (0 < p <= 1) of the recorded distribution; 0 when
  /// empty.  Interpolated inside the containing log2 bucket — see
  /// percentile_from_buckets, which this forwards to on the merged counts.
  std::uint64_t percentile(double p) const {
    return percentile_from_buckets(merged(), p);
  }

  /// The shared bucket math: given log2-bucket counts (bucket b = values
  /// of bit width b, bucket 0 = zeros), finds the bucket containing the
  /// p-quantile's rank and interpolates linearly between the bucket's
  /// bounds by the rank's position within it.  Callers with *windowed*
  /// counts (the telemetry sampler's per-tick deltas, the trace analyzer's
  /// rebucketed span durations) use this directly; Histogram::percentile
  /// applies it to the lifetime counts.
  static std::uint64_t percentile_from_buckets(
      const std::array<std::uint64_t, kBuckets>& buckets, double p) {
    std::uint64_t total = 0;
    for (const std::uint64_t n : buckets) total += n;
    if (total == 0) return 0;
    double target = p * static_cast<double>(total);
    if (target < 1.0) target = 1.0;
    if (target > static_cast<double>(total)) {
      target = static_cast<double>(total);
    }
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets[b] == 0) continue;
      if (static_cast<double>(seen + buckets[b]) >= target) {
        const std::uint64_t lo = bucket_lower_bound(b);
        const std::uint64_t hi = bucket_upper_bound(b);
        const double frac = (target - static_cast<double>(seen)) /
                            static_cast<double>(buckets[b]);
        return lo + static_cast<std::uint64_t>(
                        frac * static_cast<double>(hi - lo));
      }
      seen += buckets[b];
    }
    return bucket_upper_bound(kBuckets - 1);
  }

  /// Smallest value that falls into bucket b.
  static std::uint64_t bucket_lower_bound(std::size_t b) {
    if (b == 0) return 0;
    return std::uint64_t{1} << (b - 1);
  }

  /// Largest value that falls into bucket b.
  static std::uint64_t bucket_upper_bound(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void reset() {
    for (Cell& c : cells_) {
      for (auto& bucket : c.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      c.sum.store(0, std::memory_order_relaxed);
      c.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::vector<Cell> cells_;  // never resized; references stay valid
};

/// Process-global registry of named metrics.  Lookup takes a mutex; cache
/// the returned reference at the instrumentation site.
class Registry {
 public:
  static Registry& instance();

  ShardedCounter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  MaxGauge& gauge(std::string_view name);

  /// Visits every metric in name order (for the summary exporter).
  void visit(
      const std::function<void(const std::string&, const ShardedCounter&)>&
          on_counter,
      const std::function<void(const std::string&, const Histogram&)>&
          on_histogram,
      const std::function<void(const std::string&, const MaxGauge&)>&
          on_gauge = nullptr) const;

  /// Zeroes every metric's value.  Metric objects (and references to them)
  /// survive; tests use this between cases.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ShardedCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<MaxGauge>, std::less<>> gauges_;
};

}  // namespace tdp::obs
