// tdp::obs per-call latency attribution — "why was this call slow?", online.
//
// The thesis's unit of work is the distributed call over a process group,
// and the serving scenario the roadmap aims at is judged on p50/p99 *call*
// latency — so the interesting breakdown is per call, not per VP.  This
// module keeps a sharded table of in-flight calls keyed by the call-root id
// (the communicator a distributed call draws from Machine::next_comm; do_all
// mints one from the same counter), and the instrumented layers fold phase
// time into the ledger as it happens:
//
//  * vp::Mailbox delivery — queue wait (delivery time minus the enqueue
//    timestamp stamped at post), payload bytes, message count, and the
//    receiver's blocked-in-receive wall time, attributed to the delivered
//    message's comm;
//  * core::DistributedCall — marshal duration and each copy's execute
//    duration; core::do_all — each copy's body duration;
//  * dp::forall — data-parallel statement counts, keyed by the enclosing
//    call's comm.
//
// call_end() folds the completed call into the `call.latency_ns` histogram
// and, when TDP_OBS_SLOW_MS is set, decides whether the call is worth
// keeping as an *exemplar*: over the threshold, or slow enough to land in
// the bounded top-K reservoir of the slowest calls seen.  An exemplar
// snapshots the call's causal span subtree (every ring event carrying its
// comm) out of the flight recorder, so `tdp_trace why <call-id>` can print
// the attributed critical path of a call that was slow *minutes ago* in a
// still-running service.  With the threshold unset only the cheap ledger
// runs — no snapshots — which is what keeps the attribution path within
// noise of plain ring+sampler tracing (bench/ablation_obs).
//
// Layering: pure obs (trace + metrics); the vp/core/dp layers call in, never
// the other way.  Every add_* is a no-op for unknown ids, so traffic whose
// comm is not a tracked call (array-server requests, foreign tests) costs
// one shard lock + hash miss and nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace tdp::obs {

/// What kind of fan-out the call-root id names.
enum class CallKind : std::uint8_t {
  Call = 0,   ///< core::DistributedCall (has a real communicator)
  DoAll = 1,  ///< core::do_all (id minted from the same counter)
};

const char* call_kind_name(CallKind k);  ///< "call" / "do_all"

/// The per-call phase ledger.  Phase times sum over all copies of the call
/// (copies run concurrently), so they are copy-seconds: their sum can
/// exceed the call's wall latency, and each phase's share is reported
/// against the total attributed time, not the latency.
struct CallPhases {
  std::uint64_t marshal_ns = 0;  ///< argument marshal (caller side)
  std::uint64_t queue_ns = 0;    ///< delivered messages' time spent queued
  std::uint64_t blocked_ns = 0;  ///< receivers' wall time inside receive
  std::uint64_t exec_ns = 0;     ///< copies' execute/body wall time
  std::uint64_t copy_bytes = 0;  ///< payload bytes delivered to the call
  std::uint64_t messages = 0;    ///< messages delivered to the call
  std::uint64_t dp_statements = 0;  ///< forall statements executed
  /// Execute time not spent blocked in receive — the "actually computing"
  /// share of the copies' wall time.
  std::uint64_t compute_ns() const {
    return exec_ns > blocked_ns ? exec_ns - blocked_ns : 0;
  }
};

/// One call's ledger entry.
struct CallRecord {
  std::uint64_t id = 0;
  CallKind kind = CallKind::Call;
  int copies = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;  ///< 0 while the call is in flight
  CallPhases phases;
  std::uint64_t latency_ns() const {
    return end_ns > start_ns ? end_ns - start_ns : 0;
  }
};

/// A retained slow call: its ledger plus the causal span subtree captured
/// from the flight-recorder ring at completion.
struct ExemplarSummary {
  CallRecord call;
  bool over_threshold = false;      ///< crossed TDP_OBS_SLOW_MS (vs top-K)
  std::uint64_t subtree_events = 0; ///< ring events carrying the call's comm
  std::uint64_t captured_events = 0;  ///< kept after the per-exemplar cap
};

struct Exemplar : ExemplarSummary {
  std::vector<EventRecord> events;  ///< newest-biased, capped
};

/// The process-wide call table.  Sharded by id so concurrent calls touching
/// the ledger (every mailbox delivery) do not serialise on one mutex; the
/// shard mutexes are leaves — nothing is called while one is held.
class CallTable {
 public:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kMaxExemplars = 8;
  static constexpr std::size_t kMaxExemplarEvents = 512;

  static CallTable& instance();

  /// TDP_OBS_SLOW_MS from the environment; 0 when unset/invalid (exemplar
  /// capture disabled — the ledger and latency histogram still run).
  static std::uint64_t env_slow_ms();

  /// Programmatic override of TDP_OBS_SLOW_MS (tests, benches, embedders).
  void set_slow_threshold_ms(std::uint64_t ms);

  /// The effective threshold: the override if one is set, else the
  /// environment value.
  std::uint64_t slow_threshold_ms() const;

  // --- ledger feed (instrumented layers; all no-ops for unknown ids) ------
  void call_begin(std::uint64_t id, CallKind kind, int copies);
  void add_marshal(std::uint64_t id, std::uint64_t ns);
  void add_exec(std::uint64_t id, std::uint64_t ns);
  /// One delivered message: its queue wait, payload size, and the
  /// receiver's wall time inside the receive that matched it.
  void on_delivery(std::uint64_t id, std::uint64_t queue_ns,
                   std::uint64_t bytes, std::uint64_t blocked_ns);
  void add_statement(std::uint64_t id);
  /// Completes the call: records latency, and captures an exemplar when
  /// the threshold is armed and the call crosses it or ranks in the top-K
  /// reservoir.
  void call_end(std::uint64_t id);

  std::uint64_t started() const;    ///< call_begin count (ever)
  std::uint64_t completed() const;  ///< call_end count (ever)
  std::uint64_t captured() const;   ///< exemplar snapshots taken (ever)

  /// Retained exemplar summaries, slowest first (no event payloads — the
  /// telemetry sampler's `slow` section and the Prometheus exemplar
  /// annotation render from these on every tick).
  std::vector<ExemplarSummary> exemplar_summaries() const;

  /// Retained exemplars with their captured event subtrees, slowest first.
  std::vector<Exemplar> exemplars() const;

  /// The full exemplar document: threshold, counts, and every retained
  /// exemplar with its event subtree serialised as Chrome trace events —
  /// the `slow` exposition verb and the <prefix>.slow.json flight-dump
  /// sidecar.  tdp_trace's `why` subcommand reads this back.
  std::string render_exemplars_json() const;

  /// Clears the table, the exemplar store, counters, and the threshold
  /// override.  Tests only — not safe versus concurrent instrumented code.
  void reset_for_test();

 private:
  CallTable() = default;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, CallRecord> active;
  };

  Shard& shard_for(std::uint64_t id) const {
    // The ids are consecutive counter draws; multiply-scramble so
    // neighbouring calls land on different shards.
    return shards_[(id * 0x9e3779b97f4a7c15ULL) >> 60];
  }

  void maybe_capture(const CallRecord& rec);

  mutable Shard shards_[kShards];
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> captured_{0};
  std::atomic<std::uint64_t> threshold_override_ms_{0};
  std::atomic<bool> threshold_overridden_{false};

  mutable std::mutex exemplar_mu_;
  std::vector<Exemplar> exemplars_;  ///< sorted by latency, descending
  /// Reservoir admissions (under-threshold calls displacing the retained
  /// minimum) are rate-limited so a steady stream of near-identical calls
  /// cannot turn every completion into a ring snapshot; over-threshold
  /// calls always capture.
  std::uint64_t last_reservoir_capture_ns_ = 0;
};

}  // namespace tdp::obs
