#include "obs/metrics.hpp"

namespace tdp::obs {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

ShardedCounter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<ShardedCounter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MaxGauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MaxGauge>())
             .first;
  }
  return *it->second;
}

void Registry::visit(
    const std::function<void(const std::string&, const ShardedCounter&)>&
        on_counter,
    const std::function<void(const std::string&, const Histogram&)>&
        on_histogram,
    const std::function<void(const std::string&, const MaxGauge&)>& on_gauge)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (on_counter) {
    for (const auto& [name, counter] : counters_) {
      on_counter(name, *counter);
    }
  }
  if (on_histogram) {
    for (const auto& [name, histogram] : histograms_) {
      on_histogram(name, *histogram);
    }
  }
  if (on_gauge) {
    for (const auto& [name, gauge] : gauges_) {
      on_gauge(name, *gauge);
    }
  }
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
}

}  // namespace tdp::obs
