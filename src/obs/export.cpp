#include "obs/export.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::obs {

namespace {

// Trace rows: virtual processors keep their number; unplaced (external)
// threads share one row at the bottom of the view.
constexpr std::int64_t kExternalTid = 1000000;

std::int64_t tid_of(int vp) { return vp >= 0 ? vp : kExternalTid; }

void write_event(std::ostream& os, const EventRecord& e, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << op_name(e.op) << "\",\"cat\":\"" << op_category(e.op)
     << "\",\"pid\":1,\"tid\":" << tid_of(e.vp) << ",\"ts\":" << std::fixed
     << std::setprecision(3) << static_cast<double>(e.ts_ns) / 1000.0;
  switch (e.kind) {
    case EventKind::Span:
      os << ",\"ph\":\"X\",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
      break;
    case EventKind::Instant:
      os << ",\"ph\":\"i\",\"s\":\"t\"";
      break;
    case EventKind::Counter:
      os << ",\"ph\":\"C\"";
      break;
  }
  os << ",\"args\":{";
  if (e.kind == EventKind::Counter) {
    os << "\"value\":" << e.arg0;
  } else {
    os << "\"comm\":" << e.comm << ",\"arg0\":" << e.arg0
       << ",\"arg1\":" << e.arg1;
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const std::vector<EventRecord> events = Tracer::instance().snapshot();

  os << "{\"traceEvents\":[\n";
  bool first = true;

  std::set<std::int64_t> tids;
  for (const EventRecord& e : events) tids.insert(tid_of(e.vp));
  for (const std::int64_t tid : tids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\""
       << (tid == kExternalTid ? std::string("external")
                               : "vp " + std::to_string(tid))
       << "\"}}";
  }

  for (const EventRecord& e : events) write_event(os, e, first);
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_summary(std::ostream& os, const MachineStats* machine) {
  Tracer& tracer = Tracer::instance();
  os << "== tdp::obs summary ==\n";
  os << "trace events: " << tracer.recorded() << " recorded, "
     << tracer.dropped() << " dropped (capacity " << tracer.capacity()
     << ")\n";

  std::ostringstream counters;
  std::ostringstream histograms;
  Registry::instance().visit(
      [&](const std::string& name, const ShardedCounter& c) {
        counters << "  " << std::left << std::setw(28) << name << std::right
                 << std::setw(14) << c.value() << "\n";
      },
      [&](const std::string& name, const Histogram& h) {
        if (h.count() == 0) return;
        histograms << "  " << std::left << std::setw(28) << name << std::right
                   << std::setw(10) << h.count() << std::setw(12)
                   << h.percentile(0.50) << std::setw(12) << h.percentile(0.90)
                   << std::setw(12) << h.percentile(0.99) << std::setw(12)
                   << h.max() << "\n";
      });
  if (!counters.str().empty()) {
    os << "counters:\n" << counters.str();
  }
  if (!histograms.str().empty()) {
    os << "histograms:" << std::string(17, ' ') << std::right << std::setw(10)
       << "count" << std::setw(12) << "p50" << std::setw(12) << "p90"
       << std::setw(12) << "p99" << std::setw(12) << "max" << "\n"
       << histograms.str();
  }

  if (machine != nullptr) {
    os << "messages delivered per VP (sum must equal machine total):\n";
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < machine->per_vp_messages.size(); ++i) {
      const std::uint64_t n = machine->per_vp_messages[i];
      sum += n;
      if (n != 0) os << "  vp" << i << "=" << n;
    }
    os << "\n  sum=" << sum << " machine_total=" << machine->total_messages
       << (sum == machine->total_messages ? " (consistent)"
                                          : " (INCONSISTENT)")
       << "\n";
  }
}

void flush_at_shutdown(const MachineStats* machine) {
  if (!enabled()) return;
  const char* path = std::getenv("TDP_OBS_TRACE");
  if (path == nullptr || path[0] == '\0') path = "tdp_trace.json";
  bool wrote = false;
  {
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      write_chrome_trace(out);
      wrote = out.good();
    }
  }
  write_summary(std::cerr, machine);
  if (wrote) {
    std::cerr << "chrome trace written to " << path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  } else {
    std::cerr << "chrome trace NOT written: cannot open " << path
              << " (set TDP_OBS_TRACE to a writable path)\n";
  }
}

}  // namespace tdp::obs
