#include "obs/export.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/atomic_print.hpp"
#include "util/env.hpp"

namespace tdp::obs {

namespace {

// Trace rows: virtual processors keep their number; unplaced (external)
// threads share one row at the bottom of the view.
constexpr std::int64_t kExternalTid = 1000000;

std::int64_t tid_of(int vp) { return vp >= 0 ? vp : kExternalTid; }

void write_ts(std::ostream& os, std::uint64_t ts_ns) {
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(ts_ns) / 1000.0;
}

void write_event(std::ostream& os, const EventRecord& e, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << json::escape(op_name(e.op)) << "\",\"cat\":\""
     << json::escape(op_category(e.op))
     << "\",\"pid\":1,\"tid\":" << tid_of(e.vp) << ",\"ts\":";
  write_ts(os, e.ts_ns);
  switch (e.kind) {
    case EventKind::Span:
      os << ",\"ph\":\"X\",\"dur\":" << std::fixed << std::setprecision(3)
         << static_cast<double>(e.dur_ns) / 1000.0;
      break;
    case EventKind::Instant:
      os << ",\"ph\":\"i\",\"s\":\"t\"";
      break;
    case EventKind::Counter:
      os << ",\"ph\":\"C\"";
      break;
    case EventKind::FlowStart:
    case EventKind::FlowEnd:
      break;  // exported separately as ph:"s"/"f"
  }
  os << ",\"args\":{";
  if (e.kind == EventKind::Counter) {
    os << "\"value\":" << e.arg0;
  } else {
    os << "\"comm\":" << e.comm << ",\"arg0\":" << e.arg0
       << ",\"arg1\":" << e.arg1;
    if (e.flow != 0) os << ",\"flow\":" << e.flow;
  }
  os << "}}";
}

/// One endpoint of a Chrome flow-event pair.  `start` selects ph:"s" vs
/// ph:"f"; the finish side binds to the enclosing slice ("bp":"e"), which
/// is what makes Perfetto attach the arrowhead to the receive span.
void write_flow_event(std::ostream& os, const char* name, std::uint64_t id,
                      int vp, std::uint64_t ts_ns, std::uint64_t comm,
                      bool start, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << name << "\",\"cat\":\"flow\",\"ph\":\""
     << (start ? 's' : 'f') << "\"";
  if (!start) os << ",\"bp\":\"e\"";
  os << ",\"id\":" << id << ",\"pid\":1,\"tid\":" << tid_of(vp)
     << ",\"ts\":";
  write_ts(os, ts_ns);
  os << ",\"args\":{\"comm\":" << comm << "}}";
}

/// Whether this record is the origin (ph:"s") of a causal flow.
bool is_flow_origin(const EventRecord& e) {
  return e.flow != 0 && (e.kind == EventKind::FlowStart ||
                         (e.kind == EventKind::Instant &&
                          e.op == Op::MsgSend));
}

/// Whether this record is the target (ph:"f") of a causal flow.
bool is_flow_target(const EventRecord& e) {
  return e.flow != 0 &&
         (e.kind == EventKind::FlowEnd || e.kind == EventKind::Span);
}

/// Events recorded at the last flush; the atexit hook re-flushes only when
/// this falls behind Tracer::recorded() (i.e. a Runtime shutdown did not
/// already export everything).
std::atomic<std::uint64_t> g_flushed_at{0};

}  // namespace

void write_trace_event_array(std::ostream& os,
                             const std::vector<EventRecord>& events,
                             bool thread_names) {
  // A flow arrow needs both endpoints in the output: under keep-first
  // drops (or an exemplar's truncated subtree) one side can be missing,
  // and an unpaired "s"/"f" renders as a dangling arrow (and violates the
  // exactly-one-match invariant the tests enforce).  Two passes: collect
  // ids seen on each side, emit the intersection.
  std::unordered_set<std::uint64_t> origins;
  std::unordered_set<std::uint64_t> targets;
  for (const EventRecord& e : events) {
    if (is_flow_origin(e)) origins.insert(e.flow);
    if (is_flow_target(e)) targets.insert(e.flow);
  }
  const auto matched = [&](const EventRecord& e) {
    return origins.count(e.flow) != 0 && targets.count(e.flow) != 0;
  };

  os << "[\n";
  bool first = true;

  if (thread_names) {
    std::set<std::int64_t> tids;
    for (const EventRecord& e : events) tids.insert(tid_of(e.vp));
    for (const std::int64_t tid : tids) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\""
         << json::escape(tid == kExternalTid ? std::string("external")
                                             : "vp " + std::to_string(tid))
         << "\"}}";
    }
  }

  for (const EventRecord& e : events) {
    if (e.kind == EventKind::FlowStart || e.kind == EventKind::FlowEnd) {
      if (matched(e)) {
        write_flow_event(os, op_name(e.op), e.flow, e.vp, e.ts_ns, e.comm,
                         e.kind == EventKind::FlowStart, first);
      }
      continue;
    }
    write_event(os, e, first);
    if (e.flow == 0 || !matched(e)) continue;
    if (is_flow_origin(e)) {
      // Send side: the arrow starts at the send instant.
      write_flow_event(os, op_name(Op::MsgFlow), e.flow, e.vp, e.ts_ns,
                       e.comm, /*start=*/true, first);
    } else if (e.kind == EventKind::Span) {
      // Receive side: the message was matched when the receive span ended.
      write_flow_event(os, op_name(Op::MsgFlow), e.flow, e.vp,
                       e.ts_ns + e.dur_ns, e.comm, /*start=*/false, first);
    }
  }
  os << "\n]";
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<EventRecord> events = Tracer::instance().snapshot();

  os << "{\"traceEvents\":";
  write_trace_event_array(os, events, /*thread_names=*/true);
  // Truncation metadata rides along in the trace itself, so an offline
  // reader (tdp_trace) can warn that what it analyzed is not everything
  // that happened.  "otherData" is the Chrome trace_event escape hatch for
  // exactly this kind of sidecar.
  Tracer& tracer = Tracer::instance();
  os << ",\"displayTimeUnit\":\"ms\",\"otherData\":{\"mode\":\""
     << (tracer.mode() == TraceMode::Ring ? "ring" : "keep-first")
     << "\",\"recorded\":" << tracer.recorded()
     << ",\"dropped\":" << tracer.dropped()
     << ",\"overwritten\":" << tracer.overwritten() << "}}\n";
}

bool dump_flight_recorder(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(out);
  out.flush();
  return out.good();
}

void write_summary(std::ostream& os, const MachineStats* machine) {
  Tracer& tracer = Tracer::instance();
  os << "== tdp::obs summary ==\n";
  os << "trace events: " << tracer.recorded() << " recorded, ";
  if (tracer.mode() == TraceMode::Ring) {
    os << tracer.overwritten() << " overwritten (ring, capacity "
       << tracer.capacity() << ")\n";
  } else {
    os << tracer.dropped() << " dropped (capacity " << tracer.capacity()
       << ")\n";
  }
  if (tracer.mode() == TraceMode::KeepFirst && tracer.dropped() != 0) {
    os << "WARNING: " << tracer.dropped()
       << " events were DROPPED past capacity — the exported trace ends "
          "early.\n"
       << "  Raise TDP_OBS_CAPACITY or set TDP_OBS_MODE=ring to keep the "
          "most recent events instead.\n";
  }

  std::ostringstream counters;
  std::ostringstream histograms;
  std::ostringstream gauges;
  Registry::instance().visit(
      [&](const std::string& name, const ShardedCounter& c) {
        counters << "  " << std::left << std::setw(28) << name << std::right
                 << std::setw(14) << c.value() << "\n";
      },
      [&](const std::string& name, const Histogram& h) {
        if (h.count() == 0) return;
        histograms << "  " << std::left << std::setw(28) << name << std::right
                   << std::setw(10) << h.count() << std::setw(12)
                   << h.percentile(0.50) << std::setw(12) << h.percentile(0.90)
                   << std::setw(12) << h.percentile(0.99) << std::setw(12)
                   << h.max() << "\n";
      },
      [&](const std::string& name, const MaxGauge& g) {
        if (g.max() == 0) return;
        gauges << "  " << std::left << std::setw(28) << name << std::right
               << std::setw(14) << g.max() << "\n";
      });
  if (!counters.str().empty()) {
    os << "counters:\n" << counters.str();
  }
  if (!histograms.str().empty()) {
    os << "histograms:" << std::string(17, ' ') << std::right << std::setw(10)
       << "count" << std::setw(12) << "p50" << std::setw(12) << "p90"
       << std::setw(12) << "p99" << std::setw(12) << "max" << "\n"
       << histograms.str();
  }
  if (!gauges.str().empty()) {
    os << "high-water gauges:\n" << gauges.str();
  }

  if (machine != nullptr) {
    os << "messages delivered per VP (sum must equal machine total; "
          "peak = high-water mailbox depth):\n";
    const std::vector<std::uint64_t> peaks =
        Registry::instance().gauge("mailbox.peak_depth").per_shard(
            machine->per_vp_messages.size());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < machine->per_vp_messages.size(); ++i) {
      const std::uint64_t n = machine->per_vp_messages[i];
      sum += n;
      if (n != 0) {
        os << "  vp" << i << "=" << n;
        if (i < peaks.size() && peaks[i] != 0) {
          os << " (peak " << peaks[i] << ")";
        }
      }
    }
    os << "\n  sum=" << sum << " machine_total=" << machine->total_messages
       << (sum == machine->total_messages ? " (consistent)"
                                          : " (INCONSISTENT)")
       << "\n";
  }
}

std::string per_rank_path(std::string path) {
  static const long long rank =
      util::env_int("TDP_RANK", -1, 0, 1 << 20);
  if (rank < 0) return path;
  const std::string suffix = ".rank" + std::to_string(rank);
  const std::string ext = ".json";
  if (path.size() >= ext.size() &&
      path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
    path.insert(path.size() - ext.size(), suffix);
  } else {
    path += suffix;
  }
  return path;
}

void flush_at_shutdown(const MachineStats* machine) {
  if (!enabled()) return;
  g_flushed_at.store(Tracer::instance().recorded(),
                     std::memory_order_relaxed);
  const char* env_path = std::getenv("TDP_OBS_TRACE");
  const std::string path = per_rank_path(
      env_path != nullptr && env_path[0] != '\0' ? env_path
                                                 : "tdp_trace.json");
  bool wrote = false;
  {
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      write_chrome_trace(out);
      wrote = out.good();
    }
  }
  // One atomic block: the summary must not interleave with concurrent
  // program output (the watchdog may still be printing, examples write
  // results to stdout as they finish).
  std::ostringstream block;
  write_summary(block, machine);
  if (wrote) {
    block << "chrome trace written to " << path
          << " (open in chrome://tracing or ui.perfetto.dev)\n";
  } else {
    block << "chrome trace NOT written: cannot open " << path
          << " (set TDP_OBS_TRACE to a writable path)\n";
  }
  util::atomic_print_err(block.str());
}

void register_atexit_flush() {
  static std::atomic<bool> registered{false};
  if (registered.exchange(true, std::memory_order_relaxed)) return;
  // Exit handlers run in reverse registration order.  The flush reads the
  // tracer and the registry, so both singletons must be constructed — and
  // their destructors thereby registered — BEFORE our handler, or the
  // flush would read freed maps at exit.
  Tracer::instance();
  Registry::instance();
  std::atexit([] {
    if (!enabled()) return;
    // A normal run flushed at Runtime teardown and recorded nothing since;
    // re-flushing would only duplicate the summary.  Flush only when
    // events exist that no exporter has seen — the abandoned-mid-run case.
    const std::uint64_t recorded = Tracer::instance().recorded();
    if (recorded == 0 ||
        recorded == g_flushed_at.load(std::memory_order_relaxed)) {
      return;
    }
    util::atomic_print_err(
        "tdp::obs: flushing trace at exit (" +
        std::to_string(recorded -
                       g_flushed_at.load(std::memory_order_relaxed)) +
        " events since last flush)");
    flush_at_shutdown(nullptr);
  });
}

}  // namespace tdp::obs
