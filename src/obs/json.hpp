// tdp::obs::json — the one JSON reader/escaper shared by every obs surface.
//
// Three consumers, one grammar: the offline trace analyzer
// (obs/analyze.cpp) loads Chrome trace_event documents, the telemetry
// round-trip tests parse the exposition endpoint's time-series dump, and
// tools/tdp_top parses the same dump over the live socket.  Keeping the
// parser here (no external JSON dependency) means the exporters and the
// readers agree on exactly one dialect — and the escaper below is the
// single place a string enters a JSON document, so "parses cleanly" is a
// property of the pair, testable as a round trip.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tdp::obs::json {

/// A parsed JSON value.  Objects preserve key order (the exporters write
/// deterministic documents; tests diff them).
struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num_or(const std::string& key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->type == Type::Number ? v->number : fallback;
  }
  std::string str_or(const std::string& key) const {
    const Value* v = find(key);
    return v != nullptr && v->type == Type::String ? v->string : std::string();
  }
};

/// Incremental reader over a JSON text.  The trace analyzer streams the
/// traceEvents array element-by-element through this (one small Value per
/// event, converted and discarded) instead of building a DOM for the whole
/// document; parse() below is the whole-document convenience wrapper.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  /// Records the first error with its input offset; returns false so call
  /// sites can `return fail(...)`.
  bool fail(const std::string& what);
  const std::string& error() const { return error_; }

  void skip_ws();
  /// Peeks the next non-whitespace character without consuming it.
  bool peek(char& c);
  bool consume(char expected);
  bool parse_string(std::string& out);
  bool parse_value(Value& out);
  std::size_t pos() const { return pos_; }

 private:
  bool literal(const char* word);

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Parses a complete JSON document.  Returns false and fills *error on
/// malformed input (trailing garbage after the document is also an error).
bool parse(const std::string& text, Value& out, std::string* error);

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, common control characters
/// use their short escapes, and everything else below 0x20 becomes \u00XX.
/// parse() inverts this exactly — the round trip the exporter tests assert.
std::string escape(std::string_view s);

}  // namespace tdp::obs::json
