// tdp::obs — low-overhead event tracing for the whole runtime.
//
// The thesis's performance chapters (distributed-call overhead, array-manager
// cost, reduction trees) attribute cost to a virtual processor, a
// communicator, and a phase of a distributed call.  This module is the
// substrate for that attribution: a sharded, lock-free buffer of fixed-size
// POD event records plus RAII span helpers, designed so that
//
//  * the *disabled* path is a single relaxed atomic load and branch
//    (TDP_OBS unset), and can be compiled out entirely (-DTDP_OBS_DISABLED,
//    CMake -DTDP_OBS_ENABLE=OFF);
//  * the *enabled* path is wait-free per event: claim a slot with one
//    fetch_add, write the record, publish with one release fetch_add.  No
//    mutex is ever taken while emitting, so instrumentation may run inside
//    the mailbox monitor without lock-order concerns;
//  * records are kept first-come: once a shard is full further events are
//    counted as dropped rather than overwriting earlier ones, which keeps
//    every slot single-writer (the property that makes the tracer TSan-clean
//    and loss-free up to capacity).
//
// Shards are selected by the emitting thread's virtual-processor placement
// (obs::current_vp — the canonical thread-local behind vp::current_proc),
// so concurrent virtual processors do not contend on one buffer head.
//
// Flight-recorder mode (TDP_OBS_MODE=ring) inverts the retention policy:
// each shard becomes a ring that keeps the *last* N events, so a
// long-running service always has recent history to dump on demand
// (SIGUSR1, a watchdog stall, or obs::dump_flight_recorder) instead of
// going blind after the first TDP_OBS_CAPACITY events.  Overwriting makes
// slots multi-writer, so the ring path serialises each shard's emit under
// a tiny per-shard mutex — contended only by threads that map to the same
// shard (one VP per shard up to 64 VPs), i.e. effectively never — which
// keeps the mode TSan-clean by construction.  Keep-first mode stays on the
// wait-free lock-free path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tdp::obs {

class Histogram;  // metrics.hpp; spans can feed a latency histogram

#ifdef TDP_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Every traced operation in the runtime; keep in sync with op_name().
enum class Op : std::uint16_t {
  None = 0,        ///< zero-initialised (unwritten) slot; never exported
  MsgSend,         ///< vp::Machine::send delivered a message
  MsgRecv,         ///< vp::Mailbox::receive span (duration = wait + match)
  RecvMiss,        ///< selective receive scanned the queue and had to block
  QueueDepth,      ///< mailbox queue-depth gauge sample (counter event)
  PostAfterClose,  ///< a send raced teardown: posted into a closed mailbox
  CallMarshal,     ///< distributed call: argument marshal phase
  CallExecute,     ///< distributed call: one copy's SPMD execute phase
  CallCombine,     ///< distributed call: status/reduction combine phase
  CallSlow,        ///< slow-call exemplar captured (arg0 latency ns, arg1
                   ///< subtree size); comm = the call-root id
  AmCreate,        ///< array manager: create_array
  AmFree,          ///< array manager: free_array
  AmRead,          ///< array manager: read_element
  AmWrite,         ///< array manager: write_element
  AmFindLocal,     ///< array manager: find_local
  AmFindInfo,      ///< array manager: find_info
  AmVerify,        ///< array manager: verify_array
  AmReadSection,   ///< array manager: read_section (bulk interior snapshot)
  AmWriteSection,  ///< array manager: write_section (bulk interior overwrite)
  AmMigrate,       ///< array manager: migrate_shard (arg1 = payload bytes)
  AmRebalance,     ///< array manager: rebalance (arg1 = shards moved)
  AmShardForward,  ///< a stale owner table re-routed a shard request
  DoAllCopy,       ///< core::do_all: one fanned-out copy
  DpAssign,        ///< dp::multiple_assign statement
  DpParallelFor,   ///< dp::parallel_for statement
  MsgFlow,         ///< causal send→receive link (Chrome flow event pair)
  WdQueued,        ///< watchdog: total queued messages across VPs (counter)
  WdBlocked,       ///< watchdog: VPs blocked in receive (counter)
  CollBarrier,     ///< spmd collective: barrier
  CollBcast,       ///< spmd collective: broadcast
  CollReduce,      ///< spmd collective: reduce
  CollAllreduce,   ///< spmd collective: allreduce
  CollGather,      ///< spmd collective: gather
  CollAllgather,   ///< spmd collective: allgather
  CollScan,        ///< spmd collective: scan
  CollAlltoall,    ///< spmd collective: all-to-all exchange
  FaultDrop,       ///< fault injector: message or request dropped
  FaultDelay,      ///< fault injector: message delayed before delivery
  FaultDup,        ///< fault injector: message duplicated
  FaultReorder,    ///< fault injector: message stashed for a pairwise swap
  FaultTimeout,    ///< a deadline-aware receive or request reply timed out
  FaultRetry,      ///< bounded-retry path re-issued a server request
  kCount_
};

const char* op_name(Op op);      ///< e.g. "call.execute"
const char* op_category(Op op);  ///< e.g. "call" (Chrome trace "cat")

enum class EventKind : std::uint8_t {
  Instant = 0,    ///< point event ("ph":"i")
  Span = 1,       ///< complete event with duration ("ph":"X")
  Counter = 2,    ///< gauge sample ("ph":"C")
  FlowStart = 3,  ///< causal flow origin ("ph":"s"); flow holds the id
  FlowEnd = 4,    ///< causal flow target ("ph":"f"); flow holds the id
};

/// Fixed-size POD trace record.  56 bytes; written exactly once per slot.
struct EventRecord {
  std::uint64_t ts_ns = 0;   ///< start time, ns since trace epoch
  std::uint64_t dur_ns = 0;  ///< span duration; 0 for instants/counters
  std::uint64_t comm = 0;    ///< communicator (distributed-call) id; 0 = none
  std::uint64_t flow = 0;    ///< causal flow id (send→receive link); 0 = none
  std::uint64_t arg0 = 0;    ///< op-specific payload (dst proc, bytes, ...)
  std::uint64_t arg1 = 0;    ///< op-specific payload (tag, depth, ...)
  std::int32_t vp = -1;      ///< emitting virtual processor; -1 = external
  Op op = Op::None;
  EventKind kind = EventKind::Instant;
};

namespace detail {
extern thread_local int t_current_vp;
bool init_enabled();
extern std::atomic<int> g_enabled;  // -1 = uninitialised, else 0/1
}  // namespace detail

/// The virtual processor the calling thread is placed on (-1 = none).  This
/// is the canonical placement thread-local; vp::current_proc() forwards here
/// so tracing needs no dependency on the vp layer.
inline int current_vp() { return detail::t_current_vp; }

/// Sets the calling thread's placement; returns the previous value
/// (vp::ProcScope uses this pair).
inline int set_current_vp(int vp) {
  const int old = detail::t_current_vp;
  detail::t_current_vp = vp;
  return old;
}

/// True when observability is on: TDP_OBS=1 in the environment (cached on
/// first call) or set_enabled(true).  Always false when compiled out.
inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  const int v = detail::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return detail::init_enabled();
}

/// Programmatic override of the TDP_OBS kill switch (tests, embedders).
void set_enabled(bool on);

/// Nanoseconds since the process's trace epoch (steady clock).
std::uint64_t now_ns();

/// Trace retention policy (TDP_OBS_MODE).  KeepFirst is the historical
/// post-mortem behaviour: fill the buffer once, count everything after as
/// dropped.  Ring is the flight recorder: keep the most recent events,
/// count everything displaced as overwritten.
enum class TraceMode : int {
  KeepFirst = 0,
  Ring = 1,
};

/// The mode new Tracer state uses: a set_trace_mode() override if one is in
/// effect, else TDP_OBS_MODE from the environment ("keep"/"ring", cached on
/// first read; unknown values warn once and fall back to keep-first).
TraceMode trace_mode();

/// Programmatic override of TDP_OBS_MODE (tests, benches, embedders).  NOT
/// thread-safe versus concurrent emitters — call at startup or between
/// runs, like Tracer::reset.
void set_trace_mode(TraceMode mode);

/// A fresh causal flow id, never 0.  Composed of the process's launch
/// rank (when TDP_RANK is set), the calling thread's virtual-processor
/// shard, and that shard's monotonic send sequence
/// ((rank+1) << 47 | (shard+1) << 40 | seq), so ids are unique across a
/// multi-process launch, stay below 2^53 (exact in JSON doubles), and
/// encode per-VP send order — the trace context vp::Machine::send stamps
/// into the message envelope.
std::uint64_t next_flow_id();

/// The process-wide trace buffer: kShards independent fixed-capacity
/// single-use buffers.  Emitting is wait-free; reading (snapshot) is meant
/// for quiescent points — export at Runtime shutdown, tests after join.
class Tracer {
 public:
  static constexpr std::size_t kShards = 64;

  static Tracer& instance();

  /// Records one event (caller has already checked enabled()).
  void emit(const EventRecord& rec);

  /// All committed records, merged across shards and sorted by timestamp.
  /// In keep-first mode call only when emitters are quiescent; in ring mode
  /// the per-shard mutex makes a concurrent snapshot safe (each shard is
  /// internally consistent; cross-shard skew is bounded by the copy time),
  /// which is what lets the flight recorder dump a *live* service.
  std::vector<EventRecord> snapshot() const;

  std::uint64_t recorded() const;     ///< events stored (ever)
  std::uint64_t dropped() const;      ///< keep-first: events lost past capacity
  std::uint64_t overwritten() const;  ///< ring: events displaced by newer ones

  /// The retention policy this tracer is currently using.
  TraceMode mode() const { return mode_; }

  /// Total record capacity across shards.
  std::size_t capacity() const { return shard_capacity_ * kShards; }

  /// Clears all shards; `capacity_per_shard` > 0 also resizes them.  The
  /// retention mode is re-read from trace_mode() (so set_trace_mode takes
  /// effect on the next reset).  NOT thread-safe versus concurrent
  /// emitters — tests and startup only.
  void reset(std::size_t capacity_per_shard = 0);

 private:
  Tracer();

  struct alignas(64) Shard {
    std::atomic<EventRecord*> slots{nullptr};  // lazily allocated
    std::atomic<std::uint64_t> head{0};        // claims (may exceed capacity)
    std::atomic<std::uint64_t> committed{0};   // fully-written records
    std::atomic<std::uint64_t> dropped{0};
    /// Ring mode only: serialises slot writes (overwrites make slots
    /// multi-writer) and snapshot reads against them.  Never touched on
    /// the keep-first path.
    std::mutex ring_mutex;
  };

  EventRecord* slots_for(Shard& s);
  static std::size_t shard_index(int vp) {
    return vp >= 0 ? static_cast<std::size_t>(vp) % kShards : kShards - 1;
  }

  std::size_t shard_capacity_;
  TraceMode mode_;
  mutable Shard shards_[kShards];
};

namespace detail {
void emit_event(Op op, EventKind kind, std::uint64_t comm, std::uint64_t flow,
                std::uint64_t arg0, std::uint64_t arg1, int vp);
}  // namespace detail

/// Point event on the calling thread's virtual processor.
inline void instant(Op op, std::uint64_t comm = 0, std::uint64_t arg0 = 0,
                    std::uint64_t arg1 = 0) {
  if (!kCompiledIn || !enabled()) return;
  detail::emit_event(op, EventKind::Instant, comm, 0, arg0, arg1,
                     current_vp());
}

/// Point event carrying a causal flow id (the send side of a message: the
/// exporter pairs it with the receive span sharing `flow` and draws the
/// arrow).
inline void instant_flow(Op op, std::uint64_t flow, std::uint64_t comm = 0,
                         std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) {
  if (!kCompiledIn || !enabled()) return;
  detail::emit_event(op, EventKind::Instant, comm, flow, arg0, arg1,
                     current_vp());
}

/// Explicit Chrome flow endpoints for causal links that are not messages
/// (distributed-call spawn → execute, execute → combine).  Each id must
/// appear in exactly one flow_start and one flow_end.
inline void flow_start(Op op, std::uint64_t flow, std::uint64_t comm = 0) {
  if (!kCompiledIn || !enabled()) return;
  detail::emit_event(op, EventKind::FlowStart, comm, flow, 0, 0,
                     current_vp());
}
inline void flow_end(Op op, std::uint64_t flow, std::uint64_t comm = 0) {
  if (!kCompiledIn || !enabled()) return;
  detail::emit_event(op, EventKind::FlowEnd, comm, flow, 0, 0, current_vp());
}

/// Gauge sample attributed to an explicit virtual processor (e.g. a mailbox
/// owner, regardless of which thread posted).
inline void counter_sample(Op op, std::uint64_t value, int vp) {
  if (!kCompiledIn || !enabled()) return;
  detail::emit_event(op, EventKind::Counter, 0, 0, value, 0, vp);
}

/// RAII span: captures the start time on construction and emits one complete
/// event (and optionally a latency histogram sample) on destruction.  When
/// observability is off, construction is one branch and destruction another.
class Span {
 public:
  explicit Span(Op op, std::uint64_t comm = 0, std::uint64_t arg0 = 0,
                Histogram* latency = nullptr)
      : op_(op),
        comm_(comm),
        arg0_(arg0),
        latency_(latency),
        armed_(kCompiledIn && enabled()) {
    if (armed_) start_ = now_ns();
  }
  ~Span() {
    if (armed_) finish_impl();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Late-bound payload (e.g. the communicator of the matched message).
  void set_comm(std::uint64_t comm) { comm_ = comm; }
  void set_arg0(std::uint64_t v) { arg0_ = v; }
  void set_arg1(std::uint64_t v) { arg1_ = v; }

  /// Late-bound causal flow id (the matched message's trace context); the
  /// exporter emits the flow target at this span's end timestamp.
  void set_flow(std::uint64_t flow) { flow_ = flow; }

  /// Ends the span now (idempotent; the destructor then does nothing).
  void finish() {
    if (armed_) finish_impl();
  }

 private:
  void finish_impl();  // out-of-line: touches Tracer and Histogram

  Op op_;
  std::uint64_t comm_;
  std::uint64_t arg0_;
  std::uint64_t arg1_ = 0;
  std::uint64_t flow_ = 0;
  std::uint64_t start_ = 0;
  Histogram* latency_;
  bool armed_;
};

}  // namespace tdp::obs
