#include "obs/attr.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace tdp::obs {

namespace {

Histogram& latency_hist() {
  static Histogram& h = Registry::instance().histogram("call.latency_ns");
  return h;
}

/// Minimum spacing between *reservoir* captures (under-threshold calls
/// displacing the retained minimum).  Each capture snapshots the whole
/// trace ring; without this, a steady stream of near-identical calls would
/// churn the top-K store — and pay a snapshot — on every completion.
constexpr std::uint64_t kReservoirCooldownNs = 1000000000ull;  // 1 s

}  // namespace

const char* call_kind_name(CallKind k) {
  return k == CallKind::DoAll ? "do_all" : "call";
}

CallTable& CallTable::instance() {
  // Ordered after the singletons capture and fold-in read, so both outlive
  // the table's last use at shutdown.
  Tracer::instance();
  Registry::instance();
  static CallTable table;
  return table;
}

std::uint64_t CallTable::env_slow_ms() {
  return static_cast<std::uint64_t>(
      util::env_int("TDP_OBS_SLOW_MS", 0, 0,
                    std::numeric_limits<long long>::max()));
}

void CallTable::set_slow_threshold_ms(std::uint64_t ms) {
  threshold_override_ms_.store(ms, std::memory_order_relaxed);
  threshold_overridden_.store(true, std::memory_order_relaxed);
}

std::uint64_t CallTable::slow_threshold_ms() const {
  if (threshold_overridden_.load(std::memory_order_relaxed)) {
    return threshold_override_ms_.load(std::memory_order_relaxed);
  }
  static const std::uint64_t env = env_slow_ms();
  return env;
}

void CallTable::call_begin(std::uint64_t id, CallKind kind, int copies) {
  if (id == 0) return;
  CallRecord rec;
  rec.id = id;
  rec.kind = kind;
  rec.copies = copies;
  rec.start_ns = now_ns();
  Shard& s = shard_for(id);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.active.emplace(id, rec);
  }
  started_.fetch_add(1, std::memory_order_relaxed);
}

void CallTable::add_marshal(std::uint64_t id, std::uint64_t ns) {
  if (id == 0) return;
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (auto it = s.active.find(id); it != s.active.end()) {
    it->second.phases.marshal_ns += ns;
  }
}

void CallTable::add_exec(std::uint64_t id, std::uint64_t ns) {
  if (id == 0) return;
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (auto it = s.active.find(id); it != s.active.end()) {
    it->second.phases.exec_ns += ns;
  }
}

void CallTable::on_delivery(std::uint64_t id, std::uint64_t queue_ns,
                            std::uint64_t bytes, std::uint64_t blocked_ns) {
  if (id == 0) return;
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (auto it = s.active.find(id); it != s.active.end()) {
    it->second.phases.queue_ns += queue_ns;
    it->second.phases.blocked_ns += blocked_ns;
    it->second.phases.copy_bytes += bytes;
    it->second.phases.messages += 1;
  }
}

void CallTable::add_statement(std::uint64_t id) {
  if (id == 0) return;
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (auto it = s.active.find(id); it != s.active.end()) {
    it->second.phases.dp_statements += 1;
  }
}

void CallTable::call_end(std::uint64_t id) {
  if (id == 0) return;
  CallRecord rec;
  {
    Shard& s = shard_for(id);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.active.find(id);
    if (it == s.active.end()) return;  // never began, or already ended
    rec = it->second;
    s.active.erase(it);
  }
  rec.end_ns = now_ns();
  completed_.fetch_add(1, std::memory_order_relaxed);
  latency_hist().record(rec.latency_ns());
  if (slow_threshold_ms() != 0) maybe_capture(rec);
}

void CallTable::maybe_capture(const CallRecord& rec) {
  const std::uint64_t threshold_ns = slow_threshold_ms() * 1000000ull;
  const bool over = rec.latency_ns() >= threshold_ns;

  std::lock_guard<std::mutex> lock(exemplar_mu_);
  std::size_t evict = exemplars_.size();  // "none"
  bool take = false;
  if (exemplars_.size() < kMaxExemplars) {
    // Reservoir not yet full: every completion is, so far, a top-K call.
    take = true;
  } else {
    // Full: admit only calls strictly slower than the retained minimum —
    // the store converges on the K slowest calls seen.
    std::size_t min_i = 0;
    for (std::size_t i = 1; i < exemplars_.size(); ++i) {
      if (exemplars_[i].call.latency_ns() <
          exemplars_[min_i].call.latency_ns()) {
        min_i = i;
      }
    }
    if (rec.latency_ns() > exemplars_[min_i].call.latency_ns()) {
      take = true;
      evict = min_i;
    }
  }
  if (take && !over) {
    if (last_reservoir_capture_ns_ != 0 &&
        rec.end_ns - last_reservoir_capture_ns_ < kReservoirCooldownNs) {
      take = false;
    } else {
      last_reservoir_capture_ns_ = rec.end_ns;
    }
  }
  if (!take) return;

  Exemplar ex;
  ex.call = rec;
  ex.over_threshold = over;
  // The call's causal span subtree: every ring event stamped with its comm
  // (execute/combine spans, the receive spans that matched its messages,
  // the send instants, dp statements).  Snapshot is timestamp-sorted, so a
  // cap keeps the newest tail — ring semantics, applied per call.
  const std::vector<EventRecord> snap = Tracer::instance().snapshot();
  for (const EventRecord& e : snap) {
    if (e.comm != rec.id) continue;
    ++ex.subtree_events;
    ex.events.push_back(e);
  }
  if (ex.events.size() > kMaxExemplarEvents) {
    ex.events.erase(ex.events.begin(),
                    ex.events.end() -
                        static_cast<std::ptrdiff_t>(kMaxExemplarEvents));
  }
  ex.captured_events = ex.events.size();
  captured_.fetch_add(1, std::memory_order_relaxed);
  instant(Op::CallSlow, rec.id, rec.latency_ns(), ex.subtree_events);

  if (evict < exemplars_.size()) {
    exemplars_.erase(exemplars_.begin() + static_cast<std::ptrdiff_t>(evict));
  }
  exemplars_.push_back(std::move(ex));
  std::sort(exemplars_.begin(), exemplars_.end(),
            [](const Exemplar& a, const Exemplar& b) {
              return a.call.latency_ns() > b.call.latency_ns();
            });
}

std::uint64_t CallTable::started() const {
  return started_.load(std::memory_order_relaxed);
}
std::uint64_t CallTable::completed() const {
  return completed_.load(std::memory_order_relaxed);
}
std::uint64_t CallTable::captured() const {
  return captured_.load(std::memory_order_relaxed);
}

std::vector<ExemplarSummary> CallTable::exemplar_summaries() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  std::vector<ExemplarSummary> out;
  out.reserve(exemplars_.size());
  for (const Exemplar& ex : exemplars_) {
    out.push_back(static_cast<const ExemplarSummary&>(ex));
  }
  return out;
}

std::vector<Exemplar> CallTable::exemplars() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplars_;
}

std::string CallTable::render_exemplars_json() const {
  const std::vector<Exemplar> exs = exemplars();
  std::ostringstream os;
  os << "{\"slow_ms\":" << slow_threshold_ms() << ",\"started\":" << started()
     << ",\"completed\":" << completed() << ",\"captured\":" << captured()
     << ",\"exemplars\":[";
  bool first = true;
  for (const Exemplar& ex : exs) {
    if (!first) os << ",";
    first = false;
    const CallPhases& p = ex.call.phases;
    os << "{\"call_id\":" << ex.call.id << ",\"kind\":\""
       << call_kind_name(ex.call.kind) << "\",\"copies\":" << ex.call.copies
       << ",\"over_threshold\":" << (ex.over_threshold ? 1 : 0)
       << ",\"start_ns\":" << ex.call.start_ns
       << ",\"end_ns\":" << ex.call.end_ns
       << ",\"latency_ns\":" << ex.call.latency_ns()
       << ",\"phases\":{\"marshal_ns\":" << p.marshal_ns
       << ",\"queue_ns\":" << p.queue_ns << ",\"blocked_ns\":" << p.blocked_ns
       << ",\"exec_ns\":" << p.exec_ns
       << ",\"compute_ns\":" << p.compute_ns()
       << ",\"copy_bytes\":" << p.copy_bytes << ",\"messages\":" << p.messages
       << ",\"dp_statements\":" << p.dp_statements << "}"
       << ",\"subtree_events\":" << ex.subtree_events
       << ",\"captured_events\":" << ex.captured_events << ",\"events\":";
    write_trace_event_array(os, ex.events, /*thread_names=*/false);
    os << "}";
  }
  os << "]}";
  return os.str();
}

void CallTable::reset_for_test() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.active.clear();
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    exemplars_.clear();
    last_reservoir_capture_ns_ = 0;
  }
  started_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  captured_.store(0, std::memory_order_relaxed);
  threshold_overridden_.store(false, std::memory_order_relaxed);
  threshold_override_ms_.store(0, std::memory_order_relaxed);
}

}  // namespace tdp::obs
