#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace tdp::obs {

namespace detail {

thread_local int t_current_vp = -1;
std::atomic<int> g_enabled{-1};

bool init_enabled() {
  const char* env = std::getenv("TDP_OBS");
  const bool on =
      env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  const bool enabled = g_enabled.load(std::memory_order_relaxed) != 0;
  if (enabled) register_atexit_flush();
  return enabled;
}

void emit_event(Op op, EventKind kind, std::uint64_t comm, std::uint64_t flow,
                std::uint64_t arg0, std::uint64_t arg1, int vp) {
  EventRecord rec;
  rec.ts_ns = now_ns();
  rec.dur_ns = 0;
  rec.comm = comm;
  rec.flow = flow;
  rec.arg0 = arg0;
  rec.arg1 = arg1;
  rec.vp = vp;
  rec.op = op;
  rec.kind = kind;
  Tracer::instance().emit(rec);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  if (on) register_atexit_flush();
}

std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint64_t next_flow_id() {
  // One monotonic sequence per tracer shard; sharding by the sending VP
  // keeps concurrent senders off each other's cache line, exactly like the
  // event buffer itself.
  struct alignas(64) Seq {
    std::atomic<std::uint64_t> v{0};
  };
  static Seq seqs[Tracer::kShards];
  const int vp = current_vp();
  const std::size_t shard =
      vp >= 0 ? static_cast<std::size_t>(vp) % Tracer::kShards
              : Tracer::kShards - 1;
  const std::uint64_t seq =
      seqs[shard].v.fetch_add(1, std::memory_order_relaxed) + 1;
  // Under a multi-process launch (TDP_TRANSPORT=uds) every rank runs this
  // same generator, so process-uniqueness is not enough: a flow id must be
  // unique across the launched set or merged per-rank traces would pair
  // the wrong send/receive arrows.  Fold the rank into bits 47..52 — six
  // bits keeps ids below 2^53 (exact in JSON doubles); launches wider than
  // 62 ranks alias rank bits, which degrades cross-rank pairing but never
  // breaks within-rank ids.
  static const std::uint64_t rank_bits = [] {
    const long long rank = util::env_int("TDP_RANK", -1, 0, 1 << 20);
    return rank >= 0 ? ((static_cast<std::uint64_t>(rank) + 1) & 0x3F) << 47
                     : std::uint64_t{0};
  }();
  return rank_bits | ((static_cast<std::uint64_t>(shard) + 1) << 40) | seq;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::None: return "none";
    case Op::MsgSend: return "vp.send";
    case Op::MsgRecv: return "vp.recv";
    case Op::RecvMiss: return "vp.recv_miss";
    case Op::QueueDepth: return "vp.queue_depth";
    case Op::PostAfterClose: return "vp.post_after_close";
    case Op::CallMarshal: return "call.marshal";
    case Op::CallExecute: return "call.execute";
    case Op::CallCombine: return "call.combine";
    case Op::CallSlow: return "call.slow";
    case Op::AmCreate: return "am.create_array";
    case Op::AmFree: return "am.free_array";
    case Op::AmRead: return "am.read_element";
    case Op::AmWrite: return "am.write_element";
    case Op::AmFindLocal: return "am.find_local";
    case Op::AmFindInfo: return "am.find_info";
    case Op::AmVerify: return "am.verify_array";
    case Op::AmReadSection: return "am.read_section";
    case Op::AmWriteSection: return "am.write_section";
    case Op::AmMigrate: return "am.migrate_shard";
    case Op::AmRebalance: return "am.rebalance";
    case Op::AmShardForward: return "am.shard_forward";
    case Op::DoAllCopy: return "do_all.copy";
    case Op::DpAssign: return "dp.multiple_assign";
    case Op::DpParallelFor: return "dp.parallel_for";
    case Op::MsgFlow: return "vp.msg";
    case Op::WdQueued: return "watchdog.queued_msgs";
    case Op::WdBlocked: return "watchdog.blocked_vps";
    case Op::CollBarrier: return "coll.barrier";
    case Op::CollBcast: return "coll.broadcast";
    case Op::CollReduce: return "coll.reduce";
    case Op::CollAllreduce: return "coll.allreduce";
    case Op::CollGather: return "coll.gather";
    case Op::CollAllgather: return "coll.allgather";
    case Op::CollScan: return "coll.scan";
    case Op::CollAlltoall: return "coll.alltoall";
    case Op::FaultDrop: return "fault.drop";
    case Op::FaultDelay: return "fault.delay";
    case Op::FaultDup: return "fault.dup";
    case Op::FaultReorder: return "fault.reorder";
    case Op::FaultTimeout: return "fault.timeout";
    case Op::FaultRetry: return "fault.retry";
    case Op::kCount_: break;
  }
  return "unknown";
}

const char* op_category(Op op) {
  switch (op) {
    case Op::MsgSend:
    case Op::MsgRecv:
    case Op::RecvMiss:
    case Op::QueueDepth:
    case Op::PostAfterClose:
      return "vp";
    case Op::CallMarshal:
    case Op::CallExecute:
    case Op::CallCombine:
    case Op::CallSlow:
      return "call";
    case Op::AmCreate:
    case Op::AmFree:
    case Op::AmRead:
    case Op::AmWrite:
    case Op::AmFindLocal:
    case Op::AmFindInfo:
    case Op::AmVerify:
    case Op::AmReadSection:
    case Op::AmWriteSection:
    case Op::AmMigrate:
    case Op::AmRebalance:
    case Op::AmShardForward:
      return "am";
    case Op::DoAllCopy:
      return "do_all";
    case Op::DpAssign:
    case Op::DpParallelFor:
      return "dp";
    case Op::MsgFlow:
      return "flow";
    case Op::WdQueued:
    case Op::WdBlocked:
      return "watchdog";
    case Op::CollBarrier:
    case Op::CollBcast:
    case Op::CollReduce:
    case Op::CollAllreduce:
    case Op::CollGather:
    case Op::CollAllgather:
    case Op::CollScan:
    case Op::CollAlltoall:
      return "coll";
    case Op::FaultDrop:
    case Op::FaultDelay:
    case Op::FaultDup:
    case Op::FaultReorder:
    case Op::FaultTimeout:
    case Op::FaultRetry:
      return "fault";
    default:
      return "misc";
  }
}

namespace {

// -1 = no override; read TDP_OBS_MODE (cached) instead.
std::atomic<int> g_mode_override{-1};

TraceMode mode_from_env() {
  static const TraceMode cached = [] {
    const char* env = std::getenv("TDP_OBS_MODE");
    if (env == nullptr || env[0] == '\0') return TraceMode::KeepFirst;
    const std::string_view v(env);
    if (v == "ring") return TraceMode::Ring;
    if (v == "keep" || v == "keep-first" || v == "first") {
      return TraceMode::KeepFirst;
    }
    std::fprintf(stderr,
                 "tdp::obs: unknown TDP_OBS_MODE '%s' (want keep|ring); "
                 "using keep-first\n",
                 env);
    return TraceMode::KeepFirst;
  }();
  return cached;
}

}  // namespace

TraceMode trace_mode() {
  const int forced = g_mode_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<TraceMode>(forced);
  return mode_from_env();
}

void set_trace_mode(TraceMode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace {

std::size_t default_shard_capacity() {
  // TDP_OBS_CAPACITY is the total record budget across all shards.
  // Checked parse: garbage and non-positive budgets warn and keep the
  // default instead of silently reading as 0.
  const std::size_t total = static_cast<std::size_t>(
      util::env_int("TDP_OBS_CAPACITY", std::int64_t{1} << 19, 1,
                    std::int64_t{1} << 32));
  const std::size_t per_shard = total / Tracer::kShards;
  return per_shard < 1024 ? 1024 : per_shard;
}

}  // namespace

Tracer::Tracer()
    : shard_capacity_(default_shard_capacity()), mode_(trace_mode()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

EventRecord* Tracer::slots_for(Shard& s) {
  EventRecord* p = s.slots.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  // Lazy allocation keeps the disabled/unused footprint at zero; a losing
  // CAS frees its buffer, so each shard allocates exactly once.
  EventRecord* fresh = new EventRecord[shard_capacity_]();
  if (s.slots.compare_exchange_strong(p, fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
    return fresh;
  }
  delete[] fresh;
  return p;
}

void Tracer::emit(const EventRecord& rec) {
  Shard& s = shards_[shard_index(rec.vp)];
  if (mode_ == TraceMode::Ring) {
    // Flight recorder: overwrite the oldest slot.  The shard mutex is
    // held only for the 56-byte copy and two plain stores; each shard is
    // effectively owned by one VP's thread, so this is uncontended.
    EventRecord* slots = slots_for(s);
    std::lock_guard<std::mutex> lock(s.ring_mutex);
    const std::uint64_t claim = s.head.load(std::memory_order_relaxed);
    slots[claim % shard_capacity_] = rec;
    s.head.store(claim + 1, std::memory_order_relaxed);
    s.committed.store(claim + 1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t claim = s.head.fetch_add(1, std::memory_order_relaxed);
  if (claim >= shard_capacity_) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_for(s)[claim] = rec;
  // Release RMW: a reader that observes committed == n synchronises with
  // every writer in the release sequence, making all n records visible.
  s.committed.fetch_add(1, std::memory_order_release);
}

std::vector<EventRecord> Tracer::snapshot() const {
  std::vector<EventRecord> out;
  for (Shard& s : shards_) {
    if (mode_ == TraceMode::Ring) {
      // Under the shard mutex the ring is consistent even against live
      // emitters; copy oldest-first.
      std::lock_guard<std::mutex> lock(s.ring_mutex);
      const EventRecord* slots = s.slots.load(std::memory_order_acquire);
      if (slots == nullptr) continue;
      const std::uint64_t head = s.head.load(std::memory_order_relaxed);
      const std::uint64_t n = std::min<std::uint64_t>(head, shard_capacity_);
      for (std::uint64_t i = head - n; i < head; ++i) {
        const EventRecord& rec = slots[i % shard_capacity_];
        if (rec.op != Op::None) out.push_back(rec);
      }
      continue;
    }
    const std::uint64_t head = s.head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, shard_capacity_);
    if (n == 0) continue;
    // At a quiescent point committed catches up to n; bound the wait so a
    // misuse (snapshot during emission) degrades instead of hanging.
    for (int spin = 0;
         s.committed.load(std::memory_order_acquire) < n && spin < 10000;
         ++spin) {
      std::this_thread::yield();
    }
    const EventRecord* slots = s.slots.load(std::memory_order_acquire);
    if (slots == nullptr) continue;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (slots[i].op != Op::None) out.push_back(slots[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.committed.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Tracer::overwritten() const {
  if (mode_ != TraceMode::Ring) return 0;
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    const std::uint64_t head = s.head.load(std::memory_order_relaxed);
    if (head > shard_capacity_) total += head - shard_capacity_;
  }
  return total;
}

void Tracer::reset(std::size_t capacity_per_shard) {
  if (capacity_per_shard > 0) shard_capacity_ = capacity_per_shard;
  mode_ = trace_mode();
  for (Shard& s : shards_) {
    delete[] s.slots.exchange(nullptr, std::memory_order_acq_rel);
    s.head.store(0, std::memory_order_relaxed);
    s.committed.store(0, std::memory_order_relaxed);
    s.dropped.store(0, std::memory_order_relaxed);
  }
}

void Span::finish_impl() {
  armed_ = false;
  const std::uint64_t end = now_ns();
  EventRecord rec;
  rec.ts_ns = start_;
  rec.dur_ns = end - start_;
  rec.comm = comm_;
  rec.flow = flow_;
  rec.arg0 = arg0_;
  rec.arg1 = arg1_;
  rec.vp = current_vp();
  rec.op = op_;
  rec.kind = EventKind::Span;
  Tracer::instance().emit(rec);
  if (latency_ != nullptr) latency_->record(rec.dur_ns);
}

}  // namespace tdp::obs
