// tdp::obs trace analysis — reads back an exported Chrome trace and turns
// it into the performance report the thesis's figures argue from.
//
// The exporter (obs/export.hpp) writes spans, instants, counters and causal
// flow pairs; this module loads that JSON through the shared obs::json
// reader (no external JSON dependency), reconstructs causality, and reports
//
//  * per-VP utilization and a blocking breakdown: time computing vs time
//    blocked in receive vs idle, plus selective-receive miss counts —
//    where each virtual processor's wall clock actually went;
//  * per distributed call, the critical path: the longest chain of
//    causally-linked spans (marshal → execute → [send → receive → execute]*
//    → combine), ranked by call makespan.  The chain follows real recorded
//    causality — flow ids stamped into message envelopes — not guesses
//    from timestamps.
//
// Used by tools/tdp_trace.cpp and replayed against synthetic traces in
// tests/obs_causal_test.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tdp::obs {

/// Truncation sidecar the exporter stamps into "otherData": how much of
/// the run the trace actually covers.  `present` is false for traces from
/// before the sidecar existed (or foreign tools) — absence of evidence,
/// not evidence of completeness.
struct TraceMeta {
  bool present = false;
  std::string mode;  ///< "keep-first" or "ring"
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;      ///< keep-first: events lost past capacity
  std::uint64_t overwritten = 0;  ///< ring: events displaced by newer ones
  bool truncated() const { return dropped != 0 || overwritten != 0; }
};

/// One event loaded back from a Chrome trace_event JSON document.
struct LoadedEvent {
  std::string name;
  std::string cat;
  std::string ph;            ///< "X", "i", "C", "s", "f", "M"
  std::int64_t tid = 0;      ///< virtual processor (or the external row)
  double ts_us = 0.0;
  double dur_us = 0.0;       ///< spans only
  std::uint64_t id = 0;      ///< flow-event id ("s"/"f")
  std::uint64_t comm = 0;    ///< args.comm
  std::uint64_t flow = 0;    ///< args.flow (send instants, receive spans)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Where one virtual processor's wall clock went.
struct VpStats {
  std::int64_t tid = 0;
  double active_us = 0.0;     ///< union of its span intervals
  double recv_wait_us = 0.0;  ///< union of its vp.recv span intervals
  double compute_us = 0.0;    ///< active - recv_wait
  std::uint64_t recv_count = 0;
  std::uint64_t recv_misses = 0;  ///< selective receives that had to block
  std::uint64_t sends = 0;
  double utilization = 0.0;   ///< compute / trace wall time
  /// Windowless receive-wait quantiles: every vp.recv span duration on
  /// this row, rebucketed log2 and interpolated through the shared
  /// Histogram::percentile_from_buckets.
  double recv_p50_us = 0.0;
  double recv_p99_us = 0.0;
};

/// One link of a critical-path chain, annotated with how it causally feeds
/// the next link ("spawn", "msg tag=3 -> vp2", "join", ...).
struct PathNode {
  std::string name;
  std::int64_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::string via;  ///< empty on the last node
};

/// One distributed call reconstructed from its comm-scoped spans.
struct CallStats {
  std::uint64_t comm = 0;
  int copies = 0;
  double makespan_us = 0.0;  ///< earliest span start → latest span end
  double path_us = 0.0;  ///< union of critical-path span intervals
  std::vector<PathNode> critical_path;
};

struct TraceReport {
  std::uint64_t events = 0;
  double wall_us = 0.0;
  std::uint64_t flow_pairs = 0;      ///< matched "s"/"f" pairs
  std::uint64_t unmatched_flows = 0; ///< ids with a missing endpoint
  std::vector<VpStats> vps;          ///< ordered by tid
  std::vector<CallStats> calls;      ///< ranked by makespan, descending
};

/// One slow-call exemplar loaded back from the attribution document the
/// exposition server's `slow` verb (and `<prefix>.slow.json`) emits: the
/// call's phase ledger plus its captured causal span subtree.
struct CallExemplar {
  std::uint64_t call_id = 0;
  std::string kind;  ///< "call" / "do_all"
  int copies = 0;
  bool over_threshold = false;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t latency_ns = 0;
  std::uint64_t marshal_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t blocked_ns = 0;
  std::uint64_t exec_ns = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t copy_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t dp_statements = 0;
  std::uint64_t subtree_events = 0;
  std::uint64_t captured_events = 0;
  std::vector<LoadedEvent> events;
};

/// Parses a Chrome trace_event document as written by write_chrome_trace
/// (object form with "traceEvents", or a bare event array).  Returns false
/// and fills *error on malformed input.  When `meta` is non-null and the
/// document carries the exporter's "otherData" truncation sidecar, fills
/// it (meta->present says whether it was found) — tdp_trace uses this to
/// warn when the analyzed trace is not the whole run.
bool load_chrome_trace(std::istream& in, std::vector<LoadedEvent>& out,
                       std::string* error, TraceMeta* meta = nullptr);

/// Parses a slow-call exemplar document (CallTable::render_exemplars_json).
/// Returns false and fills *error on malformed input; fills *slow_ms with
/// the document's armed threshold when non-null.  Exemplars come back in
/// document order (slowest first).
bool load_exemplars(std::istream& in, std::vector<CallExemplar>& out,
                    std::string* error, std::uint64_t* slow_ms = nullptr);

/// Renders one exemplar's "why was this call slow" explanation: the phase
/// attribution table and, when the captured subtree supports it, the
/// call's critical path via analyze_trace.
void write_why_report(std::ostream& os, const CallExemplar& ex);

/// Computes the report from loaded events.
TraceReport analyze_trace(const std::vector<LoadedEvent>& events);

/// Renders the report as the tdp_trace CLI prints it.
void write_report(std::ostream& os, const TraceReport& report);

}  // namespace tdp::obs
