// tdp::obs exposition — a Unix-domain-socket window into a live run.
//
// When TDP_OBS_SOCKET names a path, the runtime listens on it and answers
// one-line text commands, one connection per request (the client reads
// until EOF — no framing protocol to version):
//
//   metrics   Prometheus-style text: every registry counter/histogram plus
//             per-VP utilization rows from the telemetry sampler.
//   json      the full bounded time-series history as one JSON document
//             (counters, histogram windows, per-VP points, slow-call
//             summaries).
//   slow      the retained slow-call exemplars with their captured span
//             subtrees, as one JSON document (`tdp_trace why` input).
//   dump      triggers a flight-recorder dump (same path as SIGUSR1) and
//             replies with the trace file's path.
//
// `tools/tdp_top` is the intended client, but `nc -U` works just as well:
//
//   $ printf metrics | nc -U /tmp/tdp.sock
//
// The server owns no metric state — it renders through Telemetry and the
// registry — and its accept loop doubles as a third servicer of the
// flight-dump request flag, so SIGUSR1 works even with the sampler off.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

namespace tdp::obs {

class ExpositionServer {
 public:
  static ExpositionServer& instance();

  /// Binds `path` (an AF_UNIX socket; any stale file there is replaced)
  /// and starts the serving thread.  Returns false when the socket cannot
  /// be created; idempotent while already running.
  bool start(const std::string& path);

  /// Stops the thread, closes the socket, and removes the path.
  void stop();

  bool running() const;

  /// The bound socket path ("" when not running).
  std::string path() const;

  /// Answers one command line — the serving thread's brain, exposed so
  /// tests can exercise the protocol without a socket.
  static std::string respond(const std::string& command);

 private:
  ExpositionServer() = default;
  ~ExpositionServer();

  void run();

  mutable std::mutex mutex_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::string path_;
};

}  // namespace tdp::obs
