#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace tdp::obs::json {

bool Reader::fail(const std::string& what) {
  if (error_.empty()) {
    error_ = what + " at offset " + std::to_string(pos_);
  }
  return false;
}

void Reader::skip_ws() {
  while (pos_ < text_.size() &&
         (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
          text_[pos_] == '\r')) {
    ++pos_;
  }
}

bool Reader::peek(char& c) {
  skip_ws();
  if (pos_ >= text_.size()) return false;
  c = text_[pos_];
  return true;
}

bool Reader::consume(char expected) {
  char c = 0;
  if (!peek(c) || c != expected) {
    return fail(std::string("expected '") + expected + "'");
  }
  ++pos_;
  return true;
}

bool Reader::parse_string(std::string& out) {
  if (!consume('"')) return false;
  out.clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) break;
    const char esc = text_[pos_++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return fail("bad \\u escape");
          }
        }
        if (code < 0x80) {
          // The escaper only emits \u00XX (control characters); decode
          // those exactly and degrade non-ASCII escapes to '?' to stay
          // total on foreign input.
          out.push_back(static_cast<char>(code));
        } else {
          out.push_back('?');
        }
        break;
      }
      default: return fail("bad escape");
    }
  }
  return fail("unterminated string");
}

bool Reader::parse_value(Value& out) {
  char c = 0;
  if (!peek(c)) return fail("unexpected end of input");
  switch (c) {
    case '{': {
      out.type = Value::Type::Object;
      ++pos_;
      if (peek(c) && c == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        Value value;
        if (!parse_value(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        if (!peek(c)) return fail("unterminated object");
        if (c == ',') {
          ++pos_;
          continue;
        }
        return consume('}');
      }
    }
    case '[': {
      out.type = Value::Type::Array;
      ++pos_;
      if (peek(c) && c == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Value value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        if (!peek(c)) return fail("unterminated array");
        if (c == ',') {
          ++pos_;
          continue;
        }
        return consume(']');
      }
    }
    case '"':
      out.type = Value::Type::String;
      return parse_string(out.string);
    case 't':
      out.type = Value::Type::Bool;
      out.boolean = true;
      return literal("true");
    case 'f':
      out.type = Value::Type::Bool;
      out.boolean = false;
      return literal("false");
    case 'n':
      out.type = Value::Type::Null;
      return literal("null");
    default: {
      out.type = Value::Type::Number;
      const char* begin = text_.c_str() + pos_;
      char* end = nullptr;
      out.number = std::strtod(begin, &end);
      if (end == begin) return fail("bad number");
      pos_ += static_cast<std::size_t>(end - begin);
      return true;
    }
  }
}

bool Reader::literal(const char* word) {
  for (const char* p = word; *p != '\0'; ++p, ++pos_) {
    if (pos_ >= text_.size() || text_[pos_] != *p) {
      return fail(std::string("bad literal, expected ") + word);
    }
  }
  return true;
}

bool parse(const std::string& text, Value& out, std::string* error) {
  Reader reader(text);
  if (!reader.parse_value(out)) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  reader.skip_ws();
  if (reader.pos() != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(reader.pos());
    }
    return false;
  }
  return true;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tdp::obs::json
