#include "obs/expose.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/attr.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/atomic_print.hpp"

namespace tdp::obs {

namespace {

/// Trims whitespace/newlines around the received command.
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

void write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing to salvage
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

ExpositionServer& ExpositionServer::instance() {
  // Ordered after the singletons the serving thread renders from.
  Telemetry::instance();
  static ExpositionServer server;
  return server;
}

ExpositionServer::~ExpositionServer() { stop(); }

bool ExpositionServer::start(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_.joinable()) return true;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    util::atomic_print_err("tdp::obs: exposition socket() failed: " +
                           std::string(std::strerror(errno)));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    util::atomic_print_err("tdp::obs: TDP_OBS_SOCKET path too long: " + path);
    ::close(fd);
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a dead process
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 8) < 0) {
    util::atomic_print_err("tdp::obs: exposition bind/listen on " + path +
                           " failed: " + std::string(std::strerror(errno)));
    ::close(fd);
    return false;
  }

  listen_fd_ = fd;
  path_ = path;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
  return true;
}

void ExpositionServer::stop() {
  std::thread worker;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stopping_.store(true, std::memory_order_relaxed);
    worker = std::move(thread_);
    path = path_;
    path_.clear();
  }
  worker.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  if (!path.empty()) ::unlink(path.c_str());
}

bool ExpositionServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_.joinable();
}

std::string ExpositionServer::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

std::string ExpositionServer::respond(const std::string& command) {
  const std::string cmd = trim(command);
  if (cmd.empty() || cmd == "metrics") {
    return Telemetry::instance().render_prometheus();
  }
  if (cmd == "json") {
    return Telemetry::instance().render_json() + "\n";
  }
  if (cmd == "slow") {
    return CallTable::instance().render_exemplars_json() + "\n";
  }
  if (cmd == "dump") {
    const std::string trace_path = dump_flight_data("socket request");
    return trace_path.empty() ? std::string("error: dump failed\n")
                              : "dumped " + trace_path + "\n";
  }
  return "error: unknown command \"" + cmd +
         "\" (expected metrics, json, slow, or dump)\n";
}

void ExpositionServer::run() {
  const int fd = listen_fd_;  // stable until stop() closes it after join
  while (!stopping_.load(std::memory_order_relaxed)) {
    service_flight_dump_request();

    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR

    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) continue;

    // One short command line per connection; bound the read and give a
    // stuck client 2 s before hanging up.
    std::string command;
    char buf[256];
    while (command.find('\n') == std::string::npos && command.size() < 4096) {
      pollfd cpfd{};
      cpfd.fd = client;
      cpfd.events = POLLIN;
      if (::poll(&cpfd, 1, 2000) <= 0) break;
      const ssize_t n = ::read(client, buf, sizeof(buf));
      if (n <= 0) break;  // EOF: client sent its command and shut down
      command.append(buf, static_cast<std::size_t>(n));
    }
    write_all(client, respond(command));
    ::close(client);
  }
}

}  // namespace tdp::obs
