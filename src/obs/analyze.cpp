#include "obs/analyze.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tdp::obs {

namespace {

std::uint64_t as_u64(double v) {
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

void convert_event(const json::Value& j, LoadedEvent& e) {
  e.name = j.str_or("name");
  e.cat = j.str_or("cat");
  e.ph = j.str_or("ph");
  e.tid = static_cast<std::int64_t>(j.num_or("tid", 0.0));
  e.ts_us = j.num_or("ts", 0.0);
  e.dur_us = j.num_or("dur", 0.0);
  e.id = as_u64(j.num_or("id", 0.0));
  if (const json::Value* args = j.find("args");
      args != nullptr && args->type == json::Value::Type::Object) {
    e.comm = as_u64(args->num_or("comm", 0.0));
    e.flow = as_u64(args->num_or("flow", 0.0));
    e.arg0 = as_u64(args->num_or("arg0", 0.0));
    e.arg1 = as_u64(args->num_or("arg1", 0.0));
  }
}

/// Streams the elements of the traceEvents array without building a DOM for
/// the whole document: one small JValue per event, converted and discarded.
bool parse_event_array(json::Reader& reader, std::vector<LoadedEvent>& out) {
  if (!reader.consume('[')) return false;
  char c = 0;
  if (reader.peek(c) && c == ']') {
    return reader.consume(']');
  }
  while (true) {
    json::Value element;
    if (!reader.parse_value(element)) return false;
    if (element.type == json::Value::Type::Object) {
      LoadedEvent e;
      convert_event(element, e);
      if (e.ph != "M") out.push_back(std::move(e));  // skip metadata rows
    }
    if (!reader.peek(c)) return reader.fail("unterminated traceEvents");
    if (c == ',') {
      reader.consume(',');
      continue;
    }
    return reader.consume(']');
  }
}

// ---------------------------------------------------------------------------
// Interval arithmetic for the utilization table.

double union_length_us(std::vector<std::pair<double, double>>& intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double lo = intervals.front().first;
  double hi = intervals.front().second;
  for (const auto& [s, e] : intervals) {
    if (s > hi) {
      total += hi - lo;
      lo = s;
      hi = e;
    } else {
      hi = std::max(hi, e);
    }
  }
  return total + (hi - lo);
}

// ---------------------------------------------------------------------------
// Critical-path reconstruction.

struct CallSpans {
  const LoadedEvent* marshal = nullptr;
  const LoadedEvent* combine = nullptr;
  std::vector<const LoadedEvent*> executes;
};

double span_end(const LoadedEvent& e) { return e.ts_us + e.dur_us; }

/// The execute span of this call that contains the given time on the given
/// row — how a send or receive is attributed to the copy that issued it.
const LoadedEvent* enclosing_execute(const CallSpans& call, std::int64_t tid,
                                     double ts_us) {
  const LoadedEvent* best = nullptr;
  for (const LoadedEvent* e : call.executes) {
    if (e->tid != tid || ts_us < e->ts_us || ts_us > span_end(*e)) continue;
    // Prefer the tightest enclosing span if nested (re-entrant calls).
    if (best == nullptr || e->dur_us < best->dur_us) best = e;
  }
  return best;
}

std::string fmt_ms(double us) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << us / 1000.0 << " ms";
  return os.str();
}

std::string fmt_pct(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ratio * 100.0 << "%";
  return os.str();
}

std::string row_name(std::int64_t tid) {
  // Matches the exporter's thread_name metadata scheme.
  return tid >= 1000000 ? std::string("ext") : "vp" + std::to_string(tid);
}

}  // namespace

bool load_chrome_trace(std::istream& in, std::vector<LoadedEvent>& out,
                       std::string* error, TraceMeta* meta) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  json::Reader reader(text);

  char c = 0;
  if (!reader.peek(c)) {
    if (error != nullptr) *error = "empty input";
    return false;
  }
  bool ok = false;
  if (c == '[') {
    ok = parse_event_array(reader, out);
  } else if (c == '{') {
    // Object form: scan keys, stream "traceEvents", skip everything else.
    ok = reader.consume('{');
    bool found = false;
    while (ok) {
      if (reader.peek(c) && c == '}') {
        reader.consume('}');
        break;
      }
      std::string key;
      ok = reader.parse_string(key) && reader.consume(':');
      if (!ok) break;
      if (key == "traceEvents") {
        ok = parse_event_array(reader, out);
        found = true;
      } else if (key == "otherData" && meta != nullptr) {
        json::Value other;
        ok = reader.parse_value(other);
        if (ok && other.type == json::Value::Type::Object) {
          meta->present = true;
          meta->mode = other.str_or("mode");
          meta->recorded = as_u64(other.num_or("recorded", 0.0));
          meta->dropped = as_u64(other.num_or("dropped", 0.0));
          meta->overwritten = as_u64(other.num_or("overwritten", 0.0));
        }
      } else {
        json::Value skipped;
        ok = reader.parse_value(skipped);
      }
      if (ok && reader.peek(c) && c == ',') reader.consume(',');
    }
    if (ok && !found) {
      if (error != nullptr) *error = "no traceEvents array in document";
      return false;
    }
  } else {
    reader.fail("expected '[' or '{'");
  }
  if (!ok) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  return true;
}

bool load_exemplars(std::istream& in, std::vector<CallExemplar>& out,
                    std::string* error, std::uint64_t* slow_ms) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Exemplar documents are bounded (top-K calls, capped subtrees), so a
  // whole-document DOM is fine where the trace loader has to stream.
  json::Value doc;
  if (!json::parse(text, doc, error)) return false;
  if (doc.type != json::Value::Type::Object) {
    if (error != nullptr) *error = "exemplar document is not an object";
    return false;
  }
  if (slow_ms != nullptr) *slow_ms = as_u64(doc.num_or("slow_ms", 0.0));
  const json::Value* exs = doc.find("exemplars");
  if (exs == nullptr || exs->type != json::Value::Type::Array) {
    if (error != nullptr) *error = "no exemplars array in document";
    return false;
  }
  for (const json::Value& j : exs->array) {
    if (j.type != json::Value::Type::Object) continue;
    CallExemplar ex;
    ex.call_id = as_u64(j.num_or("call_id", 0.0));
    ex.kind = j.str_or("kind");
    ex.copies = static_cast<int>(j.num_or("copies", 0.0));
    ex.over_threshold = j.num_or("over_threshold", 0.0) != 0.0;
    ex.start_ns = as_u64(j.num_or("start_ns", 0.0));
    ex.end_ns = as_u64(j.num_or("end_ns", 0.0));
    ex.latency_ns = as_u64(j.num_or("latency_ns", 0.0));
    if (const json::Value* p = j.find("phases");
        p != nullptr && p->type == json::Value::Type::Object) {
      ex.marshal_ns = as_u64(p->num_or("marshal_ns", 0.0));
      ex.queue_ns = as_u64(p->num_or("queue_ns", 0.0));
      ex.blocked_ns = as_u64(p->num_or("blocked_ns", 0.0));
      ex.exec_ns = as_u64(p->num_or("exec_ns", 0.0));
      ex.compute_ns = as_u64(p->num_or("compute_ns", 0.0));
      ex.copy_bytes = as_u64(p->num_or("copy_bytes", 0.0));
      ex.messages = as_u64(p->num_or("messages", 0.0));
      ex.dp_statements = as_u64(p->num_or("dp_statements", 0.0));
    }
    ex.subtree_events = as_u64(j.num_or("subtree_events", 0.0));
    ex.captured_events = as_u64(j.num_or("captured_events", 0.0));
    if (const json::Value* evs = j.find("events");
        evs != nullptr && evs->type == json::Value::Type::Array) {
      for (const json::Value& je : evs->array) {
        if (je.type != json::Value::Type::Object) continue;
        LoadedEvent e;
        convert_event(je, e);
        if (e.ph != "M") ex.events.push_back(std::move(e));
      }
    }
    out.push_back(std::move(ex));
  }
  return true;
}

TraceReport analyze_trace(const std::vector<LoadedEvent>& events) {
  TraceReport report;
  report.events = events.size();

  // --- wall clock ---------------------------------------------------------
  double t0 = 0.0, t1 = 0.0;
  bool have_time = false;
  for (const LoadedEvent& e : events) {
    if (e.ph != "X" && e.ph != "i" && e.ph != "s" && e.ph != "f") continue;
    const double end = e.ph == "X" ? span_end(e) : e.ts_us;
    if (!have_time) {
      t0 = e.ts_us;
      t1 = end;
      have_time = true;
    } else {
      t0 = std::min(t0, e.ts_us);
      t1 = std::max(t1, end);
    }
  }
  report.wall_us = have_time ? t1 - t0 : 0.0;

  // --- flow pairing -------------------------------------------------------
  std::unordered_set<std::uint64_t> starts, finishes;
  for (const LoadedEvent& e : events) {
    if (e.ph == "s") starts.insert(e.id);
    if (e.ph == "f") finishes.insert(e.id);
    // The exporter only emits "s"/"f" for flows whose BOTH endpoints were
    // in its own process, so a multi-process run's per-rank files carry no
    // arrow for any cross-process message.  The raw flow ids survive in
    // args on the send instant and the receive span, and next_flow_id
    // makes them launch-unique — pair on those too, so merging rank files
    // (tdp_trace tdp_trace.rank*.json) recovers cross-process arrows.
    if (e.ph == "i" && e.name == "vp.send" && e.flow != 0) {
      starts.insert(e.flow);
    }
    if (e.ph == "X" && e.name == "vp.recv" && e.flow != 0) {
      finishes.insert(e.flow);
    }
  }
  for (const std::uint64_t id : starts) {
    if (finishes.count(id) != 0) {
      ++report.flow_pairs;
    } else {
      ++report.unmatched_flows;
    }
  }
  for (const std::uint64_t id : finishes) {
    if (starts.count(id) == 0) ++report.unmatched_flows;
  }

  // --- per-VP utilization and blocking breakdown --------------------------
  struct VpAccum {
    std::vector<std::pair<double, double>> active;
    std::vector<std::pair<double, double>> recv_wait;
    // vp.recv durations rebucketed log2 (in ns) for the shared quantile
    // math — same bucket→percentile routine as the live sampler, so the
    // offline report and tdp_top agree on what "p99 recv wait" means.
    std::array<std::uint64_t, Histogram::kBuckets> recv_buckets{};
    VpStats stats;
  };
  std::map<std::int64_t, VpAccum> per_vp;  // ordered by tid for the report
  for (const LoadedEvent& e : events) {
    if (e.ph != "X" && e.ph != "i") continue;
    VpAccum& a = per_vp[e.tid];
    a.stats.tid = e.tid;
    if (e.ph == "X") {
      a.active.emplace_back(e.ts_us, span_end(e));
      if (e.name == "vp.recv") {
        a.recv_wait.emplace_back(e.ts_us, span_end(e));
        ++a.stats.recv_count;
        const std::uint64_t dur_ns =
            e.dur_us > 0.0 ? static_cast<std::uint64_t>(e.dur_us * 1000.0)
                           : 0;
        ++a.recv_buckets[static_cast<std::size_t>(std::bit_width(dur_ns))];
      }
    } else {
      if (e.name == "vp.recv_miss") ++a.stats.recv_misses;
      if (e.name == "vp.send") ++a.stats.sends;
    }
  }
  for (auto& [tid, a] : per_vp) {
    a.stats.active_us = union_length_us(a.active);
    a.stats.recv_wait_us = union_length_us(a.recv_wait);
    a.stats.compute_us = std::max(0.0, a.stats.active_us - a.stats.recv_wait_us);
    a.stats.utilization =
        report.wall_us > 0.0 ? a.stats.compute_us / report.wall_us : 0.0;
    if (a.stats.recv_count != 0) {
      a.stats.recv_p50_us = static_cast<double>(Histogram::percentile_from_buckets(
                                a.recv_buckets, 0.50)) /
                            1000.0;
      a.stats.recv_p99_us = static_cast<double>(Histogram::percentile_from_buckets(
                                a.recv_buckets, 0.99)) /
                            1000.0;
    }
    report.vps.push_back(a.stats);
  }

  // --- per-call critical path ---------------------------------------------
  std::map<std::uint64_t, CallSpans> calls;
  std::unordered_map<std::uint64_t, const LoadedEvent*> send_by_flow;
  std::unordered_map<std::uint64_t, std::vector<const LoadedEvent*>>
      recvs_by_comm;
  for (const LoadedEvent& e : events) {
    if (e.ph == "i" && e.name == "vp.send" && e.flow != 0) {
      send_by_flow.emplace(e.flow, &e);
    }
    if (e.ph != "X") continue;
    if (e.name == "vp.recv" && e.comm != 0 && e.flow != 0) {
      recvs_by_comm[e.comm].push_back(&e);
    }
    if (e.comm == 0) continue;
    CallSpans& call = calls[e.comm];
    if (e.name == "call.marshal") {
      call.marshal = &e;
    } else if (e.name == "call.execute") {
      call.executes.push_back(&e);
    } else if (e.name == "call.combine") {
      call.combine = &e;
    }
  }

  for (auto& [comm, call] : calls) {
    if (call.executes.empty()) continue;
    CallStats cs;
    cs.comm = comm;
    cs.copies = static_cast<int>(call.executes.size());

    double lo = call.executes.front()->ts_us;
    double hi = span_end(*call.executes.front());
    const auto widen = [&](const LoadedEvent* e) {
      if (e == nullptr) return;
      lo = std::min(lo, e->ts_us);
      hi = std::max(hi, span_end(*e));
    };
    widen(call.marshal);
    widen(call.combine);
    for (const LoadedEvent* e : call.executes) widen(e);
    cs.makespan_us = hi - lo;

    // Walk backward from the join.  Each step asks "what finished last
    // among the things this span had to wait for?" and follows the
    // recorded causal edge (message flow id or spawn) to its producer.
    std::vector<std::pair<const LoadedEvent*, std::string>> rev;  // node, via
    std::unordered_set<const LoadedEvent*> visited;
    const LoadedEvent* cur = call.combine;
    std::string via_from_pred;
    if (cur != nullptr) {
      rev.emplace_back(cur, "");
      visited.insert(cur);
      // The combine waits on every copy's result; its predecessor is the
      // copy that defined its result last.
      const LoadedEvent* last = nullptr;
      for (const LoadedEvent* e : call.executes) {
        if (last == nullptr || span_end(*e) > span_end(*last)) last = e;
      }
      cur = last;
      via_from_pred = "join";
    } else {
      const LoadedEvent* last = nullptr;
      for (const LoadedEvent* e : call.executes) {
        if (last == nullptr || span_end(*e) > span_end(*last)) last = e;
      }
      cur = last;
    }

    const std::vector<const LoadedEvent*>& comm_recvs = recvs_by_comm[comm];
    for (int step = 0; cur != nullptr && step < 128; ++step) {
      if (visited.count(cur) != 0) break;
      visited.insert(cur);
      rev.emplace_back(cur, via_from_pred);

      // Latest-finishing receive inside this execute whose sender we can
      // locate: the message this copy finished waiting for last.
      const LoadedEvent* gating_recv = nullptr;
      const LoadedEvent* gating_send = nullptr;
      for (const LoadedEvent* r : comm_recvs) {
        if (r->tid != cur->tid || r->ts_us < cur->ts_us ||
            span_end(*r) > span_end(*cur)) {
          continue;
        }
        const auto it = send_by_flow.find(r->flow);
        if (it == send_by_flow.end()) continue;
        const LoadedEvent* sender_exec =
            enclosing_execute(call, it->second->tid, it->second->ts_us);
        if (sender_exec == nullptr || visited.count(sender_exec) != 0) {
          continue;
        }
        if (gating_recv == nullptr || span_end(*r) > span_end(*gating_recv)) {
          gating_recv = r;
          gating_send = it->second;
        }
      }
      if (gating_recv != nullptr) {
        std::ostringstream via;
        via << "msg tag="
            << static_cast<std::int32_t>(
                   static_cast<std::uint32_t>(gating_send->arg1))
            << " " << row_name(gating_send->tid) << "->" << row_name(cur->tid);
        via_from_pred = via.str();
        cur = enclosing_execute(call, gating_send->tid, gating_send->ts_us);
        continue;
      }
      // No gating message: this copy started from the spawn.
      if (call.marshal != nullptr && visited.count(call.marshal) == 0 &&
          cur->name == "call.execute") {
        via_from_pred = "spawn";
        cur = call.marshal;
        continue;
      }
      break;
    }

    cs.critical_path.reserve(rev.size());
    for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
      PathNode node;
      node.name = it->first->name;
      node.tid = it->first->tid;
      node.ts_us = it->first->ts_us;
      node.dur_us = it->first->dur_us;
      cs.critical_path.push_back(std::move(node));
    }
    // rev[i].second labels the edge from rev[i] to its successor rev[i-1];
    // after reversing, that is exactly node i's edge to node i+1 (the final
    // node carries the empty label it was pushed with).
    for (std::size_t i = 0; i + 1 < cs.critical_path.size(); ++i) {
      cs.critical_path[i].via = rev[rev.size() - 1 - i].second;
    }
    // Chain spans overlap in time (a sender computes concurrently with its
    // receiver), so the path length is the union of their intervals: the
    // share of the makespan the chain accounts for, never more than 100%.
    std::vector<std::pair<double, double>> chain;
    chain.reserve(cs.critical_path.size());
    for (const PathNode& n : cs.critical_path) {
      chain.emplace_back(n.ts_us, n.ts_us + n.dur_us);
    }
    cs.path_us = union_length_us(chain);
    report.calls.push_back(std::move(cs));
  }
  std::sort(report.calls.begin(), report.calls.end(),
            [](const CallStats& a, const CallStats& b) {
              return a.makespan_us > b.makespan_us;
            });
  return report;
}

void write_report(std::ostream& os, const TraceReport& report) {
  os << "== tdp_trace report ==\n";
  os << "events: " << report.events << "  wall: " << fmt_ms(report.wall_us)
     << "  flow pairs: " << report.flow_pairs;
  if (report.unmatched_flows != 0) {
    os << "  UNMATCHED: " << report.unmatched_flows;
  }
  os << "\n\n";

  os << "per-VP utilization (blocking breakdown):\n";
  os << "  " << std::left << std::setw(6) << "vp" << std::right << std::setw(12)
     << "active" << std::setw(12) << "compute" << std::setw(12) << "recv-wait"
     << std::setw(12) << "recv-p50" << std::setw(12) << "recv-p99"
     << std::setw(8) << "recvs" << std::setw(8) << "misses" << std::setw(8)
     << "sends" << std::setw(8) << "util" << "\n";
  for (const VpStats& v : report.vps) {
    os << "  " << std::left << std::setw(6) << row_name(v.tid) << std::right
       << std::setw(12) << fmt_ms(v.active_us) << std::setw(12)
       << fmt_ms(v.compute_us) << std::setw(12) << fmt_ms(v.recv_wait_us)
       << std::setw(12) << fmt_ms(v.recv_p50_us) << std::setw(12)
       << fmt_ms(v.recv_p99_us)
       << std::setw(8) << v.recv_count << std::setw(8) << v.recv_misses
       << std::setw(8) << v.sends << std::setw(8) << fmt_pct(v.utilization)
       << "\n";
  }
  os << "\n";

  if (report.calls.empty()) {
    os << "distributed calls: none found in trace\n";
    return;
  }
  os << "distributed calls, ranked by makespan:\n";
  for (const CallStats& c : report.calls) {
    os << "  call comm=" << c.comm << ": " << c.copies
       << (c.copies == 1 ? " copy" : " copies") << ", makespan "
       << fmt_ms(c.makespan_us) << ", critical path " << fmt_ms(c.path_us);
    if (c.makespan_us > 0.0) {
      os << " (" << fmt_pct(c.path_us / c.makespan_us) << ")";
    }
    os << "\n";
    for (std::size_t i = 0; i < c.critical_path.size(); ++i) {
      const PathNode& n = c.critical_path[i];
      os << "    " << (i == 0 ? "  " : "└─ ") << "[" << std::left
         << std::setw(5) << row_name(n.tid) << std::right << "] " << std::left
         << std::setw(16) << n.name << std::right << " " << fmt_ms(n.dur_us);
      if (!n.via.empty()) os << "  --" << n.via << "-->";
      os << "\n";
    }
  }
}

void write_why_report(std::ostream& os, const CallExemplar& ex) {
  const double latency_ms = static_cast<double>(ex.latency_ns) / 1e6;
  os << "== tdp_trace why: " << ex.kind << " " << ex.call_id << " ("
     << ex.copies << (ex.copies == 1 ? " copy" : " copies") << ") ==\n";
  os << "latency: " << std::fixed << std::setprecision(3) << latency_ms
     << " ms  ("
     << (ex.over_threshold ? "over TDP_OBS_SLOW_MS"
                           : "top-K reservoir exemplar, under threshold")
     << ")\n\n";

  // Phase times sum over the call's concurrently-running copies
  // (copy-seconds), so shares are reported against the attributed total,
  // which can legitimately exceed the wall latency.
  const std::uint64_t attributed =
      ex.marshal_ns + ex.queue_ns + ex.blocked_ns + ex.compute_ns;
  const auto phase_row = [&](const char* label, std::uint64_t ns) {
    os << "  " << std::left << std::setw(16) << label << std::right
       << std::setw(14) << fmt_ms(static_cast<double>(ns) / 1000.0)
       << std::setw(9)
       << (attributed != 0
               ? fmt_pct(static_cast<double>(ns) /
                         static_cast<double>(attributed))
               : std::string("-"))
       << "\n";
  };
  os << "attributed phase time (copy-seconds; copies run concurrently, so "
        "the\ntotal can exceed wall latency):\n";
  phase_row("marshal", ex.marshal_ns);
  phase_row("queue wait", ex.queue_ns);
  phase_row("blocked recv", ex.blocked_ns);
  phase_row("compute", ex.compute_ns);
  os << "  " << std::left << std::setw(16) << "total" << std::right
     << std::setw(14) << fmt_ms(static_cast<double>(attributed) / 1000.0)
     << "\n\n";
  os << "traffic: " << ex.messages << " messages, " << ex.copy_bytes
     << " payload bytes, " << ex.dp_statements << " dp statements\n";
  os << "captured events: " << ex.captured_events << " of "
     << ex.subtree_events << " subtree events";
  if (ex.captured_events < ex.subtree_events) {
    os << " (oldest truncated by the per-exemplar cap)";
  }
  os << "\n\n";

  // The captured subtree is a valid Chrome-event set, so the ordinary
  // critical-path reconstruction applies to it directly.
  const TraceReport report = analyze_trace(ex.events);
  const CallStats* call = nullptr;
  for (const CallStats& c : report.calls) {
    if (c.comm == ex.call_id) {
      call = &c;
      break;
    }
  }
  if (call == nullptr || call->critical_path.empty()) {
    os << "critical path: not reconstructible from the captured subtree\n"
          "(no call.execute spans — a do_all exemplar, or the spans were\n"
          "evicted from the ring before capture); the phase table above is\n"
          "the attribution.\n";
    return;
  }
  os << "critical path (from the captured span subtree): "
     << fmt_ms(call->path_us) << " of " << fmt_ms(call->makespan_us)
     << " makespan";
  if (call->makespan_us > 0.0) {
    os << " (" << fmt_pct(call->path_us / call->makespan_us) << ")";
  }
  os << "\n";
  for (std::size_t i = 0; i < call->critical_path.size(); ++i) {
    const PathNode& n = call->critical_path[i];
    os << "    " << (i == 0 ? "  " : "└─ ") << "[" << std::left << std::setw(5)
       << row_name(n.tid) << std::right << "] " << std::left << std::setw(16)
       << n.name << std::right << " " << fmt_ms(n.dur_us);
    if (!n.via.empty()) os << "  --" << n.via << "-->";
    os << "\n";
  }
}

}  // namespace tdp::obs
