#include "obs/telemetry.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/attr.hpp"
#include "obs/expose.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/atomic_print.hpp"
#include "util/env.hpp"

namespace tdp::obs {

namespace {

/// Set from the SIGUSR1 handler; only ever read/cleared from service
/// threads.  sig_atomic_t-compatible operations keep the handler safe.
std::atomic<int> g_dump_requested{0};

std::string dump_prefix() {
  const char* env = std::getenv("TDP_OBS_DUMP");
  // Rank-qualified under a multi-process launch, like the shutdown trace:
  // N ranks dumping into one directory must not clobber each other.
  return per_rank_path(env != nullptr && env[0] != '\0'
                           ? std::string(env)
                           : std::string("tdp_flight"));
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Telemetry& Telemetry::instance() {
  // Construction is ordered after Tracer/Registry: the sampling thread
  // reads both, so both must be destroyed after the telemetry singleton.
  Tracer::instance();
  Registry::instance();
  static Telemetry telemetry;
  return telemetry;
}

Telemetry::~Telemetry() { stop(); }

std::uint64_t Telemetry::env_period_ms() {
  return static_cast<std::uint64_t>(
      util::env_int("TDP_OBS_SAMPLE_MS", 0, 0,
                    std::numeric_limits<long long>::max()));
}

void Telemetry::start(std::uint64_t period_ms) {
  if (period_ms == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  period_ms_ = period_ms;
  if (!thread_.joinable()) {
    stopping_ = false;
    thread_ = std::thread([this] { run(); });
  }
}

void Telemetry::stop() {
  // Symmetric with telemetry_start_from_env: the sampler going away takes
  // the SIGUSR1 dump handler with it, restoring whatever disposition the
  // process had before (a no-op when we never installed one).
  uninstall_dump_signal_handler();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stopping_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  worker.join();
}

bool Telemetry::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_.joinable();
}

int Telemetry::add_vp_source(int vp, const VpWaitState* state) {
  std::lock_guard<std::mutex> lock(mutex_);
  VpTrack track;
  track.token = next_token_++;
  track.vp = vp;
  track.state = state;
  vps_.push_back(std::move(track));
  return vps_.back().token;
}

void Telemetry::remove_vp_source(int token) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = vps_.begin(); it != vps_.end(); ++it) {
    if (it->token == token) {
      vps_.erase(it);
      return;
    }
  }
}

void Telemetry::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto period = std::chrono::milliseconds(period_ms_);
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    tick_locked(now_ns());
    lock.unlock();
    service_flight_dump_request();
    lock.lock();
  }
}

void Telemetry::sample_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  tick_locked(now_ns());
}

void Telemetry::set_sched_probe(SchedProbe probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  sched_probe_ = std::move(probe);
  if (!sched_probe_) sched_track_ = SchedTrack{};
}

void Telemetry::set_dist_probe(DistProbe probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  dist_probe_ = std::move(probe);
}

void Telemetry::note_stall(const std::string& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stalls_;
  const std::size_t eol = report.find('\n');
  last_stall_ = eol == std::string::npos ? report : report.substr(0, eol);
  snapshot_.stalls = stalls_;
  snapshot_.last_stall = last_stall_;
}

void Telemetry::tick_locked(std::uint64_t now) {
  const std::uint64_t ts_ms = now / 1000000;
  const double dt_s =
      last_tick_ns_ != 0 && now > last_tick_ns_
          ? static_cast<double>(now - last_tick_ns_) / 1e9
          : 0.0;

  Snapshot snap;
  snap.ts_ms = ts_ms;
  snap.period_ms = period_ms_;
  snap.samples = samples_ + 1;

  Registry::instance().visit(
      [&](const std::string& name, const ShardedCounter& c) {
        CounterTrack& t = counters_[name];
        const double value = static_cast<double>(c.value());
        Point p;
        p.ts_ms = ts_ms;
        p.value = value;
        p.rate = t.primed && dt_s > 0.0 ? (value - t.last) / dt_s : 0.0;
        if (p.rate < 0.0) p.rate = 0.0;  // reset_values mid-run
        t.last = value;
        t.primed = true;
        t.ring.push(p);
        snap.counters.emplace_back(name, p);
      },
      [&](const std::string& name, const Histogram& h) {
        HistTrack& t = histograms_[name];
        const std::array<std::uint64_t, Histogram::kBuckets> merged =
            h.merged();
        std::array<std::uint64_t, Histogram::kBuckets> delta{};
        std::uint64_t delta_count = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t prev = t.primed ? t.last_buckets[b] : 0;
          delta[b] = merged[b] >= prev ? merged[b] - prev : merged[b];
          delta_count += delta[b];
        }
        HistPoint p;
        p.ts_ms = ts_ms;
        p.count = t.primed ? delta_count : 0;
        p.rate = t.primed && dt_s > 0.0
                     ? static_cast<double>(delta_count) / dt_s
                     : 0.0;
        if (p.count > 0) {
          p.p50 = Histogram::percentile_from_buckets(delta, 0.50);
          p.p99 = Histogram::percentile_from_buckets(delta, 0.99);
        }
        t.last_buckets = merged;
        t.primed = true;
        t.lifetime_count = h.count();
        t.lifetime_max = h.max();
        t.ring.push(p);
        Snapshot::HistRow row;
        row.name = name;
        row.latest = p;
        row.lifetime_count = t.lifetime_count;
        row.lifetime_max = t.lifetime_max;
        snap.histograms.push_back(std::move(row));
      });

  // Per-VP run/blocked sampling over the same VpWaitState blocks the stall
  // watchdog reads.  Message rates come from the per-destination shards of
  // the vp.messages counter vp::Machine maintains.
  const std::vector<std::uint64_t> msgs =
      Registry::instance().counter("vp.messages").per_shard();
  for (VpTrack& t : vps_) {
    const std::uint64_t since =
        t.state->blocked_since_ns.load(std::memory_order_relaxed);
    std::uint64_t blocked_total =
        t.state->blocked_ns_total.load(std::memory_order_relaxed);
    if (since != 0 && now > since) blocked_total += now - since;
    const std::uint64_t progress =
        t.state->progress.load(std::memory_order_relaxed);
    const std::uint64_t vp_msgs = msgs[metric_shard(t.vp)];

    VpPoint p;
    p.ts_ms = ts_ms;
    p.depth = t.state->queue_depth.load(std::memory_order_relaxed);
    p.blocked = since != 0;
    p.blocked_ms = since != 0 && now > since ? (now - since) / 1000000 : 0;
    if (t.primed && dt_s > 0.0) {
      const double dt_ns = dt_s * 1e9;
      const double blocked_delta =
          blocked_total > t.last_blocked_ns
              ? static_cast<double>(blocked_total - t.last_blocked_ns)
              : 0.0;
      p.run_frac = std::clamp(1.0 - blocked_delta / dt_ns, 0.0, 1.0);
      p.msg_rate = vp_msgs >= t.last_msgs
                       ? static_cast<double>(vp_msgs - t.last_msgs) / dt_s
                       : 0.0;
      p.progress_rate =
          progress >= t.last_progress
              ? static_cast<double>(progress - t.last_progress) / dt_s
              : 0.0;
    }
    t.last_blocked_ns = blocked_total;
    t.last_progress = progress;
    t.last_msgs = vp_msgs;
    t.primed = true;
    t.ring.push(p);
    Snapshot::VpRow row;
    row.vp = t.vp;
    row.latest = p;
    snap.vps.push_back(std::move(row));
  }

  // Scheduler plane: per-worker run fractions from busy_ns deltas over the
  // window, runnable/suspended depths at the tick.
  if (sched_probe_) {
    const SchedSample s = sched_probe_();
    snap.sched.present = true;
    snap.sched.runnable = s.runnable;
    snap.sched.suspended = s.suspended;
    snap.sched.worker_run_frac.resize(s.worker_busy_ns.size(), 0.0);
    if (sched_track_.primed && dt_s > 0.0 &&
        sched_track_.last_busy_ns.size() == s.worker_busy_ns.size()) {
      const double dt_ns = dt_s * 1e9;
      for (std::size_t i = 0; i < s.worker_busy_ns.size(); ++i) {
        const std::uint64_t prev = sched_track_.last_busy_ns[i];
        const double busy =
            s.worker_busy_ns[i] >= prev
                ? static_cast<double>(s.worker_busy_ns[i] - prev)
                : 0.0;
        snap.sched.worker_run_frac[i] = std::clamp(busy / dt_ns, 0.0, 1.0);
      }
    }
    sched_track_.last_busy_ns = s.worker_busy_ns;
    sched_track_.primed = true;
  }

  // Distributed-array plane: cumulative migration counts and the hottest
  // shards by traffic in the current rebalance window.
  if (dist_probe_) {
    DistSample d = dist_probe_();
    snap.dist.present = true;
    snap.dist.migrations = d.migrations;
    snap.dist.rebalances = d.rebalances;
    snap.dist.forwards = d.forwards;
    snap.dist.hottest = std::move(d.hottest);
  }

  Tracer& tracer = Tracer::instance();
  snap.trace_recorded = tracer.recorded();
  snap.trace_dropped = tracer.dropped();
  snap.trace_overwritten = tracer.overwritten();
  snap.stalls = stalls_;
  snap.last_stall = last_stall_;

  ++samples_;
  last_tick_ns_ = now;
  snapshot_ = std::move(snap);
}

Telemetry::Snapshot Telemetry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

std::string Telemetry::render_prometheus() const {
  std::ostringstream os;
  os << "tdp_up 1\n";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    os << "tdp_telemetry_samples " << samples_ << "\n";
    os << "tdp_telemetry_period_ms " << period_ms_ << "\n";
    os << "tdp_watchdog_stall_episodes " << stalls_ << "\n";
    for (const auto& [name, point] : snapshot_.counters) {
      const std::string base = "tdp_" + sanitize_metric_name(name);
      os << base << "_total " << static_cast<std::uint64_t>(point.value)
         << "\n";
      os << base << "_rate " << fmt_double(point.rate) << "\n";
    }
    // The slowest retained exemplar annotates the call-latency p99 line in
    // OpenMetrics exemplar syntax, so a dashboard's tail-latency panel
    // links straight to a concrete call id `tdp_trace why` can explain.
    const std::vector<ExemplarSummary> slow =
        CallTable::instance().exemplar_summaries();
    for (const Snapshot::HistRow& row : snapshot_.histograms) {
      const std::string base = "tdp_" + sanitize_metric_name(row.name);
      os << base << "_count " << row.lifetime_count << "\n";
      os << base << "_max " << row.lifetime_max << "\n";
      os << base << "{quantile=\"0.5\"} " << row.latest.p50 << "\n";
      os << base << "{quantile=\"0.99\"} " << row.latest.p99;
      if (row.name == "call.latency_ns" && !slow.empty()) {
        os << " # {call_id=\"" << slow.front().call.id << "\"} "
           << slow.front().call.latency_ns();
      }
      os << "\n";
    }
    // Cardinality bound: individual rows for the first kMaxVpSeries VPs,
    // one folded {vp="64+"} row for the rest.  The folded row has no
    // message rate — vp.messages shards alias at vp mod 64, so folded VPs'
    // deltas would double-count the low VPs they share a shard with.
    std::size_t folded = 0;
    double fold_min_run = 1.0;
    std::uint64_t fold_depth = 0;
    std::size_t fold_blocked = 0;
    for (const Snapshot::VpRow& row : snapshot_.vps) {
      if (row.vp >= 0 && static_cast<std::size_t>(row.vp) >= kMaxVpSeries) {
        ++folded;
        fold_min_run = std::min(fold_min_run, row.latest.run_frac);
        fold_depth += row.latest.depth;
        if (row.latest.blocked) ++fold_blocked;
        continue;
      }
      const std::string label = "{vp=\"" + std::to_string(row.vp) + "\"}";
      os << "tdp_vp_run_fraction" << label << " "
         << fmt_double(row.latest.run_frac) << "\n";
      os << "tdp_vp_queue_depth" << label << " " << row.latest.depth << "\n";
      os << "tdp_vp_message_rate" << label << " "
         << fmt_double(row.latest.msg_rate) << "\n";
      os << "tdp_vp_blocked" << label << " " << (row.latest.blocked ? 1 : 0)
         << "\n";
    }
    if (folded != 0) {
      const std::string label =
          "{vp=\"" + std::to_string(kMaxVpSeries) + "+\"}";
      os << "tdp_vp_folded " << folded << "\n";
      os << "tdp_vp_run_fraction" << label << " " << fmt_double(fold_min_run)
         << "\n";
      os << "tdp_vp_queue_depth" << label << " " << fold_depth << "\n";
      os << "tdp_vp_blocked" << label << " " << fold_blocked << "\n";
    }
    if (snapshot_.sched.present) {
      os << "tdp_sched_runnable " << snapshot_.sched.runnable << "\n";
      os << "tdp_sched_suspended " << snapshot_.sched.suspended << "\n";
      for (std::size_t i = 0; i < snapshot_.sched.worker_run_frac.size();
           ++i) {
        os << "tdp_sched_worker_run_frac{worker=\"" << i << "\"} "
           << fmt_double(snapshot_.sched.worker_run_frac[i]) << "\n";
      }
    }
    if (snapshot_.dist.present) {
      os << "tdp_dist_shard_migrations " << snapshot_.dist.migrations << "\n";
      os << "tdp_dist_rebalances " << snapshot_.dist.rebalances << "\n";
      os << "tdp_dist_shard_forwards " << snapshot_.dist.forwards << "\n";
    }
    os << "tdp_calls_started " << CallTable::instance().started() << "\n";
    os << "tdp_calls_completed " << CallTable::instance().completed() << "\n";
    os << "tdp_call_exemplars_captured " << CallTable::instance().captured()
       << "\n";
    os << "tdp_trace_recorded " << snapshot_.trace_recorded << "\n";
    os << "tdp_trace_dropped " << snapshot_.trace_dropped << "\n";
    os << "tdp_trace_overwritten " << snapshot_.trace_overwritten << "\n";
  }
  return os.str();
}

std::string Telemetry::render_json() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"ts_ms\":" << snapshot_.ts_ms << ",\"period_ms\":" << period_ms_
     << ",\"samples\":" << samples_;
  os << ",\"trace\":{\"mode\":\""
     << (Tracer::instance().mode() == TraceMode::Ring ? "ring" : "keep")
     << "\",\"recorded\":" << snapshot_.trace_recorded
     << ",\"dropped\":" << snapshot_.trace_dropped
     << ",\"overwritten\":" << snapshot_.trace_overwritten << "}";
  os << ",\"stalls\":{\"count\":" << stalls_ << ",\"last\":\""
     << json::escape(last_stall_) << "\"}";

  os << ",\"counters\":[";
  bool first = true;
  for (const auto& [name, track] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json::escape(name) << "\",\"points\":[";
    bool p_first = true;
    for (const Point& p : track.ring.points) {
      if (!p_first) os << ",";
      p_first = false;
      os << "{\"t\":" << p.ts_ms << ",\"v\":" << fmt_double(p.value)
         << ",\"rate\":" << fmt_double(p.rate) << "}";
    }
    os << "]}";
  }
  os << "]";

  os << ",\"histograms\":[";
  first = true;
  for (const auto& [name, track] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json::escape(name)
       << "\",\"count\":" << track.lifetime_count
       << ",\"max\":" << track.lifetime_max << ",\"points\":[";
    bool p_first = true;
    for (const HistPoint& p : track.ring.points) {
      if (!p_first) os << ",";
      p_first = false;
      os << "{\"t\":" << p.ts_ms << ",\"n\":" << p.count
         << ",\"rate\":" << fmt_double(p.rate) << ",\"p50\":" << p.p50
         << ",\"p99\":" << p.p99 << "}";
    }
    os << "]}";
  }
  os << "]";

  os << ",\"vps\":[";
  first = true;
  for (const VpTrack& t : vps_) {
    if (!first) os << ",";
    first = false;
    os << "{\"vp\":" << t.vp << ",\"points\":[";
    bool p_first = true;
    for (const VpPoint& p : t.ring.points) {
      if (!p_first) os << ",";
      p_first = false;
      os << "{\"t\":" << p.ts_ms << ",\"depth\":" << p.depth
         << ",\"run\":" << fmt_double(p.run_frac)
         << ",\"rate\":" << fmt_double(p.msg_rate)
         << ",\"prog\":" << fmt_double(p.progress_rate)
         << ",\"blocked\":" << (p.blocked ? 1 : 0)
         << ",\"blocked_ms\":" << p.blocked_ms << "}";
    }
    os << "]}";
  }
  os << "]";

  if (snapshot_.sched.present) {
    os << ",\"sched\":{\"workers\":" << snapshot_.sched.worker_run_frac.size()
       << ",\"runnable\":" << snapshot_.sched.runnable
       << ",\"suspended\":" << snapshot_.sched.suspended << ",\"run_frac\":[";
    first = true;
    for (const double f : snapshot_.sched.worker_run_frac) {
      if (!first) os << ",";
      first = false;
      os << fmt_double(f);
    }
    os << "]}";
  }

  if (snapshot_.dist.present) {
    os << ",\"dist\":{\"migrations\":" << snapshot_.dist.migrations
       << ",\"rebalances\":" << snapshot_.dist.rebalances
       << ",\"forwards\":" << snapshot_.dist.forwards << ",\"hot\":[";
    first = true;
    for (const DistSample::ShardRow& r : snapshot_.dist.hottest) {
      if (!first) os << ",";
      first = false;
      os << "{\"array\":\"" << r.creator << ":" << r.seq
         << "\",\"shard\":" << r.shard << ",\"owner\":" << r.owner
         << ",\"bytes\":" << r.bytes << "}";
    }
    os << "]}";
  }

  // Slow-call attribution: retained exemplar summaries (no event payloads
  // here — the full subtrees come from the `slow` verb / .slow.json).
  {
    CallTable& table = CallTable::instance();
    os << ",\"slow\":{\"threshold_ms\":" << table.slow_threshold_ms()
       << ",\"started\":" << table.started()
       << ",\"completed\":" << table.completed()
       << ",\"captured\":" << table.captured() << ",\"calls\":[";
    first = true;
    for (const ExemplarSummary& ex : table.exemplar_summaries()) {
      if (!first) os << ",";
      first = false;
      os << "{\"call_id\":" << ex.call.id << ",\"kind\":\""
         << call_kind_name(ex.call.kind) << "\",\"copies\":" << ex.call.copies
         << ",\"over_threshold\":" << (ex.over_threshold ? 1 : 0)
         << ",\"latency_ns\":" << ex.call.latency_ns()
         << ",\"marshal_ns\":" << ex.call.phases.marshal_ns
         << ",\"queue_ns\":" << ex.call.phases.queue_ns
         << ",\"blocked_ns\":" << ex.call.phases.blocked_ns
         << ",\"compute_ns\":" << ex.call.phases.compute_ns()
         << ",\"copy_bytes\":" << ex.call.phases.copy_bytes
         << ",\"messages\":" << ex.call.phases.messages
         << ",\"dp_statements\":" << ex.call.phases.dp_statements
         << ",\"captured_events\":" << ex.captured_events << "}";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

void Telemetry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  last_tick_ns_ = 0;
  samples_ = 0;
  counters_.clear();
  histograms_.clear();
  for (VpTrack& t : vps_) {
    t.primed = false;
    t.last_blocked_ns = 0;
    t.last_progress = 0;
    t.last_msgs = 0;
    t.ring.points.clear();
  }
  sched_track_ = SchedTrack{};
  stalls_ = 0;
  last_stall_.clear();
  snapshot_ = Snapshot{};
}

// ---------------------------------------------------------------------------
// Flight-recorder dump plumbing.

void request_flight_dump() {
  g_dump_requested.store(1, std::memory_order_relaxed);
}

bool service_flight_dump_request() {
  if (g_dump_requested.exchange(0, std::memory_order_relaxed) == 0) {
    return false;
  }
  dump_flight_data("dump requested");
  return true;
}

std::string dump_flight_data(const char* reason) {
  const std::string prefix = dump_prefix();
  const std::string trace_path = prefix + ".trace.json";
  const std::string telemetry_path = prefix + ".telemetry.json";
  const std::string slow_path = prefix + ".slow.json";
  const bool trace_ok = dump_flight_recorder(trace_path);
  bool telemetry_ok = false;
  {
    std::ofstream out(telemetry_path, std::ios::trunc);
    if (out) {
      out << Telemetry::instance().render_json() << "\n";
      telemetry_ok = out.good();
    }
  }
  bool slow_ok = false;
  {
    std::ofstream out(slow_path, std::ios::trunc);
    if (out) {
      out << CallTable::instance().render_exemplars_json() << "\n";
      slow_ok = out.good();
    }
  }
  std::ostringstream line;
  line << "tdp::obs: flight dump (" << reason << "): ";
  if (trace_ok) {
    line << trace_path << " (" << Tracer::instance().recorded()
         << " events recorded";
    if (const std::uint64_t ow = Tracer::instance().overwritten(); ow != 0) {
      line << ", oldest " << ow << " overwritten";
    }
    line << ")";
  } else {
    line << "trace NOT written to " << trace_path;
  }
  line << (telemetry_ok ? ", " : ", telemetry NOT written to ")
       << telemetry_path;
  line << (slow_ok ? ", " : ", slow calls NOT written to ") << slow_path;
  util::atomic_print_err(line.str());
  return trace_ok ? trace_path : std::string();
}

#ifdef SIGUSR1
namespace {

// install/uninstall run from ordinary threads (never from the handler
// itself), so a mutex is fine here; the handler touches only the atomic
// request flag.
std::mutex g_handler_mutex;
bool g_handler_installed = false;      // guarded by g_handler_mutex
struct sigaction g_previous_action;    // valid iff g_handler_installed

extern "C" void tdp_dump_signal_handler(int) { request_flight_dump(); }

}  // namespace
#endif

void install_dump_signal_handler() {
#ifdef SIGUSR1
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  if (g_handler_installed) return;
  // Never clobber a handler the host application registered: a library
  // must not silently repurpose a signal its embedder already uses.
  // SIG_IGN counts as registered — ignoring SIGUSR1 is a deliberate
  // setting too.  (SIG_DFL for SIGUSR1 terminates the process, so taking
  // it over strictly improves matters.)
  struct sigaction current {};
  if (sigaction(SIGUSR1, nullptr, &current) != 0) return;
  const bool user_registered =
      (current.sa_flags & SA_SIGINFO) != 0 || current.sa_handler != SIG_DFL;
  if (user_registered) {
    util::atomic_print_err(
        "tdp::obs: SIGUSR1 already has a handler; flight-dump-on-signal "
        "disabled (use obs::request_flight_dump() or the exposition "
        "server's `dump` command instead)");
    return;
  }
  struct sigaction ours {};
  ours.sa_handler = &tdp_dump_signal_handler;
  sigemptyset(&ours.sa_mask);
  ours.sa_flags = SA_RESTART;
  if (sigaction(SIGUSR1, &ours, &g_previous_action) == 0) {
    g_handler_installed = true;
  }
#endif
}

void uninstall_dump_signal_handler() {
#ifdef SIGUSR1
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  if (!g_handler_installed) return;
  g_handler_installed = false;
  // Restore the saved disposition only if ours is still current — if the
  // application installed its own handler after us, leave it in place.
  struct sigaction current {};
  if (sigaction(SIGUSR1, nullptr, &current) != 0) return;
  if ((current.sa_flags & SA_SIGINFO) == 0 &&
      current.sa_handler == &tdp_dump_signal_handler) {
    sigaction(SIGUSR1, &g_previous_action, nullptr);
  }
#endif
}

bool dump_signal_handler_installed() {
#ifdef SIGUSR1
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  return g_handler_installed;
#else
  return false;
#endif
}

void telemetry_start_from_env() {
  const char* socket_env = std::getenv("TDP_OBS_SOCKET");
  const bool want_socket = socket_env != nullptr && socket_env[0] != '\0';
  std::uint64_t period = Telemetry::env_period_ms();
  if (period == 0 && want_socket) period = 250;  // socket implies sampling
  if (period != 0) {
    Telemetry::instance().start(period);
    install_dump_signal_handler();
  }
  if (want_socket) {
    ExpositionServer::instance().start(socket_env);
  }
}

}  // namespace tdp::obs
