// tdp::obs exporters — Chrome trace_event JSON and a plain-text summary.
//
// The Chrome trace loads directly in chrome://tracing or https://ui.perfetto.dev:
// one row ("tid") per virtual processor, spans as complete events, receive
// misses as instants, queue depths as counter tracks.  The summary is a
// terminal table of every registered counter and histogram, printed at
// Runtime shutdown when TDP_OBS=1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tdp::obs {

/// Per-machine message statistics supplied by the caller (the obs layer has
/// no dependency on vp::Machine).  per_vp_messages[i] counts messages
/// delivered to virtual processor i; the canonical Machine counter.
struct MachineStats {
  std::vector<std::uint64_t> per_vp_messages;
  std::uint64_t total_messages = 0;
};

struct EventRecord;  // trace.hpp

/// Writes `events` as a Chrome trace_event JSON *array* (brackets
/// included): span/instant/counter records plus the matched causal flow
/// pairs among them (unpaired endpoints are suppressed, as in the full
/// trace).  `thread_names` adds the per-row "thread_name" metadata
/// records.  write_chrome_trace wraps this in the object form; the
/// slow-call exemplar store (obs/attr.cpp) embeds the bare array so
/// tdp_trace's `why` subcommand can feed a captured subtree straight back
/// through the trace analyzer.
void write_trace_event_array(std::ostream& os,
                             const std::vector<EventRecord>& events,
                             bool thread_names);

/// Writes the tracer's snapshot as Chrome trace_event JSON, including the
/// causal flow arrows: every send instant whose flow id was recovered by a
/// matching receive span becomes a `ph:"s"` event, the receive a `ph:"f"`
/// at the span's end — Perfetto draws the arrow from sender to receiver.
/// Flow endpoints whose partner fell past tracer capacity are suppressed,
/// so every exported "s" has exactly one "f" and vice versa.
void write_chrome_trace(std::ostream& os);

/// Writes the tracer's current contents as a Chrome trace to `path` —
/// the flight-recorder dump ("give me the last N events NOW", from a
/// signal handler's service thread, a watchdog stall, or application
/// code).  Safe against live emitters in ring mode.  Returns false when
/// the file cannot be opened or written.
bool dump_flight_recorder(const std::string& path);

/// Writes the plain-text summary: event/drop counts, every registry counter,
/// histogram (count, p50/p90/p99, max) and high-water gauge, and — when
/// `machine` is given — the per-VP message table with each VP's peak
/// mailbox queue depth.
void write_summary(std::ostream& os, const MachineStats* machine = nullptr);

/// Rank-qualifies an output path under a multi-process launch: with
/// TDP_RANK set (tools/tdp_launch exports it), inserts ".rank<k>" before a
/// trailing ".json" — "tdp_trace.json" -> "tdp_trace.rank2.json" — or
/// appends it otherwise, so N rank processes sharing a working directory
/// never clobber each other's trace/telemetry files.  Identity when
/// TDP_RANK is unset.
std::string per_rank_path(std::string path);

/// Shutdown hook used by core::Runtime when enabled(): writes the Chrome
/// trace to $TDP_OBS_TRACE (default "tdp_trace.json", rank-qualified via
/// per_rank_path under a multi-process launch) and the summary to stderr.
void flush_at_shutdown(const MachineStats* machine = nullptr);

/// Installs a std::atexit hook (once) that re-runs flush_at_shutdown if
/// events were recorded after the last flush — so a program that calls
/// exit() mid-run still leaves a trace behind instead of losing it.
/// Called automatically whenever observability becomes enabled.
void register_atexit_flush();

}  // namespace tdp::obs
