// tdp::obs exporters — Chrome trace_event JSON and a plain-text summary.
//
// The Chrome trace loads directly in chrome://tracing or https://ui.perfetto.dev:
// one row ("tid") per virtual processor, spans as complete events, receive
// misses as instants, queue depths as counter tracks.  The summary is a
// terminal table of every registered counter and histogram, printed at
// Runtime shutdown when TDP_OBS=1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace tdp::obs {

/// Per-machine message statistics supplied by the caller (the obs layer has
/// no dependency on vp::Machine).  per_vp_messages[i] counts messages
/// delivered to virtual processor i; the canonical Machine counter.
struct MachineStats {
  std::vector<std::uint64_t> per_vp_messages;
  std::uint64_t total_messages = 0;
};

/// Writes the tracer's snapshot as Chrome trace_event JSON.
void write_chrome_trace(std::ostream& os);

/// Writes the plain-text summary: event/drop counts, every registry counter
/// and histogram (count, p50/p90/p99, max), and — when `machine` is given —
/// the per-VP message table.
void write_summary(std::ostream& os, const MachineStats* machine = nullptr);

/// Shutdown hook used by core::Runtime when enabled(): writes the Chrome
/// trace to $TDP_OBS_TRACE (default "tdp_trace.json") and the summary to
/// stderr.
void flush_at_shutdown(const MachineStats* machine = nullptr);

}  // namespace tdp::obs
