#include "obs/watchdog.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/env.hpp"

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/atomic_print.hpp"

namespace tdp::obs {

namespace {

const char* cls_name(std::int32_t cls) {
  switch (cls) {
    case 0: return "task";
    case 1: return "data";
    default: return "any";
  }
}

}  // namespace

Watchdog& Watchdog::instance() {
  // Construction is ordered after Tracer/Registry (start() touches both
  // before spawning the thread), so the sampling thread never outlives the
  // singletons it emits into.
  static Watchdog watchdog;
  return watchdog;
}

Watchdog::~Watchdog() { stop(); }

std::uint64_t Watchdog::env_period_ms() {
  return static_cast<std::uint64_t>(
      util::env_int("TDP_OBS_WATCHDOG_MS", 0, 0,
                    std::numeric_limits<long long>::max()));
}

std::uint64_t Watchdog::env_dump_cooldown_ms() {
  return static_cast<std::uint64_t>(
      util::env_int("TDP_OBS_DUMP_COOLDOWN_MS", 30000, 0,
                    std::numeric_limits<long long>::max()));
}

void Watchdog::reset_auto_dump_cooldown() {
  std::lock_guard<std::mutex> lock(mutex_);
  last_auto_dump_ns_ = 0;
}

int Watchdog::add_source(int vp, const VpWaitState* state,
                         Describe describe) {
  std::lock_guard<std::mutex> lock(mutex_);
  Source src;
  src.token = next_token_++;
  src.vp = vp;
  src.state = state;
  src.describe = std::move(describe);
  sources_.push_back(std::move(src));
  return sources_.back().token;
}

void Watchdog::remove_source(int token) {
  bool stop_thread = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
      if (it->token == token) {
        sources_.erase(it);
        break;
      }
    }
    stop_thread = sources_.empty() && thread_.joinable();
  }
  if (stop_thread) stop();
}

void Watchdog::start(std::uint64_t period_ms) {
  if (period_ms == 0) return;
  // Force singleton construction order: the sampling thread emits into
  // both, so both must be destroyed after the watchdog.
  Tracer::instance();
  Registry::instance();
  std::lock_guard<std::mutex> lock(mutex_);
  period_ms_ = period_ms;
  if (!thread_.joinable()) {
    stopping_ = false;
    seen_progress_ = false;
    reported_ = false;
    thread_ = std::thread([this] { run(); });
  }
}

void Watchdog::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stopping_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  worker.join();
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_.joinable();
}

void Watchdog::set_report_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Watchdog::set_aux_report(AuxReport aux) {
  std::lock_guard<std::mutex> lock(mutex_);
  aux_report_ = std::move(aux);
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto period = std::chrono::milliseconds(period_ms_);
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    sample(now_ns());
    // The watchdog doubles as a servicer of the flight-dump flag: a
    // SIGUSR1 must produce a dump even when the telemetry sampler and the
    // exposition server are both off.  Outside our lock — the dump renders
    // through Telemetry, which has its own.
    lock.unlock();
    service_flight_dump_request();
    lock.lock();
  }
}

void Watchdog::sample(std::uint64_t now) {
  std::uint64_t progress = 0;
  std::uint64_t queued = 0;
  std::uint64_t blocked = 0;
  for (const Source& src : sources_) {
    progress += src.state->progress.load(std::memory_order_relaxed);
    queued += src.state->queue_depth.load(std::memory_order_relaxed);
    const std::uint64_t since =
        src.state->blocked_since_ns.load(std::memory_order_relaxed);
    if (since != 0 && since <= now) ++blocked;
  }
  counter_sample(Op::WdQueued, queued, -1);
  counter_sample(Op::WdBlocked, blocked, -1);

  const bool stalled =
      seen_progress_ && progress == last_progress_ && blocked > 0;
  if (!stalled) {
    reported_ = false;
  } else if (!reported_) {
    reported_ = true;
    std::ostringstream report;
    report << "== tdp::obs watchdog: no progress for " << period_ms_
           << " ms (" << blocked << " of " << sources_.size()
           << " VPs blocked in receive) ==\n"
           << describe_blocked_locked();
    if (aux_report_) {
      report << "  " << aux_report_() << "\n";
    }
    static ShardedCounter& stall_counter =
        Registry::instance().counter("watchdog.stalls");
    stall_counter.add();
    Telemetry::instance().note_stall(report.str());
    if (sink_) {
      sink_(report.str());
    } else {
      util::atomic_print_err(report.str());
    }
    // A stall is exactly the moment the flight recorder exists for: in
    // ring mode, dump the recent past before the operator even asks.
    // Keep-first runs (the test suites deliberately provoke stalls under
    // a 100 ms watchdog) stay file-quiet.  Auto-dumps are rate-limited:
    // the dump overwrites <prefix>.* in place, so a flapping stall
    // re-dumping every episode would destroy the evidence of the first
    // one and churn disk for as long as the flap lasts.
    if (Tracer::instance().mode() == TraceMode::Ring) {
      const std::uint64_t cooldown_ns = env_dump_cooldown_ms() * 1000000ull;
      if (last_auto_dump_ns_ == 0 || cooldown_ns == 0 ||
          now >= last_auto_dump_ns_ + cooldown_ns) {
        last_auto_dump_ns_ = now;
        request_flight_dump();
      } else {
        static ShardedCounter& suppressed =
            Registry::instance().counter("watchdog.dumps_suppressed");
        suppressed.add();
      }
    }
  }
  last_progress_ = progress;
  seen_progress_ = true;
}

std::string Watchdog::describe_blocked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return describe_blocked_locked();
}

std::string Watchdog::describe_blocked_locked() const {
  const std::uint64_t now = now_ns();
  std::ostringstream out;
  for (const Source& src : sources_) {
    const std::uint64_t since =
        src.state->blocked_since_ns.load(std::memory_order_relaxed);
    if (since == 0) continue;
    const std::int32_t cls =
        src.state->wait_cls.load(std::memory_order_relaxed);
    const std::int32_t src_proc =
        src.state->wait_src.load(std::memory_order_relaxed);
    const std::int32_t sleepers =
        src.state->blocked_waiters.load(std::memory_order_relaxed);
    const std::int32_t suspended =
        src.state->suspended_waiters.load(std::memory_order_relaxed);
    out << "  vp" << src.vp << ": "
        << (suspended >= sleepers ? "suspended (task, not thread-blocked)"
                                  : "blocked")
        << " in selective receive for "
        << (now > since ? (now - since) / 1000000 : 0) << " ms";
    if (sleepers > 1) {
      out << " (" << sleepers << " receivers";
      if (suspended > 0 && suspended < sleepers) {
        out << ", " << suspended << " suspended tasks";
      }
      out << ")";
    }
    out << " waiting for ";
    if (cls < 0) {
      out << "(opaque predicate)";
    } else {
      out << "(cls=" << cls_name(cls) << ", comm="
          << src.state->wait_comm.load(std::memory_order_relaxed)
          << ", tag=" << src.state->wait_tag.load(std::memory_order_relaxed)
          << ", src=";
      if (src_proc < 0) {
        out << "any";
      } else {
        out << src_proc;
      }
      out << ")";
    }
    out << "; ";
    if (src.describe) {
      out << src.describe();
    } else {
      out << src.state->queue_depth.load(std::memory_order_relaxed)
          << " pending";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tdp::obs
