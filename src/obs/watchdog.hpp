// tdp::obs stall watchdog — turns silent selective-receive deadlocks into
// actionable reports.
//
// The integration model's characteristic failure is a virtual processor
// blocked forever in a selective receive whose matching send never happens
// (§3.4.1: typed selective receive makes this *possible to bound*, not
// impossible to write).  Such a program simply hangs, with no output.  The
// watchdog is a sampling thread that
//
//  * snapshots, on a configurable period (TDP_OBS_WATCHDOG_MS), every
//    registered mailbox's queue depth and its owner's "blocked in receive
//    since" timestamp;
//  * records the totals as counter tracks in the trace (queued messages,
//    blocked VPs), giving Perfetto a time series alongside the spans; and
//  * when NO virtual processor makes progress (posts + completed receives)
//    for a full period while at least one is blocked, prints a diagnosis:
//    who is blocked, for how long, on what (class/comm/tag/src), and which
//    pending messages its mailbox is holding — i.e. what was available but
//    did not match.
//
// Layering: the obs layer must not depend on vp, so the mailbox publishes
// its state through the POD VpWaitState below (all relaxed atomics —
// statistical, not synchronising) and registers a describe callback that
// renders its pending queue on demand.  vp::Machine registers one source
// per mailbox when observability is enabled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tdp::obs {

/// State one mailbox publishes for the watchdog.  Written by the owning
/// mailbox with relaxed stores; read by the watchdog thread.
struct alignas(64) VpWaitState {
  /// Posts + completed receives; the watchdog declares a stall only when
  /// the sum over all sources stops advancing.
  std::atomic<std::uint64_t> progress{0};
  /// now_ns() when the owner blocked in receive; 0 while it is runnable.
  std::atomic<std::uint64_t> blocked_since_ns{0};
  /// Cumulative nanoseconds spent blocked in receive over the process
  /// lifetime (closed blocks only; add the current block's age from
  /// blocked_since_ns for an instantaneous figure).  The telemetry
  /// sampler differences this per window to derive each VP's run
  /// fraction.
  std::atomic<std::uint64_t> blocked_ns_total{0};
  /// What the blocked receive is waiting for; meaningful only while
  /// blocked_since_ns != 0.  cls/src are -1 and comm/tag 0 when the wait
  /// uses an opaque predicate.
  std::atomic<std::int32_t> wait_cls{-1};
  std::atomic<std::uint64_t> wait_comm{0};
  std::atomic<std::int32_t> wait_tag{0};
  std::atomic<std::int32_t> wait_src{-1};
  /// Queued (undelivered) messages in the mailbox.
  std::atomic<std::uint64_t> queue_depth{0};
  /// Receivers currently asleep inside a receive on this mailbox.  The
  /// indexed mailbox supports many concurrent selective receivers; the
  /// tuple fields above describe only the most recent blocker, so a stall
  /// report uses this count to say how many more are waiting (the mailbox's
  /// describe callback renders each one's tuple).
  std::atomic<std::int32_t> blocked_waiters{0};
  /// Of blocked_waiters, how many are suspended scheduler tasks
  /// (TDP_SCHED=steal) rather than blocked OS threads.  A stall report
  /// must say which: a suspended task costs a record and its worker keeps
  /// running other tasks, so "blocked" there means "no matching message",
  /// never "thread wedged".
  std::atomic<std::int32_t> suspended_waiters{0};
};

class Watchdog {
 public:
  /// Renders the source's pending messages for a stall diagnosis.  Called
  /// from the watchdog thread; may take the mailbox lock (the mailbox
  /// never calls into the watchdog while holding it).
  using Describe = std::function<std::string()>;

  static Watchdog& instance();

  /// Registers a monitored mailbox; `state` must outlive the registration.
  /// Returns a token for remove_source.
  int add_source(int vp, const VpWaitState* state, Describe describe);

  /// Unregisters; stops the sampling thread when no sources remain (so no
  /// state pointer ever dangles — vp::Machine removes its sources before
  /// destroying its mailboxes).
  void remove_source(int token);

  /// Starts the sampling thread with the given period (idempotent; a later
  /// call adjusts the period).  No-op when period_ms is 0.
  void start(std::uint64_t period_ms);

  /// Stops and joins the sampling thread.
  void stop();

  bool running() const;

  /// Diverts stall reports from stderr (tests); nullptr restores stderr.
  void set_report_sink(std::function<void(const std::string&)> sink);

  /// Extra context appended to every stall report — the scheduler installs
  /// one rendering its runnable/suspended/steal counts so a TDP_SCHED=steal
  /// stall reads as "tasks suspended awaiting messages", not "threads
  /// deadlocked".  Called from the watchdog thread; nullptr clears (the
  /// scheduler clears it before tearing down its workers).
  using AuxReport = std::function<std::string()>;
  void set_aux_report(AuxReport aux);

  /// The current diagnosis text for blocked sources ("" when none are
  /// blocked) — what a stall report contains, without the stall detection.
  std::string describe_blocked() const;

  /// TDP_OBS_WATCHDOG_MS from the environment, 0 when unset/invalid.
  static std::uint64_t env_period_ms();

  /// TDP_OBS_DUMP_COOLDOWN_MS from the environment (minimum spacing of
  /// stall auto-dumps; 0 disables the cooldown), default 30000 when unset
  /// or invalid.  Read per stall, not cached, so tests can flip it.
  static std::uint64_t env_dump_cooldown_ms();

  /// Forgets the last stall auto-dump time, so the next stall dumps
  /// regardless of the cooldown.  Tests only.
  void reset_auto_dump_cooldown();

 private:
  Watchdog() = default;
  ~Watchdog();

  struct Source {
    int token = 0;
    int vp = -1;
    const VpWaitState* state = nullptr;
    Describe describe;
  };

  void run();
  void sample(std::uint64_t now);
  std::string describe_blocked_locked() const;
  void stop_locked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Source> sources_;
  std::function<void(const std::string&)> sink_;
  AuxReport aux_report_;
  std::thread thread_;
  std::uint64_t period_ms_ = 0;
  std::uint64_t last_progress_ = 0;
  /// now_ns() of the last stall auto-dump; stall episodes inside the
  /// TDP_OBS_DUMP_COOLDOWN_MS window after it report but do not dump
  /// (counted in watchdog.dumps_suppressed) — a flapping stall must not
  /// rewrite the flight dump every period, destroying the evidence of the
  /// first episode.
  std::uint64_t last_auto_dump_ns_ = 0;
  bool seen_progress_ = false;  // last_progress_ holds a real sample
  bool reported_ = false;       // one report per stall episode
  bool stopping_ = false;
  int next_token_ = 1;
};

}  // namespace tdp::obs
