// tdp::obs telemetry — the live plane over the post-mortem substrate.
//
// PRs 1–2 made runs *reconstructable*: trace at capacity, metrics at
// shutdown, analysis offline.  A long-running service needs the opposite
// temporal shape — recent history, always, while the process is alive.
// This module adds it:
//
//  * a background sampler (TDP_OBS_SAMPLE_MS) that snapshots the metrics
//    registry on a fixed period into bounded time-series rings, deriving
//    per-window counter rates and histogram p50/p99 from bucket deltas
//    (Histogram::percentile_from_buckets — lifetime percentiles flatten
//    out after minutes of uptime; windowed ones are what a dashboard
//    needs);
//  * a per-VP run/blocked sampler over the same VpWaitState blocks the
//    stall watchdog reads: per window, each virtual processor's run
//    fraction (1 - blocked time / window), mailbox depth, message rate,
//    and progress rate;
//  * the flight-recorder dump machinery: SIGUSR1, an API call, the
//    exposition server's `dump` command, or a watchdog stall all funnel
//    into one request flag serviced off the hot path, writing the trace
//    ring ($TDP_OBS_DUMP prefix, default `tdp_flight` →
//    `tdp_flight.trace.json`) and the telemetry history
//    (`<prefix>.telemetry.json`).
//
// The sampler is process-global like the watchdog: vp::Machine registers
// one source per mailbox when observability is enabled, and
// telemetry_start_from_env() (called from the Machine constructor) starts
// the thread when TDP_OBS_SAMPLE_MS or TDP_OBS_SOCKET is set.  Everything
// the sampler reads is relaxed-atomic metric state — one tick is a few
// hundred loads, so even a 10 ms period is noise.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace tdp::obs {

class Telemetry {
 public:
  /// Points retained per series: at the default 250 ms period, a 30 s
  /// window — recent history, deliberately bounded (the flight-recorder
  /// philosophy applied to metrics).
  static constexpr std::size_t kHistoryDepth = 120;

  /// Per-VP Prometheus series are emitted for the first kMaxVpSeries VPs
  /// only; higher-numbered VPs fold into one aggregate {vp="64+"} row so
  /// scrape cardinality stays bounded no matter how many VPs a process
  /// spawns.  Matches the vp.messages counter's shard count — beyond it
  /// per-VP message rates alias anyway (metric_shard is vp mod 64).
  static constexpr std::size_t kMaxVpSeries = 64;

  /// One counter sample: cumulative value and the rate over the window
  /// ending at ts_ms (0 on a series' first point).
  struct Point {
    std::uint64_t ts_ms = 0;
    double value = 0.0;
    double rate = 0.0;  ///< per second
  };

  /// One histogram window: samples recorded during the window, their rate,
  /// and the windowed (bucket-delta) p50/p99.
  struct HistPoint {
    std::uint64_t ts_ms = 0;
    std::uint64_t count = 0;  ///< samples in this window
    double rate = 0.0;        ///< samples per second
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
  };

  /// One virtual processor's window: queue depth at the tick, fraction of
  /// the window spent runnable (vs blocked in receive), message and
  /// progress rates, and the current block's age when still blocked.
  struct VpPoint {
    std::uint64_t ts_ms = 0;
    std::uint64_t depth = 0;
    double run_frac = 1.0;
    double msg_rate = 0.0;       ///< messages delivered per second
    double progress_rate = 0.0;  ///< posts + completed receives per second
    bool blocked = false;
    std::uint64_t blocked_ms = 0;  ///< age of the current block, 0 if none
  };

  /// One scheduler sample, pulled from the probe the work-stealing
  /// scheduler registers (obs must not depend on sched, so the data
  /// arrives through this callback, mirroring the VpWaitState injection).
  struct SchedSample {
    std::uint64_t runnable = 0;
    std::uint64_t suspended = 0;
    std::vector<std::uint64_t> worker_busy_ns;  ///< cumulative, per worker
  };
  using SchedProbe = std::function<SchedSample()>;

  /// Installs/clears the scheduler probe.  The sampler calls it once per
  /// tick and differences worker_busy_ns into per-worker run fractions.
  /// The scheduler clears the probe (nullptr) before joining its workers.
  void set_sched_probe(SchedProbe probe);

  /// One distributed-array sample, pulled from the probe the array manager
  /// registers (obs must not depend on dist, so the data arrives through
  /// this callback, mirroring the scheduler probe): cumulative shard
  /// migration/rebalance/forward counts plus the hottest shards by traffic
  /// accumulated in the current rebalance window.
  struct DistSample {
    std::uint64_t migrations = 0;  ///< shards migrated so far
    std::uint64_t rebalances = 0;  ///< rebalance passes so far
    std::uint64_t forwards = 0;    ///< stale-owner-table re-routes so far
    struct ShardRow {
      int creator = -1;  ///< ArrayId (creator processor, sequence number)
      std::uint64_t seq = 0;
      long long shard = 0;
      int owner = -1;
      std::uint64_t bytes = 0;  ///< traffic this window
    };
    std::vector<ShardRow> hottest;
  };
  using DistProbe = std::function<DistSample()>;

  /// Installs/clears the distributed-array probe.  The array manager
  /// registers itself on construction (when observability is on) and
  /// clears the probe before destruction.
  void set_dist_probe(DistProbe probe);

  /// The latest state across every series — what the exposition endpoint
  /// and tdp_top render.
  struct Snapshot {
    std::uint64_t ts_ms = 0;
    std::uint64_t period_ms = 0;
    std::uint64_t samples = 0;  ///< ticks taken since start
    std::vector<std::pair<std::string, Point>> counters;
    struct HistRow {
      std::string name;
      HistPoint latest;
      std::uint64_t lifetime_count = 0;
      std::uint64_t lifetime_max = 0;
    };
    std::vector<HistRow> histograms;
    struct VpRow {
      int vp = -1;
      VpPoint latest;
    };
    std::vector<VpRow> vps;
    /// Scheduler plane (present only while the steal pool is live).
    struct SchedState {
      bool present = false;
      std::uint64_t runnable = 0;
      std::uint64_t suspended = 0;
      std::vector<double> worker_run_frac;  ///< busy fraction per worker
    };
    SchedState sched;
    /// Distributed-array plane (present only while an ArrayManager lives).
    struct DistState {
      bool present = false;
      std::uint64_t migrations = 0;
      std::uint64_t rebalances = 0;
      std::uint64_t forwards = 0;
      std::vector<DistSample::ShardRow> hottest;
    };
    DistState dist;
    std::uint64_t trace_recorded = 0;
    std::uint64_t trace_dropped = 0;
    std::uint64_t trace_overwritten = 0;
    std::uint64_t stalls = 0;    ///< watchdog stall episodes so far
    std::string last_stall;      ///< first line of the latest stall report
  };

  static Telemetry& instance();

  /// TDP_OBS_SAMPLE_MS from the environment, 0 when unset/invalid.
  static std::uint64_t env_period_ms();

  /// Starts the sampling thread (idempotent; a later call adjusts the
  /// period).  No-op when period_ms is 0.
  void start(std::uint64_t period_ms);

  /// Stops and joins the sampling thread; history and snapshot survive.
  void stop();

  bool running() const;

  /// Registers a virtual processor's wait state for the run/blocked
  /// sampler; `state` must outlive the registration.  Returns a token for
  /// remove_vp_source.
  int add_vp_source(int vp, const VpWaitState* state);
  void remove_vp_source(int token);

  /// Takes one sample synchronously — what the thread does per period.
  /// Tests drive the sampler deterministically through this.
  void sample_now();

  /// The watchdog feeds each stall report here so the live plane can show
  /// "recent stalls" without re-deriving them.
  void note_stall(const std::string& report);

  Snapshot snapshot() const;

  /// Prometheus-style exposition text: registry counters/histograms/
  /// gauges plus the per-VP rows, all prefixed `tdp_` with `.`→`_`.
  std::string render_prometheus() const;

  /// The full time-series history as one JSON document (the exposition
  /// server's `json` reply and the telemetry half of a flight dump).
  /// Parses with obs::json::parse — the round trip the tests assert.
  std::string render_json() const;

  /// Clears history, sources stay registered; tests use this between
  /// cases.  Not thread-safe versus a running sampler — stop() first.
  void reset_for_test();

 private:
  Telemetry() = default;
  ~Telemetry();

  template <typename T>
  struct Ring {
    std::deque<T> points;
    void push(T p) {
      points.push_back(std::move(p));
      if (points.size() > kHistoryDepth) points.pop_front();
    }
  };

  struct CounterTrack {
    double last = 0.0;
    bool primed = false;
    Ring<Point> ring;
  };

  struct HistTrack {
    std::array<std::uint64_t, Histogram::kBuckets> last_buckets{};
    bool primed = false;
    std::uint64_t lifetime_count = 0;
    std::uint64_t lifetime_max = 0;
    Ring<HistPoint> ring;
  };

  struct VpTrack {
    int token = 0;
    int vp = -1;
    const VpWaitState* state = nullptr;
    std::uint64_t last_blocked_ns = 0;
    std::uint64_t last_progress = 0;
    std::uint64_t last_msgs = 0;
    bool primed = false;
    Ring<VpPoint> ring;
  };

  struct SchedTrack {
    bool primed = false;
    std::vector<std::uint64_t> last_busy_ns;
  };

  void run();
  void tick_locked(std::uint64_t now_ns);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  std::uint64_t period_ms_ = 0;
  bool stopping_ = false;

  std::uint64_t last_tick_ns_ = 0;
  std::uint64_t samples_ = 0;
  std::map<std::string, CounterTrack> counters_;
  std::map<std::string, HistTrack> histograms_;
  std::vector<VpTrack> vps_;
  SchedProbe sched_probe_;
  SchedTrack sched_track_;
  DistProbe dist_probe_;
  int next_token_ = 1;
  std::uint64_t stalls_ = 0;
  std::string last_stall_;
  Snapshot snapshot_;
};

/// Reads TDP_OBS_SAMPLE_MS and TDP_OBS_SOCKET and brings the live plane
/// up accordingly: the sampler when either is set (the socket implies a
/// default 250 ms period), the exposition server when the socket path is
/// set, and the SIGUSR1 dump handler alongside the sampler.  Idempotent;
/// vp::Machine calls it whenever observability is enabled.
void telemetry_start_from_env();

/// Arms the flight-recorder dump flag.  Async-signal-safe (the SIGUSR1
/// handler calls this); the telemetry sampler, the watchdog thread, and
/// the exposition server all service it at their next step.
void request_flight_dump();

/// Services a pending dump request, if any; returns true when a dump was
/// written.
bool service_flight_dump_request();

/// Writes the flight-recorder trace ring to `<prefix>.trace.json`, the
/// telemetry history to `<prefix>.telemetry.json`, and the retained slow-
/// call exemplars to `<prefix>.slow.json` (prefix: TDP_OBS_DUMP, default
/// "tdp_flight"), logging one atomic stderr line tagged with `reason`.
/// Returns the trace path ("" when the file could not be written).
std::string dump_flight_data(const char* reason);

/// Installs the SIGUSR1 → request_flight_dump handler, saving the
/// previous disposition.  Skips installation (with one stderr note) when
/// the application already registered a SIGUSR1 handler — the library
/// never clobbers its embedder's signal, and ignores the call if a
/// handler of ours is already in place.
void install_dump_signal_handler();

/// Restores the pre-install SIGUSR1 disposition, provided our handler is
/// still the current one (an application handler installed after ours is
/// left untouched).  No-op when install never ran or was skipped.
/// Telemetry::stop calls this, so teardown is symmetric with
/// telemetry_start_from_env.
void uninstall_dump_signal_handler();

/// True while our SIGUSR1 handler is installed (tests).
bool dump_signal_handler_installed();

}  // namespace tdp::obs
