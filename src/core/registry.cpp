#include "core/registry.hpp"

namespace tdp::core {

Status ProgramRegistry::add(const std::string& name,
                            DataParallelProgram program,
                            BorderProvider borders) {
  if (name.empty() || !program) return Status::Invalid;
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[name] = Entry{std::move(program), std::move(borders)};
  return Status::Ok;
}

bool ProgramRegistry::find(const std::string& name,
                           DataParallelProgram& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  out = it->second.program;
  return true;
}

bool ProgramRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

Status ProgramRegistry::borders_for(const std::string& name, int parm_num,
                                    int ndims, std::vector<int>& out) const {
  BorderProvider provider;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.borders) {
      return Status::NotFound;
    }
    provider = it->second.borders;
  }
  out = provider(parm_num, ndims);
  if (out.size() != static_cast<std::size_t>(2 * ndims)) {
    return Status::Invalid;
  }
  return Status::Ok;
}

dist::BorderLookup ProgramRegistry::border_lookup() const {
  return [this](const std::string& program, int parm_num, int ndims,
                std::vector<int>& out) {
    return borders_for(program, parm_num, ndims, out);
  };
}

std::size_t ProgramRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace tdp::core
