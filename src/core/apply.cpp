#include "core/apply.hpp"

#include "dist/layout.hpp"
#include "pcn/process.hpp"

namespace tdp::core {

int apply_task_parallel(Runtime& rt, dist::ArrayId array,
                        const ElementTask& task) {
  // Resolve the array's owner group from its metadata; an unknown array is
  // reported the same way a distributed call would report it.
  dist::InfoValue info;
  if (Status st = rt.arrays().find_info(array.creator, array,
                                        dist::InfoKind::Processors, info);
      !ok(st)) {
    return to_int(st);
  }
  const std::vector<int> owners = std::get<std::vector<int>>(info);
  if (!ok(rt.arrays().find_info(array.creator, array,
                                dist::InfoKind::GridDimensions, info))) {
    return kStatusError;
  }
  const std::vector<int> grid = std::get<std::vector<int>>(info);
  if (!ok(rt.arrays().find_info(array.creator, array,
                                dist::InfoKind::LocalDimensions, info))) {
    return kStatusError;
  }
  const std::vector<int> local = std::get<std::vector<int>>(info);

  // The data-parallel shell: per copy, spawn the task-parallel program once
  // per local element and wait for all of them (a parallel composition).
  ProgramRegistry shell_registry;
  shell_registry.add(
      "apply_shell", [&task, &grid, &local](spmd::SpmdContext& ctx,
                                            CallArgs& args) {
        const dist::LocalSectionView& view = args.local(0);
        const std::vector<int> my_pos = dist::delinearize(
            ctx.index(), grid, view.indexing);
        const long long count = view.interior_count();
        std::vector<double> results(static_cast<std::size_t>(count));
        {
          pcn::ProcessGroup elements;
          for (long long lin = 0; lin < count; ++lin) {
            elements.spawn([&, lin] {
              const std::vector<int> lidx =
                  dist::delinearize(lin, view.interior_dims, view.indexing);
              const std::vector<int> gidx =
                  dist::unmap_global(my_pos, lidx, local);
              const long long off = view.offset(lidx);
              results[static_cast<std::size_t>(lin)] =
                  task(gidx, view.f64()[off]);
            });
          }
        }
        for (long long lin = 0; lin < count; ++lin) {
          const std::vector<int> lidx =
              dist::delinearize(lin, view.interior_dims, view.indexing);
          view.f64()[view.offset(lidx)] =
              results[static_cast<std::size_t>(lin)];
        }
      });

  DistributedCall call(rt.machine(), rt.arrays(), shell_registry, owners,
                       "apply_shell");
  return call.local(array).run();
}

}  // namespace tdp::core
