// Distributed calls (§3.3, §4.3, §5.2): calling an SPMD data-parallel
// program from the task-parallel level.
//
// Executing a distributed call to program `pgm` on processors `procs` is
// equivalent to calling `pgm` concurrently on each processor of `procs` and
// waiting for all copies to complete (§3.3.1).  Control returns to the
// caller — and the call's Status becomes defined — only when every copy has
// terminated (fig. 3.2).  Each copy runs inside a *wrapper* (fig. 3.10,
// §5.2.2) that
//   1. obtains local sections of distributed-array parameters via
//      find_local on its own processor,
//   2. declares local variables for status and reduction parameters,
//   3. calls the data-parallel program with the proper actual parameters,
//   4. contributes its local status/reduction values to a pairwise merge
//      whose results are returned to the caller.
//
// If resolving a local section fails on some copy, that copy's program is
// not called and its local status carries the failure code — exactly the
// generated-wrapper behaviour shown in §5.2.4.
//
// DistributedCall is a builder mirroring the Parameters tuple of
// am_user:distributed_call; the five parameter kinds of §3.3.1.2 map to
// constant(), index(), local(), status(), reduce_*() — plus port() for the
// §7.2.1 direct-communication extension.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/call_args.hpp"
#include "core/registry.hpp"
#include "dist/array_manager.hpp"
#include "pcn/def.hpp"
#include "pcn/process.hpp"

namespace tdp::core {

/// Element-wise combine signatures for typed reductions.
using F64Combine = std::function<void(
    std::span<const double> a, std::span<const double> b,
    std::span<double> out)>;
using I32Combine = std::function<void(std::span<const int> a,
                                      std::span<const int> b,
                                      std::span<int> out)>;

F64Combine f64_sum();
F64Combine f64_max();
F64Combine f64_min();
I32Combine i32_sum();
I32Combine i32_max();

class DistributedCall {
 public:
  DistributedCall(vp::Machine& machine, dist::ArrayManager& arrays,
                  const ProgramRegistry& registry, std::vector<int> processors,
                  std::string program);

  /// Global constant: every copy receives the same value, input only.
  DistributedCall& constant(Value v);

  /// Integer index: copy i receives i, input only.
  DistributedCall& index();

  /// Local section of the distributed array named by `id`: each copy
  /// receives its own section, input and/or output.
  DistributedCall& local(dist::ArrayId id);

  /// Integer status variable, output only, at most one per call; local
  /// values are merged with `combine` (default max, §C.5).
  DistributedCall& status(StatusCombine combine = status_combine_max);

  /// Reduction variable of `len` doubles; merged values are stored into
  /// *out (resized to len) before the call's status becomes defined.
  DistributedCall& reduce_f64(std::size_t len, F64Combine combine,
                              std::vector<double>* out);

  /// Reduction variable of `len` ints.
  DistributedCall& reduce_i32(std::size_t len, I32Combine combine,
                              std::vector<int>* out);

  /// Channel ports (§7.2.1 extension): copy i receives group.port(i).
  DistributedCall& port(ChannelGroup group);

  /// Where to deliver the first copy-failure description ("copy 3: ...")
  /// when a copy throws instead of returning.  Written — possibly with an
  /// empty string when every copy succeeded — before the call's status
  /// becomes defined.  The pointee must outlive the call.
  DistributedCall& error_message(std::string* out);

  /// Executes the call and blocks until every copy has terminated.
  /// Returns the merged status: STATUS_OK when there is no status parameter
  /// and no wrapper failure, otherwise the combined local statuses
  /// (§4.3.1 postcondition).  Returns STATUS_INVALID without running when
  /// the call itself is malformed (unknown program, bad processors, more
  /// than one status parameter).  A copy that throws — a user exception, or
  /// a vp::ReceiveTimeout from a lost message under a receive deadline —
  /// does not terminate the process: its local status becomes kStatusError
  /// and folds into the §4.1.2 merge like any other failure code, with the
  /// exception text available via error_message().
  int run();

  /// Asynchronous form; the returned definitional status is defined only on
  /// completion of all copies.  The caller keeps `group` alive until then.
  pcn::Def<int> run_async(pcn::ProcessGroup& group);

 private:
  /// Validates preconditions of §4.3.1 that are checkable before spawning.
  bool validate(DataParallelProgram& program_out) const;

  vp::Machine& machine_;
  dist::ArrayManager& arrays_;
  const ProgramRegistry& registry_;
  std::vector<int> processors_;
  std::string program_name_;
  std::vector<Param> params_;
  StatusCombine status_combine_;
  int status_params_ = 0;
  std::string* error_out_ = nullptr;
};

}  // namespace tdp::core
