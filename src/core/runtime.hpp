// The integrated runtime: one object wiring together the virtual-processor
// machine, the array manager, and the program registry — everything a
// program combining task and data parallelism needs (§3.1).
//
// Typical use:
//
//   tdp::core::Runtime rt(8);
//   rt.programs().add("my_pgm", my_pgm);
//   tdp::dist::ArrayId a;
//   rt.arrays().create_array(0, ElemType::Float64, {1024},
//                            tdp::util::iota_nodes(8),
//                            {DimSpec::block()}, BorderSpec::none(),
//                            Indexing::RowMajor, a);
//   int status = rt.call(tdp::util::iota_nodes(8), "my_pgm")
//                    .index().local(a).status().run();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/distributed_call.hpp"
#include "core/registry.hpp"
#include "dist/array_manager.hpp"
#include "vp/machine.hpp"

namespace tdp::core {

class Runtime {
 public:
  /// Creates a runtime with `nprocs` virtual processors; the array manager
  /// resolves foreign_borders specifications against the program registry.
  explicit Runtime(int nprocs);

  /// With TDP_OBS=1, teardown writes the Chrome trace to $TDP_OBS_TRACE
  /// (default "tdp_trace.json") and prints the metrics summary — including
  /// the per-VP message table — to stderr.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  vp::Machine& machine() { return *machine_; }
  dist::ArrayManager& arrays() { return *arrays_; }
  ProgramRegistry& programs() { return registry_; }
  const ProgramRegistry& programs() const { return registry_; }

  int nprocs() const { return machine_->nprocs(); }

  /// All processor numbers, 0..nprocs-1, the common "whole machine" group.
  std::vector<int> all_procs() const;

  /// Starts building a distributed call to `program` on `processors`.
  DistributedCall call(std::vector<int> processors, std::string program);

 private:
  std::unique_ptr<vp::Machine> machine_;
  ProgramRegistry registry_;
  std::unique_ptr<dist::ArrayManager> arrays_;
};

}  // namespace tdp::core
