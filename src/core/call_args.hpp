// Parameters of a distributed call (§3.3.1.2, §4.3.1) and the per-copy view
// a called data-parallel program receives.
//
// A parameter passed from the task-parallel caller to the called program is
// one of:
//   * a global constant (input only; every copy receives the same value),
//   * a local section of a distributed array (named by its array id in the
//     call; each copy receives its own local section, input and/or output),
//   * an integer index (input only; the copy's position in the processor
//     array over which the call is distributed),
//   * an integer status variable (output only; at most one per call; local
//     values are merged by a binary associative operator, max by default),
//   * a reduction variable (output only; any count; like status but of any
//     type and length, merged by a user-supplied combine program),
// plus, under the §7.2.1 extension, a channel port connecting copy i to
// copy i of another concurrently-executing distributed call.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/channels.hpp"
#include "dist/local_section.hpp"
#include "dist/types.hpp"
#include "vp/payload.hpp"

namespace tdp::core {

/// Global-constant payloads supported by the prototype.  The vp::Payload
/// alternative is the bulk-constant path: marshalling copies the Param list
/// once per call, and a Payload constant rides through that copy (and out
/// to every copy of the called program) as a refcounted handle — a large
/// read-only input costs zero buffer copies however many copies run.
using Value = std::variant<int, double, std::string, std::vector<int>,
                           std::vector<double>, vp::Payload>;

/// Storage for one local status or reduction variable.
struct ReduceBuffer {
  dist::ElemType type = dist::ElemType::Float64;
  std::vector<double> f64;
  std::vector<int> i32;

  static ReduceBuffer make(dist::ElemType type, std::size_t len) {
    ReduceBuffer b;
    b.type = type;
    if (type == dist::ElemType::Float64) {
      b.f64.assign(len, 0.0);
    } else {
      b.i32.assign(len, 0);
    }
    return b;
  }
  std::size_t length() const {
    return type == dist::ElemType::Float64 ? f64.size() : i32.size();
  }
};

/// Binary combine program for reduction variables: out = combine(a, b).
using ReduceCombine = std::function<void(const ReduceBuffer& a,
                                         const ReduceBuffer& b,
                                         ReduceBuffer& out)>;

/// Delivery of the merged reduction value back to the caller's variable.
using ReduceDeliver = std::function<void(const ReduceBuffer& merged)>;

/// Binary combine program for the status variable (default: max, §C.5).
using StatusCombine = std::function<int(int, int)>;

int status_combine_max(int a, int b);
int status_combine_min(int a, int b);

/// One formal parameter of a distributed call.
struct Param {
  enum class Kind { Constant, Index, Local, Status, Reduce, Port };
  Kind kind = Kind::Constant;
  Value constant;                 ///< Kind::Constant
  dist::ArrayId array;            ///< Kind::Local
  dist::ElemType reduce_type = dist::ElemType::Float64;  ///< Kind::Reduce
  std::size_t reduce_len = 0;                            ///< Kind::Reduce
  ReduceCombine reduce_combine;                          ///< Kind::Reduce
  ReduceDeliver reduce_deliver;                          ///< Kind::Reduce
  ChannelGroup ports;             ///< Kind::Port
};

/// The actual parameters one copy of the called program sees.  Accessors are
/// checked: using a slot with the wrong kind throws std::logic_error, the
/// moral equivalent of the parameter-compatibility precondition of §4.3.1.
class CallArgs {
 public:
  std::size_t size() const { return slots_.size(); }
  Param::Kind kind(std::size_t slot) const;

  /// Kind::Constant — the shared global value.
  const Value& constant(std::size_t slot) const;

  template <typename T>
  const T& in(std::size_t slot) const {
    return std::get<T>(constant(slot));
  }

  /// Kind::Constant holding a vp::Payload — the shared bulk constant's
  /// bytes, borrowed straight from the one refcounted buffer (no copy).
  std::span<const std::byte> payload(std::size_t slot) const;

  /// Kind::Index — this copy's index into the call's processor array.
  int index(std::size_t slot) const;

  /// Kind::Local — this copy's local section of the distributed array.
  const dist::LocalSectionView& local(std::size_t slot) const;

  /// Kind::Status — this copy's local status variable (output).
  int& status(std::size_t slot);

  /// Kind::Reduce — this copy's local reduction variable (output).
  std::span<double> reduce_f64(std::size_t slot);
  std::span<int> reduce_i32(std::size_t slot);

  /// Kind::Port — this copy's channel endpoint (§7.2.1 extension).
  Port& port(std::size_t slot);

 private:
  friend class Wrapper;
  struct SlotState {
    Param::Kind kind = Param::Kind::Constant;
    const Value* constant = nullptr;
    int index = 0;
    dist::LocalSectionView local;
    int status = 0;
    ReduceBuffer reduce;
    Port port;
  };

  const SlotState& checked(std::size_t slot, Param::Kind want) const;
  SlotState& checked(std::size_t slot, Param::Kind want);

  std::vector<SlotState> slots_;
};

}  // namespace tdp::core
