// Direct communication between concurrently-executing data-parallel
// programs — the extension proposed in thesis §7.2.1.
//
// The base model requires all communication between different data-parallel
// programs to go through the common task-parallel caller, which is simple
// but creates a bottleneck when the programs exchange significant data.
// The proposed extension lets the task-parallel caller define *channels*
// and pass them to the data-parallel programs as parameters (the Fortran M
// style); corresponding copies of the two programs then communicate
// directly.
//
// make_channels(n) creates n independent bidirectional channels and returns
// the two sides as ChannelGroups.  Passing one side to distributed call A
// and the other to call B connects copy i of A with copy i of B.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace tdp::core {

namespace detail {

/// One direction of one channel: an unbounded FIFO of byte packets.
struct ChannelQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> packets;

  void push(std::vector<std::byte> p) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      packets.push_back(std::move(p));
    }
    cv.notify_all();
  }

  std::vector<std::byte> pop() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return !packets.empty(); });
    std::vector<std::byte> p = std::move(packets.front());
    packets.pop_front();
    return p;
  }
};

struct ChannelPair {
  ChannelQueue to_a;  ///< traffic from side B to side A
  ChannelQueue to_b;  ///< traffic from side A to side B
};

}  // namespace detail

/// One endpoint of one channel, held by one copy of a data-parallel program.
class Port {
 public:
  Port() = default;
  Port(std::shared_ptr<detail::ChannelPair> pair, bool side_a)
      : pair_(std::move(pair)), side_a_(side_a) {}

  bool valid() const { return pair_ != nullptr; }

  void send_bytes(std::span<const std::byte> bytes) {
    outgoing().push(std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  std::vector<std::byte> recv_bytes() { return incoming().pop(); }

  template <typename T>
  void send(std::span<const T> data) {
    send_bytes(std::as_bytes(data));
  }

  template <typename T>
  std::vector<T> recv() {
    std::vector<std::byte> bytes = recv_bytes();
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
    return out;
  }

  /// Number of packets waiting to be received (diagnostics).
  std::size_t pending() {
    std::lock_guard<std::mutex> lock(incoming().mutex);
    return incoming().packets.size();
  }

 private:
  detail::ChannelQueue& outgoing() {
    return side_a_ ? pair_->to_b : pair_->to_a;
  }
  detail::ChannelQueue& incoming() {
    return side_a_ ? pair_->to_a : pair_->to_b;
  }

  std::shared_ptr<detail::ChannelPair> pair_;
  bool side_a_ = true;
};

/// One side of a set of channels: port(i) belongs to copy i of the
/// distributed call this side is passed to.
class ChannelGroup {
 public:
  ChannelGroup() = default;

  int size() const { return static_cast<int>(pairs_.size()); }
  Port port(int i) const {
    return Port(pairs_[static_cast<std::size_t>(i)], side_a_);
  }

  /// The same side with its ports in reverse order: port(i) of the result
  /// is port(size()-1-i) of *this.  Lets a caller pair copy i of one
  /// distributed call with copy n-1-i of another (e.g. the high-end
  /// interface copy of one model with the low-end copy of its neighbour).
  ChannelGroup reversed() const {
    ChannelGroup out = *this;
    std::reverse(out.pairs_.begin(), out.pairs_.end());
    return out;
  }

 private:
  friend std::pair<ChannelGroup, ChannelGroup> make_channels(int n);
  std::vector<std::shared_ptr<detail::ChannelPair>> pairs_;
  bool side_a_ = true;
};

/// Creates n channels; the two returned groups are the two sides.
std::pair<ChannelGroup, ChannelGroup> make_channels(int n);

}  // namespace tdp::core
