#include "core/call_args.hpp"

#include <stdexcept>

namespace tdp::core {

int status_combine_max(int a, int b) { return a > b ? a : b; }
int status_combine_min(int a, int b) { return a < b ? a : b; }

namespace {
const char* kind_name(Param::Kind k) {
  switch (k) {
    case Param::Kind::Constant:
      return "constant";
    case Param::Kind::Index:
      return "index";
    case Param::Kind::Local:
      return "local";
    case Param::Kind::Status:
      return "status";
    case Param::Kind::Reduce:
      return "reduce";
    case Param::Kind::Port:
      return "port";
  }
  return "?";
}
}  // namespace

Param::Kind CallArgs::kind(std::size_t slot) const {
  if (slot >= slots_.size()) {
    throw std::logic_error("CallArgs: slot out of range");
  }
  return slots_[slot].kind;
}

const CallArgs::SlotState& CallArgs::checked(std::size_t slot,
                                             Param::Kind want) const {
  if (slot >= slots_.size()) {
    throw std::logic_error("CallArgs: slot out of range");
  }
  const SlotState& s = slots_[slot];
  if (s.kind != want) {
    throw std::logic_error(std::string("CallArgs: slot is ") +
                           kind_name(s.kind) + ", accessed as " +
                           kind_name(want));
  }
  return s;
}

CallArgs::SlotState& CallArgs::checked(std::size_t slot, Param::Kind want) {
  return const_cast<SlotState&>(
      static_cast<const CallArgs*>(this)->checked(slot, want));
}

const Value& CallArgs::constant(std::size_t slot) const {
  return *checked(slot, Param::Kind::Constant).constant;
}

std::span<const std::byte> CallArgs::payload(std::size_t slot) const {
  const Value& v = constant(slot);
  const vp::Payload* p = std::get_if<vp::Payload>(&v);
  if (p == nullptr) {
    throw std::logic_error("CallArgs: constant slot holds no vp::Payload");
  }
  return p->bytes();
}

int CallArgs::index(std::size_t slot) const {
  return checked(slot, Param::Kind::Index).index;
}

const dist::LocalSectionView& CallArgs::local(std::size_t slot) const {
  return checked(slot, Param::Kind::Local).local;
}

int& CallArgs::status(std::size_t slot) {
  return checked(slot, Param::Kind::Status).status;
}

std::span<double> CallArgs::reduce_f64(std::size_t slot) {
  SlotState& s = checked(slot, Param::Kind::Reduce);
  if (s.reduce.type != dist::ElemType::Float64) {
    throw std::logic_error("CallArgs: reduce slot is not double");
  }
  return std::span<double>(s.reduce.f64);
}

std::span<int> CallArgs::reduce_i32(std::size_t slot) {
  SlotState& s = checked(slot, Param::Kind::Reduce);
  if (s.reduce.type != dist::ElemType::Int32) {
    throw std::logic_error("CallArgs: reduce slot is not int");
  }
  return std::span<int>(s.reduce.i32);
}

Port& CallArgs::port(std::size_t slot) {
  return checked(slot, Param::Kind::Port).port;
}

}  // namespace tdp::core
