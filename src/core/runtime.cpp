#include "core/runtime.hpp"

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/node_array.hpp"

namespace tdp::core {

Runtime::Runtime(int nprocs)
    : machine_(std::make_unique<vp::Machine>(nprocs)),
      arrays_(std::make_unique<dist::ArrayManager>(
          *machine_, registry_.border_lookup())) {}

Runtime::~Runtime() {
  if (!obs::enabled()) return;
  obs::MachineStats stats;
  stats.per_vp_messages = machine_->messages_by_vp();
  stats.total_messages = machine_->messages_sent();
  obs::flush_at_shutdown(&stats);
}

std::vector<int> Runtime::all_procs() const {
  return util::iota_nodes(machine_->nprocs());
}

DistributedCall Runtime::call(std::vector<int> processors,
                              std::string program) {
  return DistributedCall(*machine_, *arrays_, registry_,
                         std::move(processors), std::move(program));
}

}  // namespace tdp::core
