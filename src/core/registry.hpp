// The program registry: named data-parallel programs and their border
// routines.
//
// PCN supports higher-order calls to programs named at run time by a
// character-string variable, and the prototype's distributed-call and
// foreign_borders machinery is built on resolving program names (§3.2.1.3,
// §4.3.1, §5.1.7).  In this C++ reproduction the registry plays the role of
// the loaded module table: a distributed call names its target program, and
// an array created with foreign_borders names the program whose border
// routine (the `Program_` companion of §4.2.1) decides the local-section
// border sizes.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/call_args.hpp"
#include "spmd/context.hpp"
#include "util/status.hpp"

namespace tdp::core {

/// A data-parallel SPMD program: executed once per processor of the call's
/// group, on that copy's SpmdContext and actual parameters.
using DataParallelProgram =
    std::function<void(spmd::SpmdContext&, CallArgs&)>;

/// The `Program_` border routine of §4.2.1: given the parameter number the
/// array will be passed as, supplies the 2*ndims border sizes.
using BorderProvider =
    std::function<std::vector<int>(int parm_num, int ndims)>;

class ProgramRegistry {
 public:
  /// Registers (or replaces) a program under `name`, optionally with its
  /// border routine.  Returns Status::Invalid for an empty name or program.
  Status add(const std::string& name, DataParallelProgram program,
             BorderProvider borders = nullptr);

  /// Looks up a program; false when unknown.
  bool find(const std::string& name, DataParallelProgram& out) const;

  bool contains(const std::string& name) const;

  /// Resolves a foreign_borders request against the registered border
  /// routines; Status::NotFound when the program is unknown or has no
  /// border routine.
  Status borders_for(const std::string& name, int parm_num, int ndims,
                     std::vector<int>& out) const;

  /// An adapter suitable for dist::ArrayManager's BorderLookup hook.
  dist::BorderLookup border_lookup() const;

  std::size_t size() const;

 private:
  struct Entry {
    DataParallelProgram program;
    BorderProvider borders;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tdp::core
