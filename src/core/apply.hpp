// The alternative integration model (thesis §2.2): task-parallel programs
// as subprograms of a data-parallel program.
//
// "Calling a task-parallel program on a distributed data structure is
// equivalent to calling it concurrently once for each element of the
// distributed data structure, and each copy of the task-parallel program
// can consist of multiple processes."
//
// apply_task_parallel realises that model over a distributed array: one
// data-parallel SPMD shell runs per owner processor; inside each shell the
// task-parallel program is spawned concurrently once per local element
// (dynamic process creation), and each invocation may itself create further
// processes, use definitional variables, streams, and so on.
#pragma once

#include <functional>

#include "core/runtime.hpp"

namespace tdp::core {

/// The task-parallel program applied per element: receives the element's
/// global indices and current value, returns the new value.  It runs as its
/// own process and may freely spawn more.
using ElementTask =
    std::function<double(const std::vector<int>& global_idx, double value)>;

/// Applies `task` concurrently to every element of the distributed array.
/// Returns the merged status of the underlying distributed call
/// (STATUS_OK, or the failure code when the array is unknown on some owner).
int apply_task_parallel(Runtime& rt, dist::ArrayId array,
                        const ElementTask& task);

}  // namespace tdp::core
