// am_util:do_all (§5.2.1): execute a program concurrently on each processor
// of a group and pairwise-combine the per-copy results.
//
// do_all is the primitive under distributed_call: the generated wrapper
// program of §5.2.2 is what do_all runs on each processor.  We expose it
// separately, as the thesis does, because it is independently useful (the
// examples use it to load code and initialise per-processor state).
#pragma once

#include <functional>
#include <vector>

#include "pcn/def.hpp"
#include "pcn/process.hpp"
#include "vp/machine.hpp"

namespace tdp::core {

/// The per-copy body: receives the copy's index into `processors` and
/// returns that copy's local status.
using DoAllBody = std::function<int(int index)>;

/// Pairwise status combiner.
using DoAllCombine = std::function<int(int, int)>;

/// Runs `body` once per entry of `processors`, each copy placed on its
/// processor, waits for all copies, and returns the pairwise combination of
/// their local statuses (in index order).  An empty group yields 0.
int do_all(vp::Machine& machine, const std::vector<int>& processors,
           const DoAllBody& body, const DoAllCombine& combine);

/// Asynchronous form: spawns the copies into `group` and returns a
/// definitional status that becomes defined when every copy has terminated
/// (§4.1.2: callers can use it for synchronisation).
pcn::Def<int> do_all_async(vp::Machine& machine,
                           const std::vector<int>& processors,
                           const DoAllBody& body, const DoAllCombine& combine,
                           pcn::ProcessGroup& group);

}  // namespace tdp::core
