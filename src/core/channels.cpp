#include "core/channels.hpp"

#include <stdexcept>

namespace tdp::core {

std::pair<ChannelGroup, ChannelGroup> make_channels(int n) {
  if (n <= 0) throw std::invalid_argument("make_channels: n must be positive");
  ChannelGroup a;
  ChannelGroup b;
  a.side_a_ = true;
  b.side_a_ = false;
  a.pairs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    a.pairs_.push_back(std::make_shared<detail::ChannelPair>());
  }
  b.pairs_ = a.pairs_;
  return {std::move(a), std::move(b)};
}

}  // namespace tdp::core
