#include "core/do_all.hpp"

#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tdp::core {

int do_all(vp::Machine& machine, const std::vector<int>& processors,
           const DoAllBody& body, const DoAllCombine& combine) {
  pcn::ProcessGroup group;
  pcn::Def<int> status =
      do_all_async(machine, processors, body, combine, group);
  group.join();
  return status.read();
}

pcn::Def<int> do_all_async(vp::Machine& machine,
                           const std::vector<int>& processors,
                           const DoAllBody& body, const DoAllCombine& combine,
                           pcn::ProcessGroup& group) {
  const int n = static_cast<int>(processors.size());
  pcn::Def<int> status;
  if (n == 0) {
    status.define(0);
    return status;
  }

  static obs::ShardedCounter& copies =
      obs::Registry::instance().counter("do_all.copies");
  copies.add(static_cast<std::uint64_t>(n));

  auto locals = std::make_shared<std::vector<pcn::Def<int>>>(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    group.spawn_on(machine, processors[static_cast<std::size_t>(i)],
                   [body, locals, i] {
                     obs::Span copy(obs::Op::DoAllCopy, 0,
                                    static_cast<std::uint64_t>(i));
                     (*locals)[static_cast<std::size_t>(i)].define(body(i));
                   });
  }

  // The merge process suspends on each local status in turn and combines
  // them pairwise; the result defines `status` only after every copy has
  // terminated (§4.3.1 postcondition).
  group.spawn([locals, combine, status, n] {
    int merged = (*locals)[0].read();
    for (int i = 1; i < n; ++i) {
      merged = combine(merged, (*locals)[static_cast<std::size_t>(i)].read());
    }
    status.define(merged);
  });
  return status;
}

}  // namespace tdp::core
