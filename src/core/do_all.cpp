#include "core/do_all.hpp"

#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace tdp::core {

int do_all(vp::Machine& machine, const std::vector<int>& processors,
           const DoAllBody& body, const DoAllCombine& combine) {
  pcn::ProcessGroup group;
  pcn::Def<int> status =
      do_all_async(machine, processors, body, combine, group);
  group.join();
  return status.read();
}

pcn::Def<int> do_all_async(vp::Machine& machine,
                           const std::vector<int>& processors,
                           const DoAllBody& body, const DoAllCombine& combine,
                           pcn::ProcessGroup& group) {
  const int n = static_cast<int>(processors.size());
  pcn::Def<int> status;
  if (n == 0) {
    status.define(0);
    return status;
  }

  static obs::ShardedCounter& copies =
      obs::Registry::instance().counter("do_all.copies");
  copies.add(static_cast<std::uint64_t>(n));

  // Causal chaining, mirroring distributed_call: spawn→copy and copy→merge
  // arrows so the trace shows the fan-out/fan-in structure of the §4.3.1
  // fork/join even though do_all has no communicator.
  std::shared_ptr<std::vector<std::uint64_t>> spawn_flows;
  std::shared_ptr<std::vector<std::uint64_t>> join_flows;
  if (obs::enabled()) {
    spawn_flows = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n));
    join_flows = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      (*spawn_flows)[static_cast<std::size_t>(i)] = obs::next_flow_id();
      (*join_flows)[static_cast<std::size_t>(i)] = obs::next_flow_id();
    }
  }

  auto locals = std::make_shared<std::vector<pcn::Def<int>>>(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (spawn_flows) {
      obs::flow_start(obs::Op::DoAllCopy,
                      (*spawn_flows)[static_cast<std::size_t>(i)]);
    }
    group.spawn_on(machine, processors[static_cast<std::size_t>(i)],
                   [body, locals, i, spawn_flows, join_flows] {
                     obs::Span copy(obs::Op::DoAllCopy, 0,
                                    static_cast<std::uint64_t>(i));
                     if (spawn_flows) {
                       obs::flow_end(
                           obs::Op::DoAllCopy,
                           (*spawn_flows)[static_cast<std::size_t>(i)]);
                     }
                     int local;
                     try {
                       local = body(i);
                     } catch (...) {
                       // Keep the merge process alive: this copy's local
                       // status becomes kStatusError, and the exception is
                       // recorded by the ProcessGroup, which rethrows the
                       // first one on the joining thread (instead of the
                       // old behaviour: std::terminate in this thread).
                       if (join_flows) {
                         obs::flow_start(
                             obs::Op::DoAllCopy,
                             (*join_flows)[static_cast<std::size_t>(i)]);
                       }
                       (*locals)[static_cast<std::size_t>(i)].define(
                           kStatusError);
                       throw;
                     }
                     if (join_flows) {
                       obs::flow_start(
                           obs::Op::DoAllCopy,
                           (*join_flows)[static_cast<std::size_t>(i)]);
                     }
                     (*locals)[static_cast<std::size_t>(i)].define(local);
                   });
  }

  // The merge process suspends on each local status in turn and combines
  // them pairwise; the result defines `status` only after every copy has
  // terminated (§4.3.1 postcondition).
  group.spawn([locals, combine, status, n, join_flows] {
    int merged = (*locals)[0].read();
    if (join_flows) obs::flow_end(obs::Op::DoAllCopy, (*join_flows)[0]);
    for (int i = 1; i < n; ++i) {
      merged = combine(merged, (*locals)[static_cast<std::size_t>(i)].read());
      if (join_flows) {
        obs::flow_end(obs::Op::DoAllCopy,
                      (*join_flows)[static_cast<std::size_t>(i)]);
      }
    }
    status.define(merged);
  });
  return status;
}

}  // namespace tdp::core
