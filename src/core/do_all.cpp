#include "core/do_all.hpp"

#include <memory>

#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"
#include "vp/machine.hpp"

namespace tdp::core {

int do_all(vp::Machine& machine, const std::vector<int>& processors,
           const DoAllBody& body, const DoAllCombine& combine) {
  // The copies execute on whatever lane pcn::ProcessGroup spawns onto:
  // under TDP_SCHED=steal a do_all over thousands of processors costs
  // thousands of fiber records on a fixed worker pool, not thousands of
  // OS threads.
  pcn::ProcessGroup group;
  pcn::Def<int> status =
      do_all_async(machine, processors, body, combine, group);
  group.join();
  return status.read();
}

pcn::Def<int> do_all_async(vp::Machine& machine,
                           const std::vector<int>& processors,
                           const DoAllBody& body, const DoAllCombine& combine,
                           pcn::ProcessGroup& group) {
  const int n = static_cast<int>(processors.size());
  pcn::Def<int> status;
  if (n == 0) {
    status.define(0);
    return status;
  }

  static obs::ShardedCounter& copies =
      obs::Registry::instance().counter("do_all.copies");
  copies.add(static_cast<std::uint64_t>(n));

  // do_all has no communicator of its own, but per-call attribution still
  // wants a call-root id — mint one from the same process-global counter
  // distributed calls draw their comms from, so the id space stays unique
  // and the do_all's spans land in the same ledger/exemplar machinery.
  const std::uint64_t call_id = obs::enabled() ? machine.next_comm() : 0;
  if (call_id != 0) {
    obs::CallTable::instance().call_begin(call_id, obs::CallKind::DoAll, n);
  }

  // Causal chaining, mirroring distributed_call: spawn→copy and copy→merge
  // arrows so the trace shows the fan-out/fan-in structure of the §4.3.1
  // fork/join.
  std::shared_ptr<std::vector<std::uint64_t>> spawn_flows;
  std::shared_ptr<std::vector<std::uint64_t>> join_flows;
  if (obs::enabled()) {
    spawn_flows = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n));
    join_flows = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      (*spawn_flows)[static_cast<std::size_t>(i)] = obs::next_flow_id();
      (*join_flows)[static_cast<std::size_t>(i)] = obs::next_flow_id();
    }
  }

  auto locals = std::make_shared<std::vector<pcn::Def<int>>>(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (spawn_flows) {
      obs::flow_start(obs::Op::DoAllCopy,
                      (*spawn_flows)[static_cast<std::size_t>(i)], call_id);
    }
    group.spawn_on(machine, processors[static_cast<std::size_t>(i)],
                   [body, locals, i, call_id, spawn_flows, join_flows] {
                     obs::Span copy(obs::Op::DoAllCopy, call_id,
                                    static_cast<std::uint64_t>(i));
                     const std::uint64_t body_t0 =
                         call_id != 0 ? obs::now_ns() : 0;
                     if (spawn_flows) {
                       obs::flow_end(
                           obs::Op::DoAllCopy,
                           (*spawn_flows)[static_cast<std::size_t>(i)],
                           call_id);
                     }
                     int local;
                     try {
                       local = body(i);
                     } catch (...) {
                       // Keep the merge process alive: this copy's local
                       // status becomes kStatusError, and the exception is
                       // recorded by the ProcessGroup, which rethrows the
                       // first one on the joining thread (instead of the
                       // old behaviour: std::terminate in this thread).
                       if (body_t0 != 0) {
                         obs::CallTable::instance().add_exec(
                             call_id, obs::now_ns() - body_t0);
                       }
                       if (join_flows) {
                         obs::flow_start(
                             obs::Op::DoAllCopy,
                             (*join_flows)[static_cast<std::size_t>(i)],
                             call_id);
                       }
                       (*locals)[static_cast<std::size_t>(i)].define(
                           kStatusError);
                       throw;
                     }
                     if (body_t0 != 0) {
                       obs::CallTable::instance().add_exec(
                           call_id, obs::now_ns() - body_t0);
                     }
                     if (join_flows) {
                       obs::flow_start(
                           obs::Op::DoAllCopy,
                           (*join_flows)[static_cast<std::size_t>(i)],
                           call_id);
                     }
                     (*locals)[static_cast<std::size_t>(i)].define(local);
                   });
  }

  // The merge process suspends on each local status in turn and combines
  // them pairwise; the result defines `status` only after every copy has
  // terminated (§4.3.1 postcondition).
  group.spawn([locals, combine, status, n, call_id, join_flows] {
    int merged = (*locals)[0].read();
    if (join_flows) {
      obs::flow_end(obs::Op::DoAllCopy, (*join_flows)[0], call_id);
    }
    for (int i = 1; i < n; ++i) {
      merged = combine(merged, (*locals)[static_cast<std::size_t>(i)].read());
      if (join_flows) {
        obs::flow_end(obs::Op::DoAllCopy,
                      (*join_flows)[static_cast<std::size_t>(i)], call_id);
      }
    }
    status.define(merged);
    if (call_id != 0) obs::CallTable::instance().call_end(call_id);
  });
  return status;
}

}  // namespace tdp::core
