#include "core/array_handle.hpp"

namespace tdp::core {

Array::Array(Runtime& rt, std::vector<int> dims, std::vector<int> processors,
             const std::string& distrib, dist::BorderSpec borders,
             dist::Indexing indexing, dist::ElemType type)
    : rt_(&rt), dims_(std::move(dims)) {
  std::vector<dist::DimSpec> spec;
  if (distrib.empty()) {
    spec.assign(dims_.size(), dist::DimSpec::block());
  } else if (Status st = dist::parse_distrib(distrib, spec); !ok(st)) {
    throw ArrayError("Array: bad decomposition '" + distrib + "'", st);
  }
  const int on = vp::current_proc() >= 0 ? vp::current_proc() : 0;
  Status st = rt.arrays().create_array(on, type, dims_, processors, spec,
                                       borders, indexing, id_);
  if (!ok(st)) throw ArrayError("Array: create_array failed", st);
}

Array::~Array() { free(); }

Array::Array(Array&& other) noexcept
    : rt_(other.rt_), id_(other.id_), dims_(std::move(other.dims_)) {
  other.rt_ = nullptr;
  other.id_ = dist::ArrayId{};
}

Array& Array::operator=(Array&& other) noexcept {
  if (this != &other) {
    free();
    rt_ = other.rt_;
    id_ = other.id_;
    dims_ = std::move(other.dims_);
    other.rt_ = nullptr;
    other.id_ = dist::ArrayId{};
  }
  return *this;
}

void Array::free() {
  if (!valid()) return;
  const int on = id_.creator;
  rt_->arrays().free_array(on, id_);
  rt_ = nullptr;
  id_ = dist::ArrayId{};
}

double Array::at(std::span<const int> indices) const {
  const int on = vp::current_proc() >= 0 ? vp::current_proc() : id_.creator;
  dist::Scalar v;
  Status st = rt_->arrays().read_element(on, id_, indices, v);
  if (!ok(st)) throw ArrayError("Array: read_element failed", st);
  return dist::scalar_to_double(v);
}

double Array::at(std::initializer_list<int> indices) const {
  return at(std::span<const int>(indices.begin(), indices.size()));
}

void Array::set(std::span<const int> indices, double value) {
  const int on = vp::current_proc() >= 0 ? vp::current_proc() : id_.creator;
  Status st =
      rt_->arrays().write_element(on, id_, indices, dist::Scalar{value});
  if (!ok(st)) throw ArrayError("Array: write_element failed", st);
}

void Array::set(std::initializer_list<int> indices, double value) {
  set(std::span<const int>(indices.begin(), indices.size()), value);
}

std::vector<int> Array::info_vec(dist::InfoKind which) const {
  dist::InfoValue v;
  Status st = rt_->arrays().find_info(id_.creator, id_, which, v);
  if (!ok(st)) throw ArrayError("Array: find_info failed", st);
  return std::get<std::vector<int>>(v);
}

std::vector<int> Array::grid_dims() const {
  return info_vec(dist::InfoKind::GridDimensions);
}
std::vector<int> Array::local_dims() const {
  return info_vec(dist::InfoKind::LocalDimensions);
}
std::vector<int> Array::borders() const {
  return info_vec(dist::InfoKind::Borders);
}
std::vector<int> Array::processors() const {
  return info_vec(dist::InfoKind::Processors);
}

}  // namespace tdp::core
