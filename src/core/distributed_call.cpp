#include "core/distributed_call.hpp"

#include <algorithm>
#include <utility>

#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spmd/context.hpp"

namespace tdp::core {

F64Combine f64_sum() {
  return [](std::span<const double> a, std::span<const double> b,
            std::span<double> out) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
  };
}

F64Combine f64_max() {
  return [](std::span<const double> a, std::span<const double> b,
            std::span<double> out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = a[i] > b[i] ? a[i] : b[i];
    }
  };
}

F64Combine f64_min() {
  return [](std::span<const double> a, std::span<const double> b,
            std::span<double> out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = a[i] < b[i] ? a[i] : b[i];
    }
  };
}

I32Combine i32_sum() {
  return [](std::span<const int> a, std::span<const int> b,
            std::span<int> out) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
  };
}

I32Combine i32_max() {
  return [](std::span<const int> a, std::span<const int> b,
            std::span<int> out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = a[i] > b[i] ? a[i] : b[i];
    }
  };
}

namespace {

/// What one wrapper copy hands back for merging: its effective local status
/// plus its local reduction variables, in parameter order (the tuple of
/// §5.2.2).  `error` is non-empty only when the copy threw; the status is
/// then kStatusError and the reduction buffers are zero-initialised.
struct WrapperResult {
  int status = kStatusOk;
  std::vector<ReduceBuffer> reduces;
  std::string error;
};

/// Zero-initialised reduction buffers matching the call's Reduce parameters,
/// so a copy that failed before (or while) producing results still
/// contributes well-formed operands to the pairwise merge.
std::vector<ReduceBuffer> zero_reduces(const std::vector<Param>& params) {
  std::vector<ReduceBuffer> out;
  for (const Param& p : params) {
    if (p.kind == Param::Kind::Reduce) {
      out.push_back(ReduceBuffer::make(p.reduce_type, p.reduce_len));
    }
  }
  return out;
}

}  // namespace

/// Builds the per-copy actual parameters, runs the program, and produces the
/// WrapperResult — the generated wrapper program of §5.2.2–5.2.4.
class Wrapper {
 public:
  static WrapperResult run_copy(dist::ArrayManager& arrays,
                                spmd::SpmdContext& ctx,
                                const std::vector<Param>& params,
                                const DataParallelProgram& program,
                                bool has_status) {
    WrapperResult result;
    CallArgs args;
    args.slots_.resize(params.size());

    int resolve_status = kStatusOk;
    std::vector<std::size_t> status_slots;
    std::vector<std::pair<std::size_t, std::size_t>> reduce_slots;

    for (std::size_t i = 0; i < params.size(); ++i) {
      const Param& p = params[i];
      CallArgs::SlotState& slot = args.slots_[i];
      slot.kind = p.kind;
      switch (p.kind) {
        case Param::Kind::Constant:
          slot.constant = &p.constant;
          break;
        case Param::Kind::Index:
          slot.index = ctx.index();
          break;
        case Param::Kind::Local: {
          Status st = arrays.find_local(ctx.proc(), p.array, slot.local);
          if (!ok(st) && resolve_status == kStatusOk) {
            resolve_status = to_int(st);
          }
          break;
        }
        case Param::Kind::Status:
          slot.status = kStatusOk;
          status_slots.push_back(i);
          break;
        case Param::Kind::Reduce:
          slot.reduce = ReduceBuffer::make(p.reduce_type, p.reduce_len);
          reduce_slots.push_back({reduce_slots.size(), i});
          break;
        case Param::Kind::Port:
          slot.port = p.ports.port(ctx.index());
          break;
      }
    }

    if (resolve_status != kStatusOk) {
      // find_local failed: the program is not called; the copy's status is
      // the failure code (§5.2.4 generated-wrapper behaviour).  Reduction
      // buffers stay zero-initialised and still participate in the merge.
      result.status = resolve_status;
    } else {
      try {
        program(ctx, args);
        result.status = has_status && !status_slots.empty()
                            ? args.slots_[status_slots.front()].status
                            : kStatusOk;
      } catch (const std::exception& e) {
        // A throwing copy folds into the status merge like a resolve
        // failure: kStatusError regardless of whether the call declared a
        // status parameter (the §4.1.2 discipline — failure must reach the
        // caller, never std::terminate).  The already-allocated reduction
        // buffers keep their zero state and still participate.
        result.status = kStatusError;
        result.error = e.what();
      }
    }

    result.reduces.reserve(reduce_slots.size());
    for (const auto& [order, slot] : reduce_slots) {
      (void)order;
      result.reduces.push_back(std::move(args.slots_[slot].reduce));
    }
    return result;
  }
};

DistributedCall::DistributedCall(vp::Machine& machine,
                                 dist::ArrayManager& arrays,
                                 const ProgramRegistry& registry,
                                 std::vector<int> processors,
                                 std::string program)
    : machine_(machine),
      arrays_(arrays),
      registry_(registry),
      processors_(std::move(processors)),
      program_name_(std::move(program)),
      status_combine_(status_combine_max) {}

DistributedCall& DistributedCall::constant(Value v) {
  Param p;
  p.kind = Param::Kind::Constant;
  p.constant = std::move(v);
  params_.push_back(std::move(p));
  return *this;
}

DistributedCall& DistributedCall::index() {
  Param p;
  p.kind = Param::Kind::Index;
  params_.push_back(std::move(p));
  return *this;
}

DistributedCall& DistributedCall::local(dist::ArrayId id) {
  Param p;
  p.kind = Param::Kind::Local;
  p.array = id;
  params_.push_back(std::move(p));
  return *this;
}

DistributedCall& DistributedCall::status(StatusCombine combine) {
  Param p;
  p.kind = Param::Kind::Status;
  params_.push_back(std::move(p));
  status_combine_ = std::move(combine);
  ++status_params_;
  return *this;
}

DistributedCall& DistributedCall::reduce_f64(std::size_t len,
                                             F64Combine combine,
                                             std::vector<double>* out) {
  Param p;
  p.kind = Param::Kind::Reduce;
  p.reduce_type = dist::ElemType::Float64;
  p.reduce_len = len;
  p.reduce_combine = [combine = std::move(combine)](
                         const ReduceBuffer& a, const ReduceBuffer& b,
                         ReduceBuffer& o) {
    combine(std::span<const double>(a.f64), std::span<const double>(b.f64),
            std::span<double>(o.f64));
  };
  if (out != nullptr) {
    p.reduce_deliver = [out](const ReduceBuffer& merged) {
      *out = merged.f64;
    };
  }
  params_.push_back(std::move(p));
  return *this;
}

DistributedCall& DistributedCall::reduce_i32(std::size_t len,
                                             I32Combine combine,
                                             std::vector<int>* out) {
  Param p;
  p.kind = Param::Kind::Reduce;
  p.reduce_type = dist::ElemType::Int32;
  p.reduce_len = len;
  p.reduce_combine = [combine = std::move(combine)](
                         const ReduceBuffer& a, const ReduceBuffer& b,
                         ReduceBuffer& o) {
    combine(std::span<const int>(a.i32), std::span<const int>(b.i32),
            std::span<int>(o.i32));
  };
  if (out != nullptr) {
    p.reduce_deliver = [out](const ReduceBuffer& merged) {
      *out = merged.i32;
    };
  }
  params_.push_back(std::move(p));
  return *this;
}

DistributedCall& DistributedCall::port(ChannelGroup group) {
  Param p;
  p.kind = Param::Kind::Port;
  p.ports = std::move(group);
  params_.push_back(std::move(p));
  return *this;
}

DistributedCall& DistributedCall::error_message(std::string* out) {
  error_out_ = out;
  return *this;
}

bool DistributedCall::validate(DataParallelProgram& program_out) const {
  if (processors_.empty()) return false;
  for (int p : processors_) {
    if (!machine_.valid_proc(p)) return false;
  }
  if (status_params_ > 1) return false;  // at most one status (§4.3.1)
  for (const Param& p : params_) {
    if (p.kind == Param::Kind::Reduce && !p.reduce_combine) return false;
    if (p.kind == Param::Kind::Port &&
        p.ports.size() < static_cast<int>(processors_.size())) {
      return false;
    }
  }
  return registry_.find(program_name_, program_out);
}

int DistributedCall::run() {
  pcn::ProcessGroup group;
  pcn::Def<int> status = run_async(group);
  group.join();
  return status.read();
}

pcn::Def<int> DistributedCall::run_async(pcn::ProcessGroup& group) {
  pcn::Def<int> status;
  DataParallelProgram program;
  if (!validate(program)) {
    status.define(kStatusInvalid);
    return status;
  }

  const int n = static_cast<int>(processors_.size());
  const std::uint64_t comm = machine_.next_comm();

  static obs::ShardedCounter& call_count =
      obs::Registry::instance().counter("call.count");
  call_count.add();

  // Open this call's attribution ledger under its call-root id (the comm):
  // the mailbox folds queue waits and blocked-receive time in as messages
  // flow, the copies add execute time below, and the combine process
  // closes the ledger (obs::CallTable::call_end) once the status defines.
  const bool attr_on = obs::enabled();
  if (attr_on) {
    obs::CallTable::instance().call_begin(comm, obs::CallKind::Call, n);
  }

  // Phase 1 of the call machinery (§3.3.2.2): marshal the argument list
  // into the shared, immutable view all copies use.  The spawned processes
  // must not reference *this, which may be destroyed while the asynchronous
  // call is still running.
  std::shared_ptr<std::vector<Param>> shared;
  std::shared_ptr<std::vector<int>> procs;
  std::shared_ptr<std::vector<pcn::Def<WrapperResult>>> results;
  const std::uint64_t marshal_t0 = attr_on ? obs::now_ns() : 0;
  {
    obs::Span marshal(obs::Op::CallMarshal, comm,
                      static_cast<std::uint64_t>(n), nullptr);
    marshal.set_arg1(params_.size());
    shared = std::make_shared<std::vector<Param>>(params_);
    procs = std::make_shared<std::vector<int>>(processors_);
    results = std::make_shared<std::vector<pcn::Def<WrapperResult>>>(
        static_cast<std::size_t>(n));
  }
  if (attr_on) {
    obs::CallTable::instance().add_marshal(comm,
                                           obs::now_ns() - marshal_t0);
  }
  const bool has_status = status_params_ == 1;
  vp::Machine* machine = &machine_;
  dist::ArrayManager* arrays = &arrays_;

  // Repartition barrier: hold each local() array's placement fixed for the
  // whole call, so a shard migration can never move a section out from
  // under copies that resolved it with find_local.  Pins release in the
  // combine process, after the call's status defines.
  auto pinned = std::make_shared<std::vector<dist::ArrayId>>();
  for (const Param& p : params_) {
    if (p.kind != Param::Kind::Local) continue;
    if (std::find(pinned->begin(), pinned->end(), p.array) == pinned->end()) {
      pinned->push_back(p.array);
    }
  }
  for (const dist::ArrayId& id : *pinned) arrays_.pin_layout(id);

  // Causal chaining of the call's phases: one flow id per copy links the
  // caller's spawn point to that copy's execute span ("call.execute"
  // arrows fanning out), and a second links the copy's completion to the
  // combine process's read ("call.combine" arrows fanning back in).  All
  // of a call's spans and arrows additionally share the call-scoped comm.
  std::shared_ptr<std::vector<std::uint64_t>> spawn_flows;
  std::shared_ptr<std::vector<std::uint64_t>> join_flows;
  if (obs::enabled()) {
    spawn_flows = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n));
    join_flows = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      (*spawn_flows)[static_cast<std::size_t>(i)] = obs::next_flow_id();
      (*join_flows)[static_cast<std::size_t>(i)] = obs::next_flow_id();
    }
  }

  // Phase 2: one SPMD execute per copy, placed on its processor.  The
  // copies inherit the group's execution lane: scheduler tasks under
  // TDP_SCHED=steal (blocked receives suspend the fiber, freeing its
  // worker), dedicated threads on the legacy lane.
  static obs::Histogram& execute_hist =
      obs::Registry::instance().histogram("call.execute_ns");
  for (int i = 0; i < n; ++i) {
    if (spawn_flows) {
      obs::flow_start(obs::Op::CallExecute,
                      (*spawn_flows)[static_cast<std::size_t>(i)], comm);
    }
    group.spawn_on(
        machine_, processors_[static_cast<std::size_t>(i)],
        [machine, arrays, shared, procs, results, program, comm, i,
         has_status, spawn_flows, join_flows] {
          obs::Span exec(obs::Op::CallExecute, comm,
                         static_cast<std::uint64_t>(i), &execute_hist);
          const std::uint64_t exec_t0 = obs::enabled() ? obs::now_ns() : 0;
          if (spawn_flows) {
            obs::flow_end(obs::Op::CallExecute,
                          (*spawn_flows)[static_cast<std::size_t>(i)], comm);
          }
          WrapperResult result;
          try {
            spmd::SpmdContext ctx(*machine, comm, *procs, i);
            result =
                Wrapper::run_copy(*arrays, ctx, *shared, program, has_status);
          } catch (const std::exception& e) {
            // Last line of defence: anything escaping the wrapper (context
            // setup, a reduction-buffer allocation, a receive timeout
            // during a collective inside run_copy's own machinery) becomes
            // a well-formed kStatusError result rather than a dead thread
            // — the combine process below must never wait forever on an
            // undefined slot.
            result.status = kStatusError;
            result.error = e.what();
            result.reduces = zero_reduces(*shared);
          }
          if (result.status == kStatusError && !result.error.empty()) {
            static obs::ShardedCounter& copy_errors =
                obs::Registry::instance().counter("call.copy_errors");
            copy_errors.add();
          }
          if (exec_t0 != 0) {
            obs::CallTable::instance().add_exec(comm,
                                                obs::now_ns() - exec_t0);
          }
          // Flow origin before define(): the combine process may emit the
          // matching flow end the instant the result becomes readable.
          if (join_flows) {
            obs::flow_start(obs::Op::CallCombine,
                            (*join_flows)[static_cast<std::size_t>(i)], comm);
          }
          (*results)[static_cast<std::size_t>(i)].define(std::move(result));
        });
  }

  // Phase 3 — the combine process (fig. 3.10): merges local statuses and
  // reduction variables pairwise in copy order, delivers merged reductions,
  // and only then defines the call's status.
  StatusCombine scombine = status_combine_;
  std::string* error_out = error_out_;
  group.spawn([shared, results, status, scombine, comm, n, join_flows,
               error_out, arrays, pinned] {
    obs::Span comb(obs::Op::CallCombine, comm, static_cast<std::uint64_t>(n),
                   nullptr);
    WrapperResult merged = (*results)[0].read();
    if (join_flows) {
      obs::flow_end(obs::Op::CallCombine, (*join_flows)[0], comm);
    }
    std::string first_error;
    if (!merged.error.empty()) first_error = "copy 0: " + merged.error;
    for (int i = 1; i < n; ++i) {
      const WrapperResult& next =
          (*results)[static_cast<std::size_t>(i)].read();
      if (join_flows) {
        obs::flow_end(obs::Op::CallCombine,
                      (*join_flows)[static_cast<std::size_t>(i)], comm);
      }
      merged.status = scombine(merged.status, next.status);
      if (first_error.empty() && !next.error.empty()) {
        first_error = "copy " + std::to_string(i) + ": " + next.error;
      }
      std::size_t r = 0;
      for (const Param& p : *shared) {
        if (p.kind != Param::Kind::Reduce) continue;
        if (r >= merged.reduces.size() || r >= next.reduces.size()) break;
        ReduceBuffer out = ReduceBuffer::make(p.reduce_type, p.reduce_len);
        p.reduce_combine(merged.reduces[r], next.reduces[r], out);
        merged.reduces[r] = std::move(out);
        ++r;
      }
    }
    std::size_t r = 0;
    for (const Param& p : *shared) {
      if (p.kind != Param::Kind::Reduce) continue;
      if (r >= merged.reduces.size()) break;
      if (p.reduce_deliver) p.reduce_deliver(merged.reduces[r]);
      ++r;
    }
    // Deliver the failure description before the status becomes readable —
    // the same ordering discipline as reductions (§3.3.1: all outputs are
    // valid once the call's status is defined).
    if (error_out != nullptr) *error_out = std::move(first_error);
    status.define(merged.status);
    // Close the combine span before the ledger: the exemplar capture
    // inside call_end snapshots the ring, and the combine span must be in
    // it — an open span has emitted nothing yet.
    comb.finish();
    if (obs::enabled()) obs::CallTable::instance().call_end(comm);
    for (const dist::ArrayId& id : *pinned) arrays->unpin_layout(id);
  });
  return status;
}

}  // namespace tdp::core
