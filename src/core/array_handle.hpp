// Declaration-scoped distributed arrays — the "full syntactic support" the
// thesis describes and leaves beyond the prototype's scope (§3.2.2.1):
// "A distributed array would be created when the procedure that declares it
// begins and destroyed when that procedure ends, and single elements would
// be referenced ... in the same way as single elements of non-distributed
// arrays."
//
// core::Array is that interface, implemented over the library-procedure
// substrate: construction issues create_array, destruction issues
// free_array, at() reads/writes elements by global indices.  It is
// move-only (one owner frees), and moved-from handles are inert.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <string>

#include "core/runtime.hpp"
#include "dist/spec_parse.hpp"

namespace tdp::core {

/// Thrown when a declaration-style operation fails; carries the library
/// status code the equivalent procedure returned.
class ArrayError : public std::runtime_error {
 public:
  ArrayError(const std::string& what, Status status)
      : std::runtime_error(what + ": " + std::string(to_string(status))),
        status_(status) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

class Array {
 public:
  /// Declares (creates) a distributed double array over `processors` with a
  /// textual decomposition like "(block, *)" (§3.2.1.2 notation).
  Array(Runtime& rt, std::vector<int> dims, std::vector<int> processors,
        const std::string& distrib = "",
        dist::BorderSpec borders = dist::BorderSpec::none(),
        dist::Indexing indexing = dist::Indexing::RowMajor,
        dist::ElemType type = dist::ElemType::Float64);

  ~Array();

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;
  Array(Array&& other) noexcept;
  Array& operator=(Array&& other) noexcept;

  dist::ArrayId id() const { return id_; }
  bool valid() const { return rt_ != nullptr && id_.valid(); }
  const std::vector<int>& dims() const { return dims_; }

  /// Element read by global indices; throws ArrayError on failure.
  double at(std::initializer_list<int> indices) const;
  double at(std::span<const int> indices) const;

  /// Element write by global indices; throws ArrayError on failure.
  void set(std::initializer_list<int> indices, double value);
  void set(std::span<const int> indices, double value);

  /// find_info conveniences.
  std::vector<int> grid_dims() const;
  std::vector<int> local_dims() const;
  std::vector<int> borders() const;
  std::vector<int> processors() const;

  /// Releases the array early (idempotent); the destructor then does
  /// nothing.
  void free();

 private:
  std::vector<int> info_vec(dist::InfoKind which) const;

  Runtime* rt_ = nullptr;
  dist::ArrayId id_;
  std::vector<int> dims_;
};

}  // namespace tdp::core
