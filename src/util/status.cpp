#include "util/status.hpp"

namespace tdp {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Ok:
      return "STATUS_OK";
    case Status::Invalid:
      return "STATUS_INVALID";
    case Status::NotFound:
      return "STATUS_NOT_FOUND";
    case Status::Error:
      return "STATUS_ERROR";
  }
  return "STATUS_UNKNOWN";
}

Status status_from_int(int code) {
  switch (code) {
    case kStatusOk:
      return Status::Ok;
    case kStatusInvalid:
      return Status::Invalid;
    case kStatusNotFound:
      return Status::NotFound;
    case kStatusError:
      return Status::Error;
    default:
      return Status::Error;
  }
}

}  // namespace tdp
