// Atomic console output (thesis §C.4, am_util:atomic_print).
//
// Concurrently-executing uses of the usual output mechanisms may produce
// interleaved output; atomic_print writes a whole line atomically.
#pragma once

#include <sstream>
#include <string>

namespace tdp::util {

/// Writes `line` plus a trailing newline to standard output atomically:
/// output produced by a single call is never interleaved with output from
/// other concurrent atomic_print calls.
void atomic_print(const std::string& line);

/// Writes a (possibly multi-line) block to standard error atomically,
/// appending a trailing newline if the block lacks one.  Shares the
/// atomic_print mutex, so a watchdog stall report or shutdown summary
/// never interleaves with concurrent stdout lines either.
void atomic_print_err(const std::string& block);

/// Formats all arguments with operator<< into one line and prints it
/// atomically.
template <typename... Args>
void atomic_print_items(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  atomic_print(os.str());
}

}  // namespace tdp::util
