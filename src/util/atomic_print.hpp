// Atomic console output (thesis §C.4, am_util:atomic_print).
//
// Concurrently-executing uses of the usual output mechanisms may produce
// interleaved output; atomic_print writes a whole line atomically.
#pragma once

#include <sstream>
#include <string>

namespace tdp::util {

/// Writes `line` plus a trailing newline to standard output atomically:
/// output produced by a single call is never interleaved with output from
/// other concurrent atomic_print calls.
void atomic_print(const std::string& line);

/// Formats all arguments with operator<< into one line and prints it
/// atomically.
template <typename... Args>
void atomic_print_items(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  atomic_print(os.str());
}

}  // namespace tdp::util
