// Checked integer parsing for TDP_* environment variables.
//
// The runtime is configured almost entirely through environment variables,
// and several call sites had grown their own ad-hoc `atoi`/`atol` reads —
// under which garbage silently parses as 0, trailing junk is ignored, and
// out-of-range values wrap.  A misspelt `TDP_DIST_SHARDS=1O` then silently
// disables oversharding instead of failing loudly.  This helper is the one
// blessed integer read, modeled on fault/plan.cpp's strict strtoull
// parsing: the whole string must parse, the value must sit inside the
// caller's [min, max] contract, and every reject prints one warning naming
// the variable, the offending value, and the fallback actually used.
#pragma once

#include <cstdint>
#include <limits>

namespace tdp::util {

/// Reads environment variable `name` as a base-10 integer.
///
///  * unset or empty -> `fallback`, silently (absence is not an error);
///  * the ENTIRE value must parse (no trailing junk) and lie in
///    [min, max]; otherwise a loud one-line warning naming the variable,
///    the rejected value, and the accepted range goes to stderr (through
///    util::atomic_print_err) and `fallback` is returned.
///
/// The value is read fresh on every call — call sites that want
/// read-once-and-cache semantics keep their own `static` (several do, so
/// tests can flip variables per-case where the contract allows it).
long long env_int(const char* name, long long fallback,
                  long long min = std::numeric_limits<long long>::min(),
                  long long max = std::numeric_limits<long long>::max());

/// env_int narrowed to `int` bounds (the common case: processor counts,
/// shard counts, sizes in KiB).
int env_int32(const char* name, int fallback,
              int min = std::numeric_limits<int>::min(),
              int max = std::numeric_limits<int>::max());

/// Strict full-string parse of `value` as a base-10 long long; returns
/// false on empty input, trailing junk, or overflow.  The primitive under
/// env_int, exposed for parsers that report their own errors.
bool parse_int(const char* value, long long& out);

}  // namespace tdp::util
