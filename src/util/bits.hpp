// Small integer helpers used throughout the implementation: floor(log2),
// power-of-two tests and the bit-reversal permutation rho used by the FFT
// example (thesis §6.2, rho_proc).
#pragma once

#include <cstdint>

namespace tdp::util {

/// floor(log2(n)) for n >= 1 (thesis find_log2); returns 0 for n <= 1.
int floor_log2(std::int64_t n);

/// True when n is a positive power of two.
bool is_pow2(std::int64_t n);

/// Bitwise reversal of the rightmost `bits` bits of `value`, right-justified
/// (thesis rho_proc).  Bits above position `bits` are discarded.
std::uint64_t bit_reverse(int bits, std::uint64_t value);

/// Integer n-th root: largest r with r^n <= value; exact() variant below
/// reports whether the root is exact.  Used for the default "square"
/// processor-grid rule of §3.2.1.2.
std::int64_t iroot(std::int64_t value, int n);

/// True when value has an exact integer n-th root, returned through *root.
bool exact_iroot(std::int64_t value, int n, std::int64_t* root);

/// Integer power r^n with saturation guard for the small values used here.
std::int64_t ipow(std::int64_t r, int n);

}  // namespace tdp::util
