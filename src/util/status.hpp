// Status codes for every library procedure (thesis §4.1.2).
//
// Each library procedure in the prototype has an integer output parameter
// whose value indicates the success or failure of the operation.  The codes
// and their meanings are taken verbatim from the thesis:
//
//   STATUS_OK        0   no errors
//   STATUS_INVALID   1   invalid parameter
//   STATUS_NOT_FOUND 2   array not found
//   STATUS_ERROR    99   system error
#pragma once

#include <string_view>

namespace tdp {

/// Outcome of a library operation (§4.1.2).
enum class Status : int {
  Ok = 0,        ///< no errors
  Invalid = 1,   ///< invalid parameter
  NotFound = 2,  ///< array not found
  Error = 99,    ///< system error
};

/// The raw integer codes, for programs that carry status through plain ints
/// (local status variables of data-parallel programs do exactly this).
inline constexpr int kStatusOk = 0;
inline constexpr int kStatusInvalid = 1;
inline constexpr int kStatusNotFound = 2;
inline constexpr int kStatusError = 99;

/// Human-readable name of a status code.
std::string_view to_string(Status s);

/// Widening conversion used when a status travels as an int.
inline constexpr int to_int(Status s) { return static_cast<int>(s); }

/// Narrowing conversion; unknown codes map to Status::Error.
Status status_from_int(int code);

/// True when the operation succeeded.
inline constexpr bool ok(Status s) { return s == Status::Ok; }

}  // namespace tdp
