#include "util/node_array.hpp"

namespace tdp::util {

std::vector<int> node_array(int first, int stride, int count) {
  std::vector<int> out;
  if (count <= 0) return out;
  out.reserve(static_cast<std::size_t>(count));
  int v = first;
  for (int i = 0; i < count; ++i) {
    out.push_back(v);
    v += stride;
  }
  return out;
}

std::vector<int> iota_nodes(int count) { return node_array(0, 1, count); }

}  // namespace tdp::util
