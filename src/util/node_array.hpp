// Patterned processor-number arrays (thesis §C.2, am_util:node_array).
#pragma once

#include <vector>

namespace tdp::util {

/// Returns the array {first, first+stride, first+2*stride, ...} of length
/// `count`, intended for building arrays of processor node numbers.
/// Precondition (thesis): count > 0; we also accept count == 0 and return {}.
std::vector<int> node_array(int first, int stride, int count);

/// Returns {0, 1, ..., count-1}; the common "all processors" group.
std::vector<int> iota_nodes(int count);

}  // namespace tdp::util
