#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/atomic_print.hpp"

namespace tdp::util {

bool parse_int(const char* value, long long& out) {
  if (value == nullptr || value[0] == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

long long env_int(const char* name, long long fallback, long long min,
                  long long max) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  long long v = 0;
  if (!parse_int(value, v)) {
    atomic_print_err(std::string("tdp: ignoring malformed ") + name + "=\"" +
                     value + "\" (not an integer); using " +
                     std::to_string(fallback));
    return fallback;
  }
  if (v < min || v > max) {
    atomic_print_err(std::string("tdp: ignoring out-of-range ") + name + "=" +
                     value + " (accepted range [" + std::to_string(min) +
                     ", " + std::to_string(max) + "]); using " +
                     std::to_string(fallback));
    return fallback;
  }
  return v;
}

int env_int32(const char* name, int fallback, int min, int max) {
  return static_cast<int>(env_int(name, fallback, min, max));
}

}  // namespace tdp::util
