#include "util/bits.hpp"

namespace tdp::util {

int floor_log2(std::int64_t n) {
  int log = 0;
  while (n >= 2) {
    n /= 2;
    ++log;
  }
  return log;
}

bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::uint64_t bit_reverse(int bits, std::uint64_t value) {
  std::uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((value >> i) & 1u);
  }
  return out;
}

std::int64_t ipow(std::int64_t r, int n) {
  std::int64_t out = 1;
  for (int i = 0; i < n; ++i) out *= r;
  return out;
}

std::int64_t iroot(std::int64_t value, int n) {
  if (value <= 0 || n <= 0) return 0;
  std::int64_t r = 1;
  while (ipow(r + 1, n) <= value) ++r;
  return r;
}

bool exact_iroot(std::int64_t value, int n, std::int64_t* root) {
  std::int64_t r = iroot(value, n);
  if (root != nullptr) *root = r;
  return ipow(r, n) == value;
}

}  // namespace tdp::util
