#include "util/atomic_print.hpp"

#include <iostream>
#include <mutex>

namespace tdp::util {
namespace {

std::mutex& print_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void atomic_print(const std::string& line) {
  std::lock_guard<std::mutex> lock(print_mutex());
  std::cout << line << '\n';
  std::cout.flush();
}

}  // namespace tdp::util
