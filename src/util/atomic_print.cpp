#include "util/atomic_print.hpp"

#include <iostream>
#include <mutex>

namespace tdp::util {
namespace {

std::mutex& print_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void atomic_print(const std::string& line) {
  std::lock_guard<std::mutex> lock(print_mutex());
  std::cout << line << '\n';
  std::cout.flush();
}

void atomic_print_err(const std::string& block) {
  // Same mutex as atomic_print: diagnostics on stderr (watchdog stall
  // reports, the shutdown summary) never tear mid-block against program
  // output on stdout when both land on one terminal or log file.
  std::lock_guard<std::mutex> lock(print_mutex());
  std::cout.flush();
  std::cerr << block;
  if (block.empty() || block.back() != '\n') std::cerr << '\n';
  std::cerr.flush();
}

}  // namespace tdp::util
