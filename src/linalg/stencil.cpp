#include "linalg/stencil.hpp"

#include <cmath>
#include <vector>

namespace tdp::linalg {

void exchange_halo_1d(spmd::SpmdContext& ctx, std::span<double> with_halo,
                      int m, int tag) {
  const int me = ctx.index();
  const int p = ctx.nprocs();
  // Send my left edge to the left neighbour, then receive my right halo,
  // and symmetrically for the other side.  Deterministic pairwise order:
  // everyone sends both edges first (mailboxes are unbounded), then
  // receives.
  if (me > 0) {
    ctx.send_value<double>(me - 1, tag, with_halo[1]);
  }
  if (me < p - 1) {
    ctx.send_value<double>(me + 1, tag + 1,
                           with_halo[static_cast<std::size_t>(m)]);
  }
  if (me < p - 1) {
    with_halo[static_cast<std::size_t>(m) + 1] =
        ctx.recv_value<double>(me + 1, tag);
  }
  if (me > 0) {
    with_halo[0] = ctx.recv_value<double>(me - 1, tag + 1);
  }
}

void heat_step_1d(spmd::SpmdContext& ctx, std::span<double> with_halo, int m,
                  double alpha, std::span<double> scratch, int tag) {
  exchange_halo_1d(ctx, with_halo, m, tag);
  // Insulated (zero-flux) global boundaries: reflect the edge value into
  // the halo so the rod conserves heat except through explicit coupling.
  if (ctx.index() == 0) with_halo[0] = with_halo[1];
  if (ctx.index() == ctx.nprocs() - 1) {
    with_halo[static_cast<std::size_t>(m) + 1] =
        with_halo[static_cast<std::size_t>(m)];
  }
  for (int i = 1; i <= m; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    scratch[s - 1] = with_halo[s] + alpha * (with_halo[s - 1] -
                                             2.0 * with_halo[s] +
                                             with_halo[s + 1]);
  }
  for (int i = 1; i <= m; ++i) {
    with_halo[static_cast<std::size_t>(i)] =
        scratch[static_cast<std::size_t>(i) - 1];
  }
}

void jacobi_step_2d(spmd::SpmdContext& ctx, std::span<double> with_halo,
                    int mloc, int n, std::span<double> scratch, int tag) {
  const int me = ctx.index();
  const int p = ctx.nprocs();
  auto row = [&](int r) { return with_halo.data() + static_cast<std::size_t>(r) * n; };

  if (me > 0) {
    ctx.send(me - 1, tag, std::span<const double>(row(1), static_cast<std::size_t>(n)));
  }
  if (me < p - 1) {
    ctx.send(me + 1, tag + 1,
             std::span<const double>(row(mloc), static_cast<std::size_t>(n)));
  }
  if (me < p - 1) {
    ctx.recv(me + 1, tag,
             std::span<double>(row(mloc + 1), static_cast<std::size_t>(n)));
  }
  if (me > 0) {
    ctx.recv(me - 1, tag + 1,
             std::span<double>(row(0), static_cast<std::size_t>(n)));
  }

  const long long grow0 = static_cast<long long>(me) * mloc;
  const long long grows = static_cast<long long>(p) * mloc;
  for (int i = 1; i <= mloc; ++i) {
    const long long g = grow0 + (i - 1);
    for (int j = 0; j < n; ++j) {
      const std::size_t s = static_cast<std::size_t>(i - 1) * n + j;
      if (g == 0 || g == grows - 1 || j == 0 || j == n - 1) {
        scratch[s] = row(i)[j];  // Dirichlet boundary
      } else {
        scratch[s] = 0.25 * (row(i - 1)[j] + row(i + 1)[j] + row(i)[j - 1] +
                             row(i)[j + 1]);
      }
    }
  }
  for (int i = 1; i <= mloc; ++i) {
    for (int j = 0; j < n; ++j) {
      row(i)[j] = scratch[static_cast<std::size_t>(i - 1) * n + j];
    }
  }
}

void jacobi_step_2d_grid(spmd::SpmdContext& ctx, std::span<double> with_halo,
                         int mloc, int nloc, int grid_rows, int grid_cols,
                         std::span<double> scratch, int tag) {
  const int me = ctx.index();
  const int gr = me / grid_cols;
  const int gc = me % grid_cols;
  const int width = nloc + 2;
  auto cell = [&](int r, int c) -> double& {
    return with_halo[static_cast<std::size_t>(r) * width + c];
  };

  // Neighbour copy indices in the processor grid; -1 on the boundary.
  const int north = gr > 0 ? me - grid_cols : -1;
  const int south = gr < grid_rows - 1 ? me + grid_cols : -1;
  const int west = gc > 0 ? me - 1 : -1;
  const int east = gc < grid_cols - 1 ? me + 1 : -1;

  // Rows exchange directly; columns are packed into contiguous buffers.
  std::vector<double> col_buf(static_cast<std::size_t>(mloc));
  if (north >= 0) {
    ctx.send(north, tag,
             std::span<const double>(&cell(1, 1), static_cast<std::size_t>(nloc)));
  }
  if (south >= 0) {
    ctx.send(south, tag + 1,
             std::span<const double>(&cell(mloc, 1),
                                     static_cast<std::size_t>(nloc)));
  }
  if (west >= 0) {
    for (int r = 0; r < mloc; ++r) {
      col_buf[static_cast<std::size_t>(r)] = cell(r + 1, 1);
    }
    ctx.send<double>(west, tag + 2, col_buf);
  }
  if (east >= 0) {
    for (int r = 0; r < mloc; ++r) {
      col_buf[static_cast<std::size_t>(r)] = cell(r + 1, nloc);
    }
    ctx.send<double>(east, tag + 3, col_buf);
  }
  if (south >= 0) {
    ctx.recv(south, tag,
             std::span<double>(&cell(mloc + 1, 1),
                               static_cast<std::size_t>(nloc)));
  }
  if (north >= 0) {
    ctx.recv(north, tag + 1,
             std::span<double>(&cell(0, 1), static_cast<std::size_t>(nloc)));
  }
  if (east >= 0) {
    ctx.recv<double>(east, tag + 2, col_buf);
    for (int r = 0; r < mloc; ++r) cell(r + 1, nloc + 1) = col_buf[static_cast<std::size_t>(r)];
  }
  if (west >= 0) {
    ctx.recv<double>(west, tag + 3, col_buf);
    for (int r = 0; r < mloc; ++r) cell(r + 1, 0) = col_buf[static_cast<std::size_t>(r)];
  }

  // Relax the interior; the global boundary stays Dirichlet.
  const long long grow0 = static_cast<long long>(gr) * mloc;
  const long long gcol0 = static_cast<long long>(gc) * nloc;
  const long long grows = static_cast<long long>(grid_rows) * mloc;
  const long long gcols = static_cast<long long>(grid_cols) * nloc;
  for (int r = 1; r <= mloc; ++r) {
    const long long gi = grow0 + (r - 1);
    for (int c = 1; c <= nloc; ++c) {
      const long long gj = gcol0 + (c - 1);
      const std::size_t s =
          static_cast<std::size_t>(r - 1) * nloc + (c - 1);
      if (gi == 0 || gi == grows - 1 || gj == 0 || gj == gcols - 1) {
        scratch[s] = cell(r, c);
      } else {
        scratch[s] = 0.25 * (cell(r - 1, c) + cell(r + 1, c) +
                             cell(r, c - 1) + cell(r, c + 1));
      }
    }
  }
  for (int r = 1; r <= mloc; ++r) {
    for (int c = 1; c <= nloc; ++c) {
      cell(r, c) = scratch[static_cast<std::size_t>(r - 1) * nloc + (c - 1)];
    }
  }
}

double global_residual(spmd::SpmdContext& ctx, double local_delta) {
  return ctx.allreduce_max(local_delta);
}

void register_stencil_programs(core::ProgramRegistry& registry) {
  // "heat_step_1d": alpha (double), steps (int), local u with borders {1,1}.
  // The local section's storage already includes the halo cells, exactly
  // the Fortran-D overlap-area pattern the borders feature exists for.
  registry.add(
      "heat_step_1d",
      [](spmd::SpmdContext& ctx, core::CallArgs& args) {
        const double alpha = args.in<double>(0);
        const int steps = args.in<int>(1);
        const dist::LocalSectionView& u = args.local(2);
        const int m = u.interior_dims[0];
        std::span<double> field(u.f64(), static_cast<std::size_t>(m) + 2);
        std::vector<double> scratch(static_cast<std::size_t>(m));
        for (int s = 0; s < steps; ++s) {
          heat_step_1d(ctx, field, m, alpha, scratch, 2 * s);
        }
        args.status(3) = kStatusOk;
      },
      // Border routine (§4.2.1): parameter 2 needs a one-cell halo.
      [](int parm_num, int ndims) {
        std::vector<int> borders(static_cast<std::size_t>(2 * ndims), 0);
        if (parm_num == 2 && ndims == 1) borders = {1, 1};
        return borders;
      });

  // "jacobi_step_2d": steps (int), local u with borders {1,1,0,0}; reduce
  // double[1] (max) = max |delta| of the final sweep.
  registry.add(
      "jacobi_step_2d",
      [](spmd::SpmdContext& ctx, core::CallArgs& args) {
        const int steps = args.in<int>(0);
        const dist::LocalSectionView& u = args.local(1);
        const int mloc = u.interior_dims[0];
        const int n = u.interior_dims[1];
        std::span<double> field(
            u.f64(), static_cast<std::size_t>(mloc + 2) * n);
        std::vector<double> scratch(static_cast<std::size_t>(mloc) * n);
        double delta = 0.0;
        for (int s = 0; s < steps; ++s) {
          std::vector<double> before(field.begin(), field.end());
          jacobi_step_2d(ctx, field, mloc, n, scratch, 2 * s);
          delta = 0.0;
          for (std::size_t i = 0; i < field.size(); ++i) {
            delta = std::max(delta, std::fabs(field[i] - before[i]));
          }
        }
        args.reduce_f64(2)[0] = global_residual(ctx, delta);
      },
      [](int parm_num, int ndims) {
        std::vector<int> borders(static_cast<std::size_t>(2 * ndims), 0);
        if (parm_num == 1 && ndims == 2) borders = {1, 1, 0, 0};
        return borders;
      });

  // "jacobi_step_2d_grid": steps, grid_rows, grid_cols, local u with a
  // one-cell halo on all four sides; reduce double[1] (max) = max |delta|
  // of the final sweep.
  registry.add(
      "jacobi_step_2d_grid",
      [](spmd::SpmdContext& ctx, core::CallArgs& args) {
        const int steps = args.in<int>(0);
        const int grid_rows = args.in<int>(1);
        const int grid_cols = args.in<int>(2);
        const dist::LocalSectionView& u = args.local(3);
        const int mloc = u.interior_dims[0];
        const int nloc = u.interior_dims[1];
        std::span<double> field(
            u.f64(), static_cast<std::size_t>(mloc + 2) * (nloc + 2));
        std::vector<double> scratch(static_cast<std::size_t>(mloc) * nloc);
        double delta = 0.0;
        for (int s = 0; s < steps; ++s) {
          std::vector<double> before(field.begin(), field.end());
          jacobi_step_2d_grid(ctx, field, mloc, nloc, grid_rows, grid_cols,
                              scratch, 4 * s);
          delta = 0.0;
          for (std::size_t i = 0; i < field.size(); ++i) {
            delta = std::max(delta, std::fabs(field[i] - before[i]));
          }
        }
        args.reduce_f64(4)[0] = global_residual(ctx, delta);
      },
      [](int parm_num, int ndims) {
        std::vector<int> borders(static_cast<std::size_t>(2 * ndims), 0);
        if (parm_num == 3 && ndims == 2) borders = {1, 1, 1, 1};
        return borders;
      });
}

}  // namespace tdp::linalg
