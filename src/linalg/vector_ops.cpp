#include "linalg/vector_ops.hpp"

#include <cmath>

namespace tdp::linalg {

void init_iota_plus1(spmd::SpmdContext& ctx, int m, double* v) {
  const long long base = static_cast<long long>(ctx.index()) * m;
  for (int i = 0; i < m; ++i) {
    v[i] = static_cast<double>(base + i + 1);
  }
}

void fill(int m, double* v, double value) {
  for (int i = 0; i < m; ++i) v[i] = value;
}

double inner_product(spmd::SpmdContext& ctx, std::span<const double> x,
                     std::span<const double> y) {
  double partial = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) partial += x[i] * y[i];
  return ctx.allreduce_sum(partial);
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

double norm2(spmd::SpmdContext& ctx, std::span<const double> x) {
  double partial = 0.0;
  for (double v : x) partial += v * v;
  return std::sqrt(ctx.allreduce_sum(partial));
}

double norm_inf(spmd::SpmdContext& ctx, std::span<const double> x) {
  double partial = 0.0;
  for (double v : x) partial = std::max(partial, std::fabs(v));
  return ctx.allreduce_max(partial);
}

double vec_sum(spmd::SpmdContext& ctx, std::span<const double> x) {
  double partial = 0.0;
  for (double v : x) partial += v;
  return ctx.allreduce_sum(partial);
}

void test_iprdv(spmd::SpmdContext& ctx, int M, int m, double* local_v1,
                double* local_v2, double* ipr) {
  (void)M;
  init_iota_plus1(ctx, m, local_v1);
  init_iota_plus1(ctx, m, local_v2);
  *ipr = inner_product(ctx, std::span<const double>(local_v1, m),
                       std::span<const double>(local_v2, m));
}

void register_programs(core::ProgramRegistry& registry) {
  // §6.1.2 call: Procs, P, "index", M, Local_m, local(V1), local(V2),
  // reduce("double", 1, max, InProd)
  registry.add("test_iprdv",
               [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                 const int M = args.in<int>(3);
                 const int m = args.in<int>(4);
                 double* v1 = args.local(5).f64();
                 double* v2 = args.local(6).f64();
                 double ipr = 0.0;
                 test_iprdv(ctx, M, m, v1, v2, &ipr);
                 args.reduce_f64(7)[0] = ipr;
               });

  registry.add("vec_fill", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    (void)ctx;
    const double value = args.in<double>(0);
    const dist::LocalSectionView& v = args.local(1);
    fill(static_cast<int>(v.interior_count()), v.f64(), value);
  });

  registry.add("vec_iota1", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const int m = args.in<int>(0);
    init_iota_plus1(ctx, m, args.local(1).f64());
  });

  registry.add("vec_inner", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const dist::LocalSectionView& a = args.local(0);
    const dist::LocalSectionView& b = args.local(1);
    const std::size_t m = static_cast<std::size_t>(a.interior_count());
    args.reduce_f64(2)[0] =
        inner_product(ctx, std::span<const double>(a.f64(), m),
                      std::span<const double>(b.f64(), m));
  });

  registry.add("vec_norm2", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const dist::LocalSectionView& a = args.local(0);
    const std::size_t m = static_cast<std::size_t>(a.interior_count());
    args.reduce_f64(1)[0] =
        norm2(ctx, std::span<const double>(a.f64(), m));
  });
}

}  // namespace tdp::linalg
