#include "linalg/matrix_ops.hpp"

#include <cmath>

namespace tdp::linalg {

void matvec(spmd::SpmdContext& ctx, int mloc, int n,
            std::span<const double> a_local, std::span<const double> x_local,
            std::span<double> y_local) {
  std::vector<double> x = ctx.allgather(x_local);
  for (int i = 0; i < mloc; ++i) {
    double acc = 0.0;
    const double* row = a_local.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y_local[static_cast<std::size_t>(i)] = acc;
  }
}

void matmul(spmd::SpmdContext& ctx, int mloc, int k, int n,
            std::span<const double> a_local, std::span<const double> b_local,
            std::span<double> c_local) {
  std::vector<double> b = ctx.allgather(b_local);
  for (int i = 0; i < mloc; ++i) {
    const double* arow = a_local.data() + static_cast<std::size_t>(i) * k;
    double* crow = c_local.data() + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) crow[j] = 0.0;
    for (int l = 0; l < k; ++l) {
      const double alv = arow[l];
      const double* brow = b.data() + static_cast<std::size_t>(l) * n;
      for (int j = 0; j < n; ++j) crow[j] += alv * brow[j];
    }
  }
}

double frobenius_norm(spmd::SpmdContext& ctx,
                      std::span<const double> a_local) {
  double partial = 0.0;
  for (double v : a_local) partial += v * v;
  return std::sqrt(ctx.allreduce_sum(partial));
}

void init_matrix(spmd::SpmdContext& ctx, int mloc, int n, double* a_local,
                 double (*f)(long long row, long long col)) {
  const long long row0 = static_cast<long long>(ctx.index()) * mloc;
  for (int i = 0; i < mloc; ++i) {
    for (int j = 0; j < n; ++j) {
      a_local[static_cast<std::size_t>(i) * n + j] = f(row0 + i, j);
    }
  }
}

void register_matrix_programs(core::ProgramRegistry& registry) {
  registry.add("mat_vec", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const int mloc = args.in<int>(0);
    const int n = args.in<int>(1);
    const dist::LocalSectionView& a = args.local(2);
    const dist::LocalSectionView& x = args.local(3);
    const dist::LocalSectionView& y = args.local(4);
    matvec(ctx, mloc, n,
           std::span<const double>(a.f64(), static_cast<std::size_t>(mloc) * n),
           std::span<const double>(x.f64(),
                                   static_cast<std::size_t>(x.interior_count())),
           std::span<double>(y.f64(), static_cast<std::size_t>(mloc)));
  });

  registry.add("mat_mul", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const int mloc = args.in<int>(0);
    const int k = args.in<int>(1);
    const int n = args.in<int>(2);
    const dist::LocalSectionView& a = args.local(3);
    const dist::LocalSectionView& b = args.local(4);
    const dist::LocalSectionView& c = args.local(5);
    const int kloc = k / ctx.nprocs();
    matmul(ctx, mloc, k, n,
           std::span<const double>(a.f64(), static_cast<std::size_t>(mloc) * k),
           std::span<const double>(b.f64(), static_cast<std::size_t>(kloc) * n),
           std::span<double>(c.f64(), static_cast<std::size_t>(mloc) * n));
  });
}

}  // namespace tdp::linalg
