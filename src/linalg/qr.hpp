// SPMD Householder QR decomposition and solve, on row-block-distributed
// square matrices (Appendix D lists QR decomposition among the adapted
// library's operations).
//
// Storage convention (LAPACK-like): after qr_factor the local section holds
// R on and above the diagonal and the tail of each Householder vector below
// it; the vector heads and the scalar coefficients live in the returned
// factor state, replicated on every copy.
#pragma once

#include <span>
#include <vector>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// Per-column reflector data produced by qr_factor (identical on every
/// copy): H_k = I - beta[k] * v v' with v's head vhead[k] at row k and tail
/// stored below the diagonal of column k.
struct QrFactors {
  std::vector<double> beta;
  std::vector<double> vhead;
  std::vector<double> diag;  ///< R's diagonal (alpha values)
};

/// In-place Householder QR of an n×n matrix, nloc = n / nprocs rows per
/// copy.  Returns 0 on success or k+1 when column k is identically zero
/// below the diagonal (rank deficiency at step k).
int qr_factor(spmd::SpmdContext& ctx, int n, std::span<double> a_local,
              QrFactors& factors);

/// Applies Q' to a block-distributed vector in place (the first step of a
/// least-squares or linear solve).
void qr_apply_qt(spmd::SpmdContext& ctx, int n,
                 std::span<const double> a_local, const QrFactors& factors,
                 std::span<double> b_local);

/// Solves R x = b by back substitution; b_local is overwritten with x.
void qr_back_substitute(spmd::SpmdContext& ctx, int n,
                        std::span<const double> a_local,
                        const QrFactors& factors, std::span<double> b_local);

/// Convenience: full solve A x = b via Q'b then back substitution.
/// Returns qr_factor's status.
int qr_solve(spmd::SpmdContext& ctx, int n, std::span<double> a_local,
             std::span<double> b_local);

/// Registers the callable program:
///   "qr_solve_system" — n, local A, local b (overwritten with x), status
void register_qr_programs(core::ProgramRegistry& registry);

}  // namespace tdp::linalg
