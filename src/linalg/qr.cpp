#include "linalg/qr.hpp"

#include <cmath>

namespace tdp::linalg {
namespace {

/// Shared geometry of the row-block distribution.
struct RowBlock {
  int n;
  int nloc;
  int me;
  long long row0;

  RowBlock(spmd::SpmdContext& ctx, int n_)
      : n(n_),
        nloc(n_ / ctx.nprocs()),
        me(ctx.index()),
        row0(static_cast<long long>(ctx.index()) * (n_ / ctx.nprocs())) {}

  int owner_of(int row) const { return row / nloc; }
  int local_of(int row) const { return row % nloc; }
};

}  // namespace

int qr_factor(spmd::SpmdContext& ctx, int n, std::span<double> a_local,
              QrFactors& factors) {
  const RowBlock rb(ctx, n);
  auto elem = [&](int lrow, int col) -> double& {
    return a_local[static_cast<std::size_t>(lrow) * n + col];
  };

  factors.beta.assign(static_cast<std::size_t>(n), 0.0);
  factors.vhead.assign(static_cast<std::size_t>(n), 0.0);
  factors.diag.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> w(static_cast<std::size_t>(n));

  for (int k = 0; k < n; ++k) {
    // ||x||^2 for x = A[k:, k].
    double part = 0.0;
    for (int l = 0; l < rb.nloc; ++l) {
      const long long g = rb.row0 + l;
      if (g < k) continue;
      part += elem(l, k) * elem(l, k);
    }
    const double norm2x = ctx.allreduce_sum(part);
    if (norm2x == 0.0) return k + 1;

    // Head element x_k from its owner; alpha = -sign(x_k) ||x||.
    double xk = 0.0;
    const int k_owner = rb.owner_of(k);
    if (rb.me == k_owner) xk = elem(rb.local_of(k), k);
    ctx.broadcast(std::span<double>(&xk, 1), k_owner);
    const double alpha = xk >= 0.0 ? -std::sqrt(norm2x) : std::sqrt(norm2x);
    const double vk = xk - alpha;  // Householder vector head
    const double vnorm2 = norm2x - xk * xk + vk * vk;
    const double beta = 2.0 / vnorm2;

    // w_j = sum_{i >= k} v_i A[i][j] for j >= k, one vector allreduce.
    for (int j = k; j < n; ++j) w[static_cast<std::size_t>(j)] = 0.0;
    for (int l = 0; l < rb.nloc; ++l) {
      const long long g = rb.row0 + l;
      if (g < k) continue;
      const double vi = g == k ? vk : elem(l, k);
      for (int j = k; j < n; ++j) {
        w[static_cast<std::size_t>(j)] += vi * elem(l, j);
      }
    }
    ctx.allreduce(std::span<double>(w.data() + k,
                                    static_cast<std::size_t>(n - k)),
                  std::function<double(const double&, const double&)>(
                      [](const double& a, const double& b) { return a + b; }));

    // A[i][j] -= beta * v_i * w_j.  Column k below the diagonal keeps the
    // reflector tail; the head and alpha go to the factor state.
    for (int l = 0; l < rb.nloc; ++l) {
      const long long g = rb.row0 + l;
      if (g < k) continue;
      const double vi = g == k ? vk : elem(l, k);
      for (int j = k + 1; j < n; ++j) {
        elem(l, j) -= beta * vi * w[static_cast<std::size_t>(j)];
      }
      if (g == k) elem(l, k) = alpha;
      // below-diagonal entries of column k stay equal to v_i (tail).
    }

    factors.beta[static_cast<std::size_t>(k)] = beta;
    factors.vhead[static_cast<std::size_t>(k)] = vk;
    factors.diag[static_cast<std::size_t>(k)] = alpha;
  }
  return 0;
}

void qr_apply_qt(spmd::SpmdContext& ctx, int n,
                 std::span<const double> a_local, const QrFactors& factors,
                 std::span<double> b_local) {
  const RowBlock rb(ctx, n);
  auto elem = [&](int lrow, int col) -> double {
    return a_local[static_cast<std::size_t>(lrow) * n + col];
  };

  for (int k = 0; k < n; ++k) {
    const double beta = factors.beta[static_cast<std::size_t>(k)];
    if (beta == 0.0) continue;
    // s = beta * v' b (one scalar allreduce), then b -= s v.
    double part = 0.0;
    for (int l = 0; l < rb.nloc; ++l) {
      const long long g = rb.row0 + l;
      if (g < k) continue;
      const double vi =
          g == k ? factors.vhead[static_cast<std::size_t>(k)] : elem(l, k);
      part += vi * b_local[static_cast<std::size_t>(l)];
    }
    const double s = beta * ctx.allreduce_sum(part);
    for (int l = 0; l < rb.nloc; ++l) {
      const long long g = rb.row0 + l;
      if (g < k) continue;
      const double vi =
          g == k ? factors.vhead[static_cast<std::size_t>(k)] : elem(l, k);
      b_local[static_cast<std::size_t>(l)] -= s * vi;
    }
  }
}

void qr_back_substitute(spmd::SpmdContext& ctx, int n,
                        std::span<const double> a_local,
                        const QrFactors& factors, std::span<double> b_local) {
  const RowBlock rb(ctx, n);
  auto elem = [&](int lrow, int col) -> double {
    return a_local[static_cast<std::size_t>(lrow) * n + col];
  };

  for (int k = n - 1; k >= 0; --k) {
    double xk = 0.0;
    const int k_owner = rb.owner_of(k);
    if (rb.me == k_owner) {
      const int l = rb.local_of(k);
      xk = b_local[static_cast<std::size_t>(l)] /
           factors.diag[static_cast<std::size_t>(k)];
      b_local[static_cast<std::size_t>(l)] = xk;
    }
    ctx.broadcast(std::span<double>(&xk, 1), k_owner);
    for (int l = 0; l < rb.nloc; ++l) {
      const long long g = rb.row0 + l;
      if (g >= k) continue;
      b_local[static_cast<std::size_t>(l)] -= elem(l, k) * xk;
    }
  }
}

int qr_solve(spmd::SpmdContext& ctx, int n, std::span<double> a_local,
             std::span<double> b_local) {
  QrFactors factors;
  const int rc = qr_factor(ctx, n, a_local, factors);
  if (rc != 0) return rc;
  qr_apply_qt(ctx, n, a_local, factors, b_local);
  qr_back_substitute(ctx, n, a_local, factors, b_local);
  return 0;
}

void register_qr_programs(core::ProgramRegistry& registry) {
  registry.add("qr_solve_system",
               [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                 const int n = args.in<int>(0);
                 const dist::LocalSectionView& a = args.local(1);
                 const dist::LocalSectionView& b = args.local(2);
                 const int nloc = n / ctx.nprocs();
                 args.status(3) = qr_solve(
                     ctx, n,
                     std::span<double>(a.f64(),
                                       static_cast<std::size_t>(nloc) * n),
                     std::span<double>(b.f64(),
                                       static_cast<std::size_t>(nloc)));
               });
}

}  // namespace tdp::linalg
