#include "linalg/iterative.hpp"

#include <cmath>
#include <vector>

#include "linalg/matrix_ops.hpp"
#include "linalg/vector_ops.hpp"

namespace tdp::linalg {

IterativeResult conjugate_gradient(spmd::SpmdContext& ctx, int n,
                                   std::span<const double> a_local,
                                   std::span<const double> b_local,
                                   std::span<double> x_local,
                                   int max_iterations, double tolerance) {
  const int nloc = n / ctx.nprocs();
  std::vector<double> r(static_cast<std::size_t>(nloc));
  std::vector<double> p(static_cast<std::size_t>(nloc));
  std::vector<double> ap(static_cast<std::size_t>(nloc));

  // r = b - A x; p = r.
  matvec(ctx, nloc, n, a_local, std::span<const double>(x_local),
         std::span<double>(ap));
  for (int i = 0; i < nloc; ++i) {
    r[static_cast<std::size_t>(i)] =
        b_local[static_cast<std::size_t>(i)] - ap[static_cast<std::size_t>(i)];
    p[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
  }
  double rr = inner_product(ctx, r, r);

  IterativeResult out;
  for (out.iterations = 0; out.iterations < max_iterations;
       ++out.iterations) {
    out.residual = std::sqrt(rr);
    if (out.residual <= tolerance) {
      out.converged = true;
      return out;
    }
    matvec(ctx, nloc, n, a_local, std::span<const double>(p),
           std::span<double>(ap));
    const double pap = inner_product(ctx, p, ap);
    const double alpha = rr / pap;
    for (int i = 0; i < nloc; ++i) {
      x_local[static_cast<std::size_t>(i)] +=
          alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -=
          alpha * ap[static_cast<std::size_t>(i)];
    }
    const double rr_next = inner_product(ctx, r, r);
    const double beta = rr_next / rr;
    rr = rr_next;
    for (int i = 0; i < nloc; ++i) {
      p[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] +
          beta * p[static_cast<std::size_t>(i)];
    }
  }
  out.residual = std::sqrt(rr);
  out.converged = out.residual <= tolerance;
  return out;
}

IterativeResult power_method(spmd::SpmdContext& ctx, int n,
                             std::span<const double> a_local,
                             std::span<double> v_local, int max_iterations,
                             double tolerance, double* eigenvalue) {
  const int nloc = n / ctx.nprocs();
  std::vector<double> av(static_cast<std::size_t>(nloc));
  double lambda = 0.0;

  IterativeResult out;
  for (out.iterations = 0; out.iterations < max_iterations;
       ++out.iterations) {
    matvec(ctx, nloc, n, a_local, std::span<const double>(v_local),
           std::span<double>(av));
    const double norm = norm2(ctx, av);
    if (norm == 0.0) break;
    for (int i = 0; i < nloc; ++i) {
      v_local[static_cast<std::size_t>(i)] =
          av[static_cast<std::size_t>(i)] / norm;
    }
    // Rayleigh quotient with the normalised vector.
    matvec(ctx, nloc, n, a_local, std::span<const double>(v_local),
           std::span<double>(av));
    const double next =
        inner_product(ctx, std::span<const double>(v_local.data(),
                                                   v_local.size()),
                      av);
    out.residual = std::fabs(next - lambda);
    lambda = next;
    if (out.iterations > 0 && out.residual <= tolerance) {
      out.converged = true;
      break;
    }
  }
  if (eigenvalue != nullptr) *eigenvalue = lambda;
  return out;
}

void register_iterative_programs(core::ProgramRegistry& registry) {
  registry.add("cg_solve", [](spmd::SpmdContext& ctx, core::CallArgs& args) {
    const int n = args.in<int>(0);
    const int max_iters = args.in<int>(1);
    const double tol = args.in<double>(2);
    const dist::LocalSectionView& a = args.local(3);
    const dist::LocalSectionView& b = args.local(4);
    const dist::LocalSectionView& x = args.local(5);
    const int nloc = n / ctx.nprocs();
    IterativeResult res = conjugate_gradient(
        ctx, n,
        std::span<const double>(a.f64(), static_cast<std::size_t>(nloc) * n),
        std::span<const double>(b.f64(), static_cast<std::size_t>(nloc)),
        std::span<double>(x.f64(), static_cast<std::size_t>(nloc)), max_iters,
        tol);
    args.status(6) = res.converged ? res.iterations : -1;
    args.reduce_f64(7)[0] = res.residual;
  });
}

}  // namespace tdp::linalg
