// SPMD stencil sweeps over block-distributed grids with halo exchange.
//
// These are the data-parallel building blocks of the coupled-simulation
// problem class (§2.3.1, fig 2.1): each simulation is a time-stepped
// relaxation on a distributed grid, and the local-section borders of
// §3.2.1.3 hold the neighbour data ("overlap areas" in Fortran D terms).
#pragma once

#include <span>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// Exchanges the one-cell halo of a 1-D block-distributed field.
/// `with_halo` has m interior cells at [1..m] and halo cells at [0] and
/// [m+1]; after the call the halos hold the neighbouring copies' edge
/// values.  On the global boundary the halo cells are left untouched (they
/// carry the boundary condition).
void exchange_halo_1d(spmd::SpmdContext& ctx, std::span<double> with_halo,
                      int m, int tag = 0);

/// One explicit heat-equation step on a 1-D rod:
///   u_new[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1])
/// over the interior cells, after a halo exchange.  The rod's global ends
/// are insulated (zero flux): the edge value is reflected into the halo, so
/// heat leaves the rod only through explicit task-level or channel
/// coupling.  `scratch` must hold at least m doubles.
void heat_step_1d(spmd::SpmdContext& ctx, std::span<double> with_halo, int m,
                  double alpha, std::span<double> scratch, int tag = 0);

/// One Jacobi relaxation step on a 2-D grid distributed by rows
/// ((block, *) decomposition): local section has mloc rows of n columns
/// plus one halo row above and below (storage (mloc+2)×n, row-major).
/// Updates interior points (global boundary rows/columns are Dirichlet).
void jacobi_step_2d(spmd::SpmdContext& ctx, std::span<double> with_halo,
                    int mloc, int n, std::span<double> scratch, int tag = 0);

/// One Jacobi relaxation step on a 2-D grid decomposed over a full 2-D
/// processor grid ((block, block)): copy index maps row-major onto a
/// grid_rows × grid_cols processor grid; the local section has mloc×nloc
/// interior cells and a one-cell halo on all four sides (storage
/// (mloc+2)×(nloc+2), row-major).  North/south halos exchange rows,
/// west/east halos exchange (packed) columns.  Global boundary is
/// Dirichlet.
void jacobi_step_2d_grid(spmd::SpmdContext& ctx, std::span<double> with_halo,
                         int mloc, int nloc, int grid_rows, int grid_cols,
                         std::span<double> scratch, int tag = 0);

/// Global residual (max |u_new - u_old| over the last step) helper:
/// max-reduces `local_delta` over the group.
double global_residual(spmd::SpmdContext& ctx, double local_delta);

/// Registers callable programs:
///   "heat_step_1d"        — alpha, steps, local u (borders 1,1) ; status
///   "jacobi_step_2d"      — steps, local u (borders 1,1,0,0) ;
///                           reduce double[1] max = final residual
///   "jacobi_step_2d_grid" — steps, grid_rows, grid_cols,
///                           local u (borders 1,1,1,1) ;
///                           reduce double[1] max = final residual
void register_stencil_programs(core::ProgramRegistry& registry);

}  // namespace tdp::linalg
