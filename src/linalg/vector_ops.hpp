// SPMD vector operations on block-distributed vectors (Appendix D).
//
// The thesis tested its prototype against a library of SPMD linear-algebra
// routines adapted per §3.5: relocatable (processor identity only via the
// SpmdContext), flat local sections, typed group-scoped messages.  These
// routines follow that contract: every function takes the copy's
// SpmdContext plus its local section(s); global vectors of length M are
// block-distributed, m = M / nprocs elements per copy, copy i holding
// global indices [i*m, (i+1)*m).
#pragma once

#include <span>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// v[g] = g + 1 for every global index g of this copy's block (the
/// initialisation used by the thesis inner-product example, §6.1.3).
void init_iota_plus1(spmd::SpmdContext& ctx, int m, double* v);

/// v[g] = value everywhere.
void fill(int m, double* v, double value);

/// Global inner product of two conforming distributed vectors.
double inner_product(spmd::SpmdContext& ctx, std::span<const double> x,
                     std::span<const double> y);

/// y += a*x on the local blocks.
void axpy(double a, std::span<const double> x, std::span<double> y);

/// x *= a on the local block.
void scale(double a, std::span<double> x);

/// Global Euclidean norm.
double norm2(spmd::SpmdContext& ctx, std::span<const double> x);

/// Global max-norm.
double norm_inf(spmd::SpmdContext& ctx, std::span<const double> x);

/// Global sum of local elements.
double vec_sum(spmd::SpmdContext& ctx, std::span<const double> x);

/// The thesis test program (§6.1.3): initialises V1 and V2 so that
/// V1[i] == V2[i] == i+1 for all global i, and computes their inner
/// product.  M is the global length, m the local length.
void test_iprdv(spmd::SpmdContext& ctx, int M, int m, double* local_v1,
                double* local_v2, double* ipr);

/// Registers the library's callable data-parallel programs:
///   "test_iprdv"  — Procs, P, index, M, m, local V1, local V2,
///                   reduce double[1] (§6.1.2 call signature)
///   "vec_fill"    — value, local V
///   "vec_iota1"   — m, local V
///   "vec_inner"   — local V1, local V2, reduce double[1] = inner product
///   "vec_norm2"   — local V, reduce double[1] = global Euclidean norm
void register_programs(core::ProgramRegistry& registry);

}  // namespace tdp::linalg
