// SPMD iterative solvers built from the library's vector/matrix substrate
// (Appendix D: "more complex operations on distributed vectors and
// matrices").  Conjugate gradients and power iteration compose the
// primitive operations — inner products (allreduce), axpy (local), and
// matrix-vector products (allgather) — exactly the way the thesis expects
// adapted SPMD library routines to be layered.
#pragma once

#include <span>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// Result of an iterative solve.
struct IterativeResult {
  int iterations = 0;
  double residual = 0.0;  ///< final ||b - A x||_2
  bool converged = false;
};

/// Conjugate-gradient solve of A x = b for a symmetric positive-definite
/// n×n matrix, row-block distributed (nloc = n / nprocs rows per copy).
/// `x_local` holds the initial guess and receives the solution.
IterativeResult conjugate_gradient(spmd::SpmdContext& ctx, int n,
                                   std::span<const double> a_local,
                                   std::span<const double> b_local,
                                   std::span<double> x_local,
                                   int max_iterations, double tolerance);

/// Power iteration: returns the dominant eigenvalue estimate; `v_local`
/// holds the start vector (must be nonzero) and receives the eigenvector
/// approximation (unit norm).
IterativeResult power_method(spmd::SpmdContext& ctx, int n,
                             std::span<const double> a_local,
                             std::span<double> v_local, int max_iterations,
                             double tolerance, double* eigenvalue);

/// Registers the callable program:
///   "cg_solve" — n, max_iters, tol, local A, local b, local x,
///                status (iterations taken, or -1 when not converged),
///                reduce double[1] max = final residual
void register_iterative_programs(core::ProgramRegistry& registry);

}  // namespace tdp::linalg
