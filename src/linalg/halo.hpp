// Generic border (overlap-area) exchange for local sections (§3.2.1.3).
//
// The thesis adds borders to local sections "for compatibility with
// data-parallel notations" that use them as communication buffers — Fortran
// D's overlap areas.  This module implements the communication those
// buffers exist for, for any N-dimensional block decomposition: each copy
// sends face slabs of its interior to the grid neighbours along every
// decomposed dimension and receives their slabs into its border cells.
//
// Face-only exchange (no diagonal/corner neighbours): along dimension d the
// low border of thickness borders[2d] is filled by the low neighbour's
// highest borders[2d] interior layers, and symmetrically for the high side.
// Border cells on the global boundary are left untouched (they carry
// boundary conditions).  All copies of the group must call it.
#pragma once

#include <span>

#include "dist/local_section.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// Exchanges all borders of `view` with grid neighbours.  `grid_dims` is
/// the processor grid of the array's decomposition; copy indices map onto
/// it with `grid_indexing` (the array's grid indexing type).  `tag0` seeds
/// the message tags (each dimension uses tags tag0+2d and tag0+2d+1).
void exchange_borders(spmd::SpmdContext& ctx,
                      const dist::LocalSectionView& view,
                      std::span<const int> grid_dims,
                      dist::Indexing grid_indexing, int tag0 = 0);

/// Packs the hyper-rectangular region [start, start+extent) of the local
/// section's *storage* coordinates into a contiguous buffer (row of helpers
/// exposed for tests and custom exchanges).
void pack_region(const dist::LocalSectionView& view,
                 std::span<const int> start, std::span<const int> extent,
                 std::span<double> out);

/// Unpacks a contiguous buffer into the given storage region.
void unpack_region(const dist::LocalSectionView& view,
                   std::span<const int> start, std::span<const int> extent,
                   std::span<const double> in);

}  // namespace tdp::linalg
