// SPMD dense-matrix operations on row-block-distributed matrices
// (Appendix D).
//
// A global M×N matrix is distributed by rows: copy i holds rows
// [i*mloc, (i+1)*mloc) as a flat row-major local section of mloc*N doubles
// (the (block, *) decomposition of §3.2.1.2).  Conforming vectors of length
// M or N are block-distributed.
#pragma once

#include <span>
#include <vector>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// y_local = A_local * x, where x (length N) is block-distributed with
/// nloc = N / nprocs entries per copy; internally allgathers x.
/// A_local is mloc×N row-major; y_local has mloc entries.
void matvec(spmd::SpmdContext& ctx, int mloc, int n,
            std::span<const double> a_local, std::span<const double> x_local,
            std::span<double> y_local);

/// C_local = A_local * B, with A row-block (mloc×K), B row-block (kloc×N),
/// C row-block (mloc×N); internally allgathers B.
void matmul(spmd::SpmdContext& ctx, int mloc, int k, int n,
            std::span<const double> a_local, std::span<const double> b_local,
            std::span<double> c_local);

/// Frobenius norm of a row-block-distributed matrix.
double frobenius_norm(spmd::SpmdContext& ctx, std::span<const double> a_local);

/// A_local[i][j] = f(global_row, j) initialisation helper.
void init_matrix(spmd::SpmdContext& ctx, int mloc, int n, double* a_local,
                 double (*f)(long long row, long long col));

/// Registers callable programs:
///   "mat_vec" — mloc, n, local A, local x, local y
///   "mat_mul" — mloc, k, n, local A, local B, local C
void register_matrix_programs(core::ProgramRegistry& registry);

}  // namespace tdp::linalg
