// SPMD LU decomposition with partial pivoting and triangular solve, on
// row-block-distributed square matrices (Appendix D lists LU decomposition
// and solution of an LU-decomposed system among the adapted library's
// operations).
//
// The n×n matrix is distributed by rows, nloc = n / nprocs contiguous rows
// per copy, row-major local sections.  The factorisation is in place:
// afterwards the local section holds the L (below diagonal, unit diagonal
// implicit) and U (diagonal and above) factors of P·A, and `pivots` records
// the row interchanges (global row swapped with row k at step k).
#pragma once

#include <span>
#include <vector>

#include "core/registry.hpp"
#include "spmd/context.hpp"

namespace tdp::linalg {

/// In-place LU with partial pivoting.  `a_local` is nloc×n row-major.
/// `pivots` receives n entries (identical on every copy).  Returns 0 on
/// success or k+1 if the matrix is singular at elimination step k.
int lu_factor(spmd::SpmdContext& ctx, int n, std::span<double> a_local,
              std::vector<int>& pivots);

/// Solves A x = b given the factorisation from lu_factor.  `b_local` is the
/// copy's block of b (nloc entries) and is overwritten with its block of x.
void lu_solve(spmd::SpmdContext& ctx, int n, std::span<const double> a_local,
              const std::vector<int>& pivots, std::span<double> b_local);

/// Registers the callable program:
///   "lu_solve_system" — n, local A, local b (overwritten with x),
///                       status (0 ok, k+1 singular at step k)
void register_lu_programs(core::ProgramRegistry& registry);

}  // namespace tdp::linalg
