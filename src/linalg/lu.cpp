#include "linalg/lu.hpp"

#include <cmath>
#include <cstring>

namespace tdp::linalg {
namespace {

/// Pivot candidate travelling through the allreduce: |value| and global row.
struct Cand {
  double absval;
  int row;
};

Cand better(const Cand& a, const Cand& b) {
  if (a.absval > b.absval) return a;
  if (b.absval > a.absval) return b;
  return a.row <= b.row ? a : b;
}

constexpr int kSwapTagBase = 1000;

}  // namespace

int lu_factor(spmd::SpmdContext& ctx, int n, std::span<double> a_local,
              std::vector<int>& pivots) {
  const int p = ctx.nprocs();
  const int nloc = n / p;
  const int me = ctx.index();
  const long long row0 = static_cast<long long>(me) * nloc;

  auto owner_of = [nloc](int row) { return row / nloc; };
  auto local_of = [nloc](int row) { return row % nloc; };
  auto elem = [&](int lrow, int col) -> double& {
    return a_local[static_cast<std::size_t>(lrow) * n + col];
  };

  pivots.assign(static_cast<std::size_t>(n), 0);
  std::vector<double> rowk(static_cast<std::size_t>(n));

  for (int k = 0; k < n; ++k) {
    // Local pivot search over my rows with global index >= k.
    Cand mine{-1.0, -1};
    for (int l = 0; l < nloc; ++l) {
      const long long g = row0 + l;
      if (g < k) continue;
      const double v = std::fabs(elem(l, k));
      if (v > mine.absval) mine = Cand{v, static_cast<int>(g)};
    }
    const Cand best = ctx.allreduce_value<Cand>(
        mine, [](const Cand& a, const Cand& b) { return better(a, b); });
    if (best.absval == 0.0 || best.row < 0) return k + 1;
    pivots[static_cast<std::size_t>(k)] = best.row;

    // Swap row k with the pivot row.
    if (best.row != k) {
      const int ok_owner = owner_of(k);
      const int or_owner = owner_of(best.row);
      if (ok_owner == or_owner) {
        if (me == ok_owner) {
          for (int j = 0; j < n; ++j) {
            std::swap(elem(local_of(k), j), elem(local_of(best.row), j));
          }
        }
      } else if (me == ok_owner || me == or_owner) {
        const int lrow = me == ok_owner ? local_of(k) : local_of(best.row);
        const int partner = me == ok_owner ? or_owner : ok_owner;
        std::vector<double> theirs(static_cast<std::size_t>(n));
        ctx.exchange<double>(
            partner, kSwapTagBase + k,
            std::span<const double>(&elem(lrow, 0), static_cast<std::size_t>(n)),
            std::span<double>(theirs));
        std::memcpy(&elem(lrow, 0), theirs.data(),
                    static_cast<std::size_t>(n) * sizeof(double));
      }
    }

    // Broadcast the (post-swap) pivot row from its owner and eliminate.
    const int k_owner = owner_of(k);
    if (me == k_owner) {
      std::memcpy(rowk.data(), &elem(local_of(k), 0),
                  static_cast<std::size_t>(n) * sizeof(double));
    }
    ctx.broadcast(std::span<double>(rowk), k_owner);
    const double pivot = rowk[static_cast<std::size_t>(k)];
    if (pivot == 0.0) return k + 1;

    for (int l = 0; l < nloc; ++l) {
      const long long g = row0 + l;
      if (g <= k) continue;
      const double factor = elem(l, k) / pivot;
      elem(l, k) = factor;
      for (int j = k + 1; j < n; ++j) {
        elem(l, j) -= factor * rowk[static_cast<std::size_t>(j)];
      }
    }
  }
  return 0;
}

void lu_solve(spmd::SpmdContext& ctx, int n, std::span<const double> a_local,
              const std::vector<int>& pivots, std::span<double> b_local) {
  const int p = ctx.nprocs();
  const int nloc = n / p;
  const int me = ctx.index();
  const long long row0 = static_cast<long long>(me) * nloc;

  auto owner_of = [nloc](int row) { return row / nloc; };
  auto local_of = [nloc](int row) { return row % nloc; };
  auto elem = [&](int lrow, int col) -> double {
    return a_local[static_cast<std::size_t>(lrow) * n + col];
  };

  // Apply the recorded row interchanges to b.
  for (int k = 0; k < n; ++k) {
    const int r = pivots[static_cast<std::size_t>(k)];
    if (r == k) continue;
    const int ok_owner = owner_of(k);
    const int or_owner = owner_of(r);
    if (ok_owner == or_owner) {
      if (me == ok_owner) {
        std::swap(b_local[static_cast<std::size_t>(local_of(k))],
                  b_local[static_cast<std::size_t>(local_of(r))]);
      }
    } else if (me == ok_owner || me == or_owner) {
      const int lrow = me == ok_owner ? local_of(k) : local_of(r);
      const int partner = me == ok_owner ? or_owner : ok_owner;
      double theirs = 0.0;
      ctx.exchange<double>(
          partner, kSwapTagBase + k,
          std::span<const double>(&b_local[static_cast<std::size_t>(lrow)], 1),
          std::span<double>(&theirs, 1));
      b_local[static_cast<std::size_t>(lrow)] = theirs;
    }
  }

  // Forward substitution: L y = P b (unit lower-triangular L).
  for (int k = 0; k < n; ++k) {
    double yk = 0.0;
    const int k_owner = owner_of(k);
    if (me == k_owner) yk = b_local[static_cast<std::size_t>(local_of(k))];
    ctx.broadcast(std::span<double>(&yk, 1), k_owner);
    for (int l = 0; l < nloc; ++l) {
      const long long g = row0 + l;
      if (g <= k) continue;
      b_local[static_cast<std::size_t>(l)] -= elem(l, k) * yk;
    }
  }

  // Backward substitution: U x = y.
  for (int k = n - 1; k >= 0; --k) {
    double xk = 0.0;
    const int k_owner = owner_of(k);
    if (me == k_owner) {
      const int l = local_of(k);
      xk = b_local[static_cast<std::size_t>(l)] / elem(l, k);
      b_local[static_cast<std::size_t>(l)] = xk;
    }
    ctx.broadcast(std::span<double>(&xk, 1), k_owner);
    for (int l = 0; l < nloc; ++l) {
      const long long g = row0 + l;
      if (g >= k) continue;
      b_local[static_cast<std::size_t>(l)] -= elem(l, k) * xk;
    }
  }
}

void register_lu_programs(core::ProgramRegistry& registry) {
  registry.add("lu_solve_system",
               [](spmd::SpmdContext& ctx, core::CallArgs& args) {
                 const int n = args.in<int>(0);
                 const dist::LocalSectionView& a = args.local(1);
                 const dist::LocalSectionView& b = args.local(2);
                 const int nloc = n / ctx.nprocs();
                 std::span<double> a_span(
                     a.f64(), static_cast<std::size_t>(nloc) * n);
                 std::span<double> b_span(b.f64(),
                                          static_cast<std::size_t>(nloc));
                 std::vector<int> pivots;
                 const int rc = lu_factor(ctx, n, a_span, pivots);
                 if (rc == 0) lu_solve(ctx, n, a_span, pivots, b_span);
                 args.status(3) = rc;
               });
}

}  // namespace tdp::linalg
