#include "linalg/halo.hpp"

#include <vector>

#include "dist/layout.hpp"

namespace tdp::linalg {
namespace {

/// Iterates all multi-indices of `extent`, calling fn with the storage
/// offset of (start + idx) and the linear position within the region.
template <typename Fn>
void for_each_in_region(const dist::LocalSectionView& view,
                        std::span<const int> start,
                        std::span<const int> extent, Fn&& fn) {
  const long long count = dist::element_count(extent);
  std::vector<int> storage_idx(extent.size());
  for (long long lin = 0; lin < count; ++lin) {
    std::vector<int> idx = dist::delinearize(lin, extent, view.indexing);
    for (std::size_t d = 0; d < extent.size(); ++d) {
      storage_idx[d] = start[d] + idx[d];
    }
    const long long off =
        dist::linearize(storage_idx, view.dims_plus, view.indexing);
    fn(off, lin);
  }
}

}  // namespace

void pack_region(const dist::LocalSectionView& view,
                 std::span<const int> start, std::span<const int> extent,
                 std::span<double> out) {
  const double* data = view.f64();
  for_each_in_region(view, start, extent, [&](long long off, long long lin) {
    out[static_cast<std::size_t>(lin)] = data[off];
  });
}

void unpack_region(const dist::LocalSectionView& view,
                   std::span<const int> start, std::span<const int> extent,
                   std::span<const double> in) {
  double* data = view.f64();
  for_each_in_region(view, start, extent, [&](long long off, long long lin) {
    data[off] = in[static_cast<std::size_t>(lin)];
  });
}

void exchange_borders(spmd::SpmdContext& ctx,
                      const dist::LocalSectionView& view,
                      std::span<const int> grid_dims,
                      dist::Indexing grid_indexing, int tag0) {
  const std::size_t ndims = view.interior_dims.size();
  const std::vector<int> my_pos =
      dist::delinearize(ctx.index(), grid_dims, grid_indexing);

  auto neighbour = [&](std::size_t d, int delta) -> int {
    const int pos_d = my_pos[d] + delta;
    if (pos_d < 0 || pos_d >= grid_dims[d]) return -1;
    std::vector<int> pos = my_pos;
    pos[d] = pos_d;
    return static_cast<int>(dist::grid_rank(pos, grid_dims, grid_indexing));
  };

  // Storage coordinates of the interior origin: borders[2d] per dimension.
  std::vector<int> interior0(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    interior0[d] = view.borders[2 * d];
  }

  struct PendingRecv {
    int from;
    int tag;
    std::vector<int> start;
    std::vector<int> extent;
  };
  std::vector<PendingRecv> pending;
  std::vector<std::vector<double>> keep_alive;  // not needed; sends copy

  for (std::size_t d = 0; d < ndims; ++d) {
    if (grid_dims[d] <= 1) continue;
    const int low = neighbour(d, -1);
    const int high = neighbour(d, +1);
    const int b_low = view.borders[2 * d];
    const int b_high = view.borders[2 * d + 1];
    const int m_d = view.interior_dims[d];
    const int tag_up = tag0 + static_cast<int>(2 * d);      // toward high
    const int tag_down = tag0 + static_cast<int>(2 * d) + 1;  // toward low

    // Full-interior extents in the other dimensions.
    std::vector<int> extent(view.interior_dims.begin(),
                            view.interior_dims.end());

    // Send my highest b_low interior layers to the high neighbour's low
    // border (travelling "up"), and my lowest b_high layers to the low
    // neighbour's high border (travelling "down").
    if (high >= 0 && b_low > 0) {
      std::vector<int> start = interior0;
      start[d] = interior0[d] + m_d - b_low;
      std::vector<int> ext = extent;
      ext[d] = b_low;
      std::vector<double> buf(
          static_cast<std::size_t>(dist::element_count(ext)));
      pack_region(view, start, ext, buf);
      ctx.send<double>(high, tag_up, buf);
    }
    if (low >= 0 && b_high > 0) {
      std::vector<int> start = interior0;
      std::vector<int> ext = extent;
      ext[d] = b_high;
      std::vector<double> buf(
          static_cast<std::size_t>(dist::element_count(ext)));
      pack_region(view, start, ext, buf);
      ctx.send<double>(low, tag_down, buf);
    }

    // Matching receives: my low border from the low neighbour ("up"
    // traffic), my high border from the high neighbour ("down" traffic).
    if (low >= 0 && b_low > 0) {
      std::vector<int> start = interior0;
      start[d] = 0;
      std::vector<int> ext = extent;
      ext[d] = b_low;
      pending.push_back(PendingRecv{low, tag_up, start, ext});
    }
    if (high >= 0 && b_high > 0) {
      std::vector<int> start = interior0;
      start[d] = interior0[d] + m_d;
      std::vector<int> ext = extent;
      ext[d] = b_high;
      pending.push_back(PendingRecv{high, tag_down, start, ext});
    }
  }

  for (const PendingRecv& r : pending) {
    std::vector<double> buf(
        static_cast<std::size_t>(dist::element_count(r.extent)));
    ctx.recv<double>(r.from, r.tag, std::span<double>(buf));
    unpack_region(view, r.start, r.extent, buf);
  }
}

}  // namespace tdp::linalg
