#include "spmd/coll.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spmd/context.hpp"
#include "vp/mailbox.hpp"

namespace tdp::spmd::coll {

namespace {

// -1 = no force() override; else the Algo value.
std::atomic<int> g_forced{-1};

Algo env_algorithm() {
  static const Algo parsed = [] {
    const char* env = std::getenv("TDP_COLL");
    if (env == nullptr || env[0] == '\0') return Algo::Tree;
    bool known = false;
    const Algo a = algo_from_name(env, known);
    if (!known) {
      // Mirror the guarded env parsing in watchdog.cpp/trace.cpp: a typo
      // must be reported, never silently remapped.
      std::fprintf(stderr,
                   "tdp::spmd: ignoring unknown TDP_COLL \"%s\"; valid "
                   "values are \"linear\" and \"tree\" (using tree)\n",
                   env);
    }
    return a;
  }();
  return parsed;
}

obs::ShardedCounter& bytes_copied_counter() {
  static obs::ShardedCounter& c =
      obs::Registry::instance().counter("comm.bytes_copied");
  return c;
}

int actual_index(int rel, int root, int p) { return (rel + root) % p; }

[[noreturn]] void throw_size_mismatch(const char* what, std::size_t got,
                                      std::size_t want) {
  throw std::runtime_error(std::string(what) + ": received " +
                           std::to_string(got) + " bytes, expected " +
                           std::to_string(want));
}

// --- Broadcast -------------------------------------------------------------

// Binomial tree over relative ranks rel = (index - root + P) % P: each copy
// receives once from rel - mask (the high set bit of rel) and forwards the
// *same* refcounted payload to rel + mask for each lower mask.  Depth
// ceil(log2 P); zero payload copies.
//
// Failure propagation: a copy whose receive from its parent times out (or
// arrives as poison) still has children expecting a forward from it.  It
// flushes a poison marker down to each of them — naming the originally
// stalled copy — before rethrowing, so its whole subtree fails fast blaming
// the right peer instead of timing out a level at a time blaming each
// forwarder in turn.
vp::Payload tree_broadcast_payload(SpmdContext& ctx, vp::Payload pay,
                                   int root) {
  const int p = ctx.nprocs();
  const int rel = (ctx.index() - root + p) % p;
  int mask = 1;
  int poison_origin = -1;
  std::exception_ptr failure;
  while (mask < p) {
    if ((rel & mask) != 0) {
      const int parent = actual_index(rel - mask, root, p);
      try {
        pay = ctx.recv_payload(parent, SpmdContext::kBcastTag);
      } catch (const vp::ReceiveTimeout&) {
        poison_origin = parent;  // the parent is the stalled peer, as far
        failure = std::current_exception();  // as this copy can observe
      } catch (const Poisoned& e) {
        poison_origin = e.origin;  // relay the original culprit unchanged
        failure = std::current_exception();
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int child = actual_index(rel + mask, root, p);
      if (poison_origin >= 0) {
        ctx.send_poison(child, SpmdContext::kBcastTag, poison_origin);
      } else {
        ctx.send_payload(child, SpmdContext::kBcastTag, pay);
      }
    }
    mask >>= 1;
  }
  if (failure) std::rethrow_exception(failure);
  return pay;
}

vp::Payload linear_broadcast_payload(SpmdContext& ctx, vp::Payload pay,
                                     int root) {
  if (ctx.index() == root) {
    for (int i = 0; i < ctx.nprocs(); ++i) {
      if (i == root) continue;
      ctx.send_payload(i, SpmdContext::kBcastTag, pay);
    }
    return pay;
  }
  return ctx.recv_payload(root, SpmdContext::kBcastTag);
}

// Typed-buffer front end for the binomial tree: one substrate copy at the
// root (the caller may mutate its span after the call), everyone downstream
// shares that buffer and delivers into their own span.
void tree_broadcast_bytes(SpmdContext& ctx, std::span<std::byte> data,
                          int root) {
  vp::Payload pay;
  if (ctx.index() == root) pay = vp::Payload::copy_of(data);
  pay = tree_broadcast_payload(ctx, std::move(pay), root);
  if (ctx.index() != root) {
    if (pay.size() != data.size()) {
      throw_size_mismatch("coll::broadcast", pay.size(), data.size());
    }
    if (!data.empty()) {
      std::memcpy(data.data(), pay.data(), data.size());
      vp::note_bytes_delivered(data.size());
    }
  }
}

// Star fan-out of one shared payload: the root wraps its buffer once and
// posts the same refcounted handle to every peer.  Versus the binomial
// tree this keeps the linear schedule (receivers have no forwarding duty
// that would stall their next pipelined operation) while still shedding
// the P-1 root copies — it is the sharing, not the topology, that removes
// them.  Used by the allreduce long path, where back-to-back rounds
// overlap and forwarding chains cost more than they save.
void star_broadcast_shared(SpmdContext& ctx, std::span<std::byte> data,
                           int root) {
  if (ctx.index() == root) {
    vp::Payload pay = vp::Payload::copy_of(data);
    for (int i = 0; i < ctx.nprocs(); ++i) {
      if (i == root) continue;
      ctx.send_payload(i, SpmdContext::kBcastTag, pay);
    }
    return;
  }
  vp::Payload pay = ctx.recv_payload(root, SpmdContext::kBcastTag);
  if (pay.size() != data.size()) {
    throw_size_mismatch("coll::broadcast", pay.size(), data.size());
  }
  if (!data.empty()) {
    std::memcpy(data.data(), pay.data(), data.size());
    vp::note_bytes_delivered(data.size());
  }
}

// The original root-sequential byte broadcast, kept byte-for-byte as the A/B
// baseline: one payload copy per destination at the root.
void linear_broadcast(SpmdContext& ctx, std::span<std::byte> data, int root) {
  if (ctx.index() == root) {
    for (int i = 0; i < ctx.nprocs(); ++i) {
      if (i == root) continue;
      ctx.send_bytes(i, SpmdContext::kBcastTag, data);
    }
  } else {
    ctx.recv_bytes_into(root, SpmdContext::kBcastTag, data);
  }
}

// --- Reduce ----------------------------------------------------------------

// Binomial combining tree (the broadcast tree reversed).  Children always
// carry higher relative ranks than their parent, so combine(incoming, acc,
// /*incoming_first=*/false) keeps operands in relative-rank order; with
// root == 0 that is group-index order exactly.  Non-root copies accumulate
// into a staging buffer so their caller-visible spans stay unchanged (the
// linear variant never touched them either); leaves never combine and send
// their span directly.
//
// Failure propagation mirrors the broadcast, but upward: a copy whose child
// receive times out (or arrives as poison) still owes its parent a
// contribution, so it flushes a poison marker up to the parent — naming the
// originally stalled copy — before rethrowing.  The parent of rel is
// rel & (rel - 1) (clear the lowest set bit); the root has no parent and
// just rethrows.
void tree_reduce(SpmdContext& ctx, std::span<std::byte> data, int root,
                 const ByteCombine& combine) {
  const int p = ctx.nprocs();
  const int rel = (ctx.index() - root + p) % p;
  std::vector<std::byte> staging;
  std::span<std::byte> acc = data;
  int mask = 1;
  while (mask < p) {
    if ((rel & mask) != 0) {
      ctx.send_bytes(actual_index(rel - mask, root, p),
                     SpmdContext::kReduceTag, acc);
      break;
    }
    const int src_rel = rel | mask;
    if (src_rel < p) {
      if (rel != 0 && staging.empty() && !data.empty()) {
        staging.assign(data.begin(), data.end());
        bytes_copied_counter().add(staging.size());
        acc = std::span<std::byte>(staging);
      }
      const int child = actual_index(src_rel, root, p);
      int poison_origin = -1;
      std::exception_ptr failure;
      try {
        vp::Payload in = ctx.recv_payload(child, SpmdContext::kReduceTag);
        if (in.size() != acc.size()) {
          throw_size_mismatch("coll::reduce", in.size(), acc.size());
        }
        combine(in.bytes(), acc, /*incoming_first=*/false);
      } catch (const vp::ReceiveTimeout&) {
        poison_origin = child;
        failure = std::current_exception();
      } catch (const Poisoned& e) {
        poison_origin = e.origin;
        failure = std::current_exception();
      }
      if (failure) {
        if (rel != 0) {
          ctx.send_poison(actual_index(rel & (rel - 1), root, p),
                          SpmdContext::kReduceTag, poison_origin);
        }
        std::rethrow_exception(failure);
      }
    }
    mask <<= 1;
  }
}

// Root-sequential baseline, draining children in relative-rank order so the
// two algorithm families associate operands identically.
void linear_reduce(SpmdContext& ctx, std::span<std::byte> data, int root,
                   const ByteCombine& combine) {
  const int p = ctx.nprocs();
  if (ctx.index() == root) {
    for (int rel = 1; rel < p; ++rel) {
      vp::Payload in = ctx.recv_payload(actual_index(rel, root, p),
                                        SpmdContext::kReduceTag);
      if (in.size() != data.size()) {
        throw_size_mismatch("coll::reduce", in.size(), data.size());
      }
      combine(in.bytes(), data, /*incoming_first=*/false);
    }
  } else {
    ctx.send_bytes(root, SpmdContext::kReduceTag, data);
  }
}

// --- Allreduce -------------------------------------------------------------

// Recursive doubling over the largest power-of-two subgroup p2, with the
// standard pre/post fold for the remainder: extras (index >= p2) fold their
// contribution into index - p2 up front and receive the finished result at
// the end, so the doubling loop runs on exactly p2 participants.  Doubling
// moves P*log2(P) payloads where combine-then-broadcast moves ~2P, so past
// kAllreduceRdMaxBytes it stops paying: there we drain contributions at
// index 0 in index order (every one of the P-1 payloads must reach the
// combining point either way — the same argument that keeps gather linear)
// and fan the result back out as one shared payload, which is where the
// copy volume actually drops.
void tree_allreduce(SpmdContext& ctx, std::span<std::byte> data,
                    const ByteCombine& combine) {
  if (data.size() > kAllreduceRdMaxBytes) {
    linear_reduce(ctx, data, /*root=*/0, combine);
    star_broadcast_shared(ctx, data, /*root=*/0);
    return;
  }
  const int p = ctx.nprocs();
  const int r = ctx.index();
  const int p2 =
      static_cast<int>(std::bit_floor(static_cast<unsigned>(p)));
  const int rem = p - p2;
  if (r >= p2) {
    ctx.send_bytes(r - p2, SpmdContext::kAllreduceFoldTag, data);
    ctx.recv_bytes_into(r - p2, SpmdContext::kAllreduceFoldTag, data);
    return;
  }
  if (r < rem) {
    vp::Payload in =
        ctx.recv_payload(r + p2, SpmdContext::kAllreduceFoldTag);
    if (in.size() != data.size()) {
      throw_size_mismatch("coll::allreduce", in.size(), data.size());
    }
    combine(in.bytes(), data, /*incoming_first=*/false);
  }
  for (int mask = 1; mask < p2; mask <<= 1) {
    const int partner = r ^ mask;
    ctx.send_bytes(partner, SpmdContext::kAllreduceTag, data);
    vp::Payload in = ctx.recv_payload(partner, SpmdContext::kAllreduceTag);
    if (in.size() != data.size()) {
      throw_size_mismatch("coll::allreduce", in.size(), data.size());
    }
    combine(in.bytes(), data, /*incoming_first=*/partner < r);
  }
  if (r < rem) {
    ctx.send_bytes(r + p2, SpmdContext::kAllreduceFoldTag, data);
  }
}

void linear_allreduce(SpmdContext& ctx, std::span<std::byte> data,
                      const ByteCombine& combine) {
  linear_reduce(ctx, data, 0, combine);
  // Non-root buffers are untouched by reduce; the broadcast overwrites them
  // with the finished result.
  linear_broadcast(ctx, data, 0);
}

// --- Barrier ---------------------------------------------------------------

// Dissemination barrier: in round k every copy signals (index + 2^k) % P and
// waits for (index - 2^k + P) % P.  After ceil(log2 P) rounds each copy has
// (transitively) heard from every other; works for any P.
void tree_barrier(SpmdContext& ctx) {
  const int p = ctx.nprocs();
  const int r = ctx.index();
  for (int step = 1; step < p; step <<= 1) {
    ctx.send_payload((r + step) % p, SpmdContext::kBarrierDissemTag,
                     vp::Payload());
    (void)ctx.recv_payload((r - step + p) % p,
                           SpmdContext::kBarrierDissemTag);
  }
}

// The original gather-then-release baseline.
void linear_barrier(SpmdContext& ctx) {
  const std::byte token{0};
  const std::span<const std::byte> one(&token, 1);
  if (ctx.index() == 0) {
    for (int i = 1; i < ctx.nprocs(); ++i) {
      (void)ctx.recv_payload(i, SpmdContext::kBarrierUpTag);
    }
    for (int i = 1; i < ctx.nprocs(); ++i) {
      ctx.send_bytes(i, SpmdContext::kBarrierDownTag, one);
    }
  } else {
    ctx.send_bytes(0, SpmdContext::kBarrierUpTag, one);
    (void)ctx.recv_payload(0, SpmdContext::kBarrierDownTag);
  }
}

// --- Allgather -------------------------------------------------------------

// Bruck's algorithm: after round k copy r holds the blocks of ranks
// r .. r+2^k-1 (mod P) packed at the front of a staging buffer; each round
// ships the whole prefix one hop "down" and doubles it.  ceil(log2 P)
// rounds for any P, then one local rotation into index order.
void tree_allgather(SpmdContext& ctx, std::span<const std::byte> mine,
                    std::span<std::byte> all) {
  const int p = ctx.nprocs();
  const int r = ctx.index();
  const std::size_t block = mine.size();
  std::vector<std::byte> buf(block * static_cast<std::size_t>(p));
  if (block != 0) {
    std::memcpy(buf.data(), mine.data(), block);
    bytes_copied_counter().add(block);
  }
  for (int step = 1; step < p; step <<= 1) {
    const std::size_t blocks =
        static_cast<std::size_t>(step < p - step ? step : p - step);
    const std::size_t n = blocks * block;
    ctx.send_bytes((r - step + p) % p, SpmdContext::kAllgatherTag,
                   std::span<const std::byte>(buf.data(), n));
    vp::Payload in =
        ctx.recv_payload((r + step) % p, SpmdContext::kAllgatherTag);
    if (in.size() != n) {
      throw_size_mismatch("coll::allgather", in.size(), n);
    }
    if (n != 0) {
      std::memcpy(buf.data() + static_cast<std::size_t>(step) * block,
                  in.data(), n);
      bytes_copied_counter().add(n);
    }
  }
  // buf slot i holds rank (r + i) % P's block; rotate into index order.
  for (int i = 0; i < p; ++i) {
    if (block == 0) break;
    std::memcpy(all.data() + static_cast<std::size_t>((r + i) % p) * block,
                buf.data() + static_cast<std::size_t>(i) * block, block);
  }
  vp::note_bytes_delivered(block * static_cast<std::size_t>(p));
}

// Gather-to-0 then broadcast-the-concatenation, receiving each block
// straight into its destination slot — the original baseline.
void linear_allgather(SpmdContext& ctx, std::span<const std::byte> mine,
                      std::span<std::byte> all) {
  const int p = ctx.nprocs();
  const std::size_t block = mine.size();
  if (ctx.index() == 0) {
    if (block != 0) {
      std::memcpy(all.data(), mine.data(), block);
      vp::note_bytes_delivered(block);
    }
    for (int i = 1; i < p; ++i) {
      ctx.recv_bytes_into(
          i, SpmdContext::kAllgatherTag,
          all.subspan(static_cast<std::size_t>(i) * block, block));
    }
    for (int i = 1; i < p; ++i) {
      ctx.send_bytes(i, SpmdContext::kAllgatherTag, all);
    }
  } else {
    ctx.send_bytes(0, SpmdContext::kAllgatherTag, mine);
    ctx.recv_bytes_into(0, SpmdContext::kAllgatherTag, all);
  }
}

}  // namespace

Algo algo_from_name(std::string_view name, bool& known_out) {
  if (name == "linear") {
    known_out = true;
    return Algo::Linear;
  }
  if (name == "tree") {
    known_out = true;
    return Algo::Tree;
  }
  known_out = false;
  return Algo::Tree;
}

Algo algorithm() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Algo>(forced);
  return env_algorithm();
}

void force(Algo a) {
  g_forced.store(static_cast<int>(a), std::memory_order_relaxed);
}

void unforce() { g_forced.store(-1, std::memory_order_relaxed); }

void barrier(SpmdContext& ctx) {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("coll.barrier_ns");
  const Algo a = algorithm();
  obs::Span span(obs::Op::CollBarrier, ctx.comm(), 0, &hist);
  span.set_arg1(a == Algo::Tree ? 1 : 0);
  if (ctx.nprocs() == 1) return;
  if (a == Algo::Tree) {
    tree_barrier(ctx);
  } else {
    linear_barrier(ctx);
  }
}

void broadcast(SpmdContext& ctx, std::span<std::byte> data, int root) {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("coll.broadcast_ns");
  const Algo a = algorithm();
  obs::Span span(obs::Op::CollBcast, ctx.comm(), data.size(), &hist);
  span.set_arg1(a == Algo::Tree ? 1 : 0);
  if (ctx.nprocs() == 1) return;
  if (a == Algo::Tree) {
    tree_broadcast_bytes(ctx, data, root);
  } else {
    linear_broadcast(ctx, data, root);
  }
}

vp::Payload broadcast_payload(SpmdContext& ctx, vp::Payload mine, int root) {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("coll.broadcast_ns");
  const Algo a = algorithm();
  obs::Span span(obs::Op::CollBcast, ctx.comm(),
                 ctx.index() == root ? mine.size() : 0, &hist);
  span.set_arg1(a == Algo::Tree ? 1 : 0);
  if (ctx.nprocs() == 1) return mine;
  if (a == Algo::Tree) {
    return tree_broadcast_payload(ctx, std::move(mine), root);
  }
  return linear_broadcast_payload(ctx, std::move(mine), root);
}

void reduce(SpmdContext& ctx, std::span<std::byte> data, int root,
            const ByteCombine& combine) {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("coll.reduce_ns");
  const Algo a = algorithm();
  obs::Span span(obs::Op::CollReduce, ctx.comm(), data.size(), &hist);
  span.set_arg1(a == Algo::Tree ? 1 : 0);
  if (ctx.nprocs() == 1) return;
  if (a == Algo::Tree) {
    tree_reduce(ctx, data, root, combine);
  } else {
    linear_reduce(ctx, data, root, combine);
  }
}

void allreduce(SpmdContext& ctx, std::span<std::byte> data,
               const ByteCombine& combine) {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("coll.allreduce_ns");
  const Algo a = algorithm();
  obs::Span span(obs::Op::CollAllreduce, ctx.comm(), data.size(), &hist);
  span.set_arg1(a == Algo::Tree ? 1 : 0);
  if (ctx.nprocs() == 1) return;
  if (a == Algo::Tree) {
    tree_allreduce(ctx, data, combine);
  } else {
    linear_allreduce(ctx, data, combine);
  }
}

void allgather(SpmdContext& ctx, std::span<const std::byte> mine,
               std::span<std::byte> all) {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("coll.allgather_ns");
  if (all.size() != mine.size() * static_cast<std::size_t>(ctx.nprocs())) {
    throw std::invalid_argument(
        "coll::allgather: `all` must hold nprocs() * mine.size() bytes");
  }
  const Algo a = algorithm();
  obs::Span span(obs::Op::CollAllgather, ctx.comm(), mine.size(), &hist);
  span.set_arg1(a == Algo::Tree ? 1 : 0);
  if (ctx.nprocs() == 1) {
    if (!mine.empty()) {
      std::memcpy(all.data(), mine.data(), mine.size());
      vp::note_bytes_delivered(mine.size());
    }
    return;
  }
  if (a == Algo::Tree) {
    tree_allgather(ctx, mine, all);
  } else {
    linear_allgather(ctx, mine, all);
  }
}

}  // namespace tdp::spmd::coll
